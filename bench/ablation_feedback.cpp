// §4 design-claim ablation: "the gradually improving prefix table is fed
// back into the ring building process, so that the two components mutually
// boost each other."
//
// Four configurations isolate the feedback paths:
//   full            — the paper's protocol;
//   no-prefix-part  — messages carry only the ring part (prefix tables fill
//                     passively from ring traffic);
//   no-union-fb     — prefix entries are excluded from the ring candidate
//                     union (no table -> ring feedback);
//   ring-only       — both disabled: plain T-Man ring building with
//                     incidental table filling.
// The four variants run as independent replicas across hardware threads.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", static_cast<std::int64_t>(default_n(flags))));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto max_cycles = static_cast<std::size_t>(flags.get_int("max-cycles", 120));
  const std::size_t threads = threads_flag(flags);
  BenchReport report(flags, "ablation_feedback");
  const std::size_t shards = shards_flag(flags);
  apply_log_level_flag(flags);
  flags.finish();
  report.set_threads(threads);

  std::printf("=== Ablation: prefix/ring mutual boosting (N=%zu) ===\n", n);

  struct Variant {
    const char* name;
    bool send_prefix_part;
    bool prefix_in_union;
  };
  const Variant variants[] = {
      {"full", true, true},
      {"no-prefix-part", false, true},
      {"no-union-fb", true, false},
      {"ring-only", false, false},
  };

  std::vector<ReplicaSpec> specs;
  for (const auto& v : variants) {
    ReplicaSpec spec;
    spec.label = v.name;
    spec.cfg.n = n;
    spec.cfg.seed = seed;
    spec.cfg.shards = shards;
    spec.cfg.max_cycles = max_cycles;
    spec.cfg.bootstrap.send_prefix_part = v.send_prefix_part;
    spec.cfg.bootstrap.prefix_entries_in_union = v.prefix_in_union;
    specs.push_back(std::move(spec));
  }
  const auto runs = run_replicas(specs, threads);
  print_runs("Ablation", runs);
  for (const auto& run : runs) report.add_run(run.label, run.result);
  std::printf(
      "# expectations: 'full' converges fastest on both metrics; removing the\n"
      "# targeted prefix part cripples prefix-table convergence; removing the\n"
      "# union feedback slows the end phase of ring convergence; 'ring-only'\n"
      "# is the slowest and may not complete the prefix tables at all.\n");
  report.write();
  return 0;
}
