// §4 design-claim ablation: "the gradually improving prefix table is fed
// back into the ring building process, so that the two components mutually
// boost each other."
//
// Four configurations isolate the feedback paths:
//   full            — the paper's protocol;
//   no-prefix-part  — messages carry only the ring part (prefix tables fill
//                     passively from ring traffic);
//   no-union-fb     — prefix entries are excluded from the ring candidate
//                     union (no table -> ring feedback);
//   ring-only       — both disabled: plain T-Man ring building with
//                     incidental table filling.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool full_tier = flags.get_bool("full", std::getenv("REPRO_FULL") != nullptr);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", full_tier ? (1 << 14) : (1 << 12)));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto max_cycles = static_cast<std::size_t>(flags.get_int("max-cycles", 120));
  flags.finish();

  std::printf("=== Ablation: prefix/ring mutual boosting (N=%zu) ===\n", n);

  struct Variant {
    const char* name;
    bool send_prefix_part;
    bool prefix_in_union;
  };
  const Variant variants[] = {
      {"full", true, true},
      {"no-prefix-part", false, true},
      {"no-union-fb", true, false},
      {"ring-only", false, false},
  };

  std::vector<LabelledRun> runs;
  for (const auto& v : variants) {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.max_cycles = max_cycles;
    cfg.bootstrap.send_prefix_part = v.send_prefix_part;
    cfg.bootstrap.prefix_entries_in_union = v.prefix_in_union;
    std::fprintf(stderr, "running %s...\n", v.name);
    runs.push_back({v.name, run_experiment(cfg)});
  }
  print_runs("Ablation", runs);
  std::printf(
      "# expectations: 'full' converges fastest on both metrics; removing the\n"
      "# targeted prefix part cripples prefix-table convergence; removing the\n"
      "# union feedback slows the end phase of ring convergence; 'ring-only'\n"
      "# is the slowest and may not complete the prefix tables at all.\n");
  return 0;
}
