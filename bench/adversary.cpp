// Adversarial resilience: convergence and eclipse rate versus the Byzantine
// fraction f, with and without protocol hardening.
//
// Sweeps f in {0, 1%, 5%, 10%}. Each adversary runs the full behavior mix
// (ByzantineModel): descriptor poisoning from fixed sybil pools, eclipse
// floods prefix-close to the victim, sender-ID spoofing, answer suppression
// and wire corruption — layered over the liveness extension
// (evict_unresponsive), which the hardened runs reuse for probe-based
// verification. Every (f, hardened) pair runs on the same engine seed, so
// the base trajectory is shared and the curves isolate the adversary's and
// the hardening's effects.
//
// Per cycle, each honest node's leaf set is scored against the adversary
// set: the controlled fraction (adversary addresses or fabricated
// ID/address bindings) and the eclipse rate (honest nodes whose leaf set is
// >= half adversary-controlled). Both land as per-run series in the --json
// report ("adv.eclipse_rate", "adv.controlled_leaf_fraction") next to the
// sampled adv.* / quarantine.* / msg.corrupt counters.
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adversary/byzantine_model.hpp"
#include "bench/bench_common.hpp"

using namespace bsvc;
using namespace bsvc::bench;

namespace {

struct AdvSpec {
  std::string label;
  std::string key;  // metric key prefix, e.g. "hardened_f5"
  double fraction = 0.0;
  bool hardened = false;
  ExperimentConfig cfg;
  AdversaryPlan plan;
};

struct AdvOutcome {
  ExperimentResult result;
  double final_eclipse_rate = 0.0;
  double final_controlled = 0.0;
  std::size_t adversary_count = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", static_cast<std::int64_t>(default_n(flags, 1, 2))));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::size_t threads = threads_flag(flags);
  const std::int64_t sample_every = flags.get_int("sample-every", 1);
  const auto cycles = static_cast<std::size_t>(flags.get_int("cycles", 60));
  const std::size_t shards = shards_flag(flags);
  // --spans: exchange-span aggregates per run; under the adversary they
  // surface how many exchanges die to suppression/corruption (timeout and
  // evicted outcomes) versus answering.
  const bool spans = flags.get_bool("spans", false);
  BenchReport report(flags, "adversary");
  report.set_threads(threads);
  apply_log_level_flag(flags);
  flags.finish();

  const std::vector<std::pair<double, std::string>> fractions = {
      {0.0, "f0"}, {0.01, "f1"}, {0.05, "f5"}, {0.10, "f10"}};

  std::vector<AdvSpec> specs;
  for (const bool hardened : {false, true}) {
    for (const auto& [f, fkey] : fractions) {
      AdvSpec s;
      s.fraction = f;
      s.hardened = hardened;
      s.key = std::string(hardened ? "hardened" : "unhardened") + "_" + fkey;
      char label[64];
      std::snprintf(label, sizeof(label), "f=%g%% %s", 100.0 * f,
                    hardened ? "hardened" : "unhardened");
      s.label = label;

      ExperimentConfig& cfg = s.cfg;
      cfg.n = n;
      cfg.seed = seed;  // shared base trajectory across the whole sweep
      cfg.shards = shards;
      cfg.spans = spans;
      cfg.max_cycles = cycles;
      cfg.stop_at_convergence = false;
      cfg.sample_every_cycles =
          sample_every <= 0 ? 0 : static_cast<std::size_t>(sample_every);
      // The liveness extension is on everywhere: the hardened runs reuse its
      // probing machinery for verification, and keeping it on in the
      // unhardened runs too means the gap measures hardening, not eviction.
      cfg.bootstrap.evict_unresponsive = true;
      cfg.bootstrap.tombstone_ttl_cycles = 8;
      cfg.bootstrap.harden = hardened;
      cfg.newscast.harden = hardened;

      AdversaryPlan& plan = s.plan;
      plan.fraction = f;
      plan.window.start = cfg.warmup_cycles * cfg.bootstrap.delta;
      plan.poison = true;
      plan.pool_size = 8;
      plan.eclipse = true;
      plan.spoof = true;
      plan.suppress_probability = 0.3;
      plan.corrupt_probability = 0.05;
      specs.push_back(std::move(s));
    }
  }

  std::printf("=== Adversary sweep: %zu nodes, %zu cycles, f in {0, 1, 5, 10}%% ===\n", n,
              cycles);
  const auto outcomes =
      parallel_map(specs, threads, [](const AdvSpec& spec, std::size_t) -> AdvOutcome {
        std::fprintf(stderr, "running %s...\n", spec.label.c_str());
        BootstrapExperiment exp(spec.cfg);
        const auto model = install_adversary_plan(exp.engine(), spec.plan);
        const SimTime delta = spec.cfg.bootstrap.delta;
        const SimTime epoch = spec.cfg.warmup_cycles * delta;

        AdvOutcome out;
        std::vector<std::pair<std::uint64_t, double>> eclipse_series;
        std::vector<std::pair<std::uint64_t, double>> controlled_series;
        out.result = exp.run([&](std::size_t cycle, const ConvergenceMetrics&) {
          double eclipsed = 0.0;
          double controlled = 0.0;
          std::size_t honest = 0;
          if (model != nullptr) {
            for (Address a = 0; a < spec.cfg.n; ++a) {
              if (model->is_adversary(a)) continue;
              const auto& bp = exp.bootstrap_of(a);
              if (!bp.active()) continue;
              ++honest;
              const double frac = model->controlled_fraction(bp.leaf_set().all());
              controlled += frac;
              if (frac >= 0.5) eclipsed += 1.0;
            }
          }
          const double rate = honest == 0 ? 0.0 : eclipsed / static_cast<double>(honest);
          const double mean = honest == 0 ? 0.0 : controlled / static_cast<double>(honest);
          const std::uint64_t t = epoch + (cycle + 1) * delta;
          eclipse_series.emplace_back(t, rate);
          controlled_series.emplace_back(t, mean);
          out.final_eclipse_rate = rate;
          out.final_controlled = mean;
        });
        out.result.metric_series.by_name["adv.eclipse_rate"] = std::move(eclipse_series);
        out.result.metric_series.by_name["adv.controlled_leaf_fraction"] =
            std::move(controlled_series);
        out.adversary_count = model != nullptr ? model->adversaries().size() : 0;
        return out;
      });

  // Functional-convergence milestones per run: the first cycle with >= 95%
  // leaf completeness, and the first cycle after which the eclipse rate
  // stays at zero (-1: never reached within the run).
  const auto cycle_leaf95 = [](const ExperimentResult& r) -> int {
    for (std::size_t row = 0; row < r.series.rows(); ++row) {
      if (r.series.at(row, 1) <= 0.05) return static_cast<int>(r.series.at(row, 0));
    }
    return -1;
  };
  const auto eclipse_cleared = [](const obs::MetricSeries& s,
                                  std::size_t adversaries) -> int {
    if (adversaries == 0) return 0;
    const auto it = s.by_name.find("adv.eclipse_rate");
    if (it == s.by_name.end() || it->second.empty()) return -1;
    const auto& points = it->second;
    int cleared = -1;
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (points[p].second > 0.0) {
        cleared = -1;
      } else if (cleared < 0) {
        cleared = static_cast<int>(p);
      }
    }
    return cleared;
  };

  Table summary({"run", "adversaries", "cycle_leaf95", "eclipse_cleared",
                 "final_missing_leaf", "final_missing_prefix", "final_eclipse_rate",
                 "controlled_leaf"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    const auto& out = outcomes[i];
    const int leaf95 = cycle_leaf95(out.result);
    const int cleared = eclipse_cleared(out.result.metric_series, out.adversary_count);
    summary.add_row({spec.label, std::to_string(out.adversary_count),
                     std::to_string(leaf95), std::to_string(cleared),
                     Table::num(out.result.final_metrics.missing_leaf_fraction(), 6),
                     Table::num(out.result.final_metrics.missing_prefix_fraction(), 6),
                     Table::num(out.final_eclipse_rate, 4),
                     Table::num(out.final_controlled, 4)});
    report.add_run(spec.label, out.result);
    report.add_metric(spec.key + "_cycle_leaf95", static_cast<double>(leaf95));
    report.add_metric(spec.key + "_eclipse_cleared_cycle", static_cast<double>(cleared));
    report.add_metric(spec.key + "_final_missing_leaf",
                      out.result.final_metrics.missing_leaf_fraction());
    report.add_metric(spec.key + "_final_missing_prefix",
                      out.result.final_metrics.missing_prefix_fraction());
    report.add_metric(spec.key + "_converged_cycle",
                      static_cast<double>(out.result.converged_cycle));
    report.add_metric(spec.key + "_final_eclipse_rate", out.final_eclipse_rate);
    report.add_metric(spec.key + "_controlled_leaf_fraction", out.final_controlled);
    if (out.result.has_spans) {
      // Per-run outcome counts next to the eclipse metrics; the report-level
      // "spans" section carries the last run's full aggregate.
      report.add_metric(spec.key + "_spans_answered",
                        static_cast<double>(out.result.span_summary.answered));
      report.add_metric(spec.key + "_spans_timeout",
                        static_cast<double>(out.result.span_summary.timeout));
      report.add_metric(spec.key + "_spans_rtt_p95", out.result.span_summary.rtt_p95);
      report.set_spans(out.result.span_summary);
    }
  }
  std::printf("%s\n", summary.render().c_str());

  // The headline gap: hardening's effect at f = 5% (unhardened index 2,
  // hardened index 2 + fractions.size()).
  const auto& u5 = outcomes[2];
  const auto& h5 = outcomes[2 + fractions.size()];
  const double leaf_gap = u5.result.final_metrics.missing_leaf_fraction() -
                          h5.result.final_metrics.missing_leaf_fraction();
  const double eclipse_gap = u5.final_eclipse_rate - h5.final_eclipse_rate;
  std::printf("# hardening gap at f=5%%: missing-leaf %.6g (unhardened %.6g vs hardened "
              "%.6g), eclipse rate %.6g\n",
              leaf_gap, u5.result.final_metrics.missing_leaf_fraction(),
              h5.result.final_metrics.missing_leaf_fraction(), eclipse_gap);
  report.add_metric("gap_f5_missing_leaf", leaf_gap);
  report.add_metric("gap_f5_eclipse_rate", eclipse_gap);

  report.write();
  return 0;
}
