// §6 baseline: building an N-node prefix-routed overlay by conventional
// sequential Pastry-style joins versus jump-starting it with the
// bootstrapping service. The paper's motivation is exactly that "massive
// joins to a large overlay network are not supported by known protocols
// very well"; this bench quantifies the gap in messages, bytes, wall-clock
// (virtual) time, and resulting table quality.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "overlay/join_protocol.hpp"
#include "overlay/pastry_router.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool full = flags.get_bool("full", std::getenv("REPRO_FULL") != nullptr);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.finish();

  std::vector<std::size_t> sizes{1u << 10, 1u << 12, 1u << 14};
  if (full) sizes.push_back(1u << 16);

  std::printf("=== From-scratch bootstrap vs sequential Pastry joins ===\n");
  Table table({"N", "method", "messages", "MB", "time_units", "missing_leaf",
               "missing_prefix", "lookup_ok"});

  for (const std::size_t n : sizes) {
    // --- the bootstrapping service ------------------------------------
    {
      ExperimentConfig cfg;
      cfg.n = n;
      cfg.seed = seed;
      cfg.max_cycles = 80;
      std::fprintf(stderr, "bootstrap N=%zu...\n", n);
      BootstrapExperiment exp(cfg);
      const auto r = exp.run();
      const ConvergenceOracle oracle(exp.engine(), cfg.bootstrap, exp.bootstrap_slot());
      const PastryRouter router(exp.engine(), exp.bootstrap_slot());
      Rng rng(seed + 3);
      const auto lookups = router.run_lookups(oracle, rng, 500);
      const auto& t = r.traffic_during_bootstrap;
      const double time_units = (static_cast<double>(r.series.rows())) *
                                static_cast<double>(cfg.bootstrap.delta);
      table.add_row({std::to_string(n), "bootstrap", std::to_string(t.messages_sent),
                     Table::num(static_cast<double>(t.bytes_sent) / 1e6, 4),
                     Table::num(time_units, 5),
                     Table::num(r.final_metrics.missing_leaf_fraction(), 3),
                     Table::num(r.final_metrics.missing_prefix_fraction(), 3),
                     Table::num(lookups.success_rate(), 4)});
    }
    // --- sequential joins ----------------------------------------------
    {
      std::fprintf(stderr, "sequential join N=%zu...\n", n);
      SequentialJoinNetwork net(BootstrapConfig{}, seed);
      net.grow(n);
      auto q = net.measure_quality(500);
      const auto& c = net.costs();
      table.add_row({std::to_string(n), "seq-join", std::to_string(c.messages),
                     Table::num(static_cast<double>(c.bytes) / 1e6, 4),
                     Table::num(static_cast<double>(c.critical_time), 5),
                     Table::num(q.missing_leaf_fraction, 3),
                     Table::num(q.missing_prefix_fraction, 3),
                     Table::num(q.lookup_success_rate, 4)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "# expectations: sequential joins take time linear in N (serialized), ending\n"
      "# with good-but-imperfect tables; the bootstrapping service finishes in a\n"
      "# logarithmic number of Δ-cycles with PERFECT tables, at a comparable or\n"
      "# smaller total message budget for large N.\n");
  return 0;
}
