// §6 baseline: building an N-node prefix-routed overlay by conventional
// sequential Pastry-style joins versus jump-starting it with the
// bootstrapping service. The paper's motivation is exactly that "massive
// joins to a large overlay network are not supported by known protocols
// very well"; this bench quantifies the gap in messages, bytes, wall-clock
// (virtual) time, and resulting table quality. Each network size is one
// replica (bootstrap + sequential-join pair) fanned across hardware threads.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "overlay/join_protocol.hpp"
#include "overlay/pastry_router.hpp"

using namespace bsvc;
using namespace bsvc::bench;

namespace {

struct MethodRow {
  std::uint64_t messages = 0;
  double mb = 0.0;
  double time_units = 0.0;
  double missing_leaf = 0.0;
  double missing_prefix = 0.0;
  double lookup_ok = 0.0;
};

struct SizeOutcome {
  MethodRow bootstrap;
  MethodRow seq_join;
  ExperimentResult result;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool full = full_tier(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::size_t threads = threads_flag(flags);
  BenchReport report(flags, "baseline_join");
  const std::size_t shards = shards_flag(flags);
  apply_log_level_flag(flags);
  flags.finish();
  report.set_threads(threads);

  // Smoke ladder, with --full extending one rung (sequential joins make the
  // top full size impractical here).
  std::vector<std::size_t> sizes{std::begin(kSmokeSizes), std::end(kSmokeSizes)};
  if (full) sizes.push_back(kFullSizes[1]);

  std::printf("=== From-scratch bootstrap vs sequential Pastry joins ===\n");

  const auto outcomes = parallel_map(sizes, threads, [&](std::size_t n, std::size_t) {
    SizeOutcome out;
    // --- the bootstrapping service ------------------------------------
    {
      ExperimentConfig cfg;
      cfg.n = n;
      cfg.seed = seed;
      cfg.shards = shards;
      cfg.max_cycles = 80;
      std::fprintf(stderr, "bootstrap N=%zu...\n", n);
      BootstrapExperiment exp(cfg);
      out.result = exp.run();
      const auto& r = out.result;
      const ConvergenceOracle oracle(exp.engine(), cfg.bootstrap, exp.bootstrap_slot());
      const PastryRouter router(exp.engine(), exp.bootstrap_slot());
      Rng rng(seed + 3);
      const auto lookups = router.run_lookups(oracle, rng, 500);
      const auto& t = r.traffic_during_bootstrap;
      out.bootstrap.messages = t.messages_sent;
      out.bootstrap.mb = static_cast<double>(t.bytes_sent) / 1e6;
      out.bootstrap.time_units = static_cast<double>(r.series.rows()) *
                                 static_cast<double>(cfg.bootstrap.delta);
      out.bootstrap.missing_leaf = r.final_metrics.missing_leaf_fraction();
      out.bootstrap.missing_prefix = r.final_metrics.missing_prefix_fraction();
      out.bootstrap.lookup_ok = lookups.success_rate();
    }
    // --- sequential joins ----------------------------------------------
    {
      std::fprintf(stderr, "sequential join N=%zu...\n", n);
      SequentialJoinNetwork net(BootstrapConfig{}, seed);
      net.grow(n);
      auto q = net.measure_quality(500);
      const auto& c = net.costs();
      out.seq_join.messages = c.messages;
      out.seq_join.mb = static_cast<double>(c.bytes) / 1e6;
      out.seq_join.time_units = static_cast<double>(c.critical_time);
      out.seq_join.missing_leaf = q.missing_leaf_fraction;
      out.seq_join.missing_prefix = q.missing_prefix_fraction;
      out.seq_join.lookup_ok = q.lookup_success_rate;
    }
    return out;
  });

  Table table({"N", "method", "messages", "MB", "time_units", "missing_leaf",
               "missing_prefix", "lookup_ok"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const auto& out = outcomes[i];
    const auto emit = [&](const char* method, const MethodRow& row) {
      table.add_row({std::to_string(n), method, std::to_string(row.messages),
                     Table::num(row.mb, 4), Table::num(row.time_units, 5),
                     Table::num(row.missing_leaf, 3), Table::num(row.missing_prefix, 3),
                     Table::num(row.lookup_ok, 4)});
    };
    emit("bootstrap", out.bootstrap);
    emit("seq-join", out.seq_join);
    report.add_run("bootstrap N=" + std::to_string(n), out.result);
    report.add_metric("seqjoin_messages_N" + std::to_string(n),
                      static_cast<double>(out.seq_join.messages));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "# expectations: sequential joins take time linear in N (serialized), ending\n"
      "# with good-but-imperfect tables; the bootstrapping service finishes in a\n"
      "# logarithmic number of Δ-cycles with PERFECT tables, at a comparable or\n"
      "# smaller total message budget for large N.\n");
  report.write();
  return 0;
}
