// Shared machinery for the bench binaries: size tiers, result printing in a
// gnuplot-friendly layout, and convergence summary tables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

namespace bsvc::bench {

/// Network sizes and repetitions for one figure.
struct Tier {
  std::vector<std::size_t> sizes;
  std::vector<std::size_t> repeats;  // per size, mirroring the paper's 50/10/4
};

/// Default tier keeps the whole bench suite to minutes; --full (or env
/// REPRO_FULL=1) runs the paper's exact sizes 2^14 / 2^16 / 2^18.
inline Tier pick_tier(const Flags& flags) {
  const bool full = flags.get_bool("full", std::getenv("REPRO_FULL") != nullptr);
  if (full) return {{1u << 14, 1u << 16, 1u << 18}, {4, 2, 1}};
  return {{1u << 10, 1u << 12, 1u << 14}, {3, 2, 1}};
}

/// One experiment's curves, labelled.
struct LabelledRun {
  std::string label;
  ExperimentResult result;
};

/// Prints `column` of every run against the cycle axis, in gnuplot "plot ...
/// using 1:2" blocks separated by blank lines, then a summary table.
inline void print_runs(const std::string& figure, const std::vector<LabelledRun>& runs,
                       const std::string& leaf_caption = "proportion of missing leaf set entries",
                       const std::string& prefix_caption =
                           "proportion of missing prefix table entries") {
  for (const char* metric : {"leaf", "prefix"}) {
    const std::size_t col = metric == std::string("leaf") ? 1 : 2;
    std::printf("# %s — %s\n", figure.c_str(),
                col == 1 ? leaf_caption.c_str() : prefix_caption.c_str());
    std::printf("# columns: cycle  missing_fraction  (one block per run)\n");
    for (const auto& run : runs) {
      std::printf("# run: %s\n", run.label.c_str());
      for (std::size_t r = 0; r < run.result.series.rows(); ++r) {
        std::printf("%3.0f  %.9g\n", run.result.series.at(r, 0), run.result.series.at(r, col));
      }
      std::printf("\n");
    }
  }

  Table summary({"run", "cycles_to_perfect_leaf", "cycles_to_perfect_prefix",
                 "cycles_to_perfect_both", "msgs/node/cycle", "avg_msg_bytes",
                 "max_msg_bytes"});
  for (const auto& run : runs) {
    const auto& r = run.result;
    const double cycles = r.series.rows() == 0 ? 1.0 : static_cast<double>(r.series.rows());
    const double mpnc = static_cast<double>(r.traffic_during_bootstrap.messages_sent) /
                        (static_cast<double>(r.n) * cycles);
    summary.add_row({run.label, std::to_string(r.leaf_converged_cycle),
                     std::to_string(r.prefix_converged_cycle),
                     std::to_string(r.converged_cycle), Table::num(mpnc, 3),
                     Table::num(r.avg_message_bytes, 4),
                     std::to_string(r.max_message_bytes)});
  }
  std::printf("%s\n", summary.render().c_str());
}

/// Runs one experiment with progress logging suppressed.
inline ExperimentResult run_experiment(ExperimentConfig cfg) {
  BootstrapExperiment exp(std::move(cfg));
  return exp.run();
}

}  // namespace bsvc::bench
