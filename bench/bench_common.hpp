// Shared machinery for the bench binaries: size tiers, the parallel replica
// harness, result printing in a gnuplot-friendly layout, and convergence
// summary tables.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_report.hpp"
#include "common/flags.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

namespace bsvc::bench {

/// Network sizes and repetitions for one figure.
struct Tier {
  std::vector<std::size_t> sizes;
  std::vector<std::size_t> repeats;  // per size, mirroring the paper's 50/10/4
};

/// The single source of truth for the network-size ladder. Every bench's
/// tier, every per-bench --n default, bench/scale's sweep, and the size
/// tables quoted in EXPERIMENTS.md derive from these arrays — do not
/// hard-code 2^10..2^18 anywhere else.
inline constexpr std::size_t kSmokeSizes[] = {std::size_t{1} << 10, std::size_t{1} << 12,
                                              std::size_t{1} << 14};
inline constexpr std::size_t kSmokeRepeats[] = {3, 2, 1};
/// The paper's exact sizes (Fig. 3: N = 2^14, 2^16, 2^18).
inline constexpr std::size_t kFullSizes[] = {std::size_t{1} << 14, std::size_t{1} << 16,
                                             std::size_t{1} << 18};
inline constexpr std::size_t kFullRepeats[] = {4, 2, 1};

/// True when an environment variable value means "on" (set, non-empty, and
/// not "0"/"false").
inline bool env_truthy(const char* value) {
  return value != nullptr && *value != '\0' && std::string_view(value) != "0" &&
         std::string_view(value) != "false";
}

/// Whether the paper-sized tier is requested. An explicit command-line
/// --full / --full=false always wins; the REPRO_FULL environment variable is
/// only consulted when the flag is absent (so `--full=false` can override an
/// exported REPRO_FULL=1, and REPRO_FULL=0 really means off).
inline bool full_tier(const Flags& flags) {
  if (flags.has("full")) return flags.get_bool("full", false);
  return env_truthy(std::getenv("REPRO_FULL"));
}

/// Default tier keeps the whole bench suite to minutes; --full (or env
/// REPRO_FULL=1) runs the paper's exact sizes 2^14 / 2^16 / 2^18.
inline Tier pick_tier(const Flags& flags) {
  if (full_tier(flags)) {
    return {{std::begin(kFullSizes), std::end(kFullSizes)},
            {std::begin(kFullRepeats), std::end(kFullRepeats)}};
  }
  return {{std::begin(kSmokeSizes), std::end(kSmokeSizes)},
          {std::begin(kSmokeRepeats), std::end(kSmokeRepeats)}};
}

/// Default network size for single-N benches: the tier's headline size
/// (smallest full size / middle smoke size), optionally shifted down for
/// benches whose workload is superlinear in N. Always fed through --n so
/// the user can override.
inline std::size_t default_n(const Flags& flags, int full_shift = 0, int smoke_shift = 0) {
  return full_tier(flags) ? kFullSizes[0] >> full_shift : kSmokeSizes[1] >> smoke_shift;
}

/// Worker count from --threads (default: all hardware threads; 1 restores
/// the fully sequential behavior).
inline std::size_t threads_flag(const Flags& flags) {
  const auto t = flags.get_int("threads", static_cast<std::int64_t>(hardware_threads()));
  return static_cast<std::size_t>(std::max<std::int64_t>(1, t));
}

/// Engine shard count from --shards. 0 (the default) runs the serial
/// engine; K >= 1 runs the sharded conservative-time-window engine with K
/// lanes inside ONE simulation (orthogonal to --threads, which parallelizes
/// across replicas). See docs/architecture.md#sharded-execution.
inline std::size_t shards_flag(const Flags& flags) {
  const auto s = flags.get_int("shards", 0);
  return static_cast<std::size_t>(std::max<std::int64_t>(0, s));
}

/// Parses a comma-separated list of shard counts ("1,2,4,8"); empty input
/// yields an empty list. Exits 2 on garbage, like any other flag error.
inline std::vector<std::size_t> parse_shard_list(const Flags& flags, const std::string& value) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < value.size()) {
    std::size_t end = value.find(',', pos);
    if (end == std::string::npos) end = value.size();
    const std::string item = value.substr(pos, end - pos);
    char* rest = nullptr;
    const long k = std::strtol(item.c_str(), &rest, 10);
    if (item.empty() || rest == nullptr || *rest != '\0' || k < 1) {
      std::fprintf(stderr, "%s: invalid shard count '%s' in shard sweep list\n",
                   flags.program().c_str(), item.c_str());
      std::exit(2);
    }
    out.push_back(static_cast<std::size_t>(k));
    pos = end + 1;
  }
  return out;
}

/// Derives the seed of replica `replica_index` from the --seed base value
/// (splitmix64 over base and index). Replicas get decorrelated engines while
/// the whole suite stays reproducible from the single base seed, whatever
/// the thread count.
inline std::uint64_t replica_seed(std::uint64_t base_seed, std::uint64_t replica_index) {
  std::uint64_t state = base_seed + (replica_index + 1) * 0x9E3779B97F4A7C15ull;
  return splitmix64(state);
}

/// Handles the shared --log-level flag: sets the global threshold, treating
/// unknown level names as a flag error (exit 2) rather than silently falling
/// back.
inline void apply_log_level_flag(const Flags& flags) {
  const std::string value = flags.get_string("log-level", "");
  if (value.empty()) return;
  const auto level = parse_log_level(value);
  if (!level.has_value()) {
    std::fprintf(stderr, "%s: invalid --log-level '%s' (expected debug|info|warn|error|off)\n",
                 flags.program().c_str(), value.c_str());
    std::exit(2);
  }
  set_log_level(*level);
}

/// One experiment's curves, labelled.
struct LabelledRun {
  std::string label;
  ExperimentResult result;
};

/// One replica of a figure: a label plus its full configuration (seed
/// included — use replica_seed() for repeat loops).
struct ReplicaSpec {
  std::string label;
  ExperimentConfig cfg;
};

/// Applies the shared observability flags to a prepared replica set:
///   --sample-every=<cycles>  metric snapshot cadence (default 1; 0 disables)
///   --trace=<prefix>         per-replica JSONL engine traces written to
///                            "<prefix>_<index>.jsonl"
///   --spans                  per-exchange causal spans (latency percentiles
///                            and outcome counts in the report's "spans"
///                            section; see docs/observability.md)
/// Replica indexing follows spec order, so trace file names are stable
/// whatever the thread count.
inline void apply_obs_flags(const Flags& flags, std::vector<ReplicaSpec>& specs) {
  const std::int64_t sample_every = flags.get_int("sample-every", 1);
  const std::string trace_prefix = flags.get_string("trace", "");
  const bool spans = flags.get_bool("spans", false);
  // --shards rides along with the shared flags so every spec-driven bench
  // can run on the sharded engine (benches that force SamplerKind::Oracle
  // get the clear exit-2 setup error).
  const std::size_t shards = shards_flag(flags);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].cfg.shards = shards;
    specs[i].cfg.spans = spans;
    specs[i].cfg.sample_every_cycles =
        sample_every <= 0 ? 0 : static_cast<std::size_t>(sample_every);
    if (!trace_prefix.empty()) {
      specs[i].cfg.trace_path = trace_prefix + "_" + std::to_string(i) + ".jsonl";
    }
  }
}

/// Derives the per-K profile path for a shard-sweep run: "prof.json" with
/// K=4 becomes "prof_K4.json" (the suffix lands before the last extension
/// dot of the basename, or at the end when there is none).
inline std::string profile_path_for_shards(const std::string& path, std::size_t k) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.rfind('.');
  const bool has_ext = dot != std::string::npos && (slash == std::string::npos || dot > slash);
  const std::string stem = has_ext ? path.substr(0, dot) : path;
  const std::string ext = has_ext ? path.substr(dot) : "";
  return stem + "_K" + std::to_string(k) + ext;
}

/// Runs every replica, fanned out across up to `threads` hardware threads
/// (each replica owns its private Engine; nothing is shared). Results come
/// back in spec order regardless of completion order, so stdout is
/// byte-identical to a --threads=1 run with the same flags.
inline std::vector<LabelledRun> run_replicas(const std::vector<ReplicaSpec>& specs,
                                             std::size_t threads) {
  auto results = parallel_map(specs, threads, [](const ReplicaSpec& spec, std::size_t) {
    std::fprintf(stderr, "running %s...\n", spec.label.c_str());
    BootstrapExperiment exp(spec.cfg);
    return exp.run();
  });
  std::vector<LabelledRun> runs;
  runs.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    runs.push_back({specs[i].label, std::move(results[i])});
  }
  return runs;
}

/// Prints `column` of every run against the cycle axis, in gnuplot "plot ...
/// using 1:2" blocks separated by blank lines, then a summary table.
inline void print_runs(const std::string& figure, const std::vector<LabelledRun>& runs,
                       const std::string& leaf_caption = "proportion of missing leaf set entries",
                       const std::string& prefix_caption =
                           "proportion of missing prefix table entries") {
  for (const char* metric : {"leaf", "prefix"}) {
    const std::size_t col = metric == std::string("leaf") ? 1 : 2;
    std::printf("# %s — %s\n", figure.c_str(),
                col == 1 ? leaf_caption.c_str() : prefix_caption.c_str());
    std::printf("# columns: cycle  missing_fraction  (one block per run)\n");
    for (const auto& run : runs) {
      std::printf("# run: %s\n", run.label.c_str());
      for (std::size_t r = 0; r < run.result.series.rows(); ++r) {
        std::printf("%3.0f  %.9g\n", run.result.series.at(r, 0), run.result.series.at(r, col));
      }
      std::printf("\n");
    }
  }

  Table summary({"run", "cycles_to_perfect_leaf", "cycles_to_perfect_prefix",
                 "cycles_to_perfect_both", "msgs/node/cycle", "avg_msg_bytes",
                 "max_msg_bytes"});
  for (const auto& run : runs) {
    const auto& r = run.result;
    const double cycles = r.series.rows() == 0 ? 1.0 : static_cast<double>(r.series.rows());
    const double mpnc = static_cast<double>(r.traffic_during_bootstrap.messages_sent) /
                        (static_cast<double>(r.n) * cycles);
    summary.add_row({run.label, std::to_string(r.leaf_converged_cycle),
                     std::to_string(r.prefix_converged_cycle),
                     std::to_string(r.converged_cycle), Table::num(mpnc, 3),
                     Table::num(r.avg_message_bytes, 4),
                     std::to_string(r.max_message_bytes)});
  }
  std::printf("%s\n", summary.render().c_str());
}

/// Runs one experiment with progress logging suppressed.
inline ExperimentResult run_experiment(ExperimentConfig cfg) {
  BootstrapExperiment exp(std::move(cfg));
  return exp.run();
}

}  // namespace bsvc::bench
