// Machine-readable bench output: every bench binary accepts --json <path>
// and writes one JSON object with wall time, simulated-event throughput,
// peak RSS and the per-run convergence summary, so successive PRs can track
// the perf trajectory (see bench/run_suite.sh and docs/performance.md).
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.hpp"
#include "core/experiment.hpp"
#include "obs/metrics.hpp"

namespace bsvc::bench {

/// Peak resident set size of this process in bytes (Linux reports KiB).
inline std::uint64_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

/// Rewinds the kernel's RSS high-water mark (/proc/self/clear_refs, Linux),
/// so per-phase peaks can be measured inside one process. Returns false when
/// the kernel interface is unavailable — callers then fall back to the
/// monotonic getrusage() peak, which over-reports later phases.
inline bool reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5\n", f) >= 0;
  std::fclose(f);
  return ok;
}

/// Current RSS high-water mark in bytes: VmHWM from /proc/self/status
/// (resettable via reset_peak_rss()), falling back to getrusage().
inline std::uint64_t current_peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f != nullptr) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      unsigned long long kib = 0;
      if (std::sscanf(line, "VmHWM: %llu kB", &kib) == 1) {
        std::fclose(f);
        return static_cast<std::uint64_t>(kib) * 1024;
      }
    }
    std::fclose(f);
  }
  return peak_rss_bytes();
}

/// One tier of the allocation census (see BENCH_scale): whole-run heap
/// traffic, the steady-state window (setup and early table growth
/// excluded), and the phase's peak RSS. The steady window is what the CI
/// budget gate judges; the whole-run figures track total footprint.
struct AllocTier {
  std::string label;
  std::uint64_t heap_allocations = 0;  // operator-new calls over the whole run
  std::uint64_t exchanges = 0;         // bootstrap exchanges driving them
  double allocs_per_exchange = 0.0;
  std::uint64_t steady_heap_allocations = 0;  // allocs after the warm cutoff
  std::uint64_t steady_exchanges = 0;         // exchanges after the cutoff
  double steady_allocs_per_exchange = 0.0;
  std::uint64_t peak_rss_bytes = 0;  // phase peak (VmHWM reset per tier)
};

/// The census block a bench attaches via BenchReport::set_alloc().
struct AllocCensus {
  double budget_allocs_per_exchange = 0.0;  // pinned budget the CI gate enforces
  bool rss_reset_supported = false;         // per-tier peaks are real, not monotonic
  std::vector<AllocTier> tiers;
};

/// Escapes a string for inclusion in a JSON string literal.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Collects one bench invocation's measurements and writes them as JSON.
/// Construction captures the wall-clock start, so build it right after flag
/// parsing. write() is a no-op unless --json was given.
class BenchReport {
 public:
  BenchReport(const Flags& flags, std::string name)
      : name_(std::move(name)),
        path_(flags.get_string("json", "")),
        start_(std::chrono::steady_clock::now()) {}

  void set_threads(std::size_t threads) { threads_ = threads; }

  /// Accounts one experiment run: convergence summary + dispatched events.
  void add_run(const std::string& label, const ExperimentResult& r) {
    RunSummary s;
    s.label = label;
    s.n = r.n;
    s.cycles = r.series.rows();
    s.leaf_converged_cycle = r.leaf_converged_cycle;
    s.prefix_converged_cycle = r.prefix_converged_cycle;
    s.converged_cycle = r.converged_cycle;
    s.messages_sent = r.traffic_during_bootstrap.messages_sent;
    s.bytes_sent = r.traffic_during_bootstrap.bytes_sent;
    s.series = r.metric_series;
    runs_.push_back(std::move(s));
    events_ += r.events_dispatched;
  }

  /// Accounts simulated events dispatched outside of add_run()ed results
  /// (benches that drive an Engine directly).
  void add_events(std::uint64_t events) { events_ += events; }

  /// Attaches a free-form scalar metric (e.g. lookup success rates).
  void add_metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Attaches the exchange-span aggregate (--spans runs); emitted as the
  /// report's "spans" section. Last call wins — benches pass the aggregate
  /// of their primary run.
  void set_spans(const obs::SpanSummary& spans) {
    spans_ = spans;
    has_spans_ = true;
  }

  /// Attaches the window-profiler aggregate (--profile runs); emitted as
  /// the report's "prof" section.
  void set_profile(const obs::ProfileSummary& prof) {
    prof_ = prof;
    has_profile_ = true;
  }

  /// Attaches the allocation census; emitted as the report's "alloc"
  /// section. run_suite.sh FAILs a census-capable bench whose report lacks
  /// this section, so benches must call it whenever they counted.
  void set_alloc(AllocCensus census) {
    alloc_ = std::move(census);
    has_alloc_ = true;
  }

  /// Writes the JSON file; prints the throughput line to stderr either way.
  void write() const {
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    const double eps = wall > 0.0 ? static_cast<double>(events_) / wall : 0.0;
    std::fprintf(stderr, "%s: %.2fs wall, %llu events (%.3g events/sec), %zu threads\n",
                 name_.c_str(), wall, static_cast<unsigned long long>(events_), eps,
                 threads_);
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --json file '%s'\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", json_escape(name_).c_str());
    std::fprintf(f, "  \"threads\": %zu,\n", threads_);
    std::fprintf(f, "  \"wall_seconds\": %.6f,\n", wall);
    std::fprintf(f, "  \"events_dispatched\": %llu,\n",
                 static_cast<unsigned long long>(events_));
    std::fprintf(f, "  \"events_per_sec\": %.1f,\n", eps);
    std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(peak_rss_bytes()));
    std::fprintf(f, "  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %.9g", i == 0 ? "" : ", ",
                   json_escape(metrics_[i].first).c_str(), metrics_[i].second);
    }
    std::fprintf(f, "},\n");
    if (has_spans_) {
      // Exchange-span aggregates; scripts/compare_bench.py ignores sections
      // it does not know, so reports with and without spans gate together.
      std::fprintf(f,
                   "  \"spans\": {\"opened\": %llu, \"closed\": %llu, "
                   "\"in_flight\": %llu, \"overflow_dropped\": %llu, "
                   "\"stray_closes\": %llu, \"answered\": %llu, \"timeout\": %llu, "
                   "\"superseded\": %llu, \"evicted\": %llu, \"sends\": %llu, "
                   "\"drops\": %llu, \"delivers\": %llu, \"dead_letters\": %llu, "
                   "\"rtt_count\": %llu, \"rtt_mean\": %.9g, \"rtt_max\": %.9g, "
                   "\"rtt_p50\": %.9g, \"rtt_p95\": %.9g, \"rtt_p99\": %.9g, "
                   "\"lifetime_p50\": %.9g, \"lifetime_p95\": %.9g, "
                   "\"lifetime_p99\": %.9g, \"hops_mean\": %.9g, "
                   "\"retries_mean\": %.9g, \"request_descriptors_mean\": %.9g, "
                   "\"answer_descriptors_mean\": %.9g},\n",
                   static_cast<unsigned long long>(spans_.opened),
                   static_cast<unsigned long long>(spans_.closed),
                   static_cast<unsigned long long>(spans_.in_flight),
                   static_cast<unsigned long long>(spans_.overflow_dropped),
                   static_cast<unsigned long long>(spans_.stray_closes),
                   static_cast<unsigned long long>(spans_.answered),
                   static_cast<unsigned long long>(spans_.timeout),
                   static_cast<unsigned long long>(spans_.superseded),
                   static_cast<unsigned long long>(spans_.evicted),
                   static_cast<unsigned long long>(spans_.sends),
                   static_cast<unsigned long long>(spans_.drops),
                   static_cast<unsigned long long>(spans_.delivers),
                   static_cast<unsigned long long>(spans_.dead_letters),
                   static_cast<unsigned long long>(spans_.rtt_count), spans_.rtt_mean,
                   spans_.rtt_max, spans_.rtt_p50, spans_.rtt_p95, spans_.rtt_p99,
                   spans_.lifetime_p50, spans_.lifetime_p95, spans_.lifetime_p99,
                   spans_.hops_mean, spans_.retries_mean,
                   spans_.request_descriptors_mean, spans_.answer_descriptors_mean);
    }
    if (has_profile_) {
      std::fprintf(f,
                   "  \"prof\": {\"shards\": %llu, \"windows\": %llu, "
                   "\"events\": %llu, \"mailbox_messages\": %llu, "
                   "\"wall_seconds\": %.6f, \"dispatch_seconds\": %.6f, "
                   "\"drain_seconds\": %.6f, \"stall_seconds\": %.6f, "
                   "\"idle_seconds\": %.6f, \"barrier_stall_fraction\": %.6f, "
                   "\"mailbox_mean_per_window\": %.9g, \"queue_depth_mean\": %.9g, "
                   "\"trace_events\": %llu, \"trace_events_dropped\": %llu},\n",
                   static_cast<unsigned long long>(prof_.shards),
                   static_cast<unsigned long long>(prof_.windows),
                   static_cast<unsigned long long>(prof_.events),
                   static_cast<unsigned long long>(prof_.mailbox_messages),
                   prof_.wall_seconds, prof_.dispatch_seconds, prof_.drain_seconds,
                   prof_.stall_seconds, prof_.idle_seconds,
                   prof_.barrier_stall_fraction, prof_.mailbox_mean_per_window,
                   prof_.queue_depth_mean,
                   static_cast<unsigned long long>(prof_.trace_events),
                   static_cast<unsigned long long>(prof_.trace_events_dropped));
    }
    if (has_alloc_) {
      std::fprintf(f,
                   "  \"alloc\": {\"budget_allocs_per_exchange\": %.9g, "
                   "\"rss_reset_supported\": %s, \"tiers\": [",
                   alloc_.budget_allocs_per_exchange,
                   alloc_.rss_reset_supported ? "true" : "false");
      for (std::size_t i = 0; i < alloc_.tiers.size(); ++i) {
        const auto& t = alloc_.tiers[i];
        std::fprintf(f,
                     "%s\n    {\"label\": \"%s\", \"heap_allocations\": %llu, "
                     "\"exchanges\": %llu, \"allocs_per_exchange\": %.9g, "
                     "\"steady_heap_allocations\": %llu, "
                     "\"steady_exchanges\": %llu, "
                     "\"steady_allocs_per_exchange\": %.9g, "
                     "\"peak_rss_bytes\": %llu}",
                     i == 0 ? "" : ",", json_escape(t.label).c_str(),
                     static_cast<unsigned long long>(t.heap_allocations),
                     static_cast<unsigned long long>(t.exchanges),
                     t.allocs_per_exchange,
                     static_cast<unsigned long long>(t.steady_heap_allocations),
                     static_cast<unsigned long long>(t.steady_exchanges),
                     t.steady_allocs_per_exchange,
                     static_cast<unsigned long long>(t.peak_rss_bytes));
      }
      std::fprintf(f, "\n  ]},\n");
    }
    std::fprintf(f, "  \"runs\": [");
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      const auto& s = runs_[i];
      std::fprintf(f,
                   "%s\n    {\"label\": \"%s\", \"n\": %zu, \"cycles\": %zu, "
                   "\"leaf_converged_cycle\": %d, \"prefix_converged_cycle\": %d, "
                   "\"converged_cycle\": %d, \"messages_sent\": %llu, "
                   "\"bytes_sent\": %llu",
                   i == 0 ? "" : ",", json_escape(s.label).c_str(), s.n, s.cycles,
                   s.leaf_converged_cycle, s.prefix_converged_cycle, s.converged_cycle,
                   static_cast<unsigned long long>(s.messages_sent),
                   static_cast<unsigned long long>(s.bytes_sent));
      if (!s.series.empty()) {
        // Per-metric time series from the run's Sampler: name -> [[virtual
        // time, value], ...], in registry (lexicographic) name order.
        std::fprintf(f, ",\n     \"series\": {");
        bool first_metric = true;
        for (const auto& [metric, points] : s.series.by_name) {
          std::fprintf(f, "%s\n      \"%s\": [", first_metric ? "" : ",",
                       json_escape(metric).c_str());
          first_metric = false;
          for (std::size_t p = 0; p < points.size(); ++p) {
            std::fprintf(f, "%s[%llu,%.9g]", p == 0 ? "" : ",",
                         static_cast<unsigned long long>(points[p].first),
                         points[p].second);
          }
          std::fprintf(f, "]");
        }
        std::fprintf(f, "\n     }");
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct RunSummary {
    std::string label;
    std::size_t n = 0;
    std::size_t cycles = 0;
    int leaf_converged_cycle = -1;
    int prefix_converged_cycle = -1;
    int converged_cycle = -1;
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
    obs::MetricSeries series;
  };

  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  std::size_t threads_ = 1;
  std::uint64_t events_ = 0;
  std::vector<RunSummary> runs_;
  std::vector<std::pair<std::string, double>> metrics_;
  bool has_spans_ = false;
  obs::SpanSummary spans_;
  bool has_profile_ = false;
  obs::ProfileSummary prof_;
  bool has_alloc_ = false;
  AllocCensus alloc_;
};

}  // namespace bsvc::bench
