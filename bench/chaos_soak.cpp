// Chaos soak: runs hundreds of seeded composite fault scenarios — generated
// by src/fault/chaos.hpp — against the full stack (Newscast + bootstrap +
// workload), checking the scenario-independent invariant oracles after every
// run and replaying a subset across shard counts for byte-identity.
//
// Every case is a pure function of (--seed, case index): a failure report
// names the two numbers that reproduce it, plus the case description. The
// harness exits 1 on the first oracle violation or digest mismatch (after
// printing all of that case's violations), 0 when the whole soak passes.
//
//   chaos_soak --plans 300 --seed 7      # the nightly budget
//   chaos_soak --smoke                   # 24 plans, CI-sized
//   chaos_soak --replay-every 8          # cross-K digest check cadence
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "adversary/byzantine_model.hpp"
#include "bench/bench_common.hpp"
#include "fault/chaos.hpp"
#include "workload/driver.hpp"

using namespace bsvc;
using namespace bsvc::bench;

namespace {

struct SoakTiming {
  std::size_t warmup_cycles = 6;
  std::size_t fault_from_cycle = 2;   // past the epoch: activation is done
  std::size_t fault_to_cycle = 14;    // all windows closed by here
  std::size_t wl_to_cycle = 16;       // issue a little past the faults
  // The recovery tail must outlast the tombstone TTL (evicted crash victims
  // and partitioned halves re-admit only after their tombstones expire) plus
  // a few gossip cycles to rebuild: 16 cycles after the last window closes.
  std::size_t max_cycles = 38;
  std::size_t quiesce_cycles = 10;    // retry tails resolve before the summary
};

ChaosGenConfig make_gen(std::size_t n, const SoakTiming& t) {
  ChaosGenConfig gen;
  gen.n = n;
  gen.delta = kDelta;
  const SimTime epoch = t.warmup_cycles * kDelta;
  gen.epoch = epoch + t.fault_from_cycle * kDelta;
  gen.horizon = epoch + t.fault_to_cycle * kDelta;
  return gen;
}

ChaosObservation run_case(const ChaosCase& c, std::size_t n, std::size_t shards,
                          const SoakTiming& t, bool verbose = false) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = c.seed;
  cfg.shards = shards;
  cfg.spans = true;
  cfg.warmup_cycles = t.warmup_cycles;
  cfg.max_cycles = t.max_cycles;
  cfg.stop_at_convergence = false;
  cfg.fault_plan = c.plan;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.tombstone_ttl_cycles = 5;
  cfg.bootstrap.harden = c.harden;
  if (c.retries) {
    cfg.bootstrap.retry_exchanges = true;
    cfg.bootstrap.exchange_retry_budget = 2;
    cfg.bootstrap.adaptive_timeout = true;
    cfg.bootstrap.rtt_max_timeout = 2 * kDelta;
    cfg.bootstrap.suspicion_threshold = 3;
  }

  WorkloadParams wp;
  if (c.retries) {
    wp.retry = true;
    wp.retry_budget = 2;
    wp.adaptive_timeout = true;
    wp.rtt_max_timeout = 2 * kDelta;
    wp.hedge_delay = kDelta / 2;
    wp.cast_retries = 1;
  }
  WorkloadStack stack(wp);
  cfg.node_extension = stack.node_extension();

  BootstrapExperiment exp(cfg);
  stack.log().bind_registry(exp.engine().metrics());
  if (c.retries) stack.log().bind_retry_registry(exp.engine().metrics());

  std::unique_ptr<ByzantineModel> adversary;
  if (c.has_adversary()) {
    AdversaryPlan ap;
    ap.seed = c.adversary_seed;
    ap.fraction = c.byzantine_fraction;
    ap.window = {make_gen(n, t).epoch, make_gen(n, t).horizon};
    ap.poison = c.byz_poison;
    ap.eclipse = c.byz_eclipse;
    ap.suppress_probability = c.byz_suppress;
    adversary = install_adversary_plan(exp.engine(), ap);
  }

  const SimTime epoch = cfg.warmup_cycles * kDelta;
  DriverConfig dc;
  dc.batch = 4;
  dc.period = kDelta / 4;
  dc.put_fraction = 0.5;
  dc.value_bytes = 64;
  dc.seed = c.seed ^ 0xD1CEF00Dull;
  dc.from = epoch + t.fault_from_cycle * kDelta;
  dc.to = epoch + t.wl_to_cycle * kDelta;
  WorkloadDriver driver(stack, dc);
  driver.start(exp.engine());
  driver.schedule_cast(exp.engine(), epoch + (t.fault_to_cycle + 2) * kDelta);

  const ExperimentResult result =
      exp.run(verbose ? [](std::size_t cycle, const ConvergenceMetrics& m) {
        std::fprintf(stderr, "  cycle %zu: missing_leaf %.4f missing_prefix %.4f\n",
                     cycle, m.missing_leaf_fraction(), m.missing_prefix_fraction());
      } : std::function<void(std::size_t, const ConvergenceMetrics&)>());
  exp.engine().run_until(epoch + (t.max_cycles + t.quiesce_cycles) * kDelta);

  Engine& engine = exp.engine();
  ChaosObservation o;
  o.sent = engine.traffic().messages_sent;
  o.dropped = engine.traffic().messages_dropped;
  o.to_dead = engine.traffic().messages_to_dead;
  o.delivered = engine.traffic().messages_delivered;
  o.duplicated = engine.traffic().messages_duplicated;
  const WorkloadSummary wl = stack.log().summary();
  o.wl_issued = wl.issued();
  o.wl_answered = wl.answered();
  o.wl_timeouts = wl.timeouts;
  o.wl_unroutable = wl.unroutable;
  for (std::size_t a = 0; a < engine.node_count(); ++a) {
    o.wl_pending += stack.service(engine, a).pending_requests();
  }
  if (const obs::SpanLog* spans = engine.span_log(); spans != nullptr) {
    const obs::SpanSummary s = spans->summary();
    o.span_opened = s.opened;
    o.span_closed = s.closed;
    o.span_in_flight = s.in_flight;
    o.span_stray = s.stray_closes;
    o.span_overflow = s.overflow_dropped;
  }
  o.n = engine.node_count();
  o.alive = engine.alive_count();
  for (std::size_t a = 0; a < engine.node_count(); ++a) {
    if (!engine.is_alive(a)) continue;
    const BootstrapProtocol& bp = exp.bootstrap_of(static_cast<Address>(a));
    if (!bp.active()) {
      ++o.inactive_alive;
    } else if (bp.leaf_set().empty()) {
      ++o.empty_leaf_alive;
    }
  }
  o.missing_leaf_fraction = result.final_metrics.missing_leaf_fraction();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const auto plans =
      static_cast<std::size_t>(flags.get_int("plans", smoke ? 24 : 300));
  const auto n = static_cast<std::size_t>(flags.get_int("n", 48));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::size_t shards = shards_flag(flags) == 0 ? 1 : shards_flag(flags);
  const auto replay_every =
      static_cast<std::size_t>(flags.get_int("replay-every", 8));
  const std::int64_t only_case = flags.get_int("case", -1);
  apply_log_level_flag(flags);
  flags.finish();

  const SoakTiming timing;
  const ChaosGenConfig gen = make_gen(n, timing);

  if (only_case >= 0) {
    // Debug mode: one case, per-cycle convergence trace, oracle verdicts.
    const ChaosCase c =
        make_chaos_case(gen, seed, static_cast<std::size_t>(only_case));
    std::printf("case %lld: %s\n", static_cast<long long>(only_case),
                c.describe().c_str());
    const ChaosObservation o = run_case(c, n, shards, timing, /*verbose=*/true);
    const std::vector<std::string> bad = check_chaos_invariants(o);
    for (const std::string& msg : bad) std::printf("oracle: %s\n", msg.c_str());
    std::printf("%s\n", bad.empty() ? "PASSED" : "FAILED");
    return bad.empty() ? 0 : 1;
  }

  std::printf("=== Chaos soak: %zu plans, %zu nodes, seed %llu, shards %zu ===\n",
              plans, n, static_cast<unsigned long long>(seed), shards);
  std::size_t failures = 0;
  std::size_t replays = 0;
  for (std::size_t i = 0; i < plans; ++i) {
    const ChaosCase c = make_chaos_case(gen, seed, i);
    const ChaosObservation o = run_case(c, n, shards, timing);
    const std::vector<std::string> bad = check_chaos_invariants(o);
    if (!bad.empty()) {
      ++failures;
      std::fprintf(stderr, "FAIL case %zu (seed %llu): %s\n", i,
                   static_cast<unsigned long long>(seed), c.describe().c_str());
      for (const std::string& msg : bad) {
        std::fprintf(stderr, "  oracle: %s\n", msg.c_str());
      }
      break;  // first failure stops the soak: the repro is already printed
    }
    if (replay_every != 0 && i % replay_every == 0) {
      // Cross-K byte-identity: the same case on a different shard count must
      // produce the identical observation.
      const std::size_t other = shards == 4 ? 2 : 4;
      const ChaosObservation o2 = run_case(c, n, other, timing);
      ++replays;
      if (chaos_digest(o) != chaos_digest(o2)) {
        ++failures;
        std::fprintf(stderr,
                     "FAIL case %zu: digest mismatch shards %zu vs %zu "
                     "(%016llx != %016llx) — %s\n",
                     i, shards, other,
                     static_cast<unsigned long long>(chaos_digest(o)),
                     static_cast<unsigned long long>(chaos_digest(o2)),
                     c.describe().c_str());
        break;
      }
    }
    if ((i + 1) % 25 == 0) {
      std::fprintf(stderr, "  %zu/%zu plans passed (%zu cross-K replays)\n", i + 1,
                   plans, replays);
    }
  }
  if (failures == 0) {
    std::printf("chaos soak PASSED: %zu plans, %zu cross-K replays, 0 violations\n",
                plans, replays);
    return 0;
  }
  std::printf("chaos soak FAILED\n");
  return 1;
}
