// "Chord on demand" companion experiment (paper §4 and reference [9]): the
// same bootstrapping-service architecture instantiated for Chord's
// distance-based fingers instead of prefix tables. Reports the finger-table
// convergence curve side by side with the prefix-table protocol under
// identical conditions (same sizes, parameters, transport), quantifying the
// paper's remark that prefix tables are "a significantly different task to
// build and maintain". Each size (chord + prefix pair) is one replica,
// fanned across hardware threads.
#include <cstdio>
#include <memory>

#include "bench/bench_common.hpp"
#include "overlay/chord.hpp"
#include "sampling/newscast.hpp"

using namespace bsvc;
using namespace bsvc::bench;

namespace {

// Builds a Newscast-backed Chord bootstrap network (mirrors the harness the
// prefix protocol uses).
struct ChordNet {
  std::unique_ptr<Engine> engine;
  std::size_t n;
  SimTime epoch;

  ChordNet(std::size_t n, std::uint64_t seed, std::size_t warmup) : n(n) {
    engine = std::make_unique<Engine>(seed);
    IdGenerator ids{Rng(seed ^ 0x1D8AF066EF5E2D3Cull)};
    epoch = warmup * kDelta;
    for (std::size_t i = 0; i < n; ++i) engine->add_node(ids.next());
    for (Address a = 0; a < n; ++a) {
      auto newscast = std::make_unique<NewscastProtocol>(NewscastConfig{});
      auto* nc = newscast.get();
      DescriptorList seeds;
      for (int s = 0; s < 10; ++s) {
        const auto peer = static_cast<Address>(engine->rng().below(n));
        if (peer != a) seeds.push_back(engine->descriptor_of(peer));
      }
      nc->init_view(std::move(seeds));
      engine->attach(a, std::move(newscast));
      engine->attach(a, std::make_unique<ChordBootstrapProtocol>(
                            ChordConfig{}, nc, epoch + engine->rng().below(kDelta)));
      engine->start_node(a);
    }
    engine->run_until(epoch);
    engine->reset_traffic();
  }
};

struct SizeOutcome {
  std::vector<double> missing_per_cycle;
  int converged = -1;
  std::size_t cycles_run = 0;
  double mpnc = 0.0;
  std::uint64_t chord_events = 0;
  ExperimentResult prefix_result;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool full = full_tier(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto max_cycles = static_cast<std::size_t>(flags.get_int("max-cycles", 60));
  const std::size_t threads = threads_flag(flags);
  BenchReport report(flags, "chord_on_demand");
  const std::size_t shards = shards_flag(flags);
  apply_log_level_flag(flags);
  flags.finish();
  report.set_threads(threads);

  // The ladder's small sizes plus one headline size (halved off-tier: the
  // per-cycle oracle sweep is superlinear in N).
  std::vector<std::size_t> sizes{kSmokeSizes[0], kSmokeSizes[1]};
  sizes.push_back(full ? kFullSizes[0] : kSmokeSizes[2] / 2);

  std::printf("=== Chord on demand: finger-table bootstrap (c=20, cr=30) ===\n");

  const auto outcomes = parallel_map(sizes, threads, [&](std::size_t n, std::size_t) {
    SizeOutcome out;
    std::fprintf(stderr, "chord N=%zu...\n", n);
    ChordNet net(n, seed, /*warmup=*/10);
    const ChordOracle oracle(*net.engine, SlotRef<ChordBootstrapProtocol>::assume(1));
    for (std::size_t cycle = 0; cycle < max_cycles; ++cycle) {
      net.engine->run_until(net.epoch + (cycle + 1) * kDelta);
      const auto m = oracle.measure();
      out.missing_per_cycle.push_back(m.missing_finger_fraction());
      out.cycles_run = cycle + 1;
      if (m.fingers_converged()) {
        out.converged = static_cast<int>(cycle);
        break;
      }
    }
    out.mpnc = static_cast<double>(net.engine->traffic().messages_sent) /
               (static_cast<double>(n) * static_cast<double>(out.cycles_run));
    out.chord_events = net.engine->events_dispatched();

    // The prefix-table protocol under identical conditions.
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.shards = shards;
    cfg.max_cycles = max_cycles;
    std::fprintf(stderr, "prefix N=%zu...\n", n);
    out.prefix_result = run_experiment(cfg);
    return out;
  });

  Table summary({"N", "finger_cycles", "msgs/node/cycle", "vs_prefix_cycles"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const auto& out = outcomes[i];
    std::printf("# N=%zu: cycle  missing_finger_fraction\n", n);
    for (std::size_t cycle = 0; cycle < out.missing_per_cycle.size(); ++cycle) {
      std::printf("%3zu  %.9g\n", cycle, out.missing_per_cycle[cycle]);
    }
    std::printf("\n");
    summary.add_row({std::to_string(n), std::to_string(out.converged),
                     Table::num(out.mpnc, 3),
                     std::to_string(out.prefix_result.converged_cycle)});
    report.add_run("prefix N=" + std::to_string(n), out.prefix_result);
    report.add_events(out.chord_events);
    report.add_metric("finger_cycles_N" + std::to_string(n),
                      static_cast<double>(out.converged));
  }
  std::printf("%s\n", summary.render().c_str());
  std::printf("# both instantiations of the bootstrapping service converge in a\n"
              "# logarithmic number of cycles; the finger table's exact-successor\n"
              "# requirement gives a tail comparable to the deep prefix cells.\n");
  report.write();
  return 0;
}
