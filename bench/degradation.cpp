// Degradation sweep: steady-state KV goodput under i.i.d. transport loss of
// 0..30%, with the robustness layer off ("base") and on ("retry": adaptive
// RTT timeouts, bounded exponential-backoff retries, hedged gets, bootstrap
// exchange retries + suspicion accrual). The headline rows the baseline
// gates: at 20% loss the retry arm holds goodput near 1.0 while the base arm
// degrades with the loss rate — the quantitative case for the retry layer.
//
// Exports BENCH_degradation.json with per-arm goodput / latency / timeout
// rows plus the retry.*, hedge.* and rtt.* counter families, all pure
// functions of --seed and byte-identical across --shards K >= 1.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "workload/driver.hpp"

using namespace bsvc;
using namespace bsvc::bench;

namespace {

struct Arm {
  std::string label;   // e.g. "loss20_retry"
  double loss = 0.0;
  bool retries = false;
  WorkloadSummary wl;
  ExperimentResult result;
};

void run_arm(Arm& arm, std::size_t n, std::uint64_t seed, std::size_t shards) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.drop_probability = arm.loss;
  cfg.max_cycles = 40;
  cfg.stop_at_convergence = false;
  if (arm.retries) {
    cfg.bootstrap.evict_unresponsive = true;
    cfg.bootstrap.tombstone_ttl_cycles = 5;
    cfg.bootstrap.retry_exchanges = true;
    cfg.bootstrap.exchange_retry_budget = 2;
    cfg.bootstrap.adaptive_timeout = true;
    cfg.bootstrap.rtt_max_timeout = 2 * kDelta;
    cfg.bootstrap.suspicion_threshold = 3;
  }

  WorkloadParams wp;
  if (arm.retries) {
    wp.retry = true;
    // A 384-node round trip is ~4-6 message legs, so at 20% i.i.d. loss a
    // single attempt only succeeds ~35-50% of the time; twelve attempts push
    // the residual all-attempts-lost probability below 1/384. The gentle
    // backoff is deliberate: the simulated links have no congestion to shed,
    // so steeper factors only stretch the drain tail without helping.
    wp.retry_budget = 12;
    wp.retry_backoff = 1.2;
    wp.retry_jitter = 0.1;
    wp.adaptive_timeout = true;
    wp.rtt_min_timeout = 64;
    wp.rtt_max_timeout = 2 * kDelta;
    wp.hedge_delay = kDelta;
  }
  WorkloadStack stack(wp);
  cfg.node_extension = stack.node_extension();
  BootstrapExperiment exp(cfg);
  stack.log().bind_registry(exp.engine().metrics());
  if (arm.retries) stack.log().bind_retry_registry(exp.engine().metrics());

  const SimTime epoch = cfg.warmup_cycles * kDelta;
  DriverConfig dc;
  dc.batch = 8;
  dc.period = kDelta / 4;
  dc.put_fraction = 0.5;
  dc.value_bytes = 64;
  dc.seed = seed ^ 0xDE6BADull;
  // STEADY issue window: the overlay has converged (even under loss) well
  // before cycle 14 at these sizes; the window closes 14 cycles before the
  // run ends so the longest backed-off retry chain resolves in-run.
  dc.from = epoch + 14 * kDelta;
  dc.to = epoch + 26 * kDelta;
  WorkloadDriver driver(stack, dc);
  driver.start(exp.engine());

  arm.result = exp.run();
  // Quiesce past max_cycles: the deepest retry chain (budget 12, backoff 1.2,
  // timeouts backed off up to 2 delta per attempt) geometrically stretches to
  // ~80 delta past the last issue at 26 delta, so drain until every chain
  // has either answered or burned its whole budget before summarizing.
  exp.engine().run_until(epoch + (cfg.max_cycles + 90) * kDelta);
  arm.wl = stack.log().summary();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const bool full = !smoke && full_tier(flags);
  const auto n = static_cast<std::size_t>(
      flags.get_int("n", static_cast<std::int64_t>(full ? 1024 : 384)));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  (void)threads_flag(flags);  // accepted for run_suite.sh flag uniformity
  const std::size_t shards = shards_flag(flags);
  BenchReport report(flags, "degradation");
  apply_log_level_flag(flags);
  flags.finish();

  const std::vector<int> loss_pcts = smoke ? std::vector<int>{0, 20}
                                           : std::vector<int>{0, 5, 10, 20, 30};
  std::vector<Arm> arms;
  for (const int pct : loss_pcts) {
    for (const bool retries : {false, true}) {
      Arm arm;
      arm.label = "loss" + std::to_string(pct) + (retries ? "_retry" : "_base");
      arm.loss = pct / 100.0;
      arm.retries = retries;
      arms.push_back(std::move(arm));
    }
  }

  std::printf("=== Degradation sweep: %zu nodes, seed %llu ===\n", n,
              static_cast<unsigned long long>(seed));
  Table table({"arm", "issued", "answered", "goodput", "timeouts", "retries",
               "hedge_win", "rtt_p50", "rtt_p95", "rtt_p99"});
  for (Arm& arm : arms) {
    std::fprintf(stderr, "running %s...\n", arm.label.c_str());
    run_arm(arm, n, seed, shards);
    const WorkloadSummary& w = arm.wl;
    table.add_row({arm.label, std::to_string(w.issued()), std::to_string(w.answered()),
                   Table::num(w.goodput(), 4), std::to_string(w.timeouts),
                   std::to_string(w.kv_retries), std::to_string(w.hedge_wins),
                   Table::num(w.rtt_p50, 1), Table::num(w.rtt_p95, 1),
                   Table::num(w.rtt_p99, 1)});

    report.add_run(arm.label, arm.result);
    report.add_metric(arm.label + " goodput", w.goodput());
    report.add_metric(arm.label + " timeouts", static_cast<double>(w.timeouts));
    report.add_metric(arm.label + " rtt_p50", w.rtt_p50);
    report.add_metric(arm.label + " rtt_p95", w.rtt_p95);
    report.add_metric(arm.label + " rtt_p99", w.rtt_p99);
    report.add_metric(arm.label + " retry.kv", static_cast<double>(w.kv_retries));
    report.add_metric(arm.label + " hedge.sent", static_cast<double>(w.hedges_sent));
    report.add_metric(arm.label + " hedge.win", static_cast<double>(w.hedge_wins));
    report.add_metric(arm.label + " rtt.samples", static_cast<double>(w.rtt_samples));
  }
  std::printf("%s\n", table.render().c_str());
  report.write();
  return 0;
}
