// Figure 3: convergence of leaf sets (top) and prefix tables (bottom) in the
// absence of failures, for three network sizes. Reproduces both panels: the
// per-cycle proportion of missing entries per independent experiment, ending
// when the tables are perfect at all nodes.
//
// Paper settings: 64-bit IDs, b=4, k=3, c=20, cr=30; N = 2^14, 2^16, 2^18
// with 50/10/4 repetitions. Default run uses the fast tier (2^10..2^14);
// pass --full (or set REPRO_FULL=1) for the paper's sizes. Replicas fan out
// across hardware threads (--threads N; 1 = sequential).
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Tier tier = pick_tier(flags);
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto max_cycles = static_cast<std::size_t>(flags.get_int("max-cycles", 60));
  const std::size_t threads = threads_flag(flags);
  BenchReport report(flags, "fig3_no_failures");
  apply_log_level_flag(flags);

  std::printf("=== Figure 3: no failures (b=4, k=3, c=20, cr=30) ===\n");
  std::vector<ReplicaSpec> specs;
  for (std::size_t s = 0; s < tier.sizes.size(); ++s) {
    for (std::size_t rep = 0; rep < tier.repeats[s]; ++rep) {
      ReplicaSpec spec;
      spec.cfg.n = tier.sizes[s];
      spec.cfg.seed = replica_seed(base_seed, specs.size());
      spec.cfg.max_cycles = max_cycles;
      spec.label = "N=" + std::to_string(spec.cfg.n) + " rep=" + std::to_string(rep);
      specs.push_back(std::move(spec));
    }
  }
  apply_obs_flags(flags, specs);
  flags.finish();
  report.set_threads(threads);
  const auto runs = run_replicas(specs, threads);
  print_runs("Figure 3", runs);

  // The paper's headline scaling claim: a four-fold increase in N costs an
  // additive constant in convergence time (logarithmic growth).
  std::printf("# scaling check: cycles-to-perfect per size (first rep)\n");
  for (std::size_t s = 0; s < tier.sizes.size(); ++s) {
    for (const auto& run : runs) {
      if (run.label == "N=" + std::to_string(tier.sizes[s]) + " rep=0") {
        std::printf("N=%-8zu log2(N)=%4.1f  converged at cycle %d\n", tier.sizes[s],
                    std::log2(static_cast<double>(tier.sizes[s])),
                    run.result.converged_cycle);
      }
    }
  }
  for (const auto& run : runs) report.add_run(run.label, run.result);
  report.write();
  return 0;
}
