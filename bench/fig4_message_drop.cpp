// Figure 4: the same two convergence panels with 20% of all transmitted
// messages dropped uniformly at random. Because the protocol works in
// message–answer pairs, a dropped request also suppresses its answer — the
// paper's "elementary calculation" puts the effective information loss at
// 28%. Expected outcome: identical curve shapes, proportionally slower.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Tier tier = pick_tier(flags);
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double drop = flags.get_double("drop", 0.2);
  const auto max_cycles = static_cast<std::size_t>(flags.get_int("max-cycles", 100));
  const std::size_t threads = threads_flag(flags);
  BenchReport report(flags, "fig4_message_drop");
  apply_log_level_flag(flags);

  std::printf("=== Figure 4: %.0f%% uniform message drop ===\n", drop * 100.0);
  std::vector<ReplicaSpec> specs;
  for (std::size_t s = 0; s < tier.sizes.size(); ++s) {
    for (std::size_t rep = 0; rep < tier.repeats[s]; ++rep) {
      ReplicaSpec spec;
      spec.cfg.n = tier.sizes[s];
      spec.cfg.seed = replica_seed(base_seed, specs.size());
      spec.cfg.drop_probability = drop;
      spec.cfg.max_cycles = max_cycles;
      spec.label = "N=" + std::to_string(spec.cfg.n) + " rep=" + std::to_string(rep);
      specs.push_back(std::move(spec));
    }
  }
  apply_obs_flags(flags, specs);
  flags.finish();
  report.set_threads(threads);
  const auto runs = run_replicas(specs, threads);
  print_runs("Figure 4", runs);
  for (const auto& run : runs) report.add_run(run.label, run.result);

  // Verify the 28% effective-loss arithmetic from the delivered/sent ratio
  // of request-answer pairs.
  {
    ExperimentConfig cfg;
    cfg.n = tier.sizes.front();
    cfg.seed = base_seed + 99;
    cfg.drop_probability = drop;
    cfg.max_cycles = 20;
    cfg.stop_at_convergence = false;
    BootstrapExperiment exp(cfg);
    const auto r = exp.run();
    const auto& s = r.bootstrap_stats;
    // Of the 2 messages each exchange intends, the request arrives w.p.
    // (1-drop) and the answer w.p. (1-drop)^2 — so the expected effective
    // loss is 1 - ((1-d) + (1-d)^2)/2 = 28% at d = 0.2. Measured: arrivals
    // of either kind over twice the requests initiated.
    const double effective_loss = 1.0 - static_cast<double>(s.messages_received) /
                                            (2.0 * static_cast<double>(s.requests_sent));
    const double expected = 1.0 - ((1.0 - drop) + (1.0 - drop) * (1.0 - drop)) / 2.0;
    std::printf("# effective information loss: measured %.3f, expected %.3f "
                "(paper: 0.28 at drop 0.2)\n",
                effective_loss, expected);
    report.add_run("effective-loss-probe", r);
    report.add_metric("effective_loss_measured", effective_loss);
    report.add_metric("effective_loss_expected", expected);
  }
  report.write();
  return 0;
}
