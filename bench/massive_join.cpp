// §1 motivating scenario: "massive joins to a large overlay network are not
// supported by known protocols very well".
//
// A converged overlay of N0 nodes is hit by N0 new nodes arriving within a
// single cycle (the "allocation of a pool of resources" event). Two ways to
// absorb them:
//   gossip   — the architecture's answer: joiners simply run the
//              bootstrapping service; the running gossip re-converges the
//              doubled membership in a logarithmic number of cycles.
//   seq-join — the conventional answer: each newcomer performs a serialized
//              Pastry join through the existing network (the join must
//              complete before the next starts to keep tables consistent).
// Reported: time to perfect/near-perfect tables over the doubled
// membership, and message cost.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "overlay/join_protocol.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n0 =
      static_cast<std::size_t>(flags.get_int("n", static_cast<std::int64_t>(default_n(flags, 1, 1))));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // Accepted for run_suite.sh flag uniformity; this bench's two phases are
  // inherently sequential, so the value is unused.
  (void)threads_flag(flags);
  BenchReport report(flags, "massive_join");
  const std::size_t shards = shards_flag(flags);
  apply_log_level_flag(flags);
  flags.finish();

  std::printf("=== Massive join: %zu nodes flood a converged %zu-node overlay ===\n", n0, n0);

  // --- gossip absorption ---------------------------------------------------
  {
    ExperimentConfig cfg;
    cfg.n = n0;
    cfg.seed = seed;
    cfg.shards = shards;
    cfg.max_cycles = 60;
    BootstrapExperiment exp(cfg);
    const auto initial = exp.run();
    std::printf("initial overlay perfect at cycle %d\n", initial.converged_cycle);
    report.add_run("initial N=" + std::to_string(n0), initial);

    Engine& engine = exp.engine();
    engine.reset_traffic();
    const SimTime join_epoch = engine.now();
    for (std::size_t i = 0; i < n0; ++i) {
      const Address addr = exp.make_node();
      engine.start_node(addr, engine.rng().below(kDelta));  // all within one cycle
    }

    int absorbed = -1;
    for (int cycle = 0; cycle < 60; ++cycle) {
      engine.run_until(join_epoch + (static_cast<SimTime>(cycle) + 1) * kDelta);
      const ConvergenceOracle oracle(engine, cfg.bootstrap, exp.bootstrap_slot());
      const auto m = oracle.measure();
      if (cycle % 4 == 0 || m.converged()) {
        std::printf("  +%2d cycles: missing leaf %.3e, prefix %.3e\n", cycle,
                    m.missing_leaf_fraction(), m.missing_prefix_fraction());
      }
      if (m.converged()) {
        absorbed = cycle;
        break;
      }
    }
    const auto& t = engine.traffic();
    std::printf("gossip: doubled membership perfect %d cycles after the flood; "
                "%.1f msgs/node, %.1f kB/node\n\n",
                absorbed, static_cast<double>(t.messages_sent) / static_cast<double>(2 * n0),
                static_cast<double>(t.bytes_sent) / static_cast<double>(2 * n0) / 1024.0);
    report.add_events(engine.events_dispatched() - initial.events_dispatched);
    report.add_metric("gossip_absorbed_cycles", static_cast<double>(absorbed));
    report.add_metric("gossip_msgs_per_node",
                      static_cast<double>(t.messages_sent) / static_cast<double>(2 * n0));
  }

  // --- serialized conventional joins --------------------------------------
  {
    SequentialJoinNetwork net(BootstrapConfig{}, seed);
    net.grow(n0);  // the pre-existing network
    const auto base = net.costs();
    net.grow(n0);  // the massive join, serialized
    const auto after = net.costs();
    auto quality = net.measure_quality(500);
    std::printf("seq-join: %llu messages, makespan %.0f cycle-equivalents "
                "(%.1f msgs/node); final missing leaf %.3e, prefix %.3e, lookups %.3f\n",
                static_cast<unsigned long long>(after.messages - base.messages),
                static_cast<double>(after.critical_time - base.critical_time) /
                    static_cast<double>(kDelta),
                static_cast<double>(after.messages - base.messages) /
                    static_cast<double>(2 * n0),
                quality.missing_leaf_fraction, quality.missing_prefix_fraction,
                quality.lookup_success_rate);
    std::printf("# the serialized makespan grows linearly with the burst size, the gossip\n"
                "# absorption logarithmically — the motivating gap of the paper.\n");
    report.add_metric("seqjoin_messages",
                      static_cast<double>(after.messages - base.messages));
  }
  report.write();
  return 0;
}
