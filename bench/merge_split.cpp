// §2 scenarios: the architecture's reason to exist — pools of resources that
// merge, split, and recover from catastrophe "almost like a liquid
// substance".
//
// Scenario MERGE: two isolated pools (network partition from t=0) each
// bootstrap their own overlay; at a configured cycle the partition heals
// (the organizational merge) and the still-running gossip absorbs the other
// pool. Reported: per-pool convergence before the merge, global convergence
// after it.
//
// Scenario RECOVER: one pool converges, then 70% of the nodes fail
// catastrophically. Two cycles later (giving Newscast time to self-heal)
// the survivors re-run the bootstrap from scratch via the restart hook.
// Reported: cycles from restart to perfect tables among survivors.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "sim/scenario.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", static_cast<std::int64_t>(default_n(flags))));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // Accepted for run_suite.sh flag uniformity; the three scenarios share
  // engine state stagewise and run sequentially.
  (void)threads_flag(flags);
  BenchReport report(flags, "merge_split");
  const std::size_t shards = shards_flag(flags);
  apply_log_level_flag(flags);
  flags.finish();

  // ---------------- MERGE -------------------------------------------------
  std::printf("=== Merge: two pools of %zu nodes each ===\n", n / 2);
  {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.shards = shards;
    cfg.max_cycles = 60;
    cfg.stop_at_convergence = false;
    // Two genuinely independent pools from t=0 (separate Newscast seeding
    // and a link filter between the halves).
    cfg.initial_groups.resize(n);
    for (Address a = 0; a < n; ++a) cfg.initial_groups[a] = a < n / 2 ? 0 : 1;
    BootstrapExperiment exp(cfg);
    Engine& engine = exp.engine();

    const std::size_t heal_cycle = 30;
    const SimTime heal_time =
        (cfg.warmup_cycles + heal_cycle) * cfg.bootstrap.delta;
    const auto newscast_slot = exp.newscast_slot();
    engine.schedule_call(heal_time, [n, newscast_slot](Engine& e) {
      heal_partition(e);
      // The organizational merge: a handful of pool-A nodes are handed
      // contacts in pool B; Newscast spreads them epidemically.
      for (int i = 0; i < 10; ++i) {
        const auto a = static_cast<Address>(e.rng().below(n / 2));
        const auto b = static_cast<Address>(n / 2 + e.rng().below(n / 2));
        newscast_slot.of(e, a).add_contact(e.descriptor_of(b), e.now());
      }
    });

    // Per-pool oracles for the pre-merge phase.
    std::vector<NodeDescriptor> pool_a, pool_b;
    for (Address a = 0; a < n; ++a) {
      (a < n / 2 ? pool_a : pool_b).push_back(engine.descriptor_of(a));
    }
    const ConvergenceOracle oracle_a(engine, pool_a, cfg.bootstrap, exp.bootstrap_slot());
    const ConvergenceOracle oracle_b(engine, pool_b, cfg.bootstrap, exp.bootstrap_slot());

    int pool_a_cycle = -1, pool_b_cycle = -1;
    std::printf("# columns: cycle  poolA_missing_leaf  poolB_missing_leaf  "
                "global_missing_leaf  global_missing_prefix\n");
    const auto result = exp.run([&](std::size_t cycle, const ConvergenceMetrics& global) {
      const auto ma = oracle_a.measure();
      const auto mb = oracle_b.measure();
      if (pool_a_cycle < 0 && ma.converged()) pool_a_cycle = static_cast<int>(cycle);
      if (pool_b_cycle < 0 && mb.converged()) pool_b_cycle = static_cast<int>(cycle);
      std::printf("%3zu  %.6g  %.6g  %.6g  %.6g\n", cycle, ma.missing_leaf_fraction(),
                  mb.missing_leaf_fraction(), global.missing_leaf_fraction(),
                  global.missing_prefix_fraction());
    });
    std::printf("# pool A perfect at cycle %d, pool B at %d (isolated bootstraps)\n",
                pool_a_cycle, pool_b_cycle);
    std::printf("# partition healed at cycle %zu; merged network perfect at cycle %d "
                "(merge took %d cycles)\n\n",
                heal_cycle, result.converged_cycle,
                result.converged_cycle - static_cast<int>(heal_cycle));
    report.add_run("merge", result);
    report.add_metric("merge_cycles",
                      static_cast<double>(result.converged_cycle - static_cast<int>(heal_cycle)));
  }

  // ---------------- MERGE, re-bootstrap variant ---------------------------
  // Same setup, but 3 cycles after the heal the administrator triggers a
  // fresh bootstrap at every node — the paper's "build all other overlays
  // on demand" mode. Measured: converges in about the same number of
  // cycles as the passive absorption above — the merge is bounded by how
  // fast Newscast interleaves the pools' samples, not by stale table
  // state, so both modes are equally viable.
  std::printf("=== Merge with on-demand re-bootstrap ===\n");
  {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.shards = shards;
    cfg.max_cycles = 60;
    cfg.stop_at_convergence = false;
    cfg.initial_groups.resize(n);
    for (Address a = 0; a < n; ++a) cfg.initial_groups[a] = a < n / 2 ? 0 : 1;
    BootstrapExperiment exp(cfg);
    Engine& engine = exp.engine();

    const std::size_t heal_cycle = 30;
    const std::size_t restart_cycle = heal_cycle + 3;
    const auto newscast_slot = exp.newscast_slot();
    engine.schedule_call((cfg.warmup_cycles + heal_cycle) * cfg.bootstrap.delta,
                         [n, newscast_slot](Engine& e) {
                           heal_partition(e);
                           for (int i = 0; i < 10; ++i) {
                             const auto a = static_cast<Address>(e.rng().below(n / 2));
                             const auto b = static_cast<Address>(n / 2 + e.rng().below(n / 2));
                             newscast_slot.of(e, a).add_contact(e.descriptor_of(b),
                                                               e.now());
                           }
                         });
    engine.schedule_call((cfg.warmup_cycles + restart_cycle) * cfg.bootstrap.delta,
                         [&exp](Engine& e) {
                           for (const Address a : e.alive_addresses()) {
                             e.schedule_timer(a, exp.bootstrap_slot(), e.rng().below(kDelta),
                                              BootstrapProtocol::kRestartTimer);
                           }
                         });
    const auto result = exp.run();
    std::printf("# healed at cycle %zu, re-bootstrap at %zu; union perfect at cycle %d "
                "(%d cycles after the restart)\n\n",
                heal_cycle, restart_cycle, result.converged_cycle,
                result.converged_cycle - static_cast<int>(restart_cycle));
    report.add_run("merge-rebootstrap", result);
  }

  // ---------------- RECOVER ----------------------------------------------
  std::printf("=== Catastrophic failure: 70%% of %zu nodes fail, survivors re-bootstrap ===\n",
              n);
  {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed + 1;
    cfg.shards = shards;
    cfg.max_cycles = 110;
    cfg.stop_at_convergence = false;
    // Liveness maintenance (extension, DESIGN.md): without eviction, dead
    // descriptors surviving in Newscast views at restart time re-enter the
    // cleared tables and block the slots of their alive successors forever.
    cfg.bootstrap.evict_unresponsive = true;
    cfg.bootstrap.tombstone_ttl_cycles = 60;
    BootstrapExperiment exp(cfg);
    Engine& engine = exp.engine();

    const std::size_t kill_cycle = 25;
    const std::size_t restart_cycle = kill_cycle + 10;  // Newscast quarantine first
    const SimTime kill_time = (cfg.warmup_cycles + kill_cycle) * cfg.bootstrap.delta;
    schedule_catastrophe(engine, kill_time, 0.7);
    engine.schedule_call(
        (cfg.warmup_cycles + restart_cycle) * cfg.bootstrap.delta, [&exp](Engine& e) {
          for (const Address a : e.alive_addresses()) {
            e.schedule_timer(a, exp.bootstrap_slot(), e.rng().below(kDelta),
                             BootstrapProtocol::kRestartTimer);
          }
        });

    std::printf("# columns: cycle  alive  missing_leaf  missing_prefix (survivor oracle "
                "after the failure)\n");
    // Dead descriptors still circulating right after the kill can grab table
    // slots, so recovery is reported at quality thresholds as well as at
    // bit-perfect (-1 = not reached within the run).
    int recovered_1e2 = -1, recovered_1e3 = -1, recovered_perfect = -1;
    std::optional<ConvergenceOracle> oracle;
    oracle.emplace(engine, cfg.bootstrap, exp.bootstrap_slot());
    for (std::size_t cycle = 0; cycle < cfg.max_cycles; ++cycle) {
      engine.run_until((cfg.warmup_cycles + cycle + 1) * cfg.bootstrap.delta);
      if (cycle == kill_cycle) {
        oracle.emplace(engine, cfg.bootstrap, exp.bootstrap_slot());  // survivors only
      }
      const auto m = oracle->measure(/*check_liveness=*/true);
      std::printf("%3zu  %zu  %.6g  %.6g\n", cycle, engine.alive_count(),
                  m.missing_leaf_fraction(), m.missing_prefix_fraction());
      if (cycle > restart_cycle) {
        const double worst =
            std::max(m.missing_leaf_fraction(), m.missing_prefix_fraction());
        if (recovered_1e2 < 0 && worst <= 1e-2) recovered_1e2 = static_cast<int>(cycle);
        if (recovered_1e3 < 0 && worst <= 1e-3) recovered_1e3 = static_cast<int>(cycle);
        if (recovered_perfect < 0 && m.converged()) {
          recovered_perfect = static_cast<int>(cycle);
          break;
        }
      }
    }
    const auto final_m = oracle->measure(true);
    std::printf("# failure at cycle %zu, restart at %zu; survivors reach 99%% at cycle %d, "
                "99.9%% at %d, perfect at %d; final missing leaf %.2e prefix %.2e\n",
                kill_cycle, restart_cycle, recovered_1e2, recovered_1e3, recovered_perfect,
                final_m.missing_leaf_fraction(), final_m.missing_prefix_fraction());
    report.add_events(engine.events_dispatched());
    report.add_metric("recover_perfect_cycle", static_cast<double>(recovered_perfect));
  }
  report.write();
  return 0;
}
