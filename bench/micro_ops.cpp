// Data-structure level microbenchmarks (google-benchmark): the per-message
// costs that dominate a simulated cycle — UPDATELEAFSET, UPDATEPREFIXTABLE,
// CREATEMESSAGE — plus the convergence oracle build that the experiment
// harness amortizes across cycles, and the engine event-queue hot path
// (legacy fat-event binary heap vs the slim two-tier queue).
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <queue>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/leaf_set.hpp"
#include "core/perfect_tables.hpp"
#include "core/prefix_table.hpp"
#include "id/id_generator.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/payload.hpp"
#include "tests/test_util.hpp"

namespace bsvc {
namespace {

std::vector<NodeDescriptor> members(std::size_t n) { return test::random_descriptors(n, 42); }

void BM_UpdateLeafSet(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  const auto pool = members(4096);
  Rng rng(7);
  LeafSet ls(pool[0].id, 20);
  // Pre-warm with one batch so updates exercise the merge path.
  ls.update(std::span(pool.data() + 1, 20));
  std::vector<NodeDescriptor> batch(batch_size);
  for (auto _ : state) {
    for (auto& d : batch) d = pool[1 + rng.below(pool.size() - 1)];
    ls.update(batch);
    benchmark::DoNotOptimize(ls.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_UpdateLeafSet)->Arg(20)->Arg(60)->Arg(120);

void BM_LeafScanSoA(benchmark::State& state) {
  // The hot ring-distance scan over a leaf set's contiguous NodeId lane (the
  // arena-backed SoA layout): 8 bytes per element, no interleaved addresses.
  const auto n = static_cast<std::size_t>(state.range(0));
  DescriptorArena arena;
  const auto block = arena.allocate(static_cast<std::uint32_t>(n));
  const auto pool = members(n + 1);
  const NodeId pivot = pool[0].id;
  for (std::size_t i = 0; i < n; ++i) {
    arena.ids(block)[i] = pool[i + 1].id;
    arena.addrs(block)[i] = pool[i + 1].addr;
  }
  for (auto _ : state) {
    const NodeId* ids = arena.ids(block);
    NodeId best = ~NodeId{0};
    for (std::size_t i = 0; i < n; ++i) {
      best = std::min(best, successor_distance(pivot, ids[i]));
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LeafScanSoA)->Arg(20)->Arg(256)->Arg(4096);

void BM_LeafScanAoS(benchmark::State& state) {
  // The same scan over the seed layout: an array of 16-byte padded
  // NodeDescriptor structs, so half of every cache line is address bytes the
  // scan never reads. The delta against BM_LeafScanSoA is the layout's win.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pool = members(n + 1);
  const NodeId pivot = pool[0].id;
  const std::vector<NodeDescriptor> entries(pool.begin() + 1, pool.end());
  for (auto _ : state) {
    NodeId best = ~NodeId{0};
    for (const auto& d : entries) {
      best = std::min(best, successor_distance(pivot, d.id));
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LeafScanAoS)->Arg(20)->Arg(256)->Arg(4096);

void BM_ArenaAllocVsHeap(benchmark::State& state) {
  // A node's table-construction storage: leaf block (c=20) plus prefix block
  // (first doubling tier). Arg(0): bump allocation out of a warm
  // DescriptorArena — two pointer bumps, no allocator. Arg(1): the seed
  // path's cost, two heap vectors per construction.
  const bool heap = state.range(0) != 0;
  DescriptorArena arena;
  arena.allocate(20 + 16);  // warm the slabs
  arena.reset();
  for (auto _ : state) {
    if (heap) {
      std::vector<NodeId> ids(20 + 16);
      std::vector<Address> addrs(20 + 16);
      benchmark::DoNotOptimize(ids.data());
      benchmark::DoNotOptimize(addrs.data());
    } else {
      const auto leaf = arena.allocate(20);
      const auto prefix = arena.allocate(16);
      benchmark::DoNotOptimize(arena.ids(leaf));
      benchmark::DoNotOptimize(arena.ids(prefix));
      arena.reset();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ArenaAllocVsHeap)->Arg(0)->Arg(1);

void BM_UpdatePrefixTable(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  const auto pool = members(4096);
  Rng rng(8);
  PrefixTable table(pool[0].id, DigitConfig{4}, 3);
  std::vector<NodeDescriptor> batch(batch_size);
  for (auto _ : state) {
    state.PauseTiming();
    PrefixTable fresh(pool[0].id, DigitConfig{4}, 3);
    for (auto& d : batch) d = pool[1 + rng.below(pool.size() - 1)];
    state.ResumeTiming();
    DescriptorList list(batch.begin(), batch.end());
    benchmark::DoNotOptimize(fresh.insert_all(list));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_UpdatePrefixTable)->Arg(60)->Arg(200);

void BM_PrefixTableInsertSaturated(benchmark::State& state) {
  // Inserts into a saturated table: the common steady-state case where most
  // inserts are rejected after the cell-range binary search.
  const auto pool = members(8192);
  PrefixTable table(pool[0].id, DigitConfig{4}, 3);
  DescriptorList all(pool.begin() + 1, pool.end());
  table.insert_all(all);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.insert(pool[1 + rng.below(pool.size() - 1)]));
  }
}
BENCHMARK(BM_PrefixTableInsertSaturated);

void BM_RingSortByDistance(benchmark::State& state) {
  // The dominant kernel of CREATEMESSAGE: ordering the candidate union by
  // directed distance around a pivot.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pool = members(n + 1);
  std::vector<NodeDescriptor> scratch(pool.begin() + 1, pool.end());
  const NodeId pivot = pool[0].id;
  for (auto _ : state) {
    std::vector<NodeDescriptor> copy = scratch;
    std::sort(copy.begin(), copy.end(), [pivot](const NodeDescriptor& a, const NodeDescriptor& b) {
      return successor_distance(pivot, a.id) < successor_distance(pivot, b.id);
    });
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RingSortByDistance)->Arg(64)->Arg(256)->Arg(1024);

void BM_PerfectTablesBuild(benchmark::State& state) {
  // The oracle's trie walk over the sorted ID set (built once per membership
  // epoch in experiments).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pool = members(n);
  BootstrapConfig cfg;
  for (auto _ : state) {
    PerfectTables truth(pool, cfg);
    benchmark::DoNotOptimize(truth.perfect_prefix_sum());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PerfectTablesBuild)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_CommonPrefixDigits(benchmark::State& state) {
  Rng rng(10);
  const DigitConfig cfg{4};
  NodeId x = rng.next_u64();
  for (auto _ : state) {
    const NodeId y = rng.next_u64();
    benchmark::DoNotOptimize(common_prefix_digits(x, y, cfg));
    x ^= y;
  }
}
BENCHMARK(BM_CommonPrefixDigits);

void BM_IdGeneration(benchmark::State& state) {
  IdGenerator gen{Rng(11)};
  for (auto _ : state) benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_IdGeneration);

// ---------------------------------------------------------------------------
// Engine event-queue hot path. The workload models a simulated cycle: a live
// set of `range(0)` pending events, each pop schedules a successor a random
// in-cycle delay ahead (so the queue stays at its steady-state size, as it
// does mid-simulation).

/// The engine's pre-overhaul event record: 80-byte node with an owning
/// payload pointer and a std::function, ordered through a binary heap.
/// Reimplemented here as the microbenchmark baseline.
struct FatEvent {
  SimTime time = 0;
  std::uint64_t seq = 0;
  int kind = 0;
  Address addr = kNullAddress;
  Address from = kNullAddress;
  ProtocolSlot slot = 0;
  std::unique_ptr<Payload> payload;
  std::function<void(Engine&)> fn;
  std::uint64_t aux = 0;
};

struct FatEventOrder {
  bool operator()(const FatEvent& a, const FatEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

void BM_EventQueueFatHeap(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  std::priority_queue<FatEvent, std::vector<FatEvent>, FatEventOrder> heap;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < live; ++i) {
    FatEvent ev;
    ev.time = rng.below(kDelta);
    ev.seq = seq++;
    heap.push(std::move(ev));
  }
  for (auto _ : state) {
    // priority_queue::top() is const&; the const_cast move-out mirrors what
    // the old engine did to extract the owning members.
    FatEvent ev = std::move(const_cast<FatEvent&>(heap.top()));
    heap.pop();
    FatEvent next;
    next.time = ev.time + 1 + rng.below(kDelta);
    next.seq = seq++;
    heap.push(std::move(next));
    benchmark::DoNotOptimize(ev.time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueFatHeap)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EventQueueTwoTier(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  TwoTierQueue queue;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < live; ++i) {
    SlimEvent ev{};
    ev.time = rng.below(kDelta);
    ev.seq = seq++;
    queue.push(ev);
  }
  for (auto _ : state) {
    SlimEvent ev{};
    queue.pop_if_at_most(~SimTime{0}, ev);
    SlimEvent next{};
    next.time = ev.time + 1 + rng.below(kDelta);
    next.seq = seq++;
    queue.push(next);
    benchmark::DoNotOptimize(ev.time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueTwoTier)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

struct BenchPayload final : Payload {
  std::size_t wire_bytes() const override { return 64; }
  const char* type_name() const override { return "BenchPayload"; }
};

void BM_PayloadPoolStoreTake(benchmark::State& state) {
  // The send path: the payload's shared ref parks in the slot pool while its
  // slim event is queued, then is taken back at dispatch.
  SlotPool<PayloadRef> pool;
  for (auto _ : state) {
    const std::uint32_t slot = pool.store(make_payload<BenchPayload>());
    auto payload = pool.take(slot);
    benchmark::DoNotOptimize(payload.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PayloadPoolStoreTake);

void BM_PayloadRefShare(benchmark::State& state) {
  // What fault-layer duplication and multi-delivery now cost: a refcount
  // bump, no heap traffic. Compare BM_PayloadDeepCopyBaseline — the price
  // the old clone()-based duplication paid per copy.
  const PayloadRef original = make_payload<BenchPayload>();
  for (auto _ : state) {
    PayloadRef copy = original;  // NOLINT(performance-unnecessary-copy-initialization)
    benchmark::DoNotOptimize(copy.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PayloadRefShare);

void BM_PayloadDeepCopyBaseline(benchmark::State& state) {
  const BenchPayload original;
  for (auto _ : state) {
    auto copy = std::make_unique<BenchPayload>(original);
    benchmark::DoNotOptimize(copy.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PayloadDeepCopyBaseline);

void BM_CreateMessageSteadyState(benchmark::State& state) {
  // CREATEMESSAGE on a converged node: one message allocation plus one
  // reserve of its flat entry buffer. Before the flat-buffer refactor this
  // path built ~6 intermediate vectors per call (union, ring copies, per-
  // cell candidate lists, two message parts).
  ExperimentConfig cfg;
  cfg.n = 1 << 10;
  cfg.seed = 99;
  cfg.max_cycles = 60;
  BootstrapExperiment exp(cfg);
  exp.run();
  auto& proto = exp.bootstrap_slot().of(exp.engine(), 0);
  const NodeId peer = exp.engine().id_of(1);
  for (auto _ : state) {
    auto msg = proto.create_message(peer, true);
    benchmark::DoNotOptimize(msg.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CreateMessageSteadyState);

// Full engine send→dispatch round trip, quantifying the observability hook
// overhead (docs/observability.md quotes these numbers). Arg(0): null trace
// sink — the production default, where every hook is one pointer test.
// Arg(1): a minimal counting sink installed, paying the virtual record()
// call per hook.
struct CountingTraceSink final : obs::TraceSink {
  std::uint64_t records = 0;
  void record(const obs::TraceRecord&) override { ++records; }
};

struct SinkProtocol final : Protocol {};

void BM_EngineSendDispatch(benchmark::State& state) {
  Engine engine(13);
  const Address a = engine.add_node(1);
  const Address b = engine.add_node(2);
  engine.attach(a, std::make_unique<SinkProtocol>());
  engine.attach(b, std::make_unique<SinkProtocol>());
  engine.start_node(a);
  engine.start_node(b);
  engine.run_all();
  CountingTraceSink sink;
  if (state.range(0) != 0) engine.set_trace_sink(&sink);
  for (auto _ : state) {
    engine.send_message(a, b, 0, std::make_unique<BenchPayload>());
    engine.run_all();
    benchmark::DoNotOptimize(engine.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineSendDispatch)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Sharded-engine primitives (docs/architecture.md#sharded-execution): the
// per-window costs the conservative time window must amortize.

void BM_WindowCrewRound(benchmark::State& state) {
  // One empty window round: wake the K-1 workers, run a no-op lane each,
  // barrier back to the coordinator. Arg(1) is the inline (no-thread) case.
  // A window is profitable when the events it batches outweigh this floor.
  WindowCrew crew(static_cast<std::size_t>(state.range(0)));
  const std::function<void(std::size_t)> nop = [](std::size_t) {};
  for (auto _ : state) crew.run(nop);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WindowCrewRound)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CrossShardMailbox(benchmark::State& state) {
  // The cross-shard message hand-off, isolated: a source shard buffers
  // `range(0)` sends into its mailbox vector, then the barrier drain moves
  // each into the destination shard's queue with the payload parked in the
  // destination pool — exactly the engine's window phase 2.
  struct MailboxEntry {
    SlimEvent ev;
    PayloadRef payload;
  };
  const auto batch = static_cast<std::size_t>(state.range(0));
  TwoTierQueue queue;
  queue.set_keyed_ordering(true);
  SlotPool<PayloadRef> pool;
  std::vector<MailboxEntry> mailbox;
  mailbox.reserve(batch);
  const PayloadRef shared = make_payload<BenchPayload>();
  SimTime now = 0;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      SlimEvent ev{};
      ev.time = now + 10;
      ev.seq = counter++;  // content-addressed key, as in the sharded engine
      ev.kind = EventKind::Message;
      mailbox.push_back(MailboxEntry{ev, shared});
    }
    for (auto& entry : mailbox) {
      entry.ev.aux = pool.store(std::move(entry.payload));
      queue.push(entry.ev);
    }
    mailbox.clear();
    SlimEvent ev{};
    while (queue.pop_if_at_most(~SimTime{0}, ev)) {
      benchmark::DoNotOptimize(pool.take(static_cast<std::uint32_t>(ev.aux)).get());
    }
    now += 10;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_CrossShardMailbox)->Arg(16)->Arg(256)->Arg(4096);

void BM_ShardedSendDispatch(benchmark::State& state) {
  // Full sharded send→window→dispatch round trip. Arg(1): both nodes live in
  // the single shard (no mailbox, inline crew). Arg(2): sender and receiver
  // on different shards, so every message crosses a mailbox and each window
  // pays a real crew round. The delta against BM_EngineSendDispatch is the
  // total window-machinery overhead per message.
  Engine engine(13, TransportConfig{}, static_cast<std::size_t>(state.range(0)));
  const Address a = engine.add_node(1);
  const Address b = engine.add_node(2);
  engine.attach(a, std::make_unique<SinkProtocol>());
  engine.attach(b, std::make_unique<SinkProtocol>());
  engine.start_node(a);
  engine.start_node(b);
  engine.run_all();
  for (auto _ : state) {
    engine.send_message(a, b, 0, std::make_unique<BenchPayload>());
    engine.run_all();
    benchmark::DoNotOptimize(engine.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedSendDispatch)->Arg(1)->Arg(2);

void BM_ShardedSendDispatchTraced(benchmark::State& state) {
  // BM_ShardedSendDispatch with a trace sink installed — the cost of a
  // recorded hook per message on the sharded engine. At K=1 the crew runs
  // inline and only one lane ever records, so trace_message takes the
  // lock-free branch (shards_ > 1 gates the mutex); the delta against
  // BM_ShardedSendDispatch/1 is the pure record() cost, matching the serial
  // engine's BM_EngineSendDispatch/1 delta. At K=2 the same hook pays the
  // trace mutex, so /2 minus /1 overhead is the lock's price per record.
  Engine engine(13, TransportConfig{}, static_cast<std::size_t>(state.range(0)));
  const Address a = engine.add_node(1);
  const Address b = engine.add_node(2);
  engine.attach(a, std::make_unique<SinkProtocol>());
  engine.attach(b, std::make_unique<SinkProtocol>());
  engine.start_node(a);
  engine.start_node(b);
  engine.run_all();
  CountingTraceSink sink;
  engine.set_trace_sink(&sink);
  for (auto _ : state) {
    engine.send_message(a, b, 0, std::make_unique<BenchPayload>());
    engine.run_all();
    benchmark::DoNotOptimize(engine.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedSendDispatchTraced)->Arg(1)->Arg(2);

void BM_PayloadMakeUniqueBaseline(benchmark::State& state) {
  // Baseline for BM_PayloadPoolStoreTake: the allocation alone, without the
  // pool bookkeeping (the pre-overhaul engine carried the pointer inside the
  // heap node, so its per-event cost was this plus the fat-heap churn).
  for (auto _ : state) {
    auto payload = std::make_unique<BenchPayload>();
    benchmark::DoNotOptimize(payload.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PayloadMakeUniqueBaseline);

}  // namespace
}  // namespace bsvc
