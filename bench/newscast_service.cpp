// §3 claims about the peer sampling layer (Newscast):
//   - cost: one small UDP message per node per interval;
//   - self-healing: sufficiently random samples quickly after catastrophic
//     failures of up to 70% of the nodes;
//   - fast randomization even from degenerate (identical) initial views.
//
// Prints view-graph quality (components, in-degree balance, clustering,
// dead-entry fraction) per cycle across three scenarios.
#include <cstdio>
#include <memory>

#include "bench/bench_common.hpp"
#include "obs/sampler.hpp"
#include "sampling/graph_metrics.hpp"
#include "sampling/newscast.hpp"
#include "sim/scenario.hpp"

using namespace bsvc;
using namespace bsvc::bench;

namespace {

struct Net {
  std::unique_ptr<Engine> engine;
  std::size_t n;

  Net(std::size_t n, std::uint64_t seed, std::size_t shards, bool degenerate_init) : n(n) {
    engine = std::make_unique<Engine>(seed, TransportConfig{}, shards);
    for (std::size_t i = 0; i < n; ++i) {
      const Address a = engine->add_node(static_cast<NodeId>(i * 2654435761u + 17));
      engine->attach(a, std::make_unique<NewscastProtocol>(NewscastConfig{}));
    }
    for (Address a = 0; a < n; ++a) {
      auto& nc = SlotRef<NewscastProtocol>::assume(0).of(*engine, a);
      DescriptorList seeds;
      if (degenerate_init) {
        if (a != 0) seeds.push_back(engine->descriptor_of(0));  // everyone knows only node 0
      } else {
        for (int s = 0; s < 10; ++s) {
          const auto peer = static_cast<Address>(engine->rng().below(n));
          if (peer != a) seeds.push_back(engine->descriptor_of(peer));
        }
      }
      nc.init_view(std::move(seeds));
      engine->start_node(a);
    }
  }

  /// Drives `cycles` cycles with a periodic Sampler whose probe publishes
  /// the view-graph stats as registry gauges; the table is rendered from the
  /// collected time series afterwards (same numbers as the old per-cycle
  /// loop, now flowing through the obs registry like every other bench).
  void report(const char* scenario, std::size_t cycles, Table& table) {
    obs::Sampler sampler(*engine);
    sampler.add_probe([](Engine& e) {
      const auto s = measure_view_graph(e, SlotRef<NewscastProtocol>::assume(0));
      obs::MetricsRegistry& m = e.metrics();
      m.gauge("newscast.alive").set(static_cast<double>(s.alive_nodes));
      m.gauge("newscast.components").set(static_cast<double>(s.components));
      m.gauge("newscast.indegree_mean").set(s.indegree_mean);
      m.gauge("newscast.indegree_stddev").set(s.indegree_stddev);
      m.gauge("newscast.indegree_max").set(static_cast<double>(s.indegree_max));
      m.gauge("newscast.dead_entry_fraction").set(s.dead_entry_fraction);
      m.gauge("newscast.clustering").set(s.clustering);
    });
    sampler.start(kDelta, kDelta);
    engine->run_until(engine->now() + cycles * kDelta);
    sampler.stop();

    const obs::MetricSeries series = sampler.take_series();
    const auto column = [&series](const char* name) {
      return series.by_name.at(name);
    };
    const auto alive = column("newscast.alive");
    const auto components = column("newscast.components");
    const auto indeg_mean = column("newscast.indegree_mean");
    const auto indeg_std = column("newscast.indegree_stddev");
    const auto indeg_max = column("newscast.indegree_max");
    const auto dead_frac = column("newscast.dead_entry_fraction");
    const auto clustering = column("newscast.clustering");
    for (std::size_t c = 0; c < alive.size(); ++c) {
      table.add_row({scenario, std::to_string(c),
                     std::to_string(static_cast<std::uint64_t>(alive[c].second)),
                     std::to_string(static_cast<std::uint64_t>(components[c].second)),
                     Table::num(indeg_mean[c].second, 3), Table::num(indeg_std[c].second, 3),
                     std::to_string(static_cast<std::uint64_t>(indeg_max[c].second)),
                     Table::num(dead_frac[c].second, 3), Table::num(clustering[c].second, 3)});
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", static_cast<std::int64_t>(default_n(flags))));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // Accepted for run_suite.sh flag uniformity; scenarios run sequentially.
  (void)threads_flag(flags);
  BenchReport report(flags, "newscast_service");
  const std::size_t shards = shards_flag(flags);
  apply_log_level_flag(flags);
  flags.finish();

  std::printf("=== Newscast peer sampling service (N=%zu, view=30, Δ period) ===\n", n);
  Table table({"scenario", "cycle", "alive", "components", "indeg_mean", "indeg_std",
               "indeg_max", "dead_frac", "clustering"});

  {
    Net net(n, seed, shards, /*degenerate_init=*/false);
    net.report("steady", 10, table);
    // Message cost check: ~2 transmissions (request+answer) per node/cycle,
    // each a small UDP datagram.
    const auto& t = net.engine->traffic();
    std::printf("# steady cost: %.2f msgs/node/cycle, %.0f bytes/msg avg\n",
                static_cast<double>(t.messages_sent) / (static_cast<double>(n) * 10.0),
                static_cast<double>(t.bytes_sent) / static_cast<double>(t.messages_sent));
    report.add_events(net.engine->events_dispatched());
    report.add_metric("steady_msgs_per_node_cycle",
                      static_cast<double>(t.messages_sent) / (static_cast<double>(n) * 10.0));
  }
  {
    Net net(n, seed + 1, shards, /*degenerate_init=*/false);
    net.engine->run_until(10 * kDelta);
    schedule_catastrophe(*net.engine, net.engine->now(), 0.7);
    net.report("kill70%", 15, table);
    report.add_events(net.engine->events_dispatched());
  }
  {
    Net net(n, seed + 2, shards, /*degenerate_init=*/true);
    net.report("star-init", 15, table);
    report.add_events(net.engine->events_dispatched());
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("# expectations: components stays 1; after the 70%% kill the dead-entry\n"
              "# fraction decays to ~0 within a few cycles (self-healing); from the\n"
              "# degenerate star the in-degree max collapses toward the mean quickly.\n");
  report.write();
  return 0;
}
