// §4 parameter study: sensitivity of convergence time and message cost to
// the protocol parameters the paper enumerates — leaf set size c, random
// sample count cr, per-cell redundancy k, digit width b — plus the looseness
// of the synchronized start (the paper assumes starts within one Δ). All
// sweep points share the base seed (isolating the parameter axis) and run
// as independent replicas across hardware threads.
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", static_cast<std::int64_t>(default_n(flags, 1, 1))));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::size_t threads = threads_flag(flags);
  BenchReport report(flags, "param_sweep");
  const std::size_t shards = shards_flag(flags);
  apply_log_level_flag(flags);
  flags.finish();
  report.set_threads(threads);

  std::printf("=== Parameter sweep (N=%zu; defaults b=4 k=3 c=20 cr=30) ===\n", n);

  const auto base = [&]() {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.shards = shards;
    cfg.max_cycles = 150;
    return cfg;
  };

  std::vector<ReplicaSpec> specs;
  const auto add = [&specs](const char* param, const std::string& value,
                            ExperimentConfig cfg) {
    specs.push_back({std::string(param) + "=" + value, std::move(cfg)});
  };

  for (const std::size_t c : {8u, 12u, 20u, 32u}) {
    auto cfg = base();
    cfg.bootstrap.c = c;
    add("c", std::to_string(c), cfg);
  }
  for (const std::size_t cr : {0u, 10u, 30u, 60u}) {
    auto cfg = base();
    cfg.bootstrap.cr = cr;
    if (cr == 0) cfg.bootstrap.use_random_samples = false;
    add("cr", std::to_string(cr), cfg);
  }
  for (const int k : {1, 2, 3, 5}) {
    auto cfg = base();
    cfg.bootstrap.k = k;
    add("k", std::to_string(k), cfg);
  }
  for (const int b : {1, 2, 4}) {
    auto cfg = base();
    cfg.bootstrap.digits = DigitConfig{b};
    add("b", std::to_string(b), cfg);
  }
  for (const double window : {1.0, 2.0, 4.0, 8.0}) {
    auto cfg = base();
    cfg.start_window_cycles = window;
    add("start_window_cycles", Table::num(window, 2), cfg);
  }

  const auto runs = run_replicas(specs, threads);

  Table table({"param", "value", "leaf_cycles", "prefix_cycles", "both_cycles",
               "avg_msg_bytes", "msgs/node"});
  for (const auto& run : runs) {
    const auto& r = run.result;
    const auto& s = r.bootstrap_stats;
    const double msgs = static_cast<double>(s.requests_sent + s.replies_sent);
    const auto eq = run.label.find('=');
    table.add_row({run.label.substr(0, eq), run.label.substr(eq + 1),
                   std::to_string(r.leaf_converged_cycle),
                   std::to_string(r.prefix_converged_cycle), std::to_string(r.converged_cycle),
                   Table::num(r.avg_message_bytes, 4),
                   Table::num(msgs / static_cast<double>(n), 3)});
    report.add_run(run.label, r);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("# expectations: larger c/cr buy faster convergence at higher message cost;\n"
              "# smaller b means fewer columns but more rows (similar totals, slower fill\n"
              "# per digit); k mostly scales the table size; start staggering beyond Δ\n"
              "# shifts convergence by roughly the extra window.\n");
  report.write();
  return 0;
}
