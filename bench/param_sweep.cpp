// §4 parameter study: sensitivity of convergence time and message cost to
// the protocol parameters the paper enumerates — leaf set size c, random
// sample count cr, per-cell redundancy k, digit width b — plus the looseness
// of the synchronized start (the paper assumes starts within one Δ).
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace bsvc;
using namespace bsvc::bench;

namespace {

void sweep_row(Table& table, const char* param, const std::string& value,
               ExperimentConfig cfg) {
  std::fprintf(stderr, "running %s=%s...\n", param, value.c_str());
  BootstrapExperiment exp(cfg);
  const auto r = exp.run();
  const auto& s = r.bootstrap_stats;
  const double msgs = static_cast<double>(s.requests_sent + s.replies_sent);
  table.add_row({param, value, std::to_string(r.leaf_converged_cycle),
                 std::to_string(r.prefix_converged_cycle), std::to_string(r.converged_cycle),
                 Table::num(r.avg_message_bytes, 4),
                 Table::num(msgs / static_cast<double>(cfg.n), 3)});
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool full = flags.get_bool("full", std::getenv("REPRO_FULL") != nullptr);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", full ? (1 << 13) : (1 << 11)));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.finish();

  std::printf("=== Parameter sweep (N=%zu; defaults b=4 k=3 c=20 cr=30) ===\n", n);
  Table table({"param", "value", "leaf_cycles", "prefix_cycles", "both_cycles",
               "avg_msg_bytes", "msgs/node"});

  const auto base = [&]() {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.max_cycles = 150;
    return cfg;
  };

  for (const std::size_t c : {8u, 12u, 20u, 32u}) {
    auto cfg = base();
    cfg.bootstrap.c = c;
    sweep_row(table, "c", std::to_string(c), cfg);
  }
  for (const std::size_t cr : {0u, 10u, 30u, 60u}) {
    auto cfg = base();
    cfg.bootstrap.cr = cr;
    if (cr == 0) cfg.bootstrap.use_random_samples = false;
    sweep_row(table, "cr", std::to_string(cr), cfg);
  }
  for (const int k : {1, 2, 3, 5}) {
    auto cfg = base();
    cfg.bootstrap.k = k;
    sweep_row(table, "k", std::to_string(k), cfg);
  }
  for (const int b : {1, 2, 4}) {
    auto cfg = base();
    cfg.bootstrap.digits = DigitConfig{b};
    sweep_row(table, "b", std::to_string(b), cfg);
  }
  for (const double window : {1.0, 2.0, 4.0, 8.0}) {
    auto cfg = base();
    cfg.start_window_cycles = window;
    sweep_row(table, "start_window_cycles", Table::num(window, 2), cfg);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("# expectations: larger c/cr buy faster convergence at higher message cost;\n"
              "# smaller b means fewer columns but more rows (similar totals, slower fill\n"
              "# per digit); k mostly scales the table size; start staggering beyond Δ\n"
              "# shifts convergence by roughly the extra window.\n");
  return 0;
}
