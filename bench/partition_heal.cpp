// Partition-and-heal convergence under the scripted fault layer (src/fault).
//
// Scenario PARTITION-HEAL: one pool bootstraps; mid-convergence a FaultPlan
// cuts the network into two halves by address. Because IDs are random, an
// address cut splits every node's ID neighbourhood roughly in half, so with
// the liveness extension on (evict_unresponsive + per-exchange timeouts) the
// far side gets probed, condemned and tombstoned — the measured missing-leaf
// fraction climbs while the partition holds. When the window closes (the
// heal), tombstones expire and the still-running gossip re-absorbs the far
// side: the late-stage missing-leaf fraction drops back below its
// pre-partition level. Reported: the pre-partition / peak / final missing
// fractions and the cycles from heal to perfect tables.
//
// Scenario CRASH-RECOVER: the same pool under a hostile mix — 15% of the
// nodes crash and return with state (dark window, distinct from kill),
// layered over correlated loss, duplication, reordering and a heavy-tail
// (Pareto) latency window. Reported: convergence despite the mix plus the
// fault-layer counters (msg.dup, msg.reordered, fault.dark.dropped).
//
// Both runs export their sampled metric series (fault.partition.active,
// fault.dark.nodes, convergence gauges, ...) into the --json report.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", static_cast<std::int64_t>(default_n(flags))));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  (void)threads_flag(flags);  // accepted for run_suite.sh flag uniformity
  const std::int64_t sample_every = flags.get_int("sample-every", 1);
  BenchReport report(flags, "partition_heal");
  const std::size_t shards = shards_flag(flags);
  // --spans: exchange spans across the cut show the partition as a timeout
  // wave (requests into the far side) and the heal as rtt returning to the
  // transport baseline.
  const bool spans = flags.get_bool("spans", false);
  apply_log_level_flag(flags);
  flags.finish();

  // ---------------- PARTITION-HEAL ---------------------------------------
  const std::size_t cut_cycle = 4;    // partition starts mid-convergence
  const std::size_t heal_cycle = 20;  // window closes: the heal
  std::printf("=== Partition-heal: %zu nodes, cut at cycle %zu, healed at %zu ===\n", n,
              cut_cycle, heal_cycle);
  {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.shards = shards;
    cfg.spans = spans;
    cfg.max_cycles = 48;
    cfg.stop_at_convergence = false;
    cfg.sample_every_cycles = sample_every <= 0 ? 0 : static_cast<std::size_t>(sample_every);
    // The liveness extension is the point: real non-answers across the cut
    // drive exchange timeouts -> demotion -> condemnation. A short tombstone
    // TTL lets the far side return quickly after the heal.
    cfg.bootstrap.evict_unresponsive = true;
    cfg.bootstrap.tombstone_ttl_cycles = 5;

    const SimTime delta = cfg.bootstrap.delta;
    const SimTime epoch = cfg.warmup_cycles * delta;
    PartitionSpec cut;
    cut.window = {epoch + cut_cycle * delta, epoch + heal_cycle * delta};
    cut.kind = PartitionSpec::Kind::Cut;
    cut.value = static_cast<std::uint32_t>(n / 2);
    cfg.fault_plan.partitions.push_back(cut);

    BootstrapExperiment exp(cfg);
    std::printf("# columns: cycle  missing_leaf  missing_prefix  (partition active %zu..%zu)\n",
                cut_cycle, heal_cycle);
    const auto result = exp.run([&](std::size_t cycle, const ConvergenceMetrics& m) {
      std::printf("%3zu  %.6g  %.6g%s\n", cycle, m.missing_leaf_fraction(),
                  m.missing_prefix_fraction(),
                  cycle >= cut_cycle && cycle < heal_cycle ? "  # partitioned" : "");
    });

    // Pre-partition level = the last measurement before the cut; peak = the
    // worst cycle while it held; healed = the final cycle.
    const auto leaf_at = [&](std::size_t cycle) { return result.series.at(cycle, 1); };
    const double pre = leaf_at(cut_cycle - 1);
    double peak = 0.0;
    for (std::size_t c = cut_cycle; c < heal_cycle; ++c) peak = std::max(peak, leaf_at(c));
    const double healed = leaf_at(result.series.rows() - 1);
    int recovered_cycle = -1;  // first post-heal cycle back below the pre level
    for (std::size_t c = heal_cycle; c < result.series.rows(); ++c) {
      if (leaf_at(c) < pre) {
        recovered_cycle = static_cast<int>(c);
        break;
      }
    }
    std::printf("# pre-partition missing leaf %.6g, peak under partition %.6g, "
                "final %.6g\n",
                pre, peak, healed);
    std::printf("# recovered below pre-partition level at cycle %d; perfect at %d "
                "(healed at %zu)\n\n",
                recovered_cycle, result.converged_cycle, heal_cycle);
    report.add_run("partition-heal", result);
    if (result.has_spans) {
      report.add_metric("partition_spans_timeout",
                        static_cast<double>(result.span_summary.timeout));
      report.add_metric("partition_spans_answered",
                        static_cast<double>(result.span_summary.answered));
      report.set_spans(result.span_summary);
    }
    report.add_metric("pre_partition_missing_leaf", pre);
    report.add_metric("partition_peak_missing_leaf", peak);
    report.add_metric("healed_missing_leaf", healed);
    report.add_metric("heal_recovered", healed < pre ? 1.0 : 0.0);
    report.add_metric("recovered_cycle", static_cast<double>(recovered_cycle));
  }

  // ---------------- CRASH-RECOVER under a hostile mix ---------------------
  std::printf("=== Crash-recover: 15%% dark for 8 cycles + loss/dup/reorder/Pareto ===\n");
  {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed + 1;
    cfg.shards = shards;
    cfg.spans = spans;
    cfg.max_cycles = 40;
    cfg.stop_at_convergence = false;
    cfg.sample_every_cycles = sample_every <= 0 ? 0 : static_cast<std::size_t>(sample_every);
    cfg.bootstrap.evict_unresponsive = true;
    cfg.bootstrap.tombstone_ttl_cycles = 5;

    const SimTime delta = cfg.bootstrap.delta;
    const SimTime epoch = cfg.warmup_cycles * delta;
    const SimTime end = epoch + cfg.max_cycles * delta;
    FaultPlan& plan = cfg.fault_plan;
    plan.crashes.push_back({{epoch + 8 * delta, epoch + 16 * delta}, kNullAddress, 0.15});
    plan.link_loss.push_back({{epoch, end}, kNullAddress, kNullAddress, 0.1});
    plan.duplicates.push_back({{epoch, end}, 0.05, 200});
    plan.reorders.push_back({{epoch, end}, 0.2, 400});
    LatencySpec pareto;
    pareto.window = {epoch + 12 * delta, epoch + 20 * delta};
    pareto.mode = LatencySpec::Mode::Pareto;
    pareto.scale = 60.0;
    pareto.alpha = 1.5;
    pareto.cap = 3000;
    plan.latency.push_back(pareto);

    BootstrapExperiment exp(cfg);
    const auto result = exp.run();
    obs::MetricsRegistry& m = exp.engine().metrics();
    std::printf("# final missing leaf %.6g prefix %.6g; perfect at cycle %d\n",
                result.final_metrics.missing_leaf_fraction(),
                result.final_metrics.missing_prefix_fraction(), result.converged_cycle);
    std::printf("# faults injected: dup %llu, reordered %llu, link-dropped %llu, "
                "dark-dropped %llu, crashes %llu\n\n",
                static_cast<unsigned long long>(m.counter("msg.dup").value()),
                static_cast<unsigned long long>(m.counter("msg.reordered").value()),
                static_cast<unsigned long long>(m.counter("fault.link.dropped").value()),
                static_cast<unsigned long long>(m.counter("fault.dark.dropped").value()),
                static_cast<unsigned long long>(m.counter("fault.crash").value()));
    report.add_run("crash-recover", result);
    report.add_metric("crash_final_missing_leaf",
                      result.final_metrics.missing_leaf_fraction());
    report.add_metric("crash_converged_cycle",
                      static_cast<double>(result.converged_cycle));
  }
  report.write();
  return 0;
}
