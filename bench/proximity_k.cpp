// §5 claim: "For networks that do not require multiple alternatives of a
// given table entry, setting k > 1 is still useful because it allows for
// optimizing the routes according to proximity."
//
// Nodes get synthetic 2D network coordinates (latency = base + Euclidean
// distance). The overlay is bootstrapped as usual; routes are then measured
// with and without proximity selection among each prefix cell's k
// alternatives, across k ∈ {1, 2, 3, 5}. Expected: identical hop counts,
// but per-route latency drops substantially with k > 1 + proximity
// selection, and k = 1 gains nothing.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "overlay/proximity.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool full = flags.get_bool("full", std::getenv("REPRO_FULL") != nullptr);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", full ? (1 << 14) : (1 << 12)));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto lookups = static_cast<std::size_t>(flags.get_int("lookups", 2000));
  flags.finish();

  std::printf("=== Proximity route optimization via k alternatives (N=%zu) ===\n", n);
  Table table({"k", "selection", "avg_route_latency", "avg_hops", "success", "vs_first_pct"});

  for (const int k : {1, 2, 3, 5}) {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.bootstrap.k = k;
    cfg.max_cycles = 80;
    std::fprintf(stderr, "bootstrapping with k=%d...\n", k);
    BootstrapExperiment exp(cfg);
    const auto result = exp.run();
    if (result.converged_cycle < 0) {
      std::printf("# k=%d did not converge, skipping\n", k);
      continue;
    }
    CoordinateSpace space(exp.engine().node_count(), Rng(seed + 77));
    const ConvergenceOracle oracle(exp.engine(), cfg.bootstrap, exp.bootstrap_slot());

    double first_latency = 0.0;
    for (const HopSelection sel : {HopSelection::First, HopSelection::Proximity}) {
      const ProximityRouter router(exp.engine(), exp.bootstrap_slot(), space, sel);
      Rng rng(seed + 5);
      const auto stats = router.run_lookups(oracle, rng, lookups);
      if (sel == HopSelection::First) first_latency = stats.avg_route_latency;
      const double delta_pct =
          first_latency == 0.0
              ? 0.0
              : 100.0 * (stats.avg_route_latency - first_latency) / first_latency;
      table.add_row({std::to_string(k),
                     sel == HopSelection::First ? "first" : "proximity",
                     Table::num(stats.avg_route_latency, 5), Table::num(stats.avg_hops, 3),
                     Table::num(stats.success_rate, 4), Table::num(delta_pct, 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("# expectations: proximity selection leaves hop counts unchanged but cuts\n"
              "# per-route latency once k > 1; with k = 1 there is nothing to choose\n"
              "# from and the two policies coincide.\n");
  return 0;
}
