// §5 claim: "For networks that do not require multiple alternatives of a
// given table entry, setting k > 1 is still useful because it allows for
// optimizing the routes according to proximity."
//
// Nodes get synthetic 2D network coordinates (latency = base + Euclidean
// distance). The overlay is bootstrapped as usual; routes are then measured
// with and without proximity selection among each prefix cell's k
// alternatives, across k ∈ {1, 2, 3, 5}. Each k is one replica fanned
// across hardware threads. Expected: identical hop counts, but per-route
// latency drops substantially with k > 1 + proximity selection, and k = 1
// gains nothing.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "overlay/proximity.hpp"

using namespace bsvc;
using namespace bsvc::bench;

namespace {

struct SelectionRow {
  double avg_latency = 0.0;
  double avg_hops = 0.0;
  double success = 0.0;
};

struct KOutcome {
  bool converged = false;
  SelectionRow first;
  SelectionRow proximity;
  ExperimentResult result;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", static_cast<std::int64_t>(default_n(flags))));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto lookups = static_cast<std::size_t>(flags.get_int("lookups", 2000));
  const std::size_t threads = threads_flag(flags);
  BenchReport report(flags, "proximity_k");
  const std::size_t shards = shards_flag(flags);
  apply_log_level_flag(flags);
  flags.finish();
  report.set_threads(threads);

  std::printf("=== Proximity route optimization via k alternatives (N=%zu) ===\n", n);

  const std::vector<int> ks{1, 2, 3, 5};
  const auto outcomes = parallel_map(ks, threads, [&](int k, std::size_t) {
    KOutcome out;
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    cfg.shards = shards;
    cfg.bootstrap.k = k;
    cfg.max_cycles = 80;
    std::fprintf(stderr, "bootstrapping with k=%d...\n", k);
    BootstrapExperiment exp(cfg);
    out.result = exp.run();
    if (out.result.converged_cycle < 0) return out;
    out.converged = true;
    CoordinateSpace space(exp.engine().node_count(), Rng(seed + 77));
    const ConvergenceOracle oracle(exp.engine(), cfg.bootstrap, exp.bootstrap_slot());
    for (const HopSelection sel : {HopSelection::First, HopSelection::Proximity}) {
      const ProximityRouter router(exp.engine(), exp.bootstrap_slot(), space, sel);
      Rng rng(seed + 5);
      const auto stats = router.run_lookups(oracle, rng, lookups);
      auto& row = sel == HopSelection::First ? out.first : out.proximity;
      row.avg_latency = stats.avg_route_latency;
      row.avg_hops = stats.avg_hops;
      row.success = stats.success_rate;
    }
    return out;
  });

  Table table({"k", "selection", "avg_route_latency", "avg_hops", "success", "vs_first_pct"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const int k = ks[i];
    const auto& out = outcomes[i];
    if (!out.converged) {
      std::printf("# k=%d did not converge, skipping\n", k);
      continue;
    }
    const auto emit = [&](const char* sel, const SelectionRow& row) {
      const double delta_pct =
          out.first.avg_latency == 0.0
              ? 0.0
              : 100.0 * (row.avg_latency - out.first.avg_latency) / out.first.avg_latency;
      table.add_row({std::to_string(k), sel, Table::num(row.avg_latency, 5),
                     Table::num(row.avg_hops, 3), Table::num(row.success, 4),
                     Table::num(delta_pct, 3)});
    };
    emit("first", out.first);
    emit("proximity", out.proximity);
    report.add_run("k=" + std::to_string(k), out.result);
    report.add_metric("proximity_latency_gain_pct_k" + std::to_string(k),
                      out.first.avg_latency == 0.0
                          ? 0.0
                          : 100.0 * (out.proximity.avg_latency - out.first.avg_latency) /
                                out.first.avg_latency);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("# expectations: proximity selection leaves hop counts unchanged but cuts\n"
              "# per-route latency once k > 1; with k = 1 there is nothing to choose\n"
              "# from and the two policies coincide.\n");
  report.write();
  return 0;
}
