#!/usr/bin/env bash
# Runs the full bench suite and collects machine-readable results: each
# binary writes BENCH_<name>.json (wall time, events/sec, peak RSS,
# convergence summaries) into the output directory. Compare JSON files
# across commits to track the perf trajectory (docs/performance.md).
#
# Usage: bench/run_suite.sh [build_dir] [out_dir] [extra bench flags...]
#   build_dir  defaults to ./build
#   out_dir    defaults to ./bench-results
# Extra flags are passed to every binary, e.g. --threads 8 or --full=true.
#
# Flags only some binaries understand must not go through the shared extra
# flags (an unknown flag is a per-bench usage error, exit 2). Per-bench
# extras come from BSVC_<NAME>_FLAGS environment variables instead, e.g.
#   BSVC_SCALE_FLAGS="--shards 8 --xl --max-cycles 10" bench/run_suite.sh
# appends those flags to the scale invocation only.
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench-results}"
shift $(( $# >= 2 ? 2 : $# )) || true

benches=(
  fig3_no_failures
  fig4_message_drop
  churn
  scalability
  param_sweep
  ablation_feedback
  chord_on_demand
  baseline_join
  proximity_k
  massive_join
  merge_split
  partition_heal
  newscast_service
  adversary
  scale
  workload
  degradation
)

# Benches that support per-replica JSONL event traces (--trace); the suite
# archives those next to the JSON reports for offline analysis.
traced=(fig3_no_failures fig4_message_drop churn)

# Benches that carry an allocation census (the counting allocator +
# per-tier "alloc" report section). These always emit the census, so a
# report without it means the bench silently lost the instrumentation.
census=(scale)

mkdir -p "${out_dir}"

# A failing bench must not abort the suite: run everything, record which
# benches failed, and exit nonzero at the end with a summary.
failed=()

for bench in "${benches[@]}"; do
  bin="${build_dir}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "skip ${bench}: ${bin} not built" >&2
    continue
  fi
  trace_flags=()
  for t in "${traced[@]}"; do
    if [[ "${bench}" == "${t}" ]]; then
      trace_flags=(--trace "${out_dir}/TRACE_${bench}")
    fi
  done
  # Per-bench extra flags from BSVC_<NAME>_FLAGS (word-split on purpose).
  extra_var="BSVC_$(echo "${bench}" | tr '[:lower:]' '[:upper:]')_FLAGS"
  read -r -a extra_flags <<< "${!extra_var:-}"
  echo "=== ${bench} ===" >&2
  status=0
  "${bin}" --json "${out_dir}/BENCH_${bench}.json" "${trace_flags[@]}" "$@" \
    ${extra_flags[@]+"${extra_flags[@]}"} \
    > "${out_dir}/${bench}.out" || status=$?
  if (( status != 0 )); then
    echo "FAIL ${bench} (exit ${status})" >&2
    failed+=("${bench}")
    continue
  fi
  # A --spans run must surface the span aggregate: a report missing its
  # "spans" section means the bench silently dropped the observability the
  # caller asked for, and the suite's summary should say so.
  all_flags=" $* ${extra_flags[*]+${extra_flags[*]}} "
  if [[ "${all_flags}" == *" --spans "* || "${all_flags}" == *" --spans=true "* ]] \
     && ! grep -q '"spans"' "${out_dir}/BENCH_${bench}.json" 2>/dev/null; then
    echo "FAIL ${bench}: --spans was passed but the report has no \"spans\" section" >&2
    failed+=("${bench}")
  fi
  # Census-capable benches must emit their "alloc" section unconditionally;
  # a report without it previously passed silently, hiding a lost census.
  for c in "${census[@]}"; do
    if [[ "${bench}" == "${c}" ]] \
       && ! grep -q '"alloc"' "${out_dir}/BENCH_${bench}.json" 2>/dev/null; then
      echo "FAIL ${bench}: census bench report has no \"alloc\" section" >&2
      failed+=("${bench}")
    fi
  done
done

# Micro benchmarks use google-benchmark's native JSON reporter.
micro="${build_dir}/bench/micro_ops"
if [[ -x "${micro}" ]]; then
  echo "=== micro_ops ===" >&2
  status=0
  "${micro}" --benchmark_format=json > "${out_dir}/BENCH_micro_ops.json" || status=$?
  if (( status != 0 )); then
    echo "FAIL micro_ops (exit ${status})" >&2
    failed+=(micro_ops)
  fi
fi

echo "results in ${out_dir}/" >&2
if (( ${#failed[@]} > 0 )); then
  echo "FAILED benches (${#failed[@]}): ${failed[*]}" >&2
  exit 1
fi
