// §5/§7 scalability claim: "the time required to reach a desired quality of
// the leaf sets increases by an additive constant despite a four-fold
// increase in the network size ... the time needed for convergence is
// logarithmic in network size", plus per-node cost accounting (the protocol
// is "cheap": ~2 bootstrap messages per node per cycle, small UDP payloads).
//
// Sweeps N over powers of two (one replica per size, fanned across hardware
// threads) and prints cycles-to-perfect against log2(N), alongside message
// and byte costs per node.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace bsvc;
using namespace bsvc::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool full = full_tier(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::size_t threads = threads_flag(flags);
  BenchReport report(flags, "scalability");
  const std::size_t shards = shards_flag(flags);
  apply_log_level_flag(flags);
  flags.finish();
  report.set_threads(threads);

  // Every power of two from the ladder's floor to its smoke headline (the
  // dense grid pins the +constant-per-4x slope), then the full tier's tail.
  std::vector<std::size_t> sizes;
  for (std::size_t n = kSmokeSizes[0]; n <= kSmokeSizes[2]; n *= 2) sizes.push_back(n);
  if (full) {
    sizes.push_back(kFullSizes[1]);
    sizes.push_back(kFullSizes[2]);
  }

  std::printf("=== Scalability: convergence time vs network size ===\n");
  std::vector<ReplicaSpec> specs;
  for (const std::size_t n : sizes) {
    ReplicaSpec spec;
    spec.cfg.n = n;
    spec.cfg.seed = seed;  // the same seed across sizes isolates the N axis
    spec.cfg.shards = shards;
    spec.cfg.max_cycles = 80;
    spec.label = "N=" + std::to_string(n);
    specs.push_back(std::move(spec));
  }
  const auto runs = run_replicas(specs, threads);

  Table table({"N", "log2(N)", "leaf_cycles", "prefix_cycles", "both_cycles",
               "bootstrap_msgs/node", "bootstrap_kB/node", "avg_msg_B"});
  int prev_cycles = -1;
  std::size_t prev_n = 0;
  std::vector<std::pair<double, double>> points;  // (log2 N, cycles)
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const auto& r = runs[i].result;
    const auto& s = r.bootstrap_stats;
    const double msgs_per_node =
        static_cast<double>(s.requests_sent + s.replies_sent) / static_cast<double>(n);
    const double kb_per_node =
        static_cast<double>(s.payload_bytes_sent) / static_cast<double>(n) / 1024.0;
    table.add_row({std::to_string(n), Table::num(std::log2(static_cast<double>(n)), 3),
                   std::to_string(r.leaf_converged_cycle),
                   std::to_string(r.prefix_converged_cycle),
                   std::to_string(r.converged_cycle), Table::num(msgs_per_node, 4),
                   Table::num(kb_per_node, 4), Table::num(r.avg_message_bytes, 4)});
    if (r.converged_cycle >= 0) points.emplace_back(std::log2(static_cast<double>(n)),
                                                    static_cast<double>(r.converged_cycle));
    if (prev_cycles >= 0 && n == prev_n * 4 && r.converged_cycle >= 0) {
      std::printf("# 4x growth %zu -> %zu: +%d cycles (paper: additive constant)\n", prev_n, n,
                  r.converged_cycle - prev_cycles);
    }
    prev_cycles = r.converged_cycle;
    prev_n = n;
    report.add_run(runs[i].label, r);
  }
  std::printf("%s\n", table.render().c_str());

  // Least-squares fit cycles = a*log2(N) + b as the scaling summary.
  if (points.size() >= 2) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const auto& [x, y] : points) {
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const double m = static_cast<double>(points.size());
    const double a = (m * sxy - sx * sy) / (m * sxx - sx * sx);
    const double b = (sy - a * sx) / m;
    std::printf("# fit: cycles_to_perfect ~ %.2f * log2(N) + %.2f\n", a, b);
    report.add_metric("fit_slope_cycles_per_log2N", a);
    report.add_metric("fit_intercept_cycles", b);
  }
  report.write();
  return 0;
}
