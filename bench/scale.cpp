// Scale sweep: the paper-full convergence run (N = 2^14, 2^16, 2^18 under
// --full; the smoke ladder otherwise) with one replica per size, timed
// per size. Exports BENCH_scale.json carrying the headline throughput
// (events_per_sec), peak RSS, and a heap-allocation census: this TU
// replaces the global operator new/delete so every run reports
// allocations per bootstrap exchange — the tripwire for the
// allocation-lean CREATEMESSAGE path (docs/architecture.md).
//
// Sizes come from bench_common.hpp's kSmokeSizes/kFullSizes ladder — the
// single source of truth shared with every other bench and EXPERIMENTS.md.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench/bench_common.hpp"

// ---------------------------------------------------------------------------
// Global allocation census. Counting only — every path defers to malloc/free,
// so behavior (and determinism) is untouched. Relaxed atomics: the harness
// runs replicas sequentially, but engine teardown may race with nothing; the
// counter only needs to be well-defined, not ordered.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
// ---------------------------------------------------------------------------

using namespace bsvc;
using namespace bsvc::bench;

namespace {
/// Steady-state allocation budget per bootstrap exchange. Pinned by
/// tests/test_alloc.cpp and enforced against this bench's census by
/// scripts/check_alloc_budget.py in CI; raise only with a paper trail in
/// docs/performance.md. The gate judges the *steady* window below, not the
/// whole run — setup (node construction, pool priming, early table growth)
/// is one-off and excluded by the cutoff.
constexpr double kAllocBudgetPerExchange = 5.0;

/// Cycles to let pass before the steady-state window opens: pools primed,
/// thread-local scratch grown, leaf/prefix tables past their initial growth
/// spurt. Runs that finish earlier report a zero-width steady window, which
/// the gate skips with a note.
constexpr std::size_t kSteadyWarmCycles = 4;
}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  Tier tier = pick_tier(flags);
  // --smoke pins the smoke ladder regardless of --full / REPRO_FULL — CI's
  // profile-smoke step uses it so an exported REPRO_FULL cannot turn a
  // smoke check into an hour-long run.
  if (flags.get_bool("smoke", false)) {
    tier = {{std::begin(kSmokeSizes), std::end(kSmokeSizes)},
            {std::begin(kSmokeRepeats), std::end(kSmokeRepeats)}};
  }
  // --xl swaps in the sharded-engine scale tier (N = 2^20, 2^21): one
  // replica each, far beyond what the serial sweep attempts. Meant to be
  // combined with --shards and usually a reduced --max-cycles.
  if (flags.get_bool("xl", false)) {
    tier.sizes = {std::size_t{1} << 20, std::size_t{1} << 21};
    tier.repeats = {1, 1};
  }
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto max_cycles = static_cast<std::size_t>(flags.get_int("max-cycles", 60));
  const std::size_t threads = threads_flag(flags);
  const std::size_t shards = shards_flag(flags);
  // --shard-sweep=1,2,4,8 re-runs the tier's largest size once per shard
  // count after the main sweep ("N=<n> K=<k>" series) — the intra-run
  // scaling measurement.
  const std::vector<std::size_t> shard_sweep =
      parse_shard_list(flags, flags.get_string("shard-sweep", ""));
  // --profile <file>: window-profiler Chrome trace for the largest main-
  // sweep run (sharded mode only; the experiment rejects --profile with
  // --shards 0). Shard-sweep runs write derived "<stem>_K<k><ext>" files.
  const std::string profile_path = flags.get_string("profile", "");
  const bool spans_enabled = flags.get_bool("spans", false);
  BenchReport report(flags, "scale");
  apply_log_level_flag(flags);

  // One replica per size: the sweep measures how throughput and memory move
  // with N, so per-size wall clocks must not share a core with a sibling
  // replica. Runs are sequential whatever --threads says; output is
  // byte-identical across thread counts by construction.
  std::vector<ReplicaSpec> specs;
  for (std::size_t s = 0; s < tier.sizes.size(); ++s) {
    ReplicaSpec spec;
    spec.cfg.n = tier.sizes[s];
    spec.cfg.seed = replica_seed(base_seed, s);
    spec.cfg.max_cycles = max_cycles;
    spec.cfg.shards = shards;
    spec.label = "N=" + std::to_string(spec.cfg.n);
    specs.push_back(std::move(spec));
  }
  apply_obs_flags(flags, specs);
  // Profile the largest size: the headline run, and the one whose window
  // occupancy is most representative of the sweep.
  if (!profile_path.empty() && !specs.empty()) {
    specs.back().cfg.profile_path = profile_path;
  }
  flags.finish();
  report.set_threads(threads);
  report.add_metric("shards", static_cast<double>(shards));

  std::printf("=== scale sweep: %zu sizes, b=4, k=3, c=20, cr=30 ===\n", specs.size());
  AllocCensus census;
  census.budget_allocs_per_exchange = kAllocBudgetPerExchange;
  census.rss_reset_supported = reset_peak_rss();
  std::vector<LabelledRun> runs;
  for (const auto& spec : specs) {
    std::fprintf(stderr, "running %s...\n", spec.label.c_str());
    // Rewind the RSS high-water mark so each tier reports its own peak, not
    // the largest predecessor's (no-op where clear_refs is unsupported).
    if (census.rss_reset_supported) reset_peak_rss();
    const std::uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    // Direct experiment (not run_experiment) so the on_cycle observer can
    // open the steady-state allocation window after kSteadyWarmCycles —
    // observation only, the trajectory is identical to a plain run().
    BootstrapExperiment exp(spec.cfg);
    std::uint64_t steady_alloc_base = 0;
    std::uint64_t steady_exch_base = 0;
    bool steady_armed = false;
    ExperimentResult result =
        exp.run([&](std::size_t cycle, const ConvergenceMetrics&) {
          if (!steady_armed && cycle >= kSteadyWarmCycles) {
            steady_armed = true;
            steady_alloc_base = g_alloc_count.load(std::memory_order_relaxed);
            const BootstrapStats s = exp.current_stats();
            steady_exch_base = s.requests_sent + s.replies_sent;
          }
        });
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t allocs_after = g_alloc_count.load(std::memory_order_relaxed);
    const std::uint64_t allocs = allocs_after - allocs_before;
    const std::uint64_t tier_rss = current_peak_rss_bytes();
    const double secs = std::chrono::duration<double>(t1 - t0).count();

    const std::uint64_t exchanges =
        result.bootstrap_stats.requests_sent + result.bootstrap_stats.replies_sent;
    const std::uint64_t steady_allocs =
        steady_armed ? allocs_after - steady_alloc_base : 0;
    const std::uint64_t steady_exchanges =
        steady_armed && exchanges > steady_exch_base ? exchanges - steady_exch_base
                                                     : 0;
    const double eps = secs > 0.0 ? static_cast<double>(result.events_dispatched) / secs : 0.0;
    const double ape = exchanges > 0 ? static_cast<double>(allocs) /
                                           static_cast<double>(exchanges)
                                     : 0.0;
    const double steady_ape =
        steady_exchanges > 0 ? static_cast<double>(steady_allocs) /
                                   static_cast<double>(steady_exchanges)
                             : 0.0;
    std::printf("%-10s converged at cycle %3d  events=%llu  wall=%.2fs  "
                "events/sec=%.0f  allocs/exchange=%.1f (steady %.2f)  "
                "peak_rss=%.1fMB\n",
                spec.label.c_str(), result.converged_cycle,
                static_cast<unsigned long long>(result.events_dispatched), secs, eps, ape,
                steady_ape, static_cast<double>(tier_rss) / (1024.0 * 1024.0));
    report.add_metric(spec.label + " events_per_sec", eps);
    report.add_metric(spec.label + " wall_seconds", secs);
    report.add_metric(spec.label + " allocs_per_exchange", ape);
    report.add_metric(spec.label + " steady_allocs_per_exchange", steady_ape);
    report.add_metric(spec.label + " heap_allocations", static_cast<double>(allocs));
    report.add_metric(spec.label + " peak_rss_bytes", static_cast<double>(tier_rss));
    census.tiers.push_back({spec.label, allocs, exchanges, ape, steady_allocs,
                            steady_exchanges, steady_ape, tier_rss});
    // Last one wins: the report carries the largest size's aggregates.
    if (result.has_spans) report.set_spans(result.span_summary);
    if (result.has_profile) report.set_profile(result.profile_summary);
    runs.push_back({spec.label, std::move(result)});
  }
  report.set_alloc(census);
  print_runs("scale sweep", runs);
  for (const auto& run : runs) report.add_run(run.label, run.result);

  if (!shard_sweep.empty()) {
    // Same network, same seed, one run per shard count: within the sharded
    // family the trajectory is identical for every K, so the wall-clock
    // ratio isolates the engine's intra-run scaling.
    const std::size_t sweep_n = tier.sizes.back();
    std::printf("=== shard sweep: N=%zu, K in {", sweep_n);
    for (std::size_t i = 0; i < shard_sweep.size(); ++i) {
      std::printf("%s%zu", i == 0 ? "" : ",", shard_sweep[i]);
    }
    std::printf("} ===\n");
    for (const std::size_t k : shard_sweep) {
      ExperimentConfig cfg;
      cfg.n = sweep_n;
      cfg.seed = replica_seed(base_seed, tier.sizes.size() - 1);
      cfg.max_cycles = max_cycles;
      cfg.shards = k;
      cfg.spans = spans_enabled;
      if (!profile_path.empty()) {
        cfg.profile_path = profile_path_for_shards(profile_path, k);
      }
      const std::string label = "N=" + std::to_string(sweep_n) + " K=" + std::to_string(k);
      std::fprintf(stderr, "running %s...\n", label.c_str());
      const auto t0 = std::chrono::steady_clock::now();
      ExperimentResult result = run_experiment(cfg);
      const auto t1 = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      const double eps =
          secs > 0.0 ? static_cast<double>(result.events_dispatched) / secs : 0.0;
      std::printf("%-16s converged at cycle %3d  events=%llu  wall=%.2fs  events/sec=%.0f\n",
                  label.c_str(), result.converged_cycle,
                  static_cast<unsigned long long>(result.events_dispatched), secs, eps);
      report.add_metric(label + " events_per_sec", eps);
      report.add_metric(label + " wall_seconds", secs);
    }
  }
  report.write();
  return 0;
}
