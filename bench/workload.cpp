// Workload bench: KV put/get traffic plus prefix-space broadcast served over
// the bootstrapped overlay, measured across four phases — BOOTSTRAP (requests
// start with the bootstrap protocol, tables still converging), STEADY (the
// converged overlay), CHURN (continuous fail/join with the liveness
// extension on) and HEAL (requests across a partition cut and through the
// heal). Each phase is its own experiment; the driver issues deterministic
// request batches from barrier context (src/workload/driver.hpp), so every
// row below is a pure function of --seed and byte-identical for every
// --shards K >= 1.
//
// Exports BENCH_workload.json with per-phase goodput, request-latency
// p50/p95/p99 (virtual ticks), hop counts and broadcast coverage — the rows
// scripts/compare_bench.py gates against bench/baselines. --summary <path>
// additionally writes only the deterministic per-phase aggregates (no wall
// time, no RSS): that file is the cross-K byte-identity artifact.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "workload/driver.hpp"

using namespace bsvc;
using namespace bsvc::bench;

namespace {

struct PhasePlan {
  std::string name;
  ExperimentConfig cfg;
  // Per-phase service knobs: bootstrap and steady run with the retry layer
  // off (the no-retry reference rows), churn and heal run with it on.
  WorkloadParams wl;
  // Request issue window and broadcast launch times, in cycles past the
  // bootstrap epoch (warmup end).
  std::size_t wl_from_cycle = 0;
  std::size_t wl_to_cycle = 0;
  std::vector<std::size_t> cast_cycles;
  // Extra cycles past max_cycles before the summary: 3 covers the plain 2Δ
  // request timeout; retry phases need the deepest backed-off chain to
  // resolve (answer or burn its budget) so goodput is not under-counted.
  std::size_t quiesce_cycles = 3;
};

struct PhaseOutcome {
  std::string name;
  ExperimentResult result;
  WorkloadSummary wl;
  WorkloadDriver::CastCoverage cov;
  std::uint64_t total_events = 0;  // incl. the post-run quiesce window
  bool has_spans = false;
  obs::SpanSummary spans;
};

PhaseOutcome run_phase(PhasePlan plan, DriverConfig base_driver) {
  WorkloadStack stack(plan.wl);
  plan.cfg.stop_at_convergence = false;
  plan.cfg.node_extension = stack.node_extension();
  BootstrapExperiment exp(plan.cfg);
  stack.log().bind_registry(exp.engine().metrics());
  if (plan.wl.retry || plan.wl.hedge_delay > 0 || plan.wl.cast_retries > 0) {
    stack.log().bind_retry_registry(exp.engine().metrics());
  }

  const SimTime delta = plan.cfg.bootstrap.delta;
  const SimTime epoch = plan.cfg.warmup_cycles * delta;
  DriverConfig dc = base_driver;
  dc.from = epoch + plan.wl_from_cycle * delta;
  dc.to = epoch + plan.wl_to_cycle * delta;
  WorkloadDriver driver(stack, dc);
  driver.start(exp.engine());
  for (const std::size_t c : plan.cast_cycles) {
    driver.schedule_cast(exp.engine(), epoch + c * delta);
  }

  PhaseOutcome out;
  out.name = plan.name;
  out.result = exp.run();
  // Quiesce so every request resolves before the summary (see quiesce_cycles).
  exp.engine().run_until(epoch + (plan.cfg.max_cycles + plan.quiesce_cycles) * delta);
  out.wl = stack.log().summary();
  out.cov = driver.verify_casts(exp.engine());
  out.total_events = exp.engine().events_dispatched();
  if (const obs::SpanLog* spans = exp.engine().span_log(); spans != nullptr) {
    out.has_spans = true;
    out.spans = spans->summary();
  }
  return out;
}

void write_summary(const std::string& path, std::uint64_t seed, std::size_t n,
                   const std::vector<PhaseOutcome>& phases) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write --summary file '%s'\n", path.c_str());
    return;
  }
  // Deterministic fields only: every value below derives from virtual time
  // and event counts, so this file is byte-identical across --shards K.
  std::fprintf(f, "{\n  \"bench\": \"workload\",\n  \"seed\": %llu,\n  \"n\": %zu,\n",
               static_cast<unsigned long long>(seed), n);
  std::fprintf(f, "  \"phases\": [");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const WorkloadSummary& w = phases[i].wl;
    const auto& cov = phases[i].cov;
    std::fprintf(
        f,
        "%s\n    {\"name\": \"%s\", \"puts\": %llu, \"gets\": %llu, "
        "\"put_ok\": %llu, \"get_ok\": %llu, \"get_found\": %llu, "
        "\"get_miss\": %llu, \"timeouts\": %llu, \"unroutable\": %llu, "
        "\"goodput\": %.9g, \"rtt_count\": %llu, \"rtt_mean\": %.9g, "
        "\"rtt_p50\": %.9g, \"rtt_p95\": %.9g, \"rtt_p99\": %.9g, "
        "\"hops_mean\": %.9g, \"hops_max\": %.9g, \"casts\": %llu, "
        "\"cast_expected\": %zu, \"cast_reached\": %zu, "
        "\"cast_duplicates\": %llu, \"cast_forwards\": %llu, "
        "\"kv_retries\": %llu, \"hedges_sent\": %llu, \"hedge_wins\": %llu}",
        i == 0 ? "" : ",", phases[i].name.c_str(),
        static_cast<unsigned long long>(w.puts),
        static_cast<unsigned long long>(w.gets),
        static_cast<unsigned long long>(w.put_ok),
        static_cast<unsigned long long>(w.get_ok),
        static_cast<unsigned long long>(w.get_found),
        static_cast<unsigned long long>(w.get_miss),
        static_cast<unsigned long long>(w.timeouts),
        static_cast<unsigned long long>(w.unroutable), w.goodput(),
        static_cast<unsigned long long>(w.rtt_count), w.rtt_mean, w.rtt_p50,
        w.rtt_p95, w.rtt_p99, w.hops_mean, w.hops_max,
        static_cast<unsigned long long>(w.casts), cov.expected, cov.reached,
        static_cast<unsigned long long>(cov.duplicates),
        static_cast<unsigned long long>(w.cast_forwards),
        static_cast<unsigned long long>(w.kv_retries),
        static_cast<unsigned long long>(w.hedges_sent),
        static_cast<unsigned long long>(w.hedge_wins));
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  // --smoke pins the small size regardless of --full / REPRO_FULL, exactly
  // like bench/scale: CI's bench-smoke step must stay minutes-long.
  const bool smoke = flags.get_bool("smoke", false);
  const bool full = !smoke && full_tier(flags);
  const std::size_t n = static_cast<std::size_t>(flags.get_int(
      "n", static_cast<std::int64_t>(full ? kFullSizes[0] >> 2 : kSmokeSizes[1] >> 2)));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  (void)threads_flag(flags);  // accepted for run_suite.sh flag uniformity
  const std::size_t shards = shards_flag(flags);
  const bool spans = flags.get_bool("spans", false);
  const std::int64_t sample_every = flags.get_int("sample-every", 1);
  const std::string summary_path = flags.get_string("summary", "");
  BenchReport report(flags, "workload");
  apply_log_level_flag(flags);
  flags.finish();

  const auto base_cfg = [&](std::uint64_t seed_offset, std::size_t max_cycles) {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.seed = seed + seed_offset;
    cfg.shards = shards;
    cfg.spans = spans;
    cfg.max_cycles = max_cycles;
    cfg.sample_every_cycles =
        sample_every <= 0 ? 0 : static_cast<std::size_t>(sample_every);
    return cfg;
  };

  std::vector<PhasePlan> plans;
  {
    // BOOTSTRAP: requests start the moment the bootstrap phase does, so the
    // early batches hit inactive/incomplete tables (unroutable + timeouts)
    // and goodput ramps as the tables fill. One broadcast mid-convergence,
    // one after.
    PhasePlan p;
    p.name = "bootstrap";
    p.cfg = base_cfg(0, 16);
    p.wl_from_cycle = 0;
    p.wl_to_cycle = 12;
    p.cast_cycles = {3, 13};
    plans.push_back(std::move(p));
  }
  {
    // STEADY: the overlay converges first (well before cycle 14 at these
    // sizes); the workload then runs over stable tables.
    PhasePlan p;
    p.name = "steady";
    p.cfg = base_cfg(1, 30);
    p.wl_from_cycle = 14;
    p.wl_to_cycle = 26;
    p.cast_cycles = {27, 28};
    plans.push_back(std::move(p));
  }
  // The faulty phases (churn, heal) run with the retry layer on: bounded
  // backed-off KV retries over adaptive RTT timeouts plus hedged gets. A
  // budget-5 chain with the timeout backed off to its 2Δ clamp stretches
  // ~26Δ past the last issue, hence the long quiesce window.
  WorkloadParams retry_wl;
  retry_wl.retry = true;
  retry_wl.retry_budget = 5;
  retry_wl.retry_backoff = 1.5;
  retry_wl.retry_jitter = 0.1;
  retry_wl.adaptive_timeout = true;
  retry_wl.rtt_min_timeout = 64;
  retry_wl.rtt_max_timeout = 2 * kDelta;
  retry_wl.hedge_delay = kDelta / 2;
  {
    // CHURN: continuous fail/join at 2%/cycle each with the liveness
    // extension on — requests race evictions, joiners serve mid-bootstrap.
    PhasePlan p;
    p.name = "churn";
    p.cfg = base_cfg(2, 30);
    p.cfg.churn_fail_rate = 0.02;
    p.cfg.churn_join_rate = 0.02;
    p.cfg.bootstrap.evict_unresponsive = true;
    p.cfg.bootstrap.tombstone_ttl_cycles = 5;
    p.wl = retry_wl;
    p.wl_from_cycle = 14;
    p.wl_to_cycle = 26;
    p.cast_cycles = {27, 28};
    p.quiesce_cycles = 28;
    plans.push_back(std::move(p));
  }
  {
    // HEAL: the partition_heal scenario with traffic flowing throughout —
    // requests into the far side retry across the cut window (cycles 4..16)
    // and resolve once it heals; broadcasts launch post-heal.
    PhasePlan p;
    p.name = "heal";
    p.cfg = base_cfg(3, 32);
    p.cfg.bootstrap.evict_unresponsive = true;
    p.cfg.bootstrap.tombstone_ttl_cycles = 5;
    p.wl = retry_wl;
    const SimTime delta = p.cfg.bootstrap.delta;
    const SimTime epoch = p.cfg.warmup_cycles * delta;
    PartitionSpec cut;
    cut.window = {epoch + 4 * delta, epoch + 16 * delta};
    cut.kind = PartitionSpec::Kind::Cut;
    cut.value = static_cast<std::uint32_t>(n / 2);
    p.cfg.fault_plan.partitions.push_back(cut);
    p.wl_from_cycle = 2;
    p.wl_to_cycle = 28;
    p.cast_cycles = {29, 30};
    p.quiesce_cycles = 28;
    plans.push_back(std::move(p));
  }

  std::printf("=== Workload over the bootstrapped overlay: %zu nodes, seed %llu ===\n", n,
              static_cast<unsigned long long>(seed));
  std::vector<PhaseOutcome> phases;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    DriverConfig dc;
    dc.batch = 8;
    dc.period = plans[i].cfg.bootstrap.delta / 4;
    dc.put_fraction = 0.5;
    dc.value_bytes = 64;
    dc.seed = seed + i;
    std::fprintf(stderr, "running phase %s...\n", plans[i].name.c_str());
    phases.push_back(run_phase(plans[i], dc));
  }

  Table table({"phase", "issued", "answered", "goodput", "timeout", "unroutable",
               "rtt_p50", "rtt_p95", "rtt_p99", "hops", "cast_cov", "cast_dup"});
  for (const PhaseOutcome& ph : phases) {
    const WorkloadSummary& w = ph.wl;
    table.add_row({ph.name, std::to_string(w.issued()), std::to_string(w.answered()),
                   Table::num(w.goodput(), 4), std::to_string(w.timeouts),
                   std::to_string(w.unroutable), Table::num(w.rtt_p50, 1),
                   Table::num(w.rtt_p95, 1), Table::num(w.rtt_p99, 1),
                   Table::num(w.hops_mean, 2), Table::num(ph.cov.coverage(), 4),
                   std::to_string(ph.cov.duplicates)});

    report.add_run(ph.name, ph.result);
    report.add_events(ph.total_events - ph.result.events_dispatched);
    report.add_metric(ph.name + " goodput", w.goodput());
    report.add_metric(ph.name + " rtt_p50", w.rtt_p50);
    report.add_metric(ph.name + " rtt_p95", w.rtt_p95);
    report.add_metric(ph.name + " rtt_p99", w.rtt_p99);
    report.add_metric(ph.name + " requests", static_cast<double>(w.issued()));
    report.add_metric(ph.name + " answered", static_cast<double>(w.answered()));
    report.add_metric(ph.name + " timeouts", static_cast<double>(w.timeouts));
    report.add_metric(ph.name + " unroutable", static_cast<double>(w.unroutable));
    report.add_metric(ph.name + " hops_mean", w.hops_mean);
    report.add_metric(ph.name + " cast_coverage", ph.cov.coverage());
    report.add_metric(ph.name + " cast_duplicates",
                      static_cast<double>(ph.cov.duplicates));
    // Counter rows (informational, not gated): zero for the retry-off phases.
    report.add_metric(ph.name + " retry.kv", static_cast<double>(w.kv_retries));
    report.add_metric(ph.name + " hedge.sent", static_cast<double>(w.hedges_sent));
    report.add_metric(ph.name + " hedge.win", static_cast<double>(w.hedge_wins));
    if (ph.has_spans) report.set_spans(ph.spans);  // last phase wins (heal)
  }
  std::printf("%s\n", table.render().c_str());

  if (!summary_path.empty()) write_summary(summary_path, seed, n, phases);
  report.write();
  return 0;
}
