file(REMOVE_RECURSE
  "CMakeFiles/baseline_join.dir/baseline_join.cpp.o"
  "CMakeFiles/baseline_join.dir/baseline_join.cpp.o.d"
  "baseline_join"
  "baseline_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
