# Empty dependencies file for baseline_join.
# This may be replaced when dependencies are built.
