file(REMOVE_RECURSE
  "CMakeFiles/chord_on_demand.dir/chord_on_demand.cpp.o"
  "CMakeFiles/chord_on_demand.dir/chord_on_demand.cpp.o.d"
  "chord_on_demand"
  "chord_on_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_on_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
