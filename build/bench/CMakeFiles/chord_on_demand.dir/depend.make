# Empty dependencies file for chord_on_demand.
# This may be replaced when dependencies are built.
