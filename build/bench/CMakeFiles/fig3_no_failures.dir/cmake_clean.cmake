file(REMOVE_RECURSE
  "CMakeFiles/fig3_no_failures.dir/fig3_no_failures.cpp.o"
  "CMakeFiles/fig3_no_failures.dir/fig3_no_failures.cpp.o.d"
  "fig3_no_failures"
  "fig3_no_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_no_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
