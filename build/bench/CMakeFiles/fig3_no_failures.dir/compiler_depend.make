# Empty compiler generated dependencies file for fig3_no_failures.
# This may be replaced when dependencies are built.
