file(REMOVE_RECURSE
  "CMakeFiles/fig4_message_drop.dir/fig4_message_drop.cpp.o"
  "CMakeFiles/fig4_message_drop.dir/fig4_message_drop.cpp.o.d"
  "fig4_message_drop"
  "fig4_message_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_message_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
