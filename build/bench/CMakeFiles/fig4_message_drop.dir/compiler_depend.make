# Empty compiler generated dependencies file for fig4_message_drop.
# This may be replaced when dependencies are built.
