file(REMOVE_RECURSE
  "CMakeFiles/massive_join.dir/massive_join.cpp.o"
  "CMakeFiles/massive_join.dir/massive_join.cpp.o.d"
  "massive_join"
  "massive_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massive_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
