# Empty compiler generated dependencies file for massive_join.
# This may be replaced when dependencies are built.
