file(REMOVE_RECURSE
  "CMakeFiles/merge_split.dir/merge_split.cpp.o"
  "CMakeFiles/merge_split.dir/merge_split.cpp.o.d"
  "merge_split"
  "merge_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
