# Empty dependencies file for merge_split.
# This may be replaced when dependencies are built.
