file(REMOVE_RECURSE
  "CMakeFiles/newscast_service.dir/newscast_service.cpp.o"
  "CMakeFiles/newscast_service.dir/newscast_service.cpp.o.d"
  "newscast_service"
  "newscast_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/newscast_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
