# Empty compiler generated dependencies file for newscast_service.
# This may be replaced when dependencies are built.
