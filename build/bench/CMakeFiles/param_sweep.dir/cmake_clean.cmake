file(REMOVE_RECURSE
  "CMakeFiles/param_sweep.dir/param_sweep.cpp.o"
  "CMakeFiles/param_sweep.dir/param_sweep.cpp.o.d"
  "param_sweep"
  "param_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
