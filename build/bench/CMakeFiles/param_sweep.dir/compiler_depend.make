# Empty compiler generated dependencies file for param_sweep.
# This may be replaced when dependencies are built.
