file(REMOVE_RECURSE
  "CMakeFiles/proximity_k.dir/proximity_k.cpp.o"
  "CMakeFiles/proximity_k.dir/proximity_k.cpp.o.d"
  "proximity_k"
  "proximity_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
