# Empty compiler generated dependencies file for proximity_k.
# This may be replaced when dependencies are built.
