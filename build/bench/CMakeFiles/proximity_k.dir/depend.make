# Empty dependencies file for proximity_k.
# This may be replaced when dependencies are built.
