file(REMOVE_RECURSE
  "CMakeFiles/catastrophic_recovery.dir/catastrophic_recovery.cpp.o"
  "CMakeFiles/catastrophic_recovery.dir/catastrophic_recovery.cpp.o.d"
  "catastrophic_recovery"
  "catastrophic_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catastrophic_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
