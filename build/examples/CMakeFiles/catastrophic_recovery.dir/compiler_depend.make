# Empty compiler generated dependencies file for catastrophic_recovery.
# This may be replaced when dependencies are built.
