file(REMOVE_RECURSE
  "CMakeFiles/dht_lookup.dir/dht_lookup.cpp.o"
  "CMakeFiles/dht_lookup.dir/dht_lookup.cpp.o.d"
  "dht_lookup"
  "dht_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dht_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
