# Empty compiler generated dependencies file for dht_lookup.
# This may be replaced when dependencies are built.
