file(REMOVE_RECURSE
  "CMakeFiles/merge_networks.dir/merge_networks.cpp.o"
  "CMakeFiles/merge_networks.dir/merge_networks.cpp.o.d"
  "merge_networks"
  "merge_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
