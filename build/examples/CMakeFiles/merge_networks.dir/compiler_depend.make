# Empty compiler generated dependencies file for merge_networks.
# This may be replaced when dependencies are built.
