file(REMOVE_RECURSE
  "CMakeFiles/timeslice_multiplexing.dir/timeslice_multiplexing.cpp.o"
  "CMakeFiles/timeslice_multiplexing.dir/timeslice_multiplexing.cpp.o.d"
  "timeslice_multiplexing"
  "timeslice_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeslice_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
