# Empty dependencies file for timeslice_multiplexing.
# This may be replaced when dependencies are built.
