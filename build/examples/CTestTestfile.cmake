# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--n" "512" "--seed" "3")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_merge_networks "/root/repo/build/examples/merge_networks" "--n" "1024" "--seed" "3")
set_tests_properties(example_merge_networks PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_catastrophic_recovery "/root/repo/build/examples/catastrophic_recovery" "--n" "1024" "--seed" "3")
set_tests_properties(example_catastrophic_recovery PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_timeslice_multiplexing "/root/repo/build/examples/timeslice_multiplexing" "--n" "512" "--seed" "3")
set_tests_properties(example_timeslice_multiplexing PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dht_lookup "/root/repo/build/examples/dht_lookup" "--n" "512" "--seed" "3")
set_tests_properties(example_dht_lookup PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
