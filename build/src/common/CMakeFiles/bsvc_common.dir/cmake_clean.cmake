file(REMOVE_RECURSE
  "CMakeFiles/bsvc_common.dir/flags.cpp.o"
  "CMakeFiles/bsvc_common.dir/flags.cpp.o.d"
  "CMakeFiles/bsvc_common.dir/logging.cpp.o"
  "CMakeFiles/bsvc_common.dir/logging.cpp.o.d"
  "CMakeFiles/bsvc_common.dir/rng.cpp.o"
  "CMakeFiles/bsvc_common.dir/rng.cpp.o.d"
  "CMakeFiles/bsvc_common.dir/stats.cpp.o"
  "CMakeFiles/bsvc_common.dir/stats.cpp.o.d"
  "CMakeFiles/bsvc_common.dir/table.cpp.o"
  "CMakeFiles/bsvc_common.dir/table.cpp.o.d"
  "libbsvc_common.a"
  "libbsvc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsvc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
