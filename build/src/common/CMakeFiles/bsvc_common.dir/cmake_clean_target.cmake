file(REMOVE_RECURSE
  "libbsvc_common.a"
)
