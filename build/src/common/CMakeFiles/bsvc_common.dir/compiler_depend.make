# Empty compiler generated dependencies file for bsvc_common.
# This may be replaced when dependencies are built.
