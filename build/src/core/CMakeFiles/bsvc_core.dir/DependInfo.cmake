
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bootstrap.cpp" "src/core/CMakeFiles/bsvc_core.dir/bootstrap.cpp.o" "gcc" "src/core/CMakeFiles/bsvc_core.dir/bootstrap.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/bsvc_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/bsvc_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/leaf_set.cpp" "src/core/CMakeFiles/bsvc_core.dir/leaf_set.cpp.o" "gcc" "src/core/CMakeFiles/bsvc_core.dir/leaf_set.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/bsvc_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/bsvc_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/perfect_tables.cpp" "src/core/CMakeFiles/bsvc_core.dir/perfect_tables.cpp.o" "gcc" "src/core/CMakeFiles/bsvc_core.dir/perfect_tables.cpp.o.d"
  "/root/repo/src/core/prefix_table.cpp" "src/core/CMakeFiles/bsvc_core.dir/prefix_table.cpp.o" "gcc" "src/core/CMakeFiles/bsvc_core.dir/prefix_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/id/CMakeFiles/bsvc_id.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/bsvc_sampling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
