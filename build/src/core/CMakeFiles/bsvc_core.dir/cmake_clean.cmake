file(REMOVE_RECURSE
  "CMakeFiles/bsvc_core.dir/bootstrap.cpp.o"
  "CMakeFiles/bsvc_core.dir/bootstrap.cpp.o.d"
  "CMakeFiles/bsvc_core.dir/experiment.cpp.o"
  "CMakeFiles/bsvc_core.dir/experiment.cpp.o.d"
  "CMakeFiles/bsvc_core.dir/leaf_set.cpp.o"
  "CMakeFiles/bsvc_core.dir/leaf_set.cpp.o.d"
  "CMakeFiles/bsvc_core.dir/oracle.cpp.o"
  "CMakeFiles/bsvc_core.dir/oracle.cpp.o.d"
  "CMakeFiles/bsvc_core.dir/perfect_tables.cpp.o"
  "CMakeFiles/bsvc_core.dir/perfect_tables.cpp.o.d"
  "CMakeFiles/bsvc_core.dir/prefix_table.cpp.o"
  "CMakeFiles/bsvc_core.dir/prefix_table.cpp.o.d"
  "libbsvc_core.a"
  "libbsvc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsvc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
