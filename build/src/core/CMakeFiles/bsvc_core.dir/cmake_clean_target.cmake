file(REMOVE_RECURSE
  "libbsvc_core.a"
)
