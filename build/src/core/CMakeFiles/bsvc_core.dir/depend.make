# Empty dependencies file for bsvc_core.
# This may be replaced when dependencies are built.
