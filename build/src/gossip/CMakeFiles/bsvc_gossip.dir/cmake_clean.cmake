file(REMOVE_RECURSE
  "CMakeFiles/bsvc_gossip.dir/aggregation.cpp.o"
  "CMakeFiles/bsvc_gossip.dir/aggregation.cpp.o.d"
  "CMakeFiles/bsvc_gossip.dir/broadcast.cpp.o"
  "CMakeFiles/bsvc_gossip.dir/broadcast.cpp.o.d"
  "libbsvc_gossip.a"
  "libbsvc_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsvc_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
