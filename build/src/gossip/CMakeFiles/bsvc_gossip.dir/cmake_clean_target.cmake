file(REMOVE_RECURSE
  "libbsvc_gossip.a"
)
