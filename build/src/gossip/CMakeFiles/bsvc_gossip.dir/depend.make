# Empty dependencies file for bsvc_gossip.
# This may be replaced when dependencies are built.
