file(REMOVE_RECURSE
  "CMakeFiles/bsvc_id.dir/id_generator.cpp.o"
  "CMakeFiles/bsvc_id.dir/id_generator.cpp.o.d"
  "libbsvc_id.a"
  "libbsvc_id.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsvc_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
