file(REMOVE_RECURSE
  "libbsvc_id.a"
)
