# Empty dependencies file for bsvc_id.
# This may be replaced when dependencies are built.
