file(REMOVE_RECURSE
  "CMakeFiles/bsvc_net.dir/codec.cpp.o"
  "CMakeFiles/bsvc_net.dir/codec.cpp.o.d"
  "libbsvc_net.a"
  "libbsvc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsvc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
