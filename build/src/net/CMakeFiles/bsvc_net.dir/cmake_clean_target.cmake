file(REMOVE_RECURSE
  "libbsvc_net.a"
)
