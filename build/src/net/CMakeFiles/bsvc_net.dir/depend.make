# Empty dependencies file for bsvc_net.
# This may be replaced when dependencies are built.
