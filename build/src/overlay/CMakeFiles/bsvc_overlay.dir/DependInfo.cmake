
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/chord.cpp" "src/overlay/CMakeFiles/bsvc_overlay.dir/chord.cpp.o" "gcc" "src/overlay/CMakeFiles/bsvc_overlay.dir/chord.cpp.o.d"
  "/root/repo/src/overlay/join_protocol.cpp" "src/overlay/CMakeFiles/bsvc_overlay.dir/join_protocol.cpp.o" "gcc" "src/overlay/CMakeFiles/bsvc_overlay.dir/join_protocol.cpp.o.d"
  "/root/repo/src/overlay/kademlia_lookup.cpp" "src/overlay/CMakeFiles/bsvc_overlay.dir/kademlia_lookup.cpp.o" "gcc" "src/overlay/CMakeFiles/bsvc_overlay.dir/kademlia_lookup.cpp.o.d"
  "/root/repo/src/overlay/pastry_router.cpp" "src/overlay/CMakeFiles/bsvc_overlay.dir/pastry_router.cpp.o" "gcc" "src/overlay/CMakeFiles/bsvc_overlay.dir/pastry_router.cpp.o.d"
  "/root/repo/src/overlay/proximity.cpp" "src/overlay/CMakeFiles/bsvc_overlay.dir/proximity.cpp.o" "gcc" "src/overlay/CMakeFiles/bsvc_overlay.dir/proximity.cpp.o.d"
  "/root/repo/src/overlay/tman.cpp" "src/overlay/CMakeFiles/bsvc_overlay.dir/tman.cpp.o" "gcc" "src/overlay/CMakeFiles/bsvc_overlay.dir/tman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsvc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/bsvc_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/id/CMakeFiles/bsvc_id.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
