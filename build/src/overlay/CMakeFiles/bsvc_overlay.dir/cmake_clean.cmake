file(REMOVE_RECURSE
  "CMakeFiles/bsvc_overlay.dir/chord.cpp.o"
  "CMakeFiles/bsvc_overlay.dir/chord.cpp.o.d"
  "CMakeFiles/bsvc_overlay.dir/join_protocol.cpp.o"
  "CMakeFiles/bsvc_overlay.dir/join_protocol.cpp.o.d"
  "CMakeFiles/bsvc_overlay.dir/kademlia_lookup.cpp.o"
  "CMakeFiles/bsvc_overlay.dir/kademlia_lookup.cpp.o.d"
  "CMakeFiles/bsvc_overlay.dir/pastry_router.cpp.o"
  "CMakeFiles/bsvc_overlay.dir/pastry_router.cpp.o.d"
  "CMakeFiles/bsvc_overlay.dir/proximity.cpp.o"
  "CMakeFiles/bsvc_overlay.dir/proximity.cpp.o.d"
  "CMakeFiles/bsvc_overlay.dir/tman.cpp.o"
  "CMakeFiles/bsvc_overlay.dir/tman.cpp.o.d"
  "libbsvc_overlay.a"
  "libbsvc_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsvc_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
