file(REMOVE_RECURSE
  "libbsvc_overlay.a"
)
