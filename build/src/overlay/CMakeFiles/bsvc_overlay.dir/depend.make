# Empty dependencies file for bsvc_overlay.
# This may be replaced when dependencies are built.
