
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/graph_metrics.cpp" "src/sampling/CMakeFiles/bsvc_sampling.dir/graph_metrics.cpp.o" "gcc" "src/sampling/CMakeFiles/bsvc_sampling.dir/graph_metrics.cpp.o.d"
  "/root/repo/src/sampling/newscast.cpp" "src/sampling/CMakeFiles/bsvc_sampling.dir/newscast.cpp.o" "gcc" "src/sampling/CMakeFiles/bsvc_sampling.dir/newscast.cpp.o.d"
  "/root/repo/src/sampling/oracle_sampler.cpp" "src/sampling/CMakeFiles/bsvc_sampling.dir/oracle_sampler.cpp.o" "gcc" "src/sampling/CMakeFiles/bsvc_sampling.dir/oracle_sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/id/CMakeFiles/bsvc_id.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsvc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
