file(REMOVE_RECURSE
  "CMakeFiles/bsvc_sampling.dir/graph_metrics.cpp.o"
  "CMakeFiles/bsvc_sampling.dir/graph_metrics.cpp.o.d"
  "CMakeFiles/bsvc_sampling.dir/newscast.cpp.o"
  "CMakeFiles/bsvc_sampling.dir/newscast.cpp.o.d"
  "CMakeFiles/bsvc_sampling.dir/oracle_sampler.cpp.o"
  "CMakeFiles/bsvc_sampling.dir/oracle_sampler.cpp.o.d"
  "libbsvc_sampling.a"
  "libbsvc_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsvc_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
