file(REMOVE_RECURSE
  "libbsvc_sampling.a"
)
