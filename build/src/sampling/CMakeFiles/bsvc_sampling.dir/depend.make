# Empty dependencies file for bsvc_sampling.
# This may be replaced when dependencies are built.
