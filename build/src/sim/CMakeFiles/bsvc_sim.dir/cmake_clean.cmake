file(REMOVE_RECURSE
  "CMakeFiles/bsvc_sim.dir/engine.cpp.o"
  "CMakeFiles/bsvc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/bsvc_sim.dir/scenario.cpp.o"
  "CMakeFiles/bsvc_sim.dir/scenario.cpp.o.d"
  "libbsvc_sim.a"
  "libbsvc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsvc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
