file(REMOVE_RECURSE
  "libbsvc_sim.a"
)
