# Empty compiler generated dependencies file for bsvc_sim.
# This may be replaced when dependencies are built.
