file(REMOVE_RECURSE
  "CMakeFiles/bsvc_wire.dir/message_codec.cpp.o"
  "CMakeFiles/bsvc_wire.dir/message_codec.cpp.o.d"
  "libbsvc_wire.a"
  "libbsvc_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsvc_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
