file(REMOVE_RECURSE
  "libbsvc_wire.a"
)
