# Empty dependencies file for bsvc_wire.
# This may be replaced when dependencies are built.
