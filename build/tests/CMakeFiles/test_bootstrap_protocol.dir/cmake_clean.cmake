file(REMOVE_RECURSE
  "CMakeFiles/test_bootstrap_protocol.dir/test_bootstrap_protocol.cpp.o"
  "CMakeFiles/test_bootstrap_protocol.dir/test_bootstrap_protocol.cpp.o.d"
  "test_bootstrap_protocol"
  "test_bootstrap_protocol.pdb"
  "test_bootstrap_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bootstrap_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
