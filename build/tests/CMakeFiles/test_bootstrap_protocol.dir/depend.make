# Empty dependencies file for test_bootstrap_protocol.
# This may be replaced when dependencies are built.
