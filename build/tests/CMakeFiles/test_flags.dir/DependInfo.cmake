
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_flags.cpp" "tests/CMakeFiles/test_flags.dir/test_flags.cpp.o" "gcc" "tests/CMakeFiles/test_flags.dir/test_flags.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsvc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/bsvc_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/bsvc_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/bsvc_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/bsvc_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bsvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/id/CMakeFiles/bsvc_id.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
