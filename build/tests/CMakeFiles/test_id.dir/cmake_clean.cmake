file(REMOVE_RECURSE
  "CMakeFiles/test_id.dir/test_id.cpp.o"
  "CMakeFiles/test_id.dir/test_id.cpp.o.d"
  "test_id"
  "test_id.pdb"
  "test_id[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
