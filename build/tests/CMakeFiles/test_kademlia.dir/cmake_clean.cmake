file(REMOVE_RECURSE
  "CMakeFiles/test_kademlia.dir/test_kademlia.cpp.o"
  "CMakeFiles/test_kademlia.dir/test_kademlia.cpp.o.d"
  "test_kademlia"
  "test_kademlia.pdb"
  "test_kademlia[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kademlia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
