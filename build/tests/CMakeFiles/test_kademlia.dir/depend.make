# Empty dependencies file for test_kademlia.
# This may be replaced when dependencies are built.
