file(REMOVE_RECURSE
  "CMakeFiles/test_pastry_router.dir/test_pastry_router.cpp.o"
  "CMakeFiles/test_pastry_router.dir/test_pastry_router.cpp.o.d"
  "test_pastry_router"
  "test_pastry_router.pdb"
  "test_pastry_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pastry_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
