# Empty compiler generated dependencies file for test_pastry_router.
# This may be replaced when dependencies are built.
