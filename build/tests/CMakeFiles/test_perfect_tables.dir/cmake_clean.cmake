file(REMOVE_RECURSE
  "CMakeFiles/test_perfect_tables.dir/test_perfect_tables.cpp.o"
  "CMakeFiles/test_perfect_tables.dir/test_perfect_tables.cpp.o.d"
  "test_perfect_tables"
  "test_perfect_tables.pdb"
  "test_perfect_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfect_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
