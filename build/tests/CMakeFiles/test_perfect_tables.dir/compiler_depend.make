# Empty compiler generated dependencies file for test_perfect_tables.
# This may be replaced when dependencies are built.
