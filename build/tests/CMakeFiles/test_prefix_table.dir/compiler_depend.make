# Empty compiler generated dependencies file for test_prefix_table.
# This may be replaced when dependencies are built.
