# Empty dependencies file for test_proximity.
# This may be replaced when dependencies are built.
