file(REMOVE_RECURSE
  "CMakeFiles/test_tman.dir/test_tman.cpp.o"
  "CMakeFiles/test_tman.dir/test_tman.cpp.o.d"
  "test_tman"
  "test_tman.pdb"
  "test_tman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
