# Empty dependencies file for test_tman.
# This may be replaced when dependencies are built.
