# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_flags[1]_include.cmake")
include("/root/repo/build/tests/test_id[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_newscast[1]_include.cmake")
include("/root/repo/build/tests/test_graph_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_leaf_set[1]_include.cmake")
include("/root/repo/build/tests/test_prefix_table[1]_include.cmake")
include("/root/repo/build/tests/test_perfect_tables[1]_include.cmake")
include("/root/repo/build/tests/test_bootstrap_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_pastry_router[1]_include.cmake")
include("/root/repo/build/tests/test_kademlia[1]_include.cmake")
include("/root/repo/build/tests/test_join[1]_include.cmake")
include("/root/repo/build/tests/test_chord[1]_include.cmake")
include("/root/repo/build/tests/test_tman[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_proximity[1]_include.cmake")
include("/root/repo/build/tests/test_maintenance[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_gossip[1]_include.cmake")
