// Recovery from catastrophic failure (paper §1/§2): 70% of a running overlay
// fails at once. The Newscast layer self-heals within a few cycles; the
// administrator then re-runs the bootstrapping service on the survivors
// (the restart hook), rebuilding near-perfect tables in a handful of cycles.
//
//   $ ./catastrophic_recovery [--n 4096] [--kill 0.7] [--seed 1]
#include <algorithm>
#include <cstdio>
#include <optional>

#include "common/flags.hpp"
#include "core/experiment.hpp"
#include "sampling/graph_metrics.hpp"
#include "sim/scenario.hpp"

using namespace bsvc;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 4096));
  const double kill = flags.get_double("kill", 0.7);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.finish();

  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.max_cycles = 120;
  cfg.stop_at_convergence = false;
  cfg.bootstrap.evict_unresponsive = true;  // liveness maintenance extension
  cfg.bootstrap.tombstone_ttl_cycles = 60;
  BootstrapExperiment exp(cfg);
  Engine& engine = exp.engine();

  const std::size_t kill_cycle = 25;
  const std::size_t restart_cycle = kill_cycle + 10;
  schedule_catastrophe(engine, (cfg.warmup_cycles + kill_cycle) * cfg.bootstrap.delta, kill);
  engine.schedule_call((cfg.warmup_cycles + restart_cycle) * cfg.bootstrap.delta,
                       [&exp](Engine& e) {
                         std::printf("  >>> administrator triggers re-bootstrap <<<\n");
                         for (const Address a : e.alive_addresses()) {
                           e.schedule_timer(a, exp.bootstrap_slot(), e.rng().below(kDelta),
                                            BootstrapProtocol::kRestartTimer);
                         }
                       });

  std::printf("Bootstrapping %zu nodes, then killing %.0f%% at cycle %zu...\n", n,
              kill * 100.0, kill_cycle);

  std::optional<ConvergenceOracle> oracle;
  oracle.emplace(engine, cfg.bootstrap, exp.bootstrap_slot());
  int initial_done = -1, recovered = -1;
  for (std::size_t cycle = 0; cycle < cfg.max_cycles; ++cycle) {
    engine.run_until((cfg.warmup_cycles + cycle + 1) * cfg.bootstrap.delta);
    if (cycle == kill_cycle) {
      const auto view = measure_view_graph(engine, exp.newscast_slot());
      std::printf("  cycle %2zu: CATASTROPHE — %zu survivors; view graph: %zu component(s), "
                  "%.1f%% dead entries\n",
                  cycle, engine.alive_count(), view.components,
                  100.0 * view.dead_entry_fraction);
      oracle.emplace(engine, cfg.bootstrap, exp.bootstrap_slot());
      continue;
    }
    const auto m = oracle->measure(/*check_liveness=*/true);
    if (cycle < kill_cycle && initial_done < 0 && m.converged()) {
      initial_done = static_cast<int>(cycle);
      std::printf("  cycle %2zu: initial overlay perfect\n", cycle);
    }
    if (cycle == restart_cycle) {
      const auto view = measure_view_graph(engine, exp.newscast_slot());
      std::printf("  cycle %2zu: sampling layer healed (%.2f%% dead entries) — restarting\n",
                  cycle, 100.0 * view.dead_entry_fraction);
    }
    if (cycle > restart_cycle) {
      const double worst = std::max(m.missing_leaf_fraction(), m.missing_prefix_fraction());
      if (cycle % 3 == 0) {
        std::printf("  cycle %2zu: survivors missing leaf %.2e, prefix %.2e\n", cycle,
                    m.missing_leaf_fraction(), m.missing_prefix_fraction());
      }
      if (recovered < 0 && worst <= 1e-3) {
        recovered = static_cast<int>(cycle);
        std::printf("  cycle %2zu: survivors' overlay at 99.9%% of perfect — recovered\n",
                    cycle);
        break;
      }
    }
  }

  if (recovered < 0) {
    std::printf("recovery incomplete within %zu cycles\n", cfg.max_cycles);
    return 1;
  }
  std::printf("\nRecovery took %d cycles from the administrator's restart signal.\n",
              recovered - static_cast<int>(restart_cycle));
  return 0;
}
