// Consuming the bootstrap output as a DHT: Pastry-style greedy routing and
// Kademlia-style iterative lookups over the same freshly built tables
// (paper §4: "Many overlay routing substrates are based on this prefix
// table: for example Pastry, Kademlia, Tapestry and Bamboo").
//
// Prints hop-count distributions and correctness at several points during
// the bootstrap, showing the tables becoming usable well before perfection.
//
//   $ ./dht_lookup [--n 4096] [--seed 1]
#include <cstdio>

#include "common/flags.hpp"
#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "overlay/kademlia_lookup.hpp"
#include "overlay/pastry_router.hpp"

using namespace bsvc;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 4096));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.finish();

  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.max_cycles = 60;
  BootstrapExperiment exp(cfg);

  std::printf("Probing lookup quality while the bootstrap converges (N=%zu):\n", n);
  std::printf("  %-6s  %-14s  %-14s  %-12s  %-10s\n", "cycle", "missing_leaf",
              "pastry_correct", "pastry_hops", "kad_exact");
  const auto result = exp.run([&](std::size_t cycle, const ConvergenceMetrics& m) {
    if (cycle % 4 != 0 && !m.converged()) return;
    const ConvergenceOracle oracle(exp.engine(), cfg.bootstrap, exp.bootstrap_slot());
    const PastryRouter router(exp.engine(), exp.bootstrap_slot());
    const KademliaLookup kad(exp.engine(), exp.bootstrap_slot());
    Rng rng(seed + cycle);
    const auto p = router.run_lookups(oracle, rng, 300);
    const auto k = kad.run_lookups(oracle, rng, 100);
    std::printf("  %-6zu  %-14.3e  %-14.3f  %-12.2f  %-10.3f\n", cycle,
                m.missing_leaf_fraction(), p.success_rate(), p.avg_hops, k.exact_rate());
  });

  if (result.converged_cycle < 0) {
    std::printf("did not converge\n");
    return 1;
  }

  // Final state: full hop distribution over the perfect tables.
  const ConvergenceOracle oracle(exp.engine(), cfg.bootstrap, exp.bootstrap_slot());
  const PastryRouter router(exp.engine(), exp.bootstrap_slot());
  Rng rng(seed + 99);
  Histogram hops(0.0, 8.0, 8);
  std::size_t wrong = 0;
  const auto& members = oracle.sorted_members();
  for (int i = 0; i < 3000; ++i) {
    const Address start = members[rng.below(members.size())].addr;
    const auto r = router.route(start, rng.next_u64(), oracle);
    if (!r.correct) ++wrong;
    hops.add(static_cast<double>(r.hops()));
  }
  std::printf("\nConverged at cycle %d. Pastry hop distribution over 3000 lookups "
              "(%zu wrong):\n%s", result.converged_cycle, wrong, hops.ascii(40).c_str());

  const KademliaLookup kad(exp.engine(), exp.bootstrap_slot());
  const auto ks = kad.run_lookups(oracle, rng, 500);
  std::printf("\nKademlia iterative FIND_NODE: %.1f%% exact, %.1f nodes queried per lookup.\n",
              100.0 * ks.exact_rate(), ks.avg_queries);
  return wrong == 0 ? 0 : 1;
}
