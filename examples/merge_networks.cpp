// Merging two organizations' overlays (paper §2: pools of resources should
// "freely and flexibly merge ... on demand").
//
// Two pools live in separate networks (a partition models the separate
// organizations). Each bootstraps its own perfect overlay. Then the
// partition heals — the organizational merge — and the still-running gossip
// absorbs both pools into one overlay covering the union, without any
// restart or administrator action.
//
//   $ ./merge_networks [--n 4096] [--seed 1]
#include <cmath>
#include <cstdio>

#include "common/flags.hpp"
#include "core/experiment.hpp"
#include "sim/scenario.hpp"

using namespace bsvc;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 4096));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.finish();

  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.max_cycles = 100;
  cfg.stop_at_convergence = false;
  cfg.initial_groups.resize(n);
  for (Address a = 0; a < n; ++a) cfg.initial_groups[a] = a < n / 2 ? 0 : 1;
  BootstrapExperiment exp(cfg);
  Engine& engine = exp.engine();

  std::printf("Organizations A and B: %zu nodes each, isolated networks.\n", n / 2);

  const std::size_t heal_cycle = 30;
  const auto newscast_slot = exp.newscast_slot();
  engine.schedule_call((cfg.warmup_cycles + heal_cycle) * cfg.bootstrap.delta,
                       [n, newscast_slot](Engine& e) {
                         std::printf("  >>> networks connected (merge!) — 10 cross-pool "
                                     "contacts handed out <<<\n");
                         heal_partition(e);
                         for (int i = 0; i < 10; ++i) {
                           const auto a = static_cast<Address>(e.rng().below(n / 2));
                           const auto b = static_cast<Address>(n / 2 + e.rng().below(n / 2));
                           dynamic_cast<NewscastProtocol&>(e.protocol(a, newscast_slot))
                               .add_contact(e.descriptor_of(b), e.now());
                         }
                       });

  std::vector<NodeDescriptor> pool_a, pool_b;
  for (Address a = 0; a < n; ++a) {
    (a < n / 2 ? pool_a : pool_b).push_back(engine.descriptor_of(a));
  }
  const ConvergenceOracle oracle_a(engine, pool_a, cfg.bootstrap, exp.bootstrap_slot());
  const ConvergenceOracle oracle_b(engine, pool_b, cfg.bootstrap, exp.bootstrap_slot());

  int a_done = -1, b_done = -1;
  const auto result = exp.run([&](std::size_t cycle, const ConvergenceMetrics& global) {
    if (a_done < 0 && oracle_a.measure().converged()) {
      a_done = static_cast<int>(cycle);
      std::printf("  cycle %2zu: organization A's overlay is perfect\n", cycle);
    }
    if (b_done < 0 && oracle_b.measure().converged()) {
      b_done = static_cast<int>(cycle);
      std::printf("  cycle %2zu: organization B's overlay is perfect\n", cycle);
    }
    if (cycle > heal_cycle && cycle % 5 == 0) {
      std::printf("  cycle %2zu: merged overlay missing leaf %.2e, prefix %.2e\n", cycle,
                  global.missing_leaf_fraction(), global.missing_prefix_fraction());
    }
  });

  if (result.converged_cycle < 0) {
    std::printf("merge did not complete within %zu cycles\n", cfg.max_cycles);
    return 1;
  }
  std::printf("\nMerged %zu+%zu-node overlay perfect at cycle %d — %d cycles after the "
              "networks connected (log2 of the union: %.1f).\n",
              n / 2, n / 2, result.converged_cycle,
              result.converged_cycle - static_cast<int>(heal_cycle),
              std::log2(static_cast<double>(n)));
  std::printf("No restart, no coordinator: the running gossip simply absorbed the union.\n");
  return 0;
}
