// Quickstart: jump-start a prefix-routed overlay from scratch.
//
// Builds a pool of nodes whose only functioning layer is the Newscast peer
// sampling service, runs the bootstrapping service until every node holds a
// perfect leaf set and prefix table, and then uses the freshly built tables
// to route a few keys Pastry-style.
//
//   $ ./quickstart [--n 4096] [--seed 1]
#include <cmath>
#include <cstdio>

#include "common/flags.hpp"
#include "core/experiment.hpp"
#include "overlay/pastry_router.hpp"

using namespace bsvc;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  ExperimentConfig cfg;
  cfg.n = static_cast<std::size_t>(flags.get_int("n", 4096));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.finish();

  std::printf("Bootstrapping a %zu-node overlay from scratch (b=4, k=3, c=20, cr=30)\n",
              cfg.n);
  std::printf("Phase 1: Newscast warmup (%zu cycles) — the 'liquid' bottom layer\n",
              cfg.warmup_cycles);
  std::printf("Phase 2: bootstrapping service, all nodes started within one Δ\n\n");

  BootstrapExperiment exp(cfg);
  const auto result = exp.run([](std::size_t cycle, const ConvergenceMetrics& m) {
    std::printf("  cycle %2zu: missing leaf %.2e, missing prefix %.2e\n", cycle,
                m.missing_leaf_fraction(), m.missing_prefix_fraction());
  });

  if (result.converged_cycle < 0) {
    std::printf("did not converge within %zu cycles\n", cfg.max_cycles);
    return 1;
  }
  std::printf("\nPerfect leaf sets and prefix tables at ALL %zu nodes after %d cycles.\n",
              cfg.n, result.converged_cycle + 1);
  std::printf("Cost: %.1f bootstrap messages/node, avg message %.0f bytes (max %llu).\n\n",
              static_cast<double>(result.bootstrap_stats.requests_sent +
                                  result.bootstrap_stats.replies_sent) /
                  static_cast<double>(cfg.n),
              result.avg_message_bytes,
              static_cast<unsigned long long>(result.max_message_bytes));

  // The tables are immediately usable by a Pastry-style router.
  const ConvergenceOracle oracle(exp.engine(), cfg.bootstrap, exp.bootstrap_slot());
  const PastryRouter router(exp.engine(), exp.bootstrap_slot());
  Rng rng(cfg.seed + 1);
  std::printf("Routing 5 random keys through the new overlay:\n");
  for (int i = 0; i < 5; ++i) {
    const Address start = static_cast<Address>(rng.below(cfg.n));
    const NodeId key = rng.next_u64();
    const auto r = router.route(start, key, oracle);
    std::printf("  key %016llx from node %u -> owner %u in %zu hops (%s)\n",
                static_cast<unsigned long long>(key), start, r.root, r.hops(),
                r.correct ? "correct" : "WRONG");
  }
  const auto stats = router.run_lookups(oracle, rng, 2000);
  std::printf("2000 random lookups: %.1f%% correct, %.2f hops avg (log16 N = %.2f)\n",
              100.0 * stats.success_rate(), stats.avg_hops,
              std::log2(static_cast<double>(cfg.n)) / 4.0);
  return stats.success_rate() == 1.0 ? 0 : 1;
}
