// Multiplexing short-lived applications over a shared pool (paper §1: "admit
// allocation ... of pools of resources for relatively short periods to users
// who could then build their own infrastructures on demand and abandon them
// when they are done").
//
// The pool's only persistent layer is Newscast. Each time slice:
//   1. the administrator floods a START signal via gossip broadcast;
//   2. nodes estimate the pool size with gossip aggregation (to know how
//      many cycles suffice for convergence);
//   3. the bootstrapping service builds a fresh DHT (the per-tenant
//      parameters differ per slice!);
//   4. the tenant application routes lookups over its private overlay;
//   5. the slice ends and the overlay is simply abandoned — the next tenant
//      re-bootstraps from the liquid pool.
//
//   $ ./timeslice_multiplexing [--n 2048] [--seed 1]
#include <cmath>
#include <cstdio>

#include "common/flags.hpp"
#include "core/experiment.hpp"
#include "gossip/aggregation.hpp"
#include "gossip/broadcast.hpp"
#include "overlay/pastry_router.hpp"
#include "sampling/oracle_sampler.hpp"

using namespace bsvc;

namespace {

// One tenant slice: bootstrap with tenant-specific parameters, run lookups,
// abandon. Returns cycles used.
int run_slice(const char* tenant, std::size_t n, std::uint64_t seed, BootstrapConfig params) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.bootstrap = params;
  cfg.max_cycles = 80;
  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  if (result.converged_cycle < 0) {
    std::printf("  [%s] did not converge!\n", tenant);
    return -1;
  }
  const ConvergenceOracle oracle(exp.engine(), cfg.bootstrap, exp.bootstrap_slot());
  const PastryRouter router(exp.engine(), exp.bootstrap_slot());
  Rng rng(seed + 5);
  const auto lookups = router.run_lookups(oracle, rng, 500);
  std::printf("  [%s] overlay (b=%d, k=%d, c=%zu) perfect in %d cycles; 500 lookups: "
              "%.1f%% correct, %.2f hops avg; slice abandoned.\n",
              tenant, params.digits.bits_per_digit, params.k, params.c,
              result.converged_cycle + 1, 100.0 * lookups.success_rate(), lookups.avg_hops);
  return result.converged_cycle;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 2048));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.finish();

  std::printf("A pool of %zu nodes; only the sampling service persists between tenants.\n\n",
              n);

  // --- Step 1+2 on the persistent layer: broadcast START, estimate size ---
  {
    Engine engine(seed);
    for (std::size_t i = 0; i < n; ++i) {
      const Address a = engine.add_node(static_cast<NodeId>(i * 2654435761u + 3));
      auto sampler = std::make_unique<OracleSamplerProtocol>(engine, a);
      auto* sp = sampler.get();
      engine.attach(a, std::move(sampler));
      engine.attach(a, std::make_unique<BroadcastProtocol>(BroadcastConfig{}, sp));
      engine.attach(a, std::make_unique<AggregationProtocol>(AggregationConfig{}, sp,
                                                             a == 0 ? 1.0 : 0.0));
      engine.start_node(a);
    }
    engine.schedule_call(0, [](Engine& e) {
      Context ctx(e, 0, 1);
      dynamic_cast<BroadcastProtocol&>(e.protocol(0, 1)).seed(ctx, /*tag=*/1);
    });
    engine.run_until(30 * kDelta);
    SimTime last_infection = 0;
    for (Address a = 0; a < n; ++a) {
      const auto& b = dynamic_cast<const BroadcastProtocol&>(engine.protocol(a, 1));
      if (b.infected()) last_infection = std::max(last_infection, b.infected_at());
    }
    const auto& agg = dynamic_cast<const AggregationProtocol&>(engine.protocol(5, 2));
    std::printf("START signal reached all nodes within %.1f cycles via gossip broadcast.\n",
                static_cast<double>(last_infection) / static_cast<double>(kDelta));
    std::printf("Gossip aggregation estimates pool size ~%.0f (true %zu) -> run "
                "~%.0f cycles per slice.\n\n",
                agg.size_estimate(), n,
                2.0 * std::log2(agg.size_estimate()) + 5.0);
  }

  // --- Tenants with different overlay needs, one per time slice -----------
  std::printf("Time slice 1: tenant 'index' wants a Pastry-style overlay (b=4).\n");
  BootstrapConfig pastry_like;  // defaults: b=4, k=3, c=20
  run_slice("index", n, seed + 1, pastry_like);

  std::printf("\nTime slice 2: tenant 'kv' wants Kademlia-style redundancy (b=2, k=5).\n");
  BootstrapConfig kad_like;
  kad_like.digits = DigitConfig{2};
  kad_like.k = 5;
  run_slice("kv", n, seed + 2, kad_like);

  std::printf("\nTime slice 3: tenant 'cache' wants slim tables (b=4, k=1, c=8).\n");
  BootstrapConfig slim;
  slim.k = 1;
  slim.c = 8;
  run_slice("cache", n, seed + 3, slim);

  std::printf("\nThree tenants served back-to-back; each overlay was built from scratch in\n"
              "a logarithmic number of cycles and discarded afterwards — no long-lived\n"
              "structured state, exactly the paper's time-slice vision.\n");
  return 0;
}
