#!/usr/bin/env bash
# Sanitizer gate: configures a second build tree with Address- and
# UB-Sanitizer, builds everything and runs the tier-1 test suite under it.
# Catches lifetime bugs (e.g. in the event queue's slot pools and the thread
# pool) that the plain build cannot.
#
# Usage: scripts/check.sh [build_dir]   (default: build-asan)
set -euo pipefail

build_dir="${1:-build-asan}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "${build_dir}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

cmake --build "${build_dir}" -j "${jobs}"

ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

# Second pass over the golden-replay witnesses with the observability layer
# fully enabled (JSONL trace sink + per-cycle sampler): the witnesses must
# hold bit-for-bit, and the sink/sampler code paths run under ASan/UBSan.
obs_dir="$(mktemp -d)"
trap 'rm -rf "${obs_dir}"' EXIT
BSVC_GOLDEN_OBS="${obs_dir}" \
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -R 'GoldenReplay'
