#!/usr/bin/env bash
# Sanitizer gate: configures a second build tree under the chosen sanitizer,
# builds everything and runs the tier-1 test suite under it. Catches lifetime
# bugs (e.g. in the event queue's slot pools and the thread pool) that the
# plain build cannot.
#
# Usage: scripts/check.sh [build_dir] [sanitizer]
#   build_dir  defaults to build-<sanitizer>
#   sanitizer  asan  -> -fsanitize=address,undefined   (the default)
#              ubsan -> -fsanitize=undefined only; catches the same UB with
#                       far less memory overhead, and runs where ASan cannot
#                       (e.g. ptrace/ASLR-restricted CI runners)
set -euo pipefail

sanitizer="${2:-asan}"
case "${sanitizer}" in
  asan)  san_flags="address,undefined" ;;
  ubsan) san_flags="undefined" ;;
  *)
    echo "unknown sanitizer '${sanitizer}' (expected asan or ubsan)" >&2
    exit 2
    ;;
esac
build_dir="${1:-build-${sanitizer}}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "${build_dir}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=${san_flags} -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=${san_flags}"

cmake --build "${build_dir}" -j "${jobs}"

ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

# Second pass over the golden-replay witnesses with the observability layer
# fully enabled (JSONL trace sink + per-cycle sampler): the witnesses must
# hold bit-for-bit, and the sink/sampler code paths run under the sanitizer.
obs_dir="$(mktemp -d)"
trap 'rm -rf "${obs_dir}"' EXIT
BSVC_GOLDEN_OBS="${obs_dir}" \
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -R 'GoldenReplay'
