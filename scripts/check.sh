#!/usr/bin/env bash
# Sanitizer gate: configures a second build tree under the chosen sanitizer,
# builds everything and runs the tier-1 test suite under it. Catches lifetime
# bugs (e.g. in the event queue's slot pools and the thread pool) that the
# plain build cannot.
#
# Usage: scripts/check.sh [build_dir] [sanitizer]
#   build_dir  defaults to build-<sanitizer>
#   sanitizer  asan  -> -fsanitize=address,undefined   (the default)
#              ubsan -> -fsanitize=undefined only; catches the same UB with
#                       far less memory overhead, and runs where ASan cannot
#                       (e.g. ptrace/ASLR-restricted CI runners)
#              tsan  -> -fsanitize=thread; runs only the concurrency-heavy
#                       tests (parallel utilities + sharded engine). TSan is
#                       incompatible with ASan/UBSan in one binary and ~10x
#                       slower, so the full suite stays on the other gates.
set -euo pipefail

sanitizer="${2:-asan}"
test_filter=""
case "${sanitizer}" in
  asan)  san_flags="address,undefined" ;;
  ubsan) san_flags="undefined" ;;
  tsan)
    san_flags="thread"
    # The serial tests exercise no threads, and golden replays take far too
    # long under TSan's instrumentation; target the code that actually runs
    # worker crews. ThreadPool/ParallelFor/ParallelMap cover the thread-pool
    # utilities (tests/test_parallel.cpp), ParallelEngine the sharded window
    # engine (tests/test_parallel_engine.cpp — cross-K determinism under
    # real thread interleaving is exactly what TSan stresses), WindowCrew
    # the crew barrier itself.
    test_filter='ThreadPool|ParallelFor|ParallelMap|ParallelEngine|WindowCrew|HardwareThreads'
    ;;
  *)
    echo "unknown sanitizer '${sanitizer}' (expected asan, ubsan or tsan)" >&2
    exit 2
    ;;
esac
build_dir="${1:-build-${sanitizer}}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "${build_dir}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=${san_flags} -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=${san_flags}"

cmake --build "${build_dir}" -j "${jobs}"

if [[ -n "${test_filter}" ]]; then
  # --no-tests=error: a filter that silently matches nothing would turn
  # this gate green without running anything.
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
    -R "${test_filter}" --no-tests=error
  exit 0
fi

ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

# Chaos-soak smoke under the sanitizer: 24 seeded composite fault scenarios
# (partitions x loss x latency x crash x Byzantine) through the full stack
# with retries/hedging on, invariant oracles checked and a cross-shard
# digest replay — the fuzzer tier most likely to surface lifetime bugs.
"${build_dir}/bench/chaos_soak" --smoke

# Second pass over the golden-replay witnesses with the observability layer
# fully enabled (JSONL trace sink + per-cycle sampler): the witnesses must
# hold bit-for-bit, and the sink/sampler code paths run under the sanitizer.
obs_dir="$(mktemp -d)"
trap 'rm -rf "${obs_dir}"' EXIT
BSVC_GOLDEN_OBS="${obs_dir}" \
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -R 'GoldenReplay'
