#!/usr/bin/env python3
"""Allocation-budget gate over a scale-bench report's census section.

Reads one BENCH_scale.json (any report carrying an "alloc" section) and
fails when a census tier's steady-state allocs-per-exchange exceeds the
committed budget. Tiers carrying the steady-window fields
(steady_allocs_per_exchange / steady_exchanges, setup excluded) are judged
on those; older reports without them fall back to the whole-run
allocs_per_exchange. The budget comes from the report itself
("budget_allocs_per_exchange", written from the bench's pinned constant)
unless --budget overrides it — the override exists so CI can tighten the
gate without rebuilding.

Tiers that recorded no exchanges in the judged window are skipped with a
note: an aborted, zero-cycle, or converged-before-warm-cutoff run must
fail through its own exit status, not through a meaningless 0/0 ratio
here.

Usage: scripts/check_alloc_budget.py <report.json> [--budget F]

Exit status: 0 = every tier within budget, 1 = at least one tier over
budget (or the report lacks the census), 2 = unreadable input.
"""

import argparse
import json
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=Path)
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="override the report's committed allocs-per-exchange budget",
    )
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 2
    if not isinstance(report, dict):
        print(f"error: {args.report}: expected a JSON object", file=sys.stderr)
        return 2

    alloc = report.get("alloc")
    if not isinstance(alloc, dict):
        print(
            f"{args.report}: no \"alloc\" census section -- the bench lost its "
            "counting allocator or the report predates the census",
            file=sys.stderr,
        )
        return 1

    budget = args.budget
    if budget is None:
        budget = alloc.get("budget_allocs_per_exchange")
        if isinstance(budget, bool) or not isinstance(budget, (int, float)) or budget <= 0:
            print(
                f"error: {args.report}: census has no usable "
                f"budget_allocs_per_exchange ({budget!r}) and no --budget given",
                file=sys.stderr,
            )
            return 2
    budget = float(budget)

    tiers = alloc.get("tiers")
    if not isinstance(tiers, list) or not tiers:
        print(f"{args.report}: census has no tiers", file=sys.stderr)
        return 1

    failed = False
    for tier in tiers:
        if not isinstance(tier, dict):
            print(f"{args.report}: malformed census tier {tier!r}", file=sys.stderr)
            failed = True
            continue
        label = tier.get("label", "?")
        if "steady_allocs_per_exchange" in tier:
            window = "steady"
            exchanges = tier.get("steady_exchanges", 0)
            ape = tier.get("steady_allocs_per_exchange")
        else:
            window = "whole-run"
            exchanges = tier.get("exchanges", 0)
            ape = tier.get("allocs_per_exchange")
        if not isinstance(exchanges, (int, float)) or exchanges <= 0:
            print(f"{label}: no exchanges recorded -- skipped")
            continue
        if isinstance(ape, bool) or not isinstance(ape, (int, float)):
            print(f"{label}: allocs_per_exchange is not a number: {ape!r}", file=sys.stderr)
            failed = True
            continue
        over = float(ape) > budget
        verdict = f"OVER BUDGET (> {budget:g})" if over else "OK"
        print(
            f"{label}: {float(ape):.2f} {window} allocs/exchange "
            f"(budget {budget:g}) {verdict}"
        )
        failed = failed or over

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
