#!/usr/bin/env python3
"""Validator for the engine profiler's Chrome trace output (--profile).

Checks that a profile written by bench/scale (or any bench that forwards
--profile into ExperimentConfig::profile_path) is a loadable Chrome
trace-event file and that its accounting is coherent:

  1. Top level is an object with a non-empty "traceEvents" array (the
     object form, so chrome://tracing and Perfetto both load it).
  2. Every complete ("ph": "X") slice carries name/ts/dur/pid/tid with
     numeric ts/dur >= 0, and its name is one of the profiler's phase
     taxonomy {dispatch, drain, stall, idle}.
  3. Thread-name metadata ("ph": "M") covers every tid that emits slices.
  4. The "bsvc_profile" aggregate is present and its per-phase totals
     (dispatch + drain + stall + idle) cover >= --min-coverage of the
     measured window wall time (default 0.95). The profiler computes idle
     as the remainder of each shard's window, so anything below ~100%
     indicates an accounting bug, not measurement noise.
  5. Slice durations per phase sum to the aggregate's totals within
     --slice-tolerance (default 2%), unless events were dropped by the
     trace-event cap (then slices undercount by design and only the
     aggregate is gated).

Usage: scripts/check_profile.py <profile.json> [--min-coverage F]
                                [--slice-tolerance F]

Exit status: 0 = valid, 1 = structurally valid but accounting failed,
2 = unreadable / malformed input.
"""

import argparse
import json
import sys
from pathlib import Path

PHASES = ("dispatch", "drain", "stall", "idle")


def die(msg: str, code: int) -> None:
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(code)


def is_number(value) -> bool:
    return not isinstance(value, bool) and isinstance(value, (int, float))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("profile", type=Path)
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=0.95,
        help="minimum fraction of window wall time the phase totals must "
        "cover (default 0.95)",
    )
    parser.add_argument(
        "--slice-tolerance",
        type=float,
        default=0.02,
        help="allowed relative gap between slice-duration sums and the "
        "aggregate phase totals (default 0.02)",
    )
    args = parser.parse_args()

    try:
        with open(args.profile, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        die(f"cannot read {args.profile}: {err}", 2)
    if not isinstance(trace, dict):
        die(f"{args.profile}: expected the object trace form, got "
            f"{type(trace).__name__}", 2)

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        die(f"{args.profile}: 'traceEvents' missing, not a list, or empty", 2)

    slice_tids = set()
    named_tids = set()
    slice_ns_by_phase = {phase: 0 for phase in PHASES}
    slice_count = 0
    counter_count = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            die(f"traceEvents[{i}]: not an object", 2)
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "thread_name":
                named_tids.add(ev.get("tid"))
            continue
        if ph == "C":
            counter_count += 1
            continue
        if ph != "X":
            die(f"traceEvents[{i}]: unexpected phase {ph!r} "
                f"(profiler emits only M/X/C)", 2)
        for field in ("name", "ts", "dur", "pid", "tid"):
            if field not in ev:
                die(f"traceEvents[{i}]: X event missing '{field}'", 2)
        if not is_number(ev["ts"]) or not is_number(ev["dur"]):
            die(f"traceEvents[{i}]: ts/dur must be numbers", 2)
        if ev["ts"] < 0 or ev["dur"] < 0:
            die(f"traceEvents[{i}]: negative ts/dur", 2)
        if ev["name"] not in PHASES:
            die(f"traceEvents[{i}]: slice name {ev['name']!r} outside the "
                f"phase taxonomy {PHASES}", 2)
        slice_tids.add(ev["tid"])
        # ts/dur are microseconds in the trace-event format.
        slice_ns_by_phase[ev["name"]] += ev["dur"] * 1000.0
        slice_count += 1

    if slice_count == 0:
        die("no complete ('X') slices in the trace", 2)
    missing = slice_tids - named_tids
    if missing:
        die(f"tids with slices but no thread_name metadata: {sorted(missing)}", 2)

    agg = trace.get("bsvc_profile")
    if not isinstance(agg, dict):
        die("'bsvc_profile' aggregate section missing", 2)
    for field in ("shards", "windows", "wall_ns", "dispatch_ns", "drain_ns",
                  "stall_ns", "idle_ns", "trace_events_dropped"):
        if not is_number(agg.get(field)):
            die(f"bsvc_profile.{field} missing or not a number", 2)

    wall_ns = agg["wall_ns"]
    phase_ns = (agg["dispatch_ns"] + agg["drain_ns"] + agg["stall_ns"]
                + agg["idle_ns"])
    # wall_ns is summed over windows (coordinator wall), phase totals over
    # shards x windows; per shard each window partitions exactly, so the
    # phase sum is shards x wall.
    expected_ns = wall_ns * agg["shards"]
    coverage = phase_ns / expected_ns if expected_ns > 0 else 0.0
    print(f"{args.profile}: {int(agg['shards'])} shards, "
          f"{int(agg['windows'])} windows, {slice_count} slices, "
          f"{counter_count} counter samples")
    print(f"  phase totals cover {coverage:.1%} of window wall time "
          f"(threshold {args.min_coverage:.0%})")
    ok = True
    if coverage < args.min_coverage:
        print(f"  FAIL: phase coverage below {args.min_coverage:.0%}")
        ok = False

    if agg["trace_events_dropped"] > 0:
        print(f"  note: {int(agg['trace_events_dropped'])} trace events "
              "dropped by the ring cap -- slice sums not gated")
    else:
        for phase, agg_key in (("dispatch", "dispatch_ns"), ("drain", "drain_ns"),
                               ("stall", "stall_ns"), ("idle", "idle_ns")):
            agg_ns = agg[agg_key]
            got_ns = slice_ns_by_phase[phase]
            if agg_ns <= 0:
                continue
            rel = abs(got_ns - agg_ns) / agg_ns
            # The only loss is ns -> whole-microsecond truncation per slice.
            if rel > args.slice_tolerance:
                print(f"  FAIL: {phase} slices sum to {got_ns / 1e6:.3f} ms "
                      f"but aggregate says {agg_ns / 1e6:.3f} ms "
                      f"({rel:.1%} > {args.slice_tolerance:.0%})")
                ok = False

    print("  OK" if ok else "  INVALID")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
