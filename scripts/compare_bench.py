#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json reports.

Compares each current report against its committed baseline (same file name)
and fails when `events_per_sec` regressed by more than the tolerance
(default 25%; override with --tolerance or the BSVC_BENCH_TOLERANCE env var,
both as a fraction, e.g. 0.25). Benches present on only one side are
reported but never fail the gate, so adding a bench does not require
regenerating every baseline in the same commit.

Per-tier gating: when a report carries a `metrics` object, every
"<label> events_per_sec" series present on BOTH sides is gated
individually. Tiers present on only one side (a baseline regenerated with
--full or --xl, a CI run covering fewer sizes) are reported and skipped —
never a failure and never a KeyError. The aggregate top-level
events_per_sec is only gated when both sides cover the same tier set; with
different tier mixes the aggregate is not comparable and is skipped with a
note.

Workload gating: metrics named "<phase> goodput" / "<phase> cast_coverage"
(higher is better) and "<phase> timeouts" / "rtt_p50" / "rtt_p95" /
"rtt_p99" (lower is better) are gated with the same tolerance whenever
present on both sides — the bench/workload request-latency and goodput rows
and the bench/degradation per-arm rows. These are deterministic functions
of the seed, so any movement is a code change, not noise. One-sided keys
are reported and skipped, like tiers; a zero baseline (e.g. "loss0_base
timeouts") is skipped rather than divided by.

Memory gating: metrics named "<label> allocs_per_exchange" and
"<label> peak_rss_bytes" (both lower is better) are gated the same way —
the scale bench's per-tier allocation census and per-tier RSS peaks. A
zero or non-positive baseline (a tier that recorded no exchanges, or an
RSS probe that failed) is skipped with a note rather than divided by, and
keys present on only one side (a baseline predating the census) are
skipped, so old and new reports gate against each other cleanly.

Besides throughput and the workload families, nothing else is gated. Any
other top-level section a report carries — "spans" and "prof" from --spans /
--profile runs, or sections future benches add — is ignored, so reports
with and without those sections gate against each other cleanly.

Usage: scripts/compare_bench.py <baseline_dir> <current_dir> [--tolerance F]

Exit status: 0 = no regression, 1 = at least one bench regressed,
2 = usage / unreadable input.
"""

import argparse
import json
import os
import sys
from pathlib import Path


def load_reports(directory: Path) -> dict:
    """Maps file name -> parsed report for every BENCH_*.json in `directory`."""
    reports = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: cannot read {path}: {err}", file=sys.stderr)
            sys.exit(2)
        if not isinstance(report, dict):
            print(
                f"error: {path}: expected a JSON object, got {type(report).__name__}",
                file=sys.stderr,
            )
            sys.exit(2)
        reports[path.name] = report
    return reports


def events_per_sec(report: dict, name: str, side: str) -> float:
    """The report's events_per_sec, or a clear exit-2 error when the key is
    absent or not a number (a truncated or hand-edited report must fail the
    gate loudly, not crash it with a traceback)."""
    if "events_per_sec" not in report:
        print(f"error: {name}: {side} report has no 'events_per_sec' key", file=sys.stderr)
        sys.exit(2)
    value = report["events_per_sec"]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        print(
            f"error: {name}: {side} 'events_per_sec' is not a number: {value!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    return float(value)


TIER_SUFFIX = " events_per_sec"


def tier_series(report: dict) -> dict:
    """Maps tier label -> events_per_sec for every '<label> events_per_sec'
    entry in the report's `metrics` object. Reports without metrics (or with
    non-numeric entries) simply contribute no tiers -- the top-level gate
    still applies to them."""
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        return {}
    tiers = {}
    for key, value in metrics.items():
        if not key.endswith(TIER_SUFFIX):
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        tiers[key[: -len(TIER_SUFFIX)]] = float(value)
    return tiers


# Workload metric families gated from the `metrics` object in addition to the
# throughput series: (key suffix, higher_is_better). The suffix match also
# covers the degradation sweep's per-arm rows ("loss20_retry goodput",
# "loss20_retry timeouts", ...). Counter-style rows (retry.kv, hedge.*,
# rtt.samples) are informational and deliberately not gated: their absolute
# values shift with any retry-tuning change without being a regression.
WORKLOAD_SUFFIXES = (
    (" goodput", True),
    (" cast_coverage", True),
    (" timeouts", False),
    (" rtt_p50", False),
    (" rtt_p95", False),
    (" rtt_p99", False),
    # Memory families (bench/scale's allocation census): steady-state heap
    # traffic per bootstrap exchange and the per-tier RSS high-water mark.
    # Lower is better for both; growth past the tolerance is a regression.
    (" allocs_per_exchange", False),
    (" steady_allocs_per_exchange", False),
    (" peak_rss_bytes", False),
)


def workload_metrics(report: dict) -> dict:
    """Maps metric key -> (value, higher_is_better) for every workload-family
    entry in the report's `metrics` object."""
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        return {}
    out = {}
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        for suffix, higher_is_better in WORKLOAD_SUFFIXES:
            if key.endswith(suffix):
                out[key] = (float(value), higher_is_better)
                break
    return out


def gate_workload(label: str, base: float, cur: float, tolerance: float,
                  higher_is_better: bool) -> bool:
    """Prints the verdict line for one workload metric; returns True on
    regression. Lower-is-better metrics (latencies) regress upward."""
    if base <= 0.0:
        print(f"{label}: baseline value is not positive -- skipped")
        return False
    ratio = cur / base
    if higher_is_better:
        failed = ratio < 1.0 - tolerance
        verdict = f"REGRESSION (> {tolerance:.0%} drop)" if failed else "OK"
    else:
        failed = ratio > 1.0 + tolerance
        verdict = f"REGRESSION (> {tolerance:.0%} rise)" if failed else "OK"
    print(f"{label}: baseline {base:g}, current {cur:g} ({ratio - 1.0:+.1%}) {verdict}")
    return failed


def gate_one(label: str, base_eps: float, cur_eps: float, tolerance: float) -> bool:
    """Prints the verdict line for one series; returns True on regression."""
    if base_eps <= 0.0:
        print(f"{label}: baseline events_per_sec is not positive -- skipped")
        return False
    ratio = cur_eps / base_eps
    verdict = "OK"
    failed = ratio < 1.0 - tolerance
    if failed:
        verdict = f"REGRESSION (> {tolerance:.0%} drop)"
    print(
        f"{label}: baseline {base_eps:,.0f} ev/s, current {cur_eps:,.0f} ev/s "
        f"({ratio - 1.0:+.1%}) {verdict}"
    )
    return failed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir", type=Path)
    parser.add_argument("current_dir", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BSVC_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional events_per_sec drop (default 0.25)",
    )
    args = parser.parse_args()
    for d in (args.baseline_dir, args.current_dir):
        if not d.is_dir():
            print(f"error: {d} is not a directory", file=sys.stderr)
            return 2

    baseline = load_reports(args.baseline_dir)
    current = load_reports(args.current_dir)
    if not baseline:
        print(f"error: no BENCH_*.json in {args.baseline_dir}", file=sys.stderr)
        return 2

    failed = False
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"{name}: only in baseline (bench removed?) -- skipped")
            continue
        if name not in baseline:
            print(f"{name}: no baseline yet -- skipped")
            continue
        base_tiers = tier_series(baseline[name])
        cur_tiers = tier_series(current[name])
        for tier in sorted(set(base_tiers) - set(cur_tiers)):
            print(f"{name}[{tier}]: only in baseline (tier not run here) -- skipped")
        for tier in sorted(set(cur_tiers) - set(base_tiers)):
            print(f"{name}[{tier}]: no baseline for this tier yet -- skipped")
        for tier in sorted(set(base_tiers) & set(cur_tiers)):
            if gate_one(f"{name}[{tier}]", base_tiers[tier], cur_tiers[tier],
                        args.tolerance):
                failed = True

        base_wl = workload_metrics(baseline[name])
        cur_wl = workload_metrics(current[name])
        for key in sorted(set(base_wl) - set(cur_wl)):
            print(f"{name}[{key}]: only in baseline (metric not reported here) -- skipped")
        for key in sorted(set(cur_wl) - set(base_wl)):
            print(f"{name}[{key}]: no baseline for this metric yet -- skipped")
        for key in sorted(set(base_wl) & set(cur_wl)):
            if gate_workload(f"{name}[{key}]", base_wl[key][0], cur_wl[key][0],
                             args.tolerance, base_wl[key][1]):
                failed = True

        # The aggregate events_per_sec mixes every tier the binary ran; with
        # different tier sets on the two sides it compares different
        # workloads, so it only gates when the sets match.
        if set(base_tiers) != set(cur_tiers):
            print(f"{name}: tier sets differ -- aggregate events_per_sec not compared")
            continue
        base_eps = events_per_sec(baseline[name], name, "baseline")
        cur_eps = events_per_sec(current[name], name, "current")
        if gate_one(name, base_eps, cur_eps, args.tolerance):
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
