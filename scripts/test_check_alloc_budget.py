#!/usr/bin/env python3
"""Tests for the check_alloc_budget.py allocation gate.

Exit-code contract: 0 = within budget/skip, 1 = over budget or census
missing, 2 = unreadable input. Run directly or via ctest (registered as
check_alloc_budget_py).
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent / "check_alloc_budget.py"


def run_gate(report: Path, *extra: str):
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(report), *extra],
        capture_output=True,
        text=True,
    )


def census_report(budget, tiers):
    return {
        "bench": "scale",
        "events_per_sec": 1000.0,
        "alloc": {
            "budget_allocs_per_exchange": budget,
            "rss_reset_supported": True,
            "tiers": tiers,
        },
    }


def tier(label, ape, exchanges=1000):
    # No steady_* keys: exercises the whole-run fallback for old reports.
    return {
        "label": label,
        "heap_allocations": int(ape * exchanges),
        "exchanges": exchanges,
        "allocs_per_exchange": ape,
        "peak_rss_bytes": 1 << 20,
    }


def steady_tier(label, whole_ape, steady_ape, steady_exchanges=500):
    t = tier(label, whole_ape)
    t["steady_heap_allocations"] = int(steady_ape * steady_exchanges)
    t["steady_exchanges"] = steady_exchanges
    t["steady_allocs_per_exchange"] = steady_ape
    return t


class CheckAllocBudgetTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, payload):
        path = self.root / "BENCH_scale.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_within_budget_passes(self):
        path = self.write(census_report(5.0, [tier("N=1024", 2.5), tier("N=4096", 4.9)]))
        proc = run_gate(path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)
        self.assertNotIn("OVER BUDGET", proc.stdout)

    def test_over_budget_fails(self):
        path = self.write(census_report(5.0, [tier("N=1024", 2.5), tier("N=4096", 26.0)]))
        proc = run_gate(path)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("OVER BUDGET", proc.stdout)
        self.assertIn("N=4096", proc.stdout)

    def test_budget_override_tightens(self):
        path = self.write(census_report(5.0, [tier("N=1024", 3.0)]))
        self.assertEqual(run_gate(path).returncode, 0)
        self.assertEqual(run_gate(path, "--budget", "2.0").returncode, 1)

    def test_steady_window_preferred_over_whole_run(self):
        # Whole-run ape over budget (setup amortized over few exchanges) but
        # the steady window within it: the gate judges the steady window.
        path = self.write(census_report(5.0, [steady_tier("N=1024", 12.6, 3.2)]))
        proc = run_gate(path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("steady", proc.stdout)

    def test_steady_window_over_budget_fails(self):
        path = self.write(census_report(5.0, [steady_tier("N=1024", 12.6, 7.5)]))
        proc = run_gate(path)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("OVER BUDGET", proc.stdout)

    def test_zero_steady_exchanges_skipped(self):
        # Converged before the warm cutoff: steady window is empty, tier is
        # skipped rather than judged on the whole-run figure.
        path = self.write(census_report(
            5.0, [steady_tier("N=64", 40.0, 0.0, steady_exchanges=0)]))
        proc = run_gate(path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no exchanges recorded -- skipped", proc.stdout)

    def test_missing_census_fails_with_exit_1(self):
        path = self.write({"bench": "scale", "events_per_sec": 1000.0})
        proc = run_gate(path)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("alloc", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_zero_exchange_tier_is_skipped(self):
        path = self.write(census_report(
            5.0, [tier("N=1024", 3.0), tier("N=4096", 0.0, exchanges=0)]))
        proc = run_gate(path)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no exchanges recorded -- skipped", proc.stdout)

    def test_empty_tiers_fail(self):
        path = self.write(census_report(5.0, []))
        proc = run_gate(path)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("no tiers", proc.stderr)

    def test_unreadable_report_is_clear_error(self):
        path = self.root / "BENCH_scale.json"
        path.write_text("{not json", encoding="utf-8")
        proc = run_gate(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_missing_budget_without_override_is_error(self):
        report = census_report(None, [tier("N=1024", 3.0)])
        report["alloc"].pop("budget_allocs_per_exchange")
        path = self.write(report)
        proc = run_gate(path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("budget", proc.stderr)
        # With an explicit budget the same report gates fine.
        self.assertEqual(run_gate(path, "--budget", "5").returncode, 0)


if __name__ == "__main__":
    unittest.main()
