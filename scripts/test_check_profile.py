#!/usr/bin/env python3
"""Tests for the check_profile.py trace validator.

Exercises the exit-code contract on synthetic Chrome traces: 0 = valid,
1 = structurally valid but the phase accounting fails, 2 = malformed input.
Run directly or via ctest (registered as check_profile_py).
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent / "check_profile.py"


def run_check(path: Path, *extra: str):
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(path), *extra],
        capture_output=True,
        text=True,
    )


def make_trace(shards=2, windows=1, window_ns=4000):
    """A synthetic trace in the profiler's exact shape: per shard and window,
    dispatch/drain/stall/idle slices that partition window_ns exactly."""
    quarter = window_ns // 4
    events = []
    for s in range(shards):
        events.append({"ph": "M", "pid": 0, "tid": s, "name": "thread_name",
                       "args": {"name": f"shard {s}"}})
    cursor = 0
    for _ in range(windows):
        for s in range(shards):
            ts = cursor
            for name in ("dispatch", "drain", "stall", "idle"):
                events.append({"ph": "X", "pid": 0, "tid": s, "cat": "window",
                               "name": name, "ts": ts / 1000.0,
                               "dur": quarter / 1000.0})
                ts += quarter
            events.append({"ph": "C", "pid": 0, "tid": s, "name": f"shard {s} io",
                           "ts": cursor / 1000.0,
                           "args": {"queue_depth": 3, "mailbox_in": 1}})
        cursor += window_ns
    per_phase = quarter * shards * windows
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "bsvc_profile": {
            "shards": shards, "windows": windows, "events": 100,
            "mailbox_messages": shards * windows,
            "wall_ns": window_ns * windows, "dispatch_ns": per_phase,
            "drain_ns": per_phase, "stall_ns": per_phase,
            "idle_ns": per_phase, "trace_events_dropped": 0,
        },
    }


class CheckProfileTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, payload, name="prof.json"):
        path = self.dir / name
        if isinstance(payload, str):
            path.write_text(payload, encoding="utf-8")
        else:
            path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_valid_trace_passes(self):
        proc = run_check(self.write(make_trace()))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_multi_window_trace_passes(self):
        proc = run_check(self.write(make_trace(shards=4, windows=8)))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_low_phase_coverage_fails_with_exit_1(self):
        trace = make_trace()
        trace["bsvc_profile"]["idle_ns"] = 0  # one phase vanishes: 75% cover
        # Keep slices consistent with the (broken) aggregate out of scope:
        # the coverage gate fires first either way.
        proc = run_check(self.write(trace))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("coverage", proc.stdout)

    def test_min_coverage_flag_tightens_gate(self):
        trace = make_trace()
        path = self.write(trace)
        self.assertEqual(run_check(path).returncode, 0)
        # 100% coverage still passes at --min-coverage 1.0 ...
        self.assertEqual(run_check(path, "--min-coverage", "1.0").returncode, 0)

    def test_invalid_json_is_exit_2(self):
        proc = run_check(self.write("{not json"))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_array_form_is_rejected(self):
        # The profiler writes the object form; a bare event array has no
        # bsvc_profile aggregate to gate on.
        proc = run_check(self.write([{"ph": "X"}]))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("object trace form", proc.stderr)

    def test_empty_trace_events_is_exit_2(self):
        trace = make_trace()
        trace["traceEvents"] = []
        proc = run_check(self.write(trace))
        self.assertEqual(proc.returncode, 2)

    def test_missing_slice_field_is_exit_2(self):
        trace = make_trace()
        for ev in trace["traceEvents"]:
            if ev["ph"] == "X":
                del ev["dur"]
                break
        proc = run_check(self.write(trace))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("missing 'dur'", proc.stderr)

    def test_unknown_phase_name_is_exit_2(self):
        trace = make_trace()
        for ev in trace["traceEvents"]:
            if ev["ph"] == "X":
                ev["name"] = "mystery"
                break
        proc = run_check(self.write(trace))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("phase taxonomy", proc.stderr)

    def test_unnamed_tid_is_exit_2(self):
        trace = make_trace()
        trace["traceEvents"] = [ev for ev in trace["traceEvents"]
                                if ev["ph"] != "M"]
        proc = run_check(self.write(trace))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("thread_name", proc.stderr)

    def test_missing_aggregate_is_exit_2(self):
        trace = make_trace()
        del trace["bsvc_profile"]
        proc = run_check(self.write(trace))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("bsvc_profile", proc.stderr)

    def test_slice_sum_mismatch_fails_unless_dropped(self):
        trace = make_trace()
        # Halve every dispatch slice: the aggregate no longer matches.
        for ev in trace["traceEvents"]:
            if ev.get("name") == "dispatch":
                ev["dur"] = ev["dur"] / 2.0
        path = self.write(trace)
        self.assertEqual(run_check(path).returncode, 1)
        # With dropped events the slices legitimately undercount.
        trace["bsvc_profile"]["trace_events_dropped"] = 10
        self.assertEqual(run_check(self.write(trace)).returncode, 0)


if __name__ == "__main__":
    unittest.main()
