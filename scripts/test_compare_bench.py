#!/usr/bin/env python3
"""Tests for the compare_bench.py perf gate.

Exercises the exit-code contract: 0 = pass/skip, 1 = regression,
2 = unreadable or malformed input (clear message, never a traceback).
Run directly or via ctest (registered as compare_bench_py).
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent / "compare_bench.py"


def run_gate(baseline: Path, current: Path, *extra: str):
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(baseline), str(current), *extra],
        capture_output=True,
        text=True,
    )


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.baseline = root / "baseline"
        self.current = root / "current"
        self.baseline.mkdir()
        self.current.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, side: Path, name: str, payload):
        path = side / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_no_regression_passes(self):
        self.write(self.baseline, "BENCH_a.json", {"events_per_sec": 1000.0})
        self.write(self.current, "BENCH_a.json", {"events_per_sec": 990.0})
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_regression_fails_with_exit_1(self):
        self.write(self.baseline, "BENCH_a.json", {"events_per_sec": 1000.0})
        self.write(self.current, "BENCH_a.json", {"events_per_sec": 100.0})
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)

    def test_tolerance_flag_widens_gate(self):
        self.write(self.baseline, "BENCH_a.json", {"events_per_sec": 1000.0})
        self.write(self.current, "BENCH_a.json", {"events_per_sec": 600.0})
        self.assertEqual(run_gate(self.baseline, self.current).returncode, 1)
        self.assertEqual(
            run_gate(self.baseline, self.current, "--tolerance", "0.5").returncode, 0
        )

    def test_bench_only_in_current_is_skipped(self):
        self.write(self.baseline, "BENCH_a.json", {"events_per_sec": 1000.0})
        self.write(self.current, "BENCH_a.json", {"events_per_sec": 1000.0})
        self.write(self.current, "BENCH_new.json", {"events_per_sec": 5.0})
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("no baseline yet", proc.stdout)

    def test_missing_baseline_dir_is_clear_error(self):
        proc = run_gate(self.baseline / "nope", self.current)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("not a directory", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_empty_baseline_dir_is_clear_error(self):
        self.write(self.current, "BENCH_a.json", {"events_per_sec": 1000.0})
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("no BENCH_*.json", proc.stderr)

    def test_invalid_json_is_clear_error(self):
        (self.baseline / "BENCH_a.json").write_text("{not json", encoding="utf-8")
        self.write(self.current, "BENCH_a.json", {"events_per_sec": 1.0})
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_non_object_report_is_clear_error(self):
        self.write(self.baseline, "BENCH_a.json", [1, 2, 3])
        self.write(self.current, "BENCH_a.json", {"events_per_sec": 1.0})
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("expected a JSON object", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_absent_metric_key_is_clear_error(self):
        self.write(self.baseline, "BENCH_a.json", {"wall_seconds": 3.0})
        self.write(self.current, "BENCH_a.json", {"events_per_sec": 1.0})
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("no 'events_per_sec' key", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_non_numeric_metric_is_clear_error(self):
        self.write(self.baseline, "BENCH_a.json", {"events_per_sec": 1000.0})
        self.write(self.current, "BENCH_a.json", {"events_per_sec": "fast"})
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("not a number", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    # --- per-tier gating ----------------------------------------------------

    @staticmethod
    def report(eps, tiers):
        return {
            "events_per_sec": eps,
            "metrics": {f"{label} events_per_sec": value for label, value in tiers.items()},
        }

    def test_matching_tiers_gate_individually(self):
        self.write(self.baseline, "BENCH_scale.json",
                   self.report(1000.0, {"N=1024": 500.0, "N=4096": 400.0}))
        self.write(self.current, "BENCH_scale.json",
                   self.report(1000.0, {"N=1024": 495.0, "N=4096": 100.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("BENCH_scale.json[N=1024]", proc.stdout)
        self.assertIn("BENCH_scale.json[N=4096]", proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)

    def test_extra_baseline_tier_warns_but_passes(self):
        # Baseline regenerated with an extra XL tier the CI run does not
        # cover: shared tiers gate, the one-sided tier and the aggregate are
        # skipped -- never a KeyError, never a failure.
        self.write(self.baseline, "BENCH_scale.json",
                   self.report(800.0, {"N=1024": 500.0, "N=1048576": 90.0}))
        self.write(self.current, "BENCH_scale.json",
                   self.report(1000.0, {"N=1024": 495.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("only in baseline", proc.stdout)
        self.assertIn("tier sets differ", proc.stdout)
        self.assertNotIn("Traceback", proc.stderr)

    def test_extra_current_tier_warns_but_passes(self):
        self.write(self.baseline, "BENCH_scale.json",
                   self.report(1000.0, {"N=1024": 500.0}))
        self.write(self.current, "BENCH_scale.json",
                   self.report(700.0, {"N=1024": 490.0, "N=16384 K=8": 2000.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no baseline for this tier yet", proc.stdout)
        self.assertIn("tier sets differ", proc.stdout)

    def test_shared_tier_regression_fails_despite_differing_sets(self):
        self.write(self.baseline, "BENCH_scale.json",
                   self.report(1000.0, {"N=1024": 500.0, "N=1048576": 90.0}))
        self.write(self.current, "BENCH_scale.json",
                   self.report(1000.0, {"N=1024": 100.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("BENCH_scale.json[N=1024]", proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)

    def test_aggregate_still_gates_when_tier_sets_match(self):
        self.write(self.baseline, "BENCH_scale.json",
                   self.report(1000.0, {"N=1024": 500.0}))
        self.write(self.current, "BENCH_scale.json",
                   self.report(100.0, {"N=1024": 495.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_unknown_sections_are_ignored(self):
        # Reports from --spans / --profile runs carry extra "spans" and
        # "prof" sections; a baseline without them must gate cleanly against
        # a current report with them (and vice versa).
        self.write(self.baseline, "BENCH_scale.json",
                   self.report(1000.0, {"N=1024": 500.0}))
        current = self.report(1000.0, {"N=1024": 495.0})
        current["spans"] = {"opened": 12, "closed": 12, "rtt_p95": 40.0}
        current["prof"] = {"shards": 2, "windows": 100, "barrier_stall_fraction": 0.1}
        self.write(self.current, "BENCH_scale.json", current)
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)
        self.assertNotIn("spans", proc.stdout)

    # --- workload metric families (goodput / latency / coverage) -----------

    @staticmethod
    def workload_report(eps, metrics):
        return {"events_per_sec": eps, "metrics": dict(metrics)}

    def test_goodput_drop_fails(self):
        self.write(self.baseline, "BENCH_workload.json",
                   self.workload_report(1000.0, {"steady goodput": 1.0}))
        self.write(self.current, "BENCH_workload.json",
                   self.workload_report(1000.0, {"steady goodput": 0.5}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("BENCH_workload.json[steady goodput]", proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("drop", proc.stdout)

    def test_latency_rise_fails(self):
        # rtt percentiles are lower-is-better: a rise beyond tolerance fails,
        # a drop of any size passes.
        self.write(self.baseline, "BENCH_workload.json",
                   self.workload_report(1000.0, {"churn rtt_p99": 400.0}))
        self.write(self.current, "BENCH_workload.json",
                   self.workload_report(1000.0, {"churn rtt_p99": 900.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("BENCH_workload.json[churn rtt_p99]", proc.stdout)
        self.assertIn("rise", proc.stdout)

    def test_latency_drop_and_goodput_gain_pass(self):
        self.write(self.baseline, "BENCH_workload.json",
                   self.workload_report(1000.0,
                                        {"steady goodput": 0.5,
                                         "steady rtt_p50": 400.0,
                                         "heal cast_coverage": 0.9}))
        self.write(self.current, "BENCH_workload.json",
                   self.workload_report(1000.0,
                                        {"steady goodput": 1.0,
                                         "steady rtt_p50": 100.0,
                                         "heal cast_coverage": 1.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)
        self.assertNotIn("REGRESSION", proc.stdout)

    def test_coverage_drop_fails(self):
        self.write(self.baseline, "BENCH_workload.json",
                   self.workload_report(1000.0, {"heal cast_coverage": 1.0}))
        self.write(self.current, "BENCH_workload.json",
                   self.workload_report(1000.0, {"heal cast_coverage": 0.5}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("heal cast_coverage", proc.stdout)

    def test_one_sided_workload_metric_is_skipped(self):
        self.write(self.baseline, "BENCH_workload.json",
                   self.workload_report(1000.0, {"steady goodput": 1.0}))
        self.write(self.current, "BENCH_workload.json",
                   self.workload_report(1000.0, {"churn goodput": 1.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("only in baseline (metric not reported here)", proc.stdout)
        self.assertIn("no baseline for this metric yet", proc.stdout)

    def test_other_workload_metrics_are_not_gated(self):
        # Counts like "steady requests" / "loss20_retry retry.kv" are
        # informational; only the suffix families gate.
        self.write(self.baseline, "BENCH_workload.json",
                   self.workload_report(1000.0, {"steady requests": 384.0}))
        self.write(self.current, "BENCH_workload.json",
                   self.workload_report(1000.0, {"steady requests": 10.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_timeouts_regress_upward(self):
        # Degradation-sweep rows: a timeout count rising past the tolerance
        # fails the gate (lower is better), and a zero baseline is skipped
        # rather than divided by.
        self.write(self.baseline, "BENCH_degradation.json",
                   self.workload_report(1000.0, {"loss20_retry timeouts": 4.0,
                                                 "loss0_base timeouts": 0.0}))
        self.write(self.current, "BENCH_degradation.json",
                   self.workload_report(1000.0, {"loss20_retry timeouts": 40.0,
                                                 "loss0_base timeouts": 0.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("not positive -- skipped", proc.stdout)

    # --- memory families (allocation census / per-tier RSS) ----------------

    def test_allocs_per_exchange_rise_fails(self):
        self.write(self.baseline, "BENCH_scale.json",
                   self.workload_report(1000.0, {"N=1024 allocs_per_exchange": 3.0}))
        self.write(self.current, "BENCH_scale.json",
                   self.workload_report(1000.0, {"N=1024 allocs_per_exchange": 30.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("BENCH_scale.json[N=1024 allocs_per_exchange]", proc.stdout)
        self.assertIn("rise", proc.stdout)

    def test_peak_rss_rise_fails_and_drop_passes(self):
        self.write(self.baseline, "BENCH_scale.json",
                   self.workload_report(1000.0, {"N=1024 peak_rss_bytes": 100e6,
                                                 "N=4096 peak_rss_bytes": 400e6}))
        self.write(self.current, "BENCH_scale.json",
                   self.workload_report(1000.0, {"N=1024 peak_rss_bytes": 50e6,
                                                 "N=4096 peak_rss_bytes": 900e6}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("BENCH_scale.json[N=4096 peak_rss_bytes]", proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)
        # The halved tier passes: lower is better.
        n1024_lines = [l for l in proc.stdout.splitlines()
                       if "[N=1024 peak_rss_bytes]" in l]
        self.assertTrue(n1024_lines and "OK" in n1024_lines[0], proc.stdout)

    def test_zero_alloc_baseline_is_skipped(self):
        # A tier whose baseline recorded no exchanges (allocs_per_exchange 0)
        # must be skipped with a note, not divided by.
        self.write(self.baseline, "BENCH_scale.json",
                   self.workload_report(1000.0, {"N=1024 allocs_per_exchange": 0.0}))
        self.write(self.current, "BENCH_scale.json",
                   self.workload_report(1000.0, {"N=1024 allocs_per_exchange": 4.0}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("not positive -- skipped", proc.stdout)

    def test_memory_keys_absent_from_baseline_are_skipped(self):
        # A baseline predating the census gates cleanly against a current
        # report that carries the new memory families.
        self.write(self.baseline, "BENCH_scale.json",
                   self.workload_report(1000.0, {}))
        self.write(self.current, "BENCH_scale.json",
                   self.workload_report(1000.0, {"N=1024 allocs_per_exchange": 4.0,
                                                 "N=1024 peak_rss_bytes": 100e6}))
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no baseline for this metric yet", proc.stdout)

    def test_reports_without_metrics_use_top_level_only(self):
        self.write(self.baseline, "BENCH_a.json", {"events_per_sec": 1000.0})
        self.write(self.current, "BENCH_a.json",
                   {"events_per_sec": 990.0, "metrics": {"wall_seconds": 1.0}})
        proc = run_gate(self.baseline, self.current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)


if __name__ == "__main__":
    unittest.main()
