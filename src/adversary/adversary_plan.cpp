#include "adversary/adversary_plan.hpp"

namespace bsvc {

std::string AdversaryPlan::validate() const {
  if (fraction < 0.0 || fraction > 1.0) return "adversary fraction outside [0, 1]";
  if (suppress_probability < 0.0 || suppress_probability > 1.0) {
    return "suppress_probability outside [0, 1]";
  }
  if (corrupt_probability < 0.0 || corrupt_probability > 1.0) {
    return "corrupt_probability outside [0, 1]";
  }
  if (window.end != 0 && window.start >= window.end) {
    return "adversary window start >= end";
  }
  if (poison && pool_size == 0) return "poison requires pool_size > 0";
  return "";
}

}  // namespace bsvc
