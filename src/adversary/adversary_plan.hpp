// AdversaryPlan: a deterministic, seeded description of Byzantine behavior.
//
// A plan names which nodes misbehave (an explicit list, a fraction of the
// population, or both), when (a virtual-time window), and how: descriptor
// poisoning (fabricated ID/address bindings planted into gossip), eclipse
// floods (replies filled with colluder descriptors crafted prefix-close to
// the victim), sender-ID spoofing, suppression of gossip answers, and
// bit-level corruption of frames on the wire. Like FaultPlan it is plain
// data — build it programmatically, copy it freely — and all randomness
// downstream comes from the plan's own seed, so the same plan replays
// identically over any base trajectory and across bench thread counts.
// ByzantineModel (byzantine_model.hpp) turns a plan into a live FaultModel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "id/node_id.hpp"

namespace bsvc {

struct AdversaryPlan {
  /// Seeds the model's private RNG (adversary-set picks, sybil ID pools,
  /// per-message behavior draws). Independent of the engine seed.
  std::uint64_t seed = 0xBAD5EED5ull;

  /// Fraction of the population turned Byzantine (picked deterministically
  /// at install time from the plan seed), in [0, 1].
  double fraction = 0.0;
  /// Explicitly Byzantine addresses, in addition to the fractional picks.
  std::vector<Address> nodes;
  /// Active window. end == 0 means "from `start` onward, forever".
  TimeWindow window{};

  // --- behaviors ----------------------------------------------------------

  /// Descriptor poisoning: each adversary owns a fixed pool of `pool_size`
  /// fabricated IDs bound to colluder addresses; outgoing gossip descriptors
  /// are swapped for pool entries. Fixed pools (not fresh IDs per message)
  /// keep the sybil population bounded, so tombstones can catch up with it.
  bool poison = false;
  std::size_t pool_size = 8;

  /// Eclipse / hub attack: gossip replies to honest nodes are rebuilt to
  /// carry only descriptors whose IDs are prefix-close to the victim's own
  /// ID, all bound to colluding adversary addresses.
  bool eclipse = false;

  /// Sender-ID spoofing: the sender descriptor of outgoing gossip keeps its
  /// truthful address but claims an ID prefix-close to the victim.
  bool spoof = false;

  /// Probability that an adversary silently withholds a gossip answer
  /// (requests still go out, so the adversary keeps harvesting state).
  double suppress_probability = 0.0;

  /// Probability that an outgoing frame is corrupted on the wire (1–3 bit
  /// flips on the encoded bytes; frames that no longer parse are dropped and
  /// counted as msg.corrupt — never undefined behavior).
  double corrupt_probability = 0.0;

  bool empty() const {
    return fraction == 0.0 && nodes.empty();
  }

  /// True when the plan is active at virtual time `t`.
  bool active_at(SimTime t) const {
    return t >= window.start && (window.end == 0 || t < window.end);
  }

  /// Returns "" when the plan is well-formed, else a description of the
  /// first problem.
  std::string validate() const;
};

}  // namespace bsvc
