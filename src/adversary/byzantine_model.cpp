#include "adversary/byzantine_model.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/bootstrap.hpp"
#include "sampling/newscast.hpp"
#include "sim/engine.hpp"
#include "wire/message_codec.hpp"

namespace bsvc {

namespace {
/// Minimum number of flood descriptors per eclipse reply (early messages may
/// carry few entries; the adversary pads to keep the flood effective).
constexpr std::size_t kEclipseFloor = 10;
/// Per-descriptor swap probability under poisoning: half the payload stays
/// truthful, so poisoned messages pass casual plausibility checks.
constexpr double kPoisonSwapProbability = 0.5;
}  // namespace

ByzantineModel::ByzantineModel(AdversaryPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

void ByzantineModel::install(Engine& engine) {
  const auto problem = plan_.validate();
  BSVC_CHECK_MSG(problem.empty(), "invalid adversary plan");
  engine_ = &engine;

  const auto n = engine.node_count();
  adversary_mask_.assign(n, 0);
  adversaries_.clear();
  for (const auto a : plan_.nodes) {
    if (a < n && adversary_mask_[a] == 0) {
      adversary_mask_[a] = 1;
      adversaries_.push_back(a);
    }
  }
  if (plan_.fraction > 0.0 && n > 0) {
    const auto universe = static_cast<std::uint32_t>(n);
    auto want = static_cast<std::uint32_t>(plan_.fraction * static_cast<double>(n) + 0.5);
    want = std::min(want, universe);
    for (const auto idx : rng_.distinct_indices(want, universe)) {
      if (adversary_mask_[idx] == 0) {
        adversary_mask_[idx] = 1;
        adversaries_.push_back(idx);
      }
    }
  }
  std::sort(adversaries_.begin(), adversaries_.end());

  // Fixed sybil pools: fabricated IDs at colluder addresses, round-robin so
  // every colluder fronts for a share of the fake identities. The RNG draw
  // order (one next_u64 per pooled identity, grouped by adversary) is pinned
  // by golden replays and must not change with the storage layout.
  sybil_pool_ = {};
  pool_base_.clear();
  if (plan_.poison && !adversaries_.empty()) {
    std::size_t rr = 0;
    std::uint64_t base = 0;
    Chamt<NodeDescriptor> directory;
    for (const auto a : adversaries_) {
      pool_base_.emplace(a, base);
      for (std::size_t i = 0; i < plan_.pool_size; ++i) {
        directory = directory.set(
            base + i, {rng_.next_u64(), adversaries_[rr++ % adversaries_.size()]});
      }
      base += plan_.pool_size;
    }
    sybil_pool_ = std::move(directory);
  }

  auto& m = engine.metrics();
  poisoned_ = &m.counter("adv.poisoned");
  eclipsed_ = &m.counter("adv.eclipsed");
  spoofed_ = &m.counter("adv.spoofed");
  suppressed_ = &m.counter("adv.suppressed");
  corrupted_ = &m.counter("adv.corrupted");
  m.gauge("adv.nodes").set(static_cast<double>(adversaries_.size()));

  inner_ = engine.fault_model();
  engine.set_fault_model(this);
}

double ByzantineModel::controlled_fraction(const DescriptorList& entries) const {
  if (entries.empty()) return 0.0;
  std::size_t controlled = 0;
  for (const auto& d : entries) {
    if (d.addr >= engine_->node_count() || is_adversary(d.addr) ||
        engine_->id_of(d.addr) != d.id) {
      ++controlled;
    }
  }
  return static_cast<double>(controlled) / static_cast<double>(entries.size());
}

FaultModel::SendDecision ByzantineModel::on_send(SimTime now, Address from, Address to) {
  return inner_ != nullptr ? inner_->on_send(now, from, to) : SendDecision{};
}

FaultModel::SendDecision ByzantineModel::on_send_rng(SimTime now, Address from, Address to,
                                                     Rng& rng) {
  return inner_ != nullptr ? inner_->on_send_rng(now, from, to, rng) : SendDecision{};
}

SimTime ByzantineModel::dark_until(SimTime now, Address addr) const {
  return inner_ != nullptr ? inner_->dark_until(now, addr) : 0;
}

NodeId ByzantineModel::near_id(NodeId victim, Rng& rng) {
  // Keep the top 44 bits (11 of 16 digits at b = 4): close enough that the
  // fake lands deep in the victim's prefix table and near it on the ring.
  constexpr int kLowBits = 20;
  constexpr NodeId kMask = (NodeId{1} << kLowBits) - 1;
  NodeId fake = victim;
  while (fake == victim) fake = (victim & ~kMask) | (rng.next_u64() & kMask);
  return fake;
}

bool ByzantineModel::addresses_deliverable(const Payload& payload) const {
  const auto n = engine_->node_count();
  const auto ok = [n](Address a) { return a < n; };
  if (const auto* b = payload_cast<BootstrapMessage>(&payload)) {
    if (!ok(b->sender.addr)) return false;
    for (const auto& d : b->all_entries()) {
      if (!ok(d.addr)) return false;
    }
    return true;
  }
  if (const auto* nw = payload_cast<NewscastMessage>(&payload)) {
    for (const auto& e : nw->entries) {
      if (!ok(e.descriptor.addr)) return false;
    }
    return true;
  }
  if (payload_cast<ProbeMessage>(&payload) != nullptr) return true;
  // A mutant of a type we cannot scan could smuggle an undeliverable
  // address; drop it instead.
  return false;
}

FaultModel::TamperVerdict ByzantineModel::corrupt_frame(const Payload& payload, Rng& rng) {
  TamperVerdict v;
  auto bytes = encode_message(payload);
  if (!bytes.has_value() || bytes->empty()) return v;  // no wire form
  const auto flips = 1 + rng.below(3);
  for (std::uint64_t i = 0; i < flips; ++i) {
    auto& b = (*bytes)[rng.below(bytes->size())];
    b = static_cast<std::uint8_t>(b ^ (1u << rng.below(8)));
  }
  corrupted_->inc();
  auto decoded = decode_message(*bytes);
  if (decoded != nullptr && addresses_deliverable(*decoded)) {
    v.action = TamperVerdict::Action::Replace;
    v.replacement = std::move(decoded);
  } else {
    v.action = TamperVerdict::Action::Corrupt;
  }
  return v;
}

FaultModel::TamperVerdict ByzantineModel::on_payload(SimTime now, Address from, Address to,
                                                     const Payload& payload) {
  if (inner_ != nullptr) {
    auto v = inner_->on_payload(now, from, to, payload);
    if (v.action != TamperVerdict::Action::Deliver) return v;
  }
  return tamper(now, from, to, payload, rng_);
}

FaultModel::TamperVerdict ByzantineModel::on_payload_rng(SimTime now, Address from, Address to,
                                                         const Payload& payload, Rng& rng) {
  if (inner_ != nullptr) {
    auto v = inner_->on_payload_rng(now, from, to, payload, rng);
    if (v.action != TamperVerdict::Action::Deliver) return v;
  }
  return tamper(now, from, to, payload, rng);
}

FaultModel::TamperVerdict ByzantineModel::tamper(SimTime now, Address from, Address to,
                                                 const Payload& payload, Rng& rng) {
  // Adversaries coordinate: traffic among colluders stays truthful.
  if (!plan_.active_at(now) || !is_adversary(from) || is_adversary(to)) return {};

  const auto* boot = payload_cast<BootstrapMessage>(&payload);
  const auto* news = payload_cast<NewscastMessage>(&payload);

  if (plan_.corrupt_probability > 0.0 && rng.chance(plan_.corrupt_probability)) {
    return corrupt_frame(payload, rng);
  }

  const bool is_answer = (boot != nullptr && !boot->is_request) ||
                         (news != nullptr && !news->is_request);
  if (is_answer && plan_.suppress_probability > 0.0 &&
      rng.chance(plan_.suppress_probability)) {
    suppressed_->inc();
    TamperVerdict v;
    v.action = TamperVerdict::Action::Suppress;
    return v;
  }

  if (boot != nullptr && (plan_.eclipse || plan_.poison || plan_.spoof)) {
    std::unique_ptr<BootstrapMessage> mutated;
    bool changed = false;
    if (plan_.eclipse) {
      // Hub attack: rebuild the payload as a flood of descriptors crafted
      // prefix-close to the victim, all fronted by colluders, so the
      // victim's leaf set and deep prefix cells fill with adversaries.
      const NodeId victim = engine_->id_of(to);
      const std::size_t fill = std::max(boot->entry_count(), kEclipseFloor);
      mutated = std::make_unique<BootstrapMessage>(boot->sender, boot->is_request);
      mutated->tombstones = boot->tombstones;
      mutated->reserve_entries(fill);
      for (std::size_t i = 0; i < fill; ++i) {
        mutated->append_ring_entry(
            {near_id(victim, rng),
             adversaries_[static_cast<std::size_t>(rng.below(adversaries_.size()))]});
      }
      eclipsed_->add(fill);
      changed = true;
    } else if (plan_.poison) {
      const std::uint64_t base = pool_base_.at(from);
      const auto entries = boot->all_entries();
      std::uint64_t swapped = 0;
      // Flat buffer is ring-then-prefix, so this walks the same descriptor
      // order (and draws the same randomness) as the old two-list sweep.
      // The clone is lazy — materialized on the first swap — so a delivery
      // the dice leave untouched never copies the descriptor set at all;
      // the swapped-in identities read from the shared sybil directory.
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (rng.chance(kPoisonSwapProbability)) {
          if (mutated == nullptr) mutated = std::make_unique<BootstrapMessage>(*boot);
          mutated->mutable_entries()[i] =
              *sybil_pool_.find(base + rng.below(plan_.pool_size));
          ++swapped;
        }
      }
      if (swapped != 0) {
        poisoned_->add(swapped);
        changed = true;
      }
    }
    if (plan_.spoof) {
      // Keep the truthful (unforgeable) address but claim an ID next to the
      // victim — the classic ID-spoofing wedge into its near-ring.
      if (mutated == nullptr) mutated = std::make_unique<BootstrapMessage>(*boot);
      mutated->sender.id = near_id(engine_->id_of(to), rng);
      spoofed_->inc();
      changed = true;
    }
    if (changed) {
      TamperVerdict v;
      v.action = TamperVerdict::Action::Replace;
      v.replacement = std::move(mutated);
      return v;
    }
    return {};
  }

  if (news != nullptr && plan_.poison) {
    const std::uint64_t base = pool_base_.at(from);
    std::unique_ptr<NewscastMessage> mutated;  // lazy, like the bootstrap path
    std::uint64_t swapped = 0;
    for (std::size_t i = 0; i < news->entries.size(); ++i) {
      if (rng.chance(kPoisonSwapProbability)) {
        if (mutated == nullptr) mutated = std::make_unique<NewscastMessage>(*news);
        auto& e = mutated->entries[i];
        e.descriptor = *sybil_pool_.find(base + rng.below(plan_.pool_size));
        // Freshness forgery: a future timestamp wins every dedupe, so the
        // fake sticks in unhardened views (hardened merges reject it).
        e.timestamp = now + kDelta;
        ++swapped;
      }
    }
    if (swapped != 0) {
      poisoned_->add(swapped);
      TamperVerdict v;
      v.action = TamperVerdict::Action::Replace;
      v.replacement = std::move(mutated);
      return v;
    }
  }

  return {};
}

std::unique_ptr<ByzantineModel> install_adversary_plan(Engine& engine,
                                                       const AdversaryPlan& plan) {
  if (plan.empty()) return nullptr;
  auto model = std::make_unique<ByzantineModel>(plan);
  model->install(engine);
  return model;
}

}  // namespace bsvc
