// ByzantineModel: the scripted adversary, built on the engine's FaultModel
// tamper hook.
//
// Executes an AdversaryPlan: a seeded subset of nodes misbehaves by
// poisoning gossip with fabricated ID/address bindings, flooding replies
// with colluder descriptors prefix-close to the victim (eclipse / hub
// attack), spoofing the sender ID, suppressing answers, and flipping bits
// on the wire. The model mutates *content* only — it never invents
// addresses the transport cannot deliver to (fabricated bindings pair fake
// IDs with real colluder addresses, exactly the attack a probe echo can
// expose) and it scans bit-flipped frames before delivery so a mutant that
// happens to parse can never smuggle an out-of-range address into a
// victim's tables.
//
// All randomness comes from a private Rng seeded by the plan, so the same
// plan replays identically over any base trajectory and across bench
// --threads settings. With no plan installed the engine's tamper hook is a
// no-op and the simulation stays bit-identical — the golden replays pin
// this down. Chains an already-installed FaultModel (e.g. a FaultInjector):
// on_send and dark_until delegate, so crash plans compose with adversaries.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "adversary/adversary_plan.hpp"
#include "common/chamt.hpp"
#include "common/rng.hpp"
#include "fault/fault_model.hpp"
#include "id/descriptor.hpp"
#include "obs/metrics.hpp"

namespace bsvc {

class Engine;

class ByzantineModel : public FaultModel {
 public:
  explicit ByzantineModel(AdversaryPlan plan);

  /// Binds the model to `engine`: picks the adversary set (explicit
  /// addresses plus a seeded fraction of the population), builds the sybil
  /// pools, registers the adv.* metrics, captures any previously installed
  /// fault model as the inner delegate, and installs itself. Call once,
  /// before running; the model must outlive the engine's use of it.
  void install(Engine& engine);

  const AdversaryPlan& plan() const { return plan_; }
  const std::vector<Address>& adversaries() const { return adversaries_; }
  bool is_adversary(Address a) const {
    return a < adversary_mask_.size() && adversary_mask_[a] != 0;
  }

  /// Fraction of `entries` the adversary controls: the address belongs to
  /// the adversary set, or the ID is not the true ID of the node at that
  /// address (a fabricated binding). Benches aggregate this per honest node
  /// into the eclipse-rate series.
  double controlled_fraction(const DescriptorList& entries) const;

  // --- FaultModel ---------------------------------------------------------
  SendDecision on_send(SimTime now, Address from, Address to) override;
  SimTime dark_until(SimTime now, Address addr) const override;
  /// Serial path: draws from the model's private plan-seeded rng_.
  TamperVerdict on_payload(SimTime now, Address from, Address to,
                           const Payload& payload) override;
  /// Sharded path: identical tamper logic, but randomness comes from the
  /// sending node's transport stream (shard-count independent; the model's
  /// own state stays read-only inside windows). The sharded engine calls
  /// these; the chained inner model is delegated through its own _rng hooks.
  SendDecision on_send_rng(SimTime now, Address from, Address to, Rng& rng) override;
  TamperVerdict on_payload_rng(SimTime now, Address from, Address to,
                               const Payload& payload, Rng& rng) override;

 private:
  /// The tamper core shared by both on_payload paths; `rng` is the model's
  /// private stream (serial) or the sender's transport stream (sharded).
  TamperVerdict tamper(SimTime now, Address from, Address to, const Payload& payload,
                       Rng& rng);
  /// An ID sharing a long prefix with `victim` (low bits re-randomized).
  NodeId near_id(NodeId victim, Rng& rng);
  /// 1–3 bit flips on the encoded frame; Corrupt when the mutant no longer
  /// parses or would carry an undeliverable address, Replace otherwise.
  TamperVerdict corrupt_frame(const Payload& payload, Rng& rng);
  /// True when every address the payload carries is deliverable.
  bool addresses_deliverable(const Payload& payload) const;

  AdversaryPlan plan_;
  Rng rng_;
  Engine* engine_ = nullptr;
  FaultModel* inner_ = nullptr;  // chained benign model (may be null)
  std::vector<Address> adversaries_;
  std::vector<std::uint8_t> adversary_mask_;
  // Fixed sybil pools: fabricated IDs bound to colluder addresses (see
  // AdversaryPlan::pool_size). One persistent popcount-bitmap directory
  // (common/chamt.hpp) shared by every adversary instead of a descriptor
  // vector per adversary: adversary a's i-th fabricated identity lives at
  // key pool_base_[a] + i, and any snapshot of the directory shares
  // structure with the installed version rather than deep-copying it.
  Chamt<NodeDescriptor> sybil_pool_;
  std::unordered_map<Address, std::uint64_t> pool_base_;

  // Metric handles, bound at install().
  obs::Counter* poisoned_ = nullptr;    // adv.poisoned (descriptors swapped)
  obs::Counter* eclipsed_ = nullptr;    // adv.eclipsed (flood descriptors)
  obs::Counter* spoofed_ = nullptr;     // adv.spoofed (sender rewrites)
  obs::Counter* suppressed_ = nullptr;  // adv.suppressed (answers withheld)
  obs::Counter* corrupted_ = nullptr;   // adv.corrupted (frames bit-flipped)
};

/// Convenience: builds a model for `plan` and installs it into `engine`.
/// Returns nullptr (and installs nothing) when the plan is empty, so callers
/// can thread an optional plan straight through. Aborts on an invalid plan —
/// validate earlier for a recoverable error.
std::unique_ptr<ByzantineModel> install_adversary_plan(Engine& engine,
                                                       const AdversaryPlan& plan);

}  // namespace bsvc
