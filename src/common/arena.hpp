// Bump/slab arena for NodeDescriptor storage in struct-of-arrays layout.
//
// The arena keeps two parallel slabs — an id lane and an address lane — and
// hands out 32-bit *blocks* (offset + capacity) instead of owning pointers.
// Tables built on top (LeafSet, PrefixTable) address their entries through
// a block handle, so the hot scans (ring-distance ordering, prefix binary
// search) stream one contiguous 8-byte lane instead of striding over padded
// 16-byte NodeDescriptor structs, and a whole node's table storage is two
// allocations for the lifetime of the arena rather than one vector per
// table per rebuild.
//
// Lifetime rules (docs/architecture.md#memory-layout):
//  - allocate() bumps the tip; blocks are never freed individually.
//  - grow() extends a block in place iff it is the tip block (the common
//    case: the prefix table is allocated last and is the only grower);
//    otherwise the block relocates to a fresh tip allocation and the old
//    region becomes bump garbage until the next reset().
//  - reset() rewinds the tip and invalidates every outstanding handle; the
//    slabs keep their capacity, so a table rebuilt after reset() (the
//    bootstrap-on-demand restart path) allocates nothing.
//  - Raw lane pointers obtained via ids()/addrs() are invalidated by any
//    allocate()/grow() that resizes the slabs — re-fetch them per call,
//    never cache them across mutations.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "id/node_id.hpp"

namespace bsvc {

class DescriptorArena {
 public:
  /// Handle to one contiguous run of descriptor slots. Trivially copyable;
  /// 8 bytes, valid until the next reset() (or grow() of this block).
  struct Block {
    std::uint32_t off = 0;
    std::uint32_t cap = 0;
  };

  /// Bump-allocates `cap` slots. The slabs grow geometrically, so repeated
  /// construction over a reset() arena touches no allocator at all.
  Block allocate(std::uint32_t cap) {
    const Block b{tip_, cap};
    tip_ += cap;
    if (tip_ > ids_.size()) reserve_slabs(tip_);
    return b;
  }

  /// Grows `b` to `new_cap` slots, preserving the first `live` entries.
  /// In place when `b` is the tip block; otherwise relocates to a fresh tip
  /// block (the abandoned region is reclaimed at the next reset()).
  void grow(Block& b, std::uint32_t new_cap, std::uint32_t live) {
    BSVC_CHECK(new_cap >= b.cap && live <= b.cap);
    if (b.off + b.cap == tip_) {
      tip_ = b.off + new_cap;
      if (tip_ > ids_.size()) reserve_slabs(tip_);
      b.cap = new_cap;
      return;
    }
    const Block nb = allocate(new_cap);
    std::memmove(ids_.data() + nb.off, ids_.data() + b.off, live * sizeof(NodeId));
    std::memmove(addrs_.data() + nb.off, addrs_.data() + b.off, live * sizeof(Address));
    b = nb;
  }

  /// Rewinds the bump tip. Every handle handed out so far dangles; the slab
  /// capacity is retained for the rebuild.
  void reset() { tip_ = 0; }

  NodeId* ids(Block b) { return ids_.data() + b.off; }
  const NodeId* ids(Block b) const { return ids_.data() + b.off; }
  Address* addrs(Block b) { return addrs_.data() + b.off; }
  const Address* addrs(Block b) const { return addrs_.data() + b.off; }

  /// Slots handed out since the last reset().
  std::uint32_t tip() const { return tip_; }
  /// Bytes resident in the slabs (capacity, not tip) — RSS accounting.
  std::size_t slab_bytes() const {
    return ids_.capacity() * sizeof(NodeId) + addrs_.capacity() * sizeof(Address);
  }

 private:
  void reserve_slabs(std::size_t need) {
    // Geometric growth with a small floor: one doubling step covers the
    // typical leaf block + first prefix block without a second resize.
    std::size_t cap = ids_.capacity() == 0 ? 64 : ids_.capacity();
    while (cap < need) cap *= 2;
    ids_.resize(cap);
    addrs_.resize(cap);
  }

  std::vector<NodeId> ids_;
  std::vector<Address> addrs_;
  std::uint32_t tip_ = 0;
};

}  // namespace bsvc
