// Lightweight always-on invariant checking.
//
// BSVC_CHECK is active in all build types: simulation correctness depends on
// data-structure invariants, and the cost of the checks used on hot paths is
// negligible next to the work they guard. Failures abort with a location and
// message, which is the right behaviour for a simulator (a violated invariant
// makes every downstream number meaningless).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bsvc {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "BSVC_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace bsvc

#define BSVC_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) ::bsvc::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define BSVC_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) ::bsvc::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
