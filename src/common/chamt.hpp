// Persistent (immutable, structurally shared) map from uint64 keys to
// values, as a compressed hash-array-mapped trie: every inner node stores a
// 64-bit occupancy bitmap plus a dense slot vector, and a child's slot index
// is popcount(bitmap below its bit) — the CHAMT idiom. set() path-copies the
// O(log64 n) spine and shares every untouched subtree with the previous
// version, so read-mostly tables (the adversary's sybil descriptor
// directory) can be snapshotted and handed around without deep copies.
//
// Keys are used as-is, six bits per level starting at the LSB; callers with
// adversarial key distributions should pre-mix them. Values are stored by
// value and must be copyable.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "common/assert.hpp"

namespace bsvc {

template <typename V>
class Chamt {
  static constexpr unsigned kBits = 6;
  static constexpr unsigned kMask = (1u << kBits) - 1;
  static constexpr unsigned kMaxShift = 63;  // 11 levels cover all 64 key bits

  struct Entry {
    std::uint64_t key;
    V value;
  };
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;
  using Slot = std::variant<Entry, NodePtr>;
  struct Node {
    std::uint64_t bitmap = 0;
    std::vector<Slot> slots;  // dense, one per set bitmap bit
  };

  static unsigned chunk(std::uint64_t key, unsigned shift) {
    return static_cast<unsigned>((key >> shift) & kMask);
  }
  static unsigned slot_index(std::uint64_t bitmap, unsigned ch) {
    return static_cast<unsigned>(std::popcount(bitmap & ((std::uint64_t{1} << ch) - 1)));
  }

 public:
  Chamt() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr. Valid while any Chamt
  /// version sharing the subtree is alive.
  const V* find(std::uint64_t key) const {
    const Node* node = root_.get();
    unsigned shift = 0;
    while (node != nullptr) {
      const unsigned ch = chunk(key, shift);
      const std::uint64_t bit = std::uint64_t{1} << ch;
      if ((node->bitmap & bit) == 0) return nullptr;
      const Slot& slot = node->slots[slot_index(node->bitmap, ch)];
      if (const Entry* e = std::get_if<Entry>(&slot)) {
        return e->key == key ? &e->value : nullptr;
      }
      node = std::get<NodePtr>(slot).get();
      shift += kBits;
    }
    return nullptr;
  }

  /// New version with `key` bound to `value` (insert or overwrite). The old
  /// version is untouched; unaffected subtrees are shared between the two.
  [[nodiscard]] Chamt set(std::uint64_t key, V value) const {
    Chamt next;
    bool replaced = false;
    next.root_ = set_in(root_.get(), 0, key, std::move(value), replaced);
    next.size_ = size_ + (replaced ? 0 : 1);
    return next;
  }

 private:
  static NodePtr set_in(const Node* node, unsigned shift, std::uint64_t key,
                        V value, bool& replaced) {
    auto out = std::make_shared<Node>();
    if (node == nullptr) {
      out->bitmap = std::uint64_t{1} << chunk(key, shift);
      out->slots.push_back(Entry{key, std::move(value)});
      return out;
    }
    *out = *node;  // shallow copy: shares child subtrees via shared_ptr
    const unsigned ch = chunk(key, shift);
    const std::uint64_t bit = std::uint64_t{1} << ch;
    const unsigned idx = slot_index(out->bitmap, ch);
    if ((out->bitmap & bit) == 0) {
      out->bitmap |= bit;
      out->slots.insert(out->slots.begin() + idx, Entry{key, std::move(value)});
      return out;
    }
    Slot& slot = out->slots[idx];
    if (const NodePtr* child = std::get_if<NodePtr>(&slot)) {
      slot = set_in(child->get(), shift + kBits, key, std::move(value), replaced);
      return out;
    }
    Entry& existing = std::get<Entry>(slot);
    if (existing.key == key) {
      existing.value = std::move(value);
      replaced = true;
      return out;
    }
    // Collision in this chunk: push the resident entry one level down, then
    // insert the new key into that subtree.
    BSVC_CHECK(shift < kMaxShift);  // distinct keys must diverge within 64 bits
    auto sub = std::make_shared<Node>();
    sub->bitmap = std::uint64_t{1} << chunk(existing.key, shift + kBits);
    sub->slots.push_back(std::move(existing));
    slot = set_in(sub.get(), shift + kBits, key, std::move(value), replaced);
    return out;
  }

  NodePtr root_;
  std::size_t size_ = 0;
};

}  // namespace bsvc
