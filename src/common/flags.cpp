#include "common/flags.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace bsvc {

namespace {
[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "flag error: %s\n", msg.c_str());
  std::exit(2);
}
}  // namespace

Flags::Flags(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) usage_error("expected --flag, got '" + arg + "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // bare boolean
    }
  }
}

bool Flags::has(const std::string& name) const {
  recognized_.push_back(name);
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name, const std::string& def) const {
  recognized_.push_back(name);
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  recognized_.push_back(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const auto v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') usage_error("--" + name + " expects an integer");
  return v;
}

double Flags::get_double(const std::string& name, double def) const {
  recognized_.push_back(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') usage_error("--" + name + " expects a number");
  return v;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  recognized_.push_back(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  usage_error("--" + name + " expects true/false");
}

void Flags::finish() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (std::find(recognized_.begin(), recognized_.end(), name) == recognized_.end()) {
      usage_error("unknown flag --" + name);
    }
  }
}

}  // namespace bsvc
