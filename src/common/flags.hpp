// Minimal command-line flag parsing for benches and examples.
//
// Syntax: --name=value, --name value, or bare --name for booleans.
// Unknown flags are an error (benches should not silently ignore typos).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bsvc {

/// Parses flags once in main() and hands out typed lookups with defaults.
class Flags {
 public:
  /// Parses argv; aborts with a message on malformed input.
  Flags(int argc, char** argv);

  /// True if --name was present at all.
  bool has(const std::string& name) const;

  /// String flag with default.
  std::string get_string(const std::string& name, const std::string& def) const;
  /// Integer flag with default (accepts 2^k suffix-free decimal only).
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  /// Floating-point flag with default.
  double get_double(const std::string& name, double def) const;
  /// Boolean flag: bare --name, or --name=true/false/1/0.
  bool get_bool(const std::string& name, bool def) const;

  /// Marks a flag as recognized; call for every flag the binary supports,
  /// then finish() rejects anything the user passed that was never declared.
  void finish() const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::vector<std::string> recognized_;
};

}  // namespace bsvc
