#include "common/logging.hpp"

#include <cstdio>

namespace bsvc {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

LogLevel parse_log_level(const std::string& s) {
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off") return LogLevel::Off;
  return LogLevel::Info;
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace bsvc
