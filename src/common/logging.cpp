#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

namespace bsvc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> parse_log_level(const std::string& s) {
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off") return LogLevel::Off;
  return std::nullopt;
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;

  // Build the whole "[LEVEL] message\n" line first, then hand it to stderr
  // with one fwrite: POSIX stdio locks the stream per call, so lines from
  // concurrent bench replica threads never interleave mid-line.
  char stack_buf[512];
  const int prefix = std::snprintf(stack_buf, sizeof(stack_buf), "[%s] ", level_name(level));

  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int body = std::vsnprintf(stack_buf + prefix, sizeof(stack_buf) - prefix - 1,
                                  fmt, args);
  va_end(args);

  if (body < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<std::size_t>(prefix + body) < sizeof(stack_buf) - 1) {
    va_end(args_copy);
    stack_buf[prefix + body] = '\n';
    std::fwrite(stack_buf, 1, static_cast<std::size_t>(prefix + body + 1), stderr);
    return;
  }
  // Rare long message: retry into an exact-size heap buffer.
  std::vector<char> heap_buf(static_cast<std::size_t>(prefix + body + 2));
  std::memcpy(heap_buf.data(), stack_buf, static_cast<std::size_t>(prefix));
  std::vsnprintf(heap_buf.data() + prefix, heap_buf.size() - static_cast<std::size_t>(prefix),
                 fmt, args_copy);
  va_end(args_copy);
  heap_buf[static_cast<std::size_t>(prefix + body)] = '\n';
  std::fwrite(heap_buf.data(), 1, static_cast<std::size_t>(prefix + body + 1), stderr);
}

}  // namespace bsvc
