// Leveled logging with printf-style formatting.
//
// Benches run with logging at Warn; tests and examples may raise it. The
// logger is a process-wide singleton because log level is genuinely global
// configuration. The simulator itself is single-threaded, but the bench
// harness runs replicas on worker threads (common/parallel.hpp), so the
// level is an atomic and every message is written with a single fwrite —
// concurrent lines interleave whole, never mid-line.
#pragma once

#include <cstdarg>
#include <optional>
#include <string>

namespace bsvc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log threshold.
void set_log_level(LogLevel level);
/// Current global log threshold.
LogLevel log_level();
/// Parses "debug"/"info"/"warn"/"error"/"off"; anything else is
/// std::nullopt (callers turn that into a flag error).
std::optional<LogLevel> parse_log_level(const std::string& s);

/// Emits a message if `level` passes the threshold. Prefer the macros below,
/// which avoid evaluating arguments when disabled. Thread-safe.
void log_message(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace bsvc

#define BSVC_LOG(level, ...)                                         \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::bsvc::log_level())) \
      ::bsvc::log_message(level, __VA_ARGS__);                       \
  } while (false)

#define BSVC_DEBUG(...) BSVC_LOG(::bsvc::LogLevel::Debug, __VA_ARGS__)
#define BSVC_INFO(...) BSVC_LOG(::bsvc::LogLevel::Info, __VA_ARGS__)
#define BSVC_WARN(...) BSVC_LOG(::bsvc::LogLevel::Warn, __VA_ARGS__)
#define BSVC_ERROR(...) BSVC_LOG(::bsvc::LogLevel::Error, __VA_ARGS__)
