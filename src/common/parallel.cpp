#include "common/parallel.hpp"

#include <chrono>
#include <exception>
#include <limits>
#include <utility>

#include "common/assert.hpp"

namespace bsvc {

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? hardware_threads() : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  BSVC_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

WindowCrew::WindowCrew(std::size_t size) : size_(size == 0 ? 1 : size) {
  lane_ns_.assign(size_, 0);
  workers_.reserve(size_ - 1);
  for (std::size_t lane = 1; lane < size_; ++lane) {
    workers_.emplace_back([this, lane] { lane_loop(lane); });
  }
}

WindowCrew::~WindowCrew() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  round_start_.notify_all();
  for (auto& w : workers_) w.join();
}

// Stamps lane_ns_[lane] with fn's duration. Each lane writes only its own
// slot mid-round; readers see the writes after the run() barrier, whose
// mutex hand-off orders them.
void WindowCrew::time_lane(std::size_t lane, const std::function<void(std::size_t)>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn(lane);
  lane_ns_[lane] = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count());
}

void WindowCrew::run(const std::function<void(std::size_t)>& fn) {
  if (size_ == 1) {
    if (timing_) {
      time_lane(0, fn);
    } else {
      fn(0);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    BSVC_CHECK_MSG(outstanding_ == 0 && job_ == nullptr, "WindowCrew::run is not reentrant");
    job_ = &fn;
    outstanding_ = size_ - 1;
    ++round_;
  }
  round_start_.notify_all();
  // Lane 0 runs on the caller — K shards need only K-1 workers.
  if (timing_) {
    time_lane(0, fn);
  } else {
    fn(0);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  round_done_.wait(lock, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void WindowCrew::lane_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      round_start_.wait(lock, [&] { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
      job = job_;
    }
    if (timing_) {
      time_lane(lane, *job);
    } else {
      (*job)(lane);
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = --outstanding_ == 0;
    }
    // Only the caller of run() waits on round_done_, and only the final
    // lane's notification can satisfy its predicate.
    if (last) round_done_.notify_one();
  }
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t n = std::min(threads == 0 ? hardware_threads() : threads, count);
  if (n <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr first_error;

  ThreadPool pool(n);
  for (std::size_t w = 0; w < n; ++w) {
    pool.submit([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (i < first_error_index) {
            first_error_index = i;
            first_error = std::current_exception();
          }
        }
      }
    });
  }
  pool.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bsvc
