// Minimal threading layer for fanning independent work items (bench
// replicas, parameter-sweep points) across hardware threads.
//
// Everything inside the simulator stays single-threaded and deterministic;
// parallelism only ever happens ABOVE whole Engine instances — one engine
// per work item, no shared mutable state. parallel_for with threads <= 1
// degenerates to a plain loop on the calling thread, so a sequential run is
// not merely equivalent but literally the same code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bsvc {

/// Number of hardware threads, at least 1 (hardware_concurrency may be 0).
std::size_t hardware_threads();

/// A fixed-size worker pool with a FIFO task queue. Tasks must not throw
/// across the submit boundary — wrap and capture exceptions yourself (
/// parallel_for below does).
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 means hardware_threads()).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(0..count-1), fanned across up to `threads` workers (capped at
/// `count`). Indices are claimed in order but may complete out of order;
/// the call returns only when all have finished. threads <= 1 runs inline
/// sequentially. If any invocation throws, the exception thrown by the
/// lowest index is rethrown after all work has settled.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

/// Maps fn(item, index) over `items`, results returned in input order
/// regardless of completion order. Result type must be default-constructible
/// and movable.
template <typename Item, typename Fn>
auto parallel_map(const std::vector<Item>& items, std::size_t threads, Fn&& fn) {
  using Result = std::decay_t<std::invoke_result_t<Fn&, const Item&, std::size_t>>;
  std::vector<Result> results(items.size());
  parallel_for(items.size(), threads,
               [&](std::size_t i) { results[i] = fn(items[i], i); });
  return results;
}

}  // namespace bsvc
