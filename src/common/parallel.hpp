// Minimal threading layer: fans independent work items (bench replicas,
// parameter-sweep points) across hardware threads, and runs the sharded
// engine's window crew (one persistent worker per extra shard).
//
// Parallelism happens in two sanctioned places only: ABOVE whole Engine
// instances (one engine per work item, no shared mutable state), and
// INSIDE one sharded engine through WindowCrew, whose barrier protocol is
// the engine's only cross-thread synchronization point. parallel_for with
// threads <= 1 degenerates to a plain loop on the calling thread, and a
// WindowCrew of size 1 never spawns a thread, so sequential runs are not
// merely equivalent but literally the same code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bsvc {

/// Number of hardware threads, at least 1 (hardware_concurrency may be 0).
std::size_t hardware_threads();

/// A fixed-size worker pool with a FIFO task queue. Tasks must not throw
/// across the submit boundary — wrap and capture exceptions yourself (
/// parallel_for below does).
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 means hardware_threads()).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(0..count-1), fanned across up to `threads` workers (capped at
/// `count`). Indices are claimed in order but may complete out of order;
/// the call returns only when all have finished. threads <= 1 runs inline
/// sequentially. If any invocation throws, the exception thrown by the
/// lowest index is rethrown after all work has settled.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

/// A crew of `size` lanes for barrier-synchronized phases: run(fn) invokes
/// fn(lane) once per lane — lane 0 on the calling thread, lanes 1..size-1 on
/// persistent workers — and returns only when every lane has finished, with
/// full acquire/release ordering between the lanes' work and the caller's
/// continuation. The sharded engine calls run() a few times per time window
/// (event phase, mailbox drain), so workers park on a condition variable
/// between rounds rather than spinning; round-trip cost is measured by the
/// micro_ops crew-round benchmark.
///
/// size == 1 spawns no threads and run(fn) is a plain inline call, making a
/// one-shard engine literally serial code.
class WindowCrew {
 public:
  explicit WindowCrew(std::size_t size);
  ~WindowCrew();

  WindowCrew(const WindowCrew&) = delete;
  WindowCrew& operator=(const WindowCrew&) = delete;

  std::size_t size() const { return size_; }

  /// Runs fn(0..size-1), one lane per thread; blocks until all lanes return.
  /// fn must not throw. Not reentrant (the engine never nests windows).
  void run(const std::function<void(std::size_t)>& fn);

  /// Enables per-lane busy-time accounting: with timing on, every run()
  /// stamps each lane's fn duration (steady clock, nanoseconds) into the
  /// slot read back via last_lane_ns(). Off by default — the engine
  /// profiler switches it on when installed. Call between rounds only.
  void set_timing(bool enabled) { timing_ = enabled; }
  bool timing() const { return timing_; }

  /// Per-lane busy time of the most recent run(), valid only while timing
  /// is enabled. Safe to read after run() returns: worker writes happen
  /// before the barrier hand-off under mutex_.
  const std::vector<std::uint64_t>& last_lane_ns() const { return lane_ns_; }

 private:
  void lane_loop(std::size_t lane);
  void time_lane(std::size_t lane, const std::function<void(std::size_t)>& fn);

  const std::size_t size_;
  bool timing_ = false;
  std::vector<std::uint64_t> lane_ns_;
  std::mutex mutex_;
  std::condition_variable round_start_;
  std::condition_variable round_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t round_ = 0;     // bumped per run(); workers wait for a new round
  std::size_t outstanding_ = 0; // lanes still inside the current round
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Maps fn(item, index) over `items`, results returned in input order
/// regardless of completion order. Result type must be default-constructible
/// and movable.
template <typename Item, typename Fn>
auto parallel_map(const std::vector<Item>& items, std::size_t threads, Fn&& fn) {
  using Result = std::decay_t<std::invoke_result_t<Fn&, const Item&, std::size_t>>;
  std::vector<Result> results(items.size());
  parallel_for(items.size(), threads,
               [&](std::size_t i) { results[i] = fn(items[i], i); });
  return results;
}

}  // namespace bsvc
