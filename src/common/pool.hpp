// Thread-local object and buffer recycling for the steady-state hot path.
//
// Two facilities, both bounded and both invisible to behavior:
//
//  - PooledAlloc<Derived>: a CRTP mixin giving a final payload class
//    class-scope operator new/delete backed by a thread-local free list of
//    fixed-size blocks. The simulation's per-message payload objects
//    (BootstrapMessage, NewscastMessage, ProbeMessage) churn at engine rate;
//    with the mixin a steady-state exchange reuses a block instead of
//    touching the global allocator.
//
//  - BufferPool<T>: recycles std::vector<T> *capacity* across message
//    lifetimes. A payload's entry vector is acquired from the pool at
//    construction and its storage released back at destruction, so the
//    reserve() in the builder path stops allocating once the pool is warm.
//
// Thread-safety model: caches are thread_local. The sharded engine's worker
// lanes are persistent threads, so each lane warms its own cache once and
// then runs allocation-free. A block allocated on one thread and freed on
// another simply migrates between caches — both sides defer to the global
// operator new/delete on miss/overflow, so ownership is never violated.
// Vector capacity and block reuse never affect the simulation trajectory:
// goldens stay bit-identical.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

namespace bsvc {

namespace pool_detail {
// Per-thread cache bound. Sized to the plausible in-flight message high-water
// mark at the XL tiers; beyond it the pool degrades gracefully to the global
// allocator. ~1 MiB of blocks / a few MiB of vector storage per lane.
inline constexpr std::size_t kMaxCached = 8192;
}  // namespace pool_detail

/// CRTP allocation mixin: `class M final : public Payload, public
/// PooledAlloc<M>`. Derived must be final — the free list assumes every
/// block is exactly sizeof(Derived).
template <typename Derived>
class PooledAlloc {
 public:
  static void* operator new(std::size_t size) {
    Cache& c = cache();
    if (size == sizeof(Derived) && !c.blocks.empty()) {
      void* p = c.blocks.back();
      c.blocks.pop_back();
      return p;
    }
    return ::operator new(size);
  }

  static void operator delete(void* p, std::size_t size) noexcept {
    Cache& c = cache();
    if (size == sizeof(Derived) && c.blocks.size() < c.blocks.capacity()) {
#ifndef NDEBUG
      // Scribble freed blocks so use-after-free reads trip assertions fast.
      std::memset(p, 0xDD, sizeof(Derived));
#endif
      c.blocks.push_back(p);
      return;
    }
    ::operator delete(p);
  }
  static void operator delete(void* p) noexcept {
    operator delete(p, sizeof(Derived));
  }

 private:
  struct Cache {
    // Reserved up front so the noexcept delete path never allocates (and
    // never throws); remaining blocks are returned at thread exit.
    Cache() { blocks.reserve(pool_detail::kMaxCached); }
    ~Cache() {
      for (void* p : blocks) ::operator delete(p);
    }
    std::vector<void*> blocks;
  };
  static Cache& cache() {
    thread_local Cache c;
    return c;
  }
};

/// Recycles vector storage by element type. acquire() swaps a warmed buffer
/// (cleared, capacity intact) into `v`; release() donates `v`'s storage back.
template <typename T>
class BufferPool {
 public:
  static void acquire(std::vector<T>& v) {
    Cache& c = cache();
    if (!c.buffers.empty()) {
      v = std::move(c.buffers.back());
      c.buffers.pop_back();
      v.clear();
    }
  }

  static void release(std::vector<T>&& v) noexcept {
    if (v.capacity() == 0) return;
    Cache& c = cache();
    if (c.buffers.size() < c.buffers.capacity()) {
      c.buffers.push_back(std::move(v));
    }
    // else: v's destructor frees the storage as usual.
  }

 private:
  struct Cache {
    Cache() { buffers.reserve(pool_detail::kMaxCached); }
    std::vector<std::vector<T>> buffers;
  };
  static Cache& cache() {
    thread_local Cache c;
    return c;
  }
};

}  // namespace bsvc
