#include "common/rng.hpp"

#include <cmath>

namespace bsvc {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& word : s_) word = splitmix64(seed);
  // All-zero state is the one forbidden state of xoshiro; splitmix64 cannot
  // produce four zeros from any seed, but keep the guarantee explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  BSVC_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  BSVC_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t draw = (span == 0) ? next_u64() : below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  BSVC_CHECK(mean > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

std::vector<std::uint32_t> Rng::distinct_indices(std::uint32_t n, std::uint32_t universe) {
  std::vector<std::uint32_t> out;
  distinct_indices_into(n, universe, out);
  return out;
}

void Rng::distinct_indices_into(std::uint32_t n, std::uint32_t universe,
                                std::vector<std::uint32_t>& out) {
  BSVC_CHECK(n <= universe);
  // Floyd's algorithm: O(n) draws, no O(universe) allocation.
  out.clear();
  out.reserve(n);
  for (std::uint32_t j = universe - n; j < universe; ++j) {
    const auto t = static_cast<std::uint32_t>(below(j + 1));
    bool seen = false;
    for (std::uint32_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace bsvc
