// Deterministic pseudo-random number generation.
//
// The whole simulator is seeded from a single 64-bit value, and every random
// sequence must be reproducible across platforms and standard-library
// implementations. <random> distributions are implementation-defined in the
// exact sequences they produce, so we implement the generator (xoshiro256**)
// and the distributions we need ourselves.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace bsvc {

/// SplitMix64 step; used to expand a single seed into generator state and to
/// derive independent child seeds. Public because tests and the engine use it
/// to derive per-node seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 (Blackman & Vigna) with a portable set of distribution
/// helpers. Copyable: copies continue the sequence independently, which is
/// handy for "what would happen next" probes in tests.
class Rng {
 public:
  /// Seeds the four state words via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0xB5297A4D1E013F2Dull);

  /// Raw 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Uniformly random element index-picked from a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    BSVC_CHECK(!v.empty());
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Fisher–Yates shuffle (portable, unlike std::shuffle's use of the URBG).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[static_cast<std::size_t>(below(i))]);
    }
  }

  /// Draws `n` distinct indices from [0, universe) (n <= universe) using
  /// Floyd's algorithm; order is unspecified but deterministic.
  std::vector<std::uint32_t> distinct_indices(std::uint32_t n, std::uint32_t universe);

  /// As distinct_indices, but fills a caller-provided buffer (cleared
  /// first), so hot paths can reuse one scratch vector. Identical draws.
  void distinct_indices_into(std::uint32_t n, std::uint32_t universe,
                             std::vector<std::uint32_t>& out);

  /// Derives an independent child generator; the parent sequence advances.
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace bsvc
