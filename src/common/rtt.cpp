#include "common/rtt.hpp"

#include <algorithm>

namespace bsvc {

void RttEstimator::on_sample(std::uint64_t rtt) {
  ++samples_;
  backoff_shift_ = 0;  // a clean sample proves the path works again
  if (!has_sample_) {
    has_sample_ = true;
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    return;
  }
  // RFC 6298 gains in integer arithmetic: rttvar = 3/4 rttvar + 1/4 |err|,
  // srtt = 7/8 srtt + 1/8 rtt.
  const std::uint64_t err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
  rttvar_ = (3 * rttvar_ + err) / 4;
  srtt_ = (7 * srtt_ + rtt) / 8;
}

std::uint64_t RttEstimator::timeout() const {
  std::uint64_t base = has_sample_ ? srtt_ + 4 * rttvar_ : config_.initial_timeout;
  // Apply the loss backoff, saturating well before overflow.
  const std::uint32_t shift = std::min<std::uint32_t>(backoff_shift_, 16);
  if (base > (config_.max_timeout >> shift)) {
    base = config_.max_timeout;
  } else {
    base <<= shift;
  }
  return std::clamp(base, config_.min_timeout, config_.max_timeout);
}

void RttEstimator::on_timeout() {
  if (backoff_shift_ < 16) ++backoff_shift_;
}

std::uint64_t RetryPolicy::delay(int attempt, std::uint64_t base, Rng& rng) const {
  std::uint64_t d = std::max<std::uint64_t>(base, 1);
  // Integer exponentiation of the backoff factor, saturating at 2^32 * base
  // (far beyond any sane budget); fractional factors round down per step.
  for (int k = 1; k < attempt && d < (std::uint64_t{1} << 48); ++k) {
    d = static_cast<std::uint64_t>(static_cast<double>(d) * backoff);
  }
  if (jitter > 0.0) {
    const auto spread = static_cast<std::uint64_t>(jitter * static_cast<double>(d));
    if (spread > 0) d += rng.below(spread + 1);
  }
  return std::max<std::uint64_t>(d, 1);
}

}  // namespace bsvc
