// Adaptive round-trip-time estimation and retry policy.
//
// RttEstimator is the classic Jacobson/Karn smoother (RFC 6298 shape):
// SRTT/RTTVAR updated per sample, retransmission timeout srtt + 4 * rttvar
// clamped to configurable bounds, and exponential timeout backoff while a
// request keeps timing out. Karn's rule — never feed a sample measured on a
// retransmitted request — is the caller's responsibility: the caller knows
// which request was retransmitted, the estimator only sees clean samples.
//
// RetryPolicy is the matching send-side half: a bounded retry budget and an
// exponential backoff schedule with deterministic jitter. The jitter draw
// comes from the caller-supplied Rng — protocols pass their per-node stream,
// which is what keeps retry timing a pure function of the trajectory and
// byte-identical across the sharded engine's --shards K.
//
// Times are plain ticks (std::uint64_t): like obs/, this header must not
// depend on sim/ — the simulator and a future real-clock backend both feed
// it their own tick domain.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace bsvc {

/// Bounds and seed state for one RttEstimator.
struct RttConfig {
  /// Timeout used before the first sample arrives.
  std::uint64_t initial_timeout = 400;
  /// Clamp bounds for the computed timeout. min_timeout must stay above the
  /// transport's minimum one-way latency or every request "times out" while
  /// its answer is still in flight (experiment setup validates this).
  std::uint64_t min_timeout = 64;
  std::uint64_t max_timeout = 4000;
};

/// Per-node SRTT/RTTVAR smoother. All arithmetic is integer ticks with the
/// standard 1/8 and 1/4 gains, so two nodes fed the same samples in the same
/// order hold bit-identical state on every platform.
class RttEstimator {
 public:
  RttEstimator() = default;
  explicit RttEstimator(RttConfig config) : config_(config) {}

  bool has_sample() const { return has_sample_; }
  std::uint64_t srtt() const { return srtt_; }
  std::uint64_t rttvar() const { return rttvar_; }
  std::uint64_t samples() const { return samples_; }

  /// Feeds one clean round-trip sample (Karn's rule: the caller must not
  /// pass samples measured on retransmitted requests). First sample seeds
  /// srtt = rtt, rttvar = rtt / 2; later samples apply the Jacobson gains.
  void on_sample(std::uint64_t rtt);

  /// Current retransmission timeout: srtt + 4 * rttvar (the initial timeout
  /// before any sample), times the backoff accumulated by on_timeout(),
  /// clamped into [min_timeout, max_timeout].
  std::uint64_t timeout() const;

  /// Doubles the effective timeout (capped at max_timeout) — called when a
  /// request times out, so consecutive losses back off exponentially even
  /// between samples. A subsequent clean sample resets the backoff.
  void on_timeout();

  const RttConfig& config() const { return config_; }

 private:
  RttConfig config_{};
  std::uint64_t srtt_ = 0;
  std::uint64_t rttvar_ = 0;
  std::uint64_t samples_ = 0;
  std::uint32_t backoff_shift_ = 0;  // timeout multiplier: 1 << shift
  bool has_sample_ = false;
};

/// Bounded exponential-backoff retry schedule with deterministic jitter.
struct RetryPolicy {
  /// Retransmissions allowed per request beyond the first send. 0 disables
  /// retries entirely (no extra RNG draws, no extra timers — a disabled
  /// policy leaves the trajectory bit-identical to a build without it).
  int budget = 0;
  /// Delay multiplier per consecutive attempt (integer doubling keeps the
  /// schedule platform-independent; values other than 2 round down).
  double backoff = 2.0;
  /// Jitter fraction: the delay for attempt k is base * backoff^k plus a
  /// uniform draw from [0, jitter * that). Desynchronizes retry storms.
  double jitter = 0.1;

  /// Delay before retransmission number `attempt` (1-based), given the
  /// current base timeout. Draws the jitter from `rng` — pass the owning
  /// node's stream for shard-count independence. Never returns 0.
  std::uint64_t delay(int attempt, std::uint64_t base, Rng& rng) const;
};

}  // namespace bsvc
