#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace bsvc {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double d = x - m_;
  m_ += d / static_cast<double>(n_);
  m2_ += d * (x - m_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Samples::quantile(double q) {
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(xs_.size() - 1) + 0.5);
  return xs_[rank];
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  BSVC_CHECK(hi > lo);
  BSVC_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  b = std::clamp<std::int64_t>(b, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto width =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) / static_cast<double>(peak) *
                                 static_cast<double>(max_width));
    os << "[" << bucket_lo(b) << ", " << bucket_lo(b + 1) << ") " << counts_[b] << " "
       << std::string(width, '#') << "\n";
  }
  return os.str();
}

TimeSeries::TimeSeries(std::vector<std::string> columns) : columns_(std::move(columns)) {
  BSVC_CHECK(!columns_.empty());
}

void TimeSeries::add_row(const std::vector<double>& row) {
  BSVC_CHECK(row.size() == columns_.size());
  rows_.push_back(row);
}

std::string TimeSeries::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) os << ",";
    os << columns_[c];
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ",";
      os << row[c];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace bsvc
