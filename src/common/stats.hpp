// Small statistics toolkit used by metrics collection, benches and tests:
// running moments, order statistics, fixed-bucket histograms, and per-cycle
// time series with CSV export.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bsvc {

/// Running mean / variance / extrema (Welford). O(1) space.
class Accumulator {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations so far.
  std::uint64_t count() const { return n_; }
  /// Sum of observations.
  double sum() const { return sum_; }
  /// Mean; 0 if empty.
  double mean() const { return n_ == 0 ? 0.0 : m_; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Minimum; +inf if empty.
  double min() const { return min_; }
  /// Maximum; -inf if empty.
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double m_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; provides exact quantiles. Use for per-node metrics
/// where N is at most a few hundred thousand.
class Samples {
 public:
  /// Adds one observation.
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  /// Number of observations.
  std::size_t count() const { return xs_.size(); }
  /// Exact q-quantile (nearest-rank, q in [0,1]); 0 if empty. Sorts lazily.
  double quantile(double q);
  /// Mean of all samples; 0 if empty.
  double mean() const;

 private:
  std::vector<double> xs_;
  bool sorted_ = false;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range values are
/// clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t bucket_count(std::size_t b) const { return counts_.at(b); }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  /// Lower edge of bucket b.
  double bucket_lo(std::size_t b) const;
  /// Renders a compact ASCII bar chart (for bench logs).
  std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// A named collection of aligned per-cycle series; renders CSV and
/// gnuplot-ready columns. Rows are appended one cycle at a time.
class TimeSeries {
 public:
  /// Declares the column layout. First column is typically "cycle".
  explicit TimeSeries(std::vector<std::string> columns);

  /// Appends one row; must match the column count.
  void add_row(const std::vector<double>& row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return columns_.size(); }
  double at(std::size_t row, std::size_t col) const { return rows_.at(row).at(col); }
  const std::string& column_name(std::size_t col) const { return columns_.at(col); }

  /// CSV with a header line.
  std::string to_csv() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace bsvc
