#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace bsvc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  BSVC_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  BSVC_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace bsvc
