// ASCII table rendering for bench output. Benches print the same rows the
// paper's tables/figures report; this keeps the formatting in one place.
#pragma once

#include <string>
#include <vector>

namespace bsvc {

/// Column-aligned ASCII table with a header row.
class Table {
 public:
  /// Declares the header.
  explicit Table(std::vector<std::string> header);

  /// Appends a row of pre-formatted cells; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string num(double v, int precision = 6);

  /// Renders with column padding and a separator under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bsvc
