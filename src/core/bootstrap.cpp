#include "core/bootstrap.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "net/codec.hpp"

namespace bsvc {

namespace {
constexpr std::uint64_t kInitTimer = BootstrapProtocol::kRestartTimer;
constexpr std::uint64_t kActiveTimer = 2;

// Hot-path scratch shared by every protocol instance on a worker lane.
// Thread-local (not per-node members): the buffers hold data only alive
// within one create_message / update_from / select_peer call, the callbacks
// never re-enter each other, and the sharded engine's lanes are persistent
// threads — so one warm set per lane replaces hundreds of thousands of
// per-node vectors without changing a single RNG draw.
struct BootstrapScratch {
  DescriptorList union_buf;
  DescriptorList succ_buf;
  DescriptorList pred_buf;
  DescriptorList combined_buf;
  DescriptorList candidate_buf;  // select_peer's demotion filter
  std::vector<std::uint8_t> cell_fill_buf;
};

BootstrapScratch& scratch() {
  thread_local BootstrapScratch s;
  return s;
}
}  // namespace

std::size_t BootstrapMessage::wire_bytes() const {
  // sender descriptor + flag byte + the two length-prefixed lists + the
  // length-prefixed tombstone list (id u64 + coarse expiry u32 each),
  // matching the binary codec (tests assert the equivalence).
  return kDescriptorWireBytes + 1 + descriptor_list_wire_bytes(ring_part().size()) +
         descriptor_list_wire_bytes(prefix_part().size()) + 2 + tombstones.size() * 12;
}

BootstrapProtocol::BootstrapProtocol(BootstrapConfig config, PeerSampler* sampler,
                                     BootstrapStats* stats, SimTime start_delay)
    : config_(config), sampler_(sampler), stats_(stats), start_delay_(start_delay) {
  BSVC_CHECK(sampler_ != nullptr);
  BSVC_CHECK(config_.c >= 2);
  BSVC_CHECK(config_.k >= 1);
  config_.digits.validate<NodeId>();
  RttConfig rc;
  rc.initial_timeout =
      config_.exchange_timeout != 0 ? config_.exchange_timeout : config_.delta / 2;
  rc.min_timeout = config_.rtt_min_timeout;
  rc.max_timeout = config_.rtt_max_timeout;
  rtt_ = RttEstimator(rc);
}

void BootstrapProtocol::on_start(Context& ctx) {
  self_ = {ctx.self_id(), ctx.self()};
  obs::MetricsRegistry& metrics = ctx.engine().metrics();
  ctr_requests_ = &metrics.counter("bootstrap.requests");
  ctr_replies_ = &metrics.counter("bootstrap.replies");
  ctr_select_peer_empty_ = &metrics.counter("bootstrap.select_peer_empty");
  ctr_condemned_ = &metrics.counter("bootstrap.condemned");
  ctr_exchange_timeout_ = &metrics.counter("bootstrap.exchange_timeout");
  if (config_.retry_exchanges) ctr_retry_ = &metrics.counter("retry.exchange");
  if (config_.adaptive_timeout) ctr_rtt_samples_ = &metrics.counter("rtt.samples");
  if (config_.suspicion_threshold > 0) {
    ctr_suspect_marked_ = &metrics.counter("suspect.marked");
    ctr_suspect_decayed_ = &metrics.counter("suspect.decayed");
    ctr_suspect_evicted_ = &metrics.counter("suspect.evicted");
  }
  if (config_.harden) {
    ctr_q_held_ = &metrics.counter("quarantine.held");
    ctr_q_promoted_ = &metrics.counter("quarantine.promoted");
    ctr_q_rejected_ = &metrics.counter("quarantine.rejected");
    ctr_sanity_rejected_ = &metrics.counter("bootstrap.sanity_rejected");
    ctr_pin_mismatch_ = &metrics.counter("bootstrap.pin_mismatch");
  }
  span_log_ = ctx.engine().span_log();
  ctx.schedule_timer(start_delay_, kInitTimer);
}

void BootstrapProtocol::close_span(SimTime now, obs::SpanOutcome outcome,
                                   std::uint32_t answer_descriptors) {
  if (open_span_ == obs::kNoSpan) return;  // span_log_ is set whenever one is open
  span_log_->close(open_span_, now, outcome, answer_descriptors);
  open_span_ = obs::kNoSpan;
  open_span_peer_ = 0;
}

void BootstrapProtocol::on_timer(Context& ctx, std::uint64_t timer_id) {
  switch (timer_id) {
    case kInitTimer:
      init_tables(ctx);
      active_step(ctx);
      // A restart re-initializes tables but must not spawn a second
      // periodic chain.
      if (!chain_started_) {
        chain_started_ = true;
        ctx.schedule_timer(config_.delta, kActiveTimer);
      }
      break;
    case kActiveTimer:
      active_step(ctx);
      ctx.schedule_timer(config_.delta, kActiveTimer);
      break;
    default:
      if (timer_id > kExchangeTimeoutBase) {
        on_exchange_timeout(ctx, timer_id - kExchangeTimeoutBase);
        break;
      }
      BSVC_CHECK_MSG(false, "unknown timer");
  }
}

SimTime BootstrapProtocol::exchange_timeout_value() const {
  if (config_.adaptive_timeout) return static_cast<SimTime>(rtt_.timeout());
  return config_.exchange_timeout != 0 ? config_.exchange_timeout : config_.delta / 2;
}

void BootstrapProtocol::on_exchange_timeout(Context& ctx, std::uint64_t seq) {
  // Only the newest exchange counts: a stale timer means the peer answered
  // or a later exchange replaced it.
  if (seq != exchange_seq_ || probe_answered_ || probe_peer_.addr == kNullAddress) return;
  if (!active()) return;
  now_ = ctx.now();
  if (config_.retry_exchanges && exchange_attempts_ <= config_.exchange_retry_budget) {
    // Retransmit to the same peer with a freshly rebuilt message (the tables
    // may have moved since the first send). Karn's rule: a retried exchange
    // contributes no RTT sample — its answer could belong to any copy.
    rtt_.on_timeout();
    exchange_retried_ = true;
    ++exchange_attempts_;
    if (ctr_retry_ != nullptr) ctr_retry_->inc();
    if (span_log_ != nullptr && open_span_ != obs::kNoSpan) span_log_->on_retry(open_span_);
    auto msg = create_message(probe_peer_.id, /*is_request=*/true);
    msg->span = open_span_;
    ctx.send(probe_peer_.addr, std::move(msg));
    const RetryPolicy policy{config_.exchange_retry_budget, config_.retry_backoff,
                             config_.retry_jitter};
    const SimTime delay = static_cast<SimTime>(
        policy.delay(exchange_attempts_ - 1, exchange_timeout_value(), ctx.rng()));
    ++exchange_seq_;
    ctx.schedule_timer(delay, kExchangeTimeoutBase + exchange_seq_);
    return;
  }
  if (config_.adaptive_timeout) rtt_.on_timeout();
  if (ctr_exchange_timeout_ != nullptr) ctr_exchange_timeout_->inc();
  close_span(now_, obs::SpanOutcome::Timeout);
  if (config_.suspicion_threshold > 0 && raise_suspicion(probe_peer_.addr)) {
    if (ctr_suspect_evicted_ != nullptr) ctr_suspect_evicted_->inc();
    suspicion_.erase(probe_peer_.addr);
    condemn(probe_peer_.id, now_);
    return;
  }
  // Demote the silent peer into the probing path: SELECTPEER skips it until
  // it answers, and kProbeAttempts silent probes condemn it.
  send_probe(ctx, probe_peer_);
}

void BootstrapProtocol::init_tables(Context& /*ctx*/) {
  // Order matters: drop both tables' handles, rewind the arena, then
  // reconstruct. The leaf block (fixed capacity c) is allocated first and
  // the prefix block last, so prefix growth always doubles in place at the
  // arena tip. On a restart the slabs are already sized — no allocation.
  leaf_.reset();
  prefix_.reset();
  arena_.reset();
  leaf_.emplace(self_.id, config_.c, &arena_);
  prefix_.emplace(self_.id, config_.digits, config_.k, &arena_);
  const DescriptorList seeds = sampler_->sample(config_.c);
  leaf_->update(seeds);
}

void BootstrapProtocol::active_step(Context& ctx) {
  now_ = ctx.now();
  if (config_.evict_unresponsive) {
    maintenance_step(ctx);
  }
  // A span still open here got neither answer nor timeout (or the timeout
  // extension is off): this cycle's exchange supersedes it.
  close_span(now_, obs::SpanOutcome::Superseded);
  probe_peer_ = {0, kNullAddress};
  if (leaf_->empty()) {
    // The sampling service had nothing for us at init (or everything we knew
    // died); retry initialization — the paper's "last resort" role of the
    // sampling layer.
    leaf_->update(sampler_->sample(config_.c));
    if (leaf_->empty()) {
      if (stats_ != nullptr) ++stats_->select_peer_empty;
      if (ctr_select_peer_empty_ != nullptr) ctr_select_peer_empty_->inc();
      return;
    }
  }
  const auto peer = select_peer(ctx);
  if (!peer) {
    if (stats_ != nullptr) ++stats_->select_peer_empty;
    if (ctr_select_peer_empty_ != nullptr) ctr_select_peer_empty_->inc();
    return;
  }
  auto msg = create_message(peer->id, /*is_request=*/true);
  if (stats_ != nullptr) ++stats_->requests_sent;
  if (ctr_requests_ != nullptr) ctr_requests_->inc();
  if (span_log_ != nullptr) {
    // Sequence starts at 1 so (addr 0, first span) never collides with
    // kNoSpan. Observe-only: the id changes no wire bytes and no RNG draws.
    open_span_ = (static_cast<std::uint64_t>(self_.addr) << 40) | ++span_seq_;
    open_span_peer_ = peer->id;
    msg->span = open_span_;
    span_log_->open(open_span_, now_, static_cast<std::uint32_t>(msg->entry_count()));
  }
  probe_peer_ = *peer;
  probe_answered_ = false;
  exchange_attempts_ = 1;
  exchange_retried_ = false;
  exchange_sent_at_ = now_;
  ctx.send(peer->addr, std::move(msg));
  if (config_.evict_unresponsive) {
    ++exchange_seq_;
    ctx.schedule_timer(exchange_timeout_value(), kExchangeTimeoutBase + exchange_seq_);
  }
}

void BootstrapProtocol::maintenance_step(Context& ctx) {
  // 1. Probes unanswered for a full cycle are retried; only kProbeAttempts
  // consecutive silences condemn the target (a single lost datagram must
  // not spawn a death certificate — spread certificates amplify mistakes).
  const SimTime now = ctx.now();
  for (auto it = outstanding_probes_.begin(); it != outstanding_probes_.end();) {
    if (now - it->sent > config_.delta) {
      // One-shot mode evicts after kProbeAttempts silences; accrual mode adds
      // one suspicion unit per silent round and keeps probing below the
      // threshold, so a transiently slow peer survives (its answers decay
      // the level back down).
      bool evict;
      if (config_.suspicion_threshold > 0) {
        evict = raise_suspicion(it->target.addr);
        if (evict) {
          if (ctr_suspect_evicted_ != nullptr) ctr_suspect_evicted_->inc();
          suspicion_.erase(it->target.addr);
        }
      } else {
        evict = it->attempts >= kProbeAttempts;
      }
      if (evict) {
        condemn(it->target.id, now);
        last_heard_.erase(it->target.addr);
        if (config_.harden) {
          // A silent quarantined address never gets promoted.
          const auto q = quarantine_.find(it->target.addr);
          if (q != quarantine_.end()) {
            quarantine_.erase(q);
            if (ctr_q_rejected_ != nullptr) ctr_q_rejected_->inc();
          }
        }
        it = outstanding_probes_.erase(it);
        continue;
      }
      ++it->attempts;
      it->sent = now;
      ctx.send(it->target.addr, std::make_unique<ProbeMessage>(/*is_reply=*/false));
    }
    ++it;
  }
  // Lazily drop expired certificates so the map stays bounded.
  for (auto it = tombstones_.begin(); it != tombstones_.end();) {
    it = it->second <= now ? tombstones_.erase(it) : std::next(it);
  }
  // 1b. An unanswered gossip exchange is a liveness hint: verify via the
  // retrying probe path instead of condemning outright.
  if (!probe_answered_ && probe_peer_.addr != kNullAddress) send_probe(ctx, probe_peer_);

  // 2. Ping the least-recently-heard leaf entry (never-heard first) — this
  // sweeps the whole leaf set within ~c cycles.
  {
    NodeDescriptor lru{0, kNullAddress};
    SimTime oldest = ~SimTime{0};
    for (const auto& d : leaf_->all_view()) {
      const auto it = last_heard_.find(d.addr);
      const SimTime heard = it == last_heard_.end() ? 0 : it->second;
      if (heard < oldest) {
        oldest = heard;
        lru = d;
      }
    }
    if (lru.addr != kNullAddress && now - oldest >= config_.delta) send_probe(ctx, lru);
  }

  // 3. Sweep a few prefix entries per cycle (round-robin cursor), so stale
  // far-region entries are eventually cleared too.
  const auto& entries = prefix_->entries();
  constexpr std::size_t kPrefixProbesPerCycle = 3;
  for (std::size_t i = 0; i < kPrefixProbesPerCycle && !entries.empty(); ++i) {
    prefix_probe_cursor_ = (prefix_probe_cursor_ + 1) % entries.size();
    const NodeDescriptor& d = entries[prefix_probe_cursor_];
    const auto it = last_heard_.find(d.addr);
    if (it == last_heard_.end() || now - it->second >= 2 * config_.delta) send_probe(ctx, d);
  }

  // 4. Probe-before-trust: a couple of quarantined descriptors per cycle
  // get a verifying probe; the echo promotes or rejects them (on_probe_echo).
  if (config_.harden) {
    constexpr std::size_t kQuarantineProbesPerCycle = 2;
    std::size_t sent = 0;
    for (const auto& [addr, d] : quarantine_) {
      if (sent >= kQuarantineProbesPerCycle) break;
      if (already_probing(addr)) continue;
      send_probe(ctx, d);
      ++sent;
    }
  }
}

bool BootstrapProtocol::already_probing(Address addr) const {
  for (const auto& p : outstanding_probes_) {
    if (p.target.addr == addr) return true;
  }
  return false;
}

void BootstrapProtocol::send_probe(Context& ctx, const NodeDescriptor& target) {
  if (target.addr == kNullAddress || already_probing(target.addr)) return;
  outstanding_probes_.push_back({target, ctx.now(), 1});
  ctx.send(target.addr, std::make_unique<ProbeMessage>(/*is_reply=*/false));
}

std::optional<NodeDescriptor> BootstrapProtocol::select_peer(Context& ctx) {
  // Random element of the near half of the leaf set, taken per direction:
  // the closest half of the successors plus the closest half of the
  // predecessors. A single distance-sorted cut would, wherever the local ID
  // density is lopsided, consist entirely of one direction — the two nodes
  // flanking such a gap would then never exchange across it and the
  // outermost far-side leaf entries could only arrive via lucky random
  // samples (convergence would stall at a handful of missing entries).
  const auto& succ = leaf_->successors();
  const auto& pred = leaf_->predecessors();
  const std::size_t ns = succ.empty() ? 0 : std::max<std::size_t>(1, succ.size() / 2);
  const std::size_t np = pred.empty() ? 0 : std::max<std::size_t>(1, pred.size() / 2);
  if (ns + np == 0) return std::nullopt;
  if (config_.evict_unresponsive && !outstanding_probes_.empty()) {
    // Demotion: suspected peers (probe outstanding) are skipped, so the
    // active thread stops burning exchanges on a partitioned or dark peer.
    // If every near-half candidate is suspected, fall through to the plain
    // pick — suspicion may be wrong, and gossiping anyway is the recovery.
    DescriptorList& candidates = scratch().candidate_buf;
    candidates.clear();
    for (std::size_t i = 0; i < ns; ++i) {
      if (!already_probing(succ[i].addr)) candidates.push_back(succ[i]);
    }
    for (std::size_t i = 0; i < np; ++i) {
      if (!already_probing(pred[i].addr)) candidates.push_back(pred[i]);
    }
    if (!candidates.empty()) {
      return candidates[ctx.rng().below(candidates.size())];
    }
  }
  const std::size_t pick = ctx.rng().below(ns + np);
  return pick < ns ? succ[pick] : pred[pick - ns];
}

std::unique_ptr<BootstrapMessage> BootstrapProtocol::create_message(NodeId peer_id,
                                                                    bool is_request) {
  // Union of all locally available information: leaf set, cr fresh samples,
  // the prefix table, and the own descriptor.
  DescriptorList& un = scratch().union_buf;
  un.clear();
  {
    const auto& succ = leaf_->successors();
    const auto& pred = leaf_->predecessors();
    un.insert(un.end(), succ.begin(), succ.end());
    un.insert(un.end(), pred.begin(), pred.end());
  }
  if (config_.use_random_samples) {
    // Appends in place with the exact RNG draws sample() would make —
    // golden replays pin the equivalence.
    sampler_->sample_into(config_.cr, un);
  }
  if (config_.prefix_entries_in_union) {
    const auto& tbl = prefix_->entries();
    un.insert(un.end(), tbl.begin(), tbl.end());
  }
  un.push_back(self_);

  // Dedupe by ID; drop the peer's own descriptor (useless to send back).
  std::sort(un.begin(), un.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) { return a.id < b.id; });
  un.erase(std::unique(un.begin(), un.end(),
                       [](const NodeDescriptor& a, const NodeDescriptor& b) {
                         return a.id == b.id;
                       }),
           un.end());
  un.erase(std::remove_if(un.begin(), un.end(),
                          [peer_id](const NodeDescriptor& d) { return d.id == peer_id; }),
           un.end());

  // Ring part: the c entries closest to the peer in the leaf-set sense —
  // c/2 closest successors and c/2 closest predecessors of the peer, with
  // the same top-up rule UPDATELEAFSET uses. A symmetric min-distance cut
  // would starve the outermost directional entries wherever the ID
  // distribution is locally lopsided, and the last few leaf entries would
  // never converge.
  DescriptorList& succ = scratch().succ_buf;
  DescriptorList& pred = scratch().pred_buf;
  succ.clear();
  pred.clear();
  for (const auto& d : un) (is_successor(peer_id, d.id) ? succ : pred).push_back(d);
  std::sort(succ.begin(), succ.end(),
            [peer_id](const NodeDescriptor& a, const NodeDescriptor& b) {
              return successor_distance(peer_id, a.id) < successor_distance(peer_id, b.id);
            });
  std::sort(pred.begin(), pred.end(),
            [peer_id](const NodeDescriptor& a, const NodeDescriptor& b) {
              return predecessor_distance(peer_id, a.id) < predecessor_distance(peer_id, b.id);
            });
  const std::size_t half = config_.c / 2;
  std::size_t take_s = std::min(succ.size(), half);
  std::size_t take_p = std::min(pred.size(), half);
  std::size_t spare = config_.c - take_s - take_p;
  const std::size_t extra_s = std::min(succ.size() - take_s, spare);
  take_s += extra_s;
  spare -= extra_s;
  take_p += std::min(pred.size() - take_p, spare);

  // Build the flat message: one buffer, one reserve (succ + pred bounds
  // both the ring part and every prefix candidate), ring entries first.
  auto msg = std::make_unique<BootstrapMessage>(self_, is_request);
  msg->reserve_entries(succ.size() + pred.size());
  for (std::size_t i = 0; i < take_s; ++i) msg->append_ring_entry(succ[i]);
  for (std::size_t i = 0; i < take_p; ++i) msg->append_ring_entry(pred[i]);

  // Prefix part: everything else that is potentially useful for the peer's
  // prefix table — shares at least one digit of prefix with the peer — with
  // at most k entries per (i, j) cell, so the part is bounded by the size of
  // a full prefix table. The leftovers are consumed straight from the
  // directional scratch buffers (succ leftovers first, matching the
  // pre-refactor candidate order).
  if (config_.send_prefix_part) {
    const int rows = config_.digits.num_digits<NodeId>();
    const int radix = config_.digits.radix();
    std::vector<std::uint8_t>& cell_fill = scratch().cell_fill_buf;
    cell_fill.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(radix), 0);
    const auto consider = [&](const NodeDescriptor& d) {
      // Every candidate is potentially useful for exactly one (i, j) cell of
      // the peer's table; ship up to k per cell (row 0 included — without it
      // the first-digit cells would starve once leaf sets localize), so the
      // additional part stays bounded by the size of the full prefix table.
      const int i = common_prefix_digits(peer_id, d.id, config_.digits);
      const int j = digit(d.id, i, config_.digits);
      auto& fill = cell_fill[static_cast<std::size_t>(i) * static_cast<std::size_t>(radix) +
                             static_cast<std::size_t>(j)];
      if (fill >= config_.k) return;
      ++fill;
      msg->append_prefix_entry(d);
    };
    for (std::size_t i = take_s; i < succ.size(); ++i) consider(succ[i]);
    for (std::size_t i = take_p; i < pred.size(); ++i) consider(pred[i]);
  }
  if (config_.evict_unresponsive && !tombstones_.empty()) {
    for (const auto& [id, expiry] : tombstones_) {
      if (expiry <= now_) continue;
      msg->tombstones.push_back({id, expiry});
      if (msg->tombstones.size() >= BootstrapMessage::kMaxTombstonesPerMessage) break;
    }
  }
  if (stats_ != nullptr) {
    stats_->entries_sent += msg->entry_count();
    const auto bytes = static_cast<std::uint64_t>(msg->wire_bytes());
    stats_->payload_bytes_sent += bytes;
    stats_->max_message_bytes = std::max(stats_->max_message_bytes, bytes);
  }
  return msg;
}

void BootstrapProtocol::on_message(Context& ctx, Address from, const Payload& payload) {
  // Anything heard from a peer proves liveness. Remember which believed
  // binding an answered probe was verifying — the hardened echo check needs
  // it after the erase.
  std::optional<NodeDescriptor> answered_probe;
  if (config_.evict_unresponsive) {
    last_heard_[from] = ctx.now();
    if (config_.suspicion_threshold > 0) decay_suspicion(from);
    for (auto it = outstanding_probes_.begin(); it != outstanding_probes_.end(); ++it) {
      if (it->target.addr == from) {
        answered_probe = it->target;
        outstanding_probes_.erase(it);
        break;
      }
    }
  }
  now_ = ctx.now();
  if (const auto* probe = payload_cast<ProbeMessage>(payload)) {
    if (!probe->is_reply) {
      ctx.send(from, std::make_unique<ProbeMessage>(/*is_reply=*/true, self_.id));
      return;
    }
    if (config_.harden && probe->responder_id != 0 && active()) {
      on_probe_echo(ctx, from, probe->responder_id, answered_probe);
    }
    return;
  }
  const auto* msg = payload_cast<BootstrapMessage>(payload);
  if (msg == nullptr) {
    BSVC_WARN("bootstrap: unexpected payload type %s", payload.type_name());
    return;
  }
  if (!active()) {
    // Not yet initialized (start is loosely synchronized, a neighbour may be
    // ahead of us). A real node would buffer; dropping is equivalent here
    // because the sender retries every cycle.
    return;
  }
  if (config_.harden) {
    // Sender self-consistency: the claimed descriptor must match the
    // transport-level source address, and — once a probe echo pinned the
    // address — the pinned ID. A mismatch marks the peer as caught lying
    // and rejects the whole message.
    if (msg->sender.addr != from) {
      if (ctr_sanity_rejected_ != nullptr) ctr_sanity_rejected_->inc();
      mark_suspect(from);
      return;
    }
    const auto pin = pinned_.find(from);
    if (pin != pinned_.end() && pin->second != msg->sender.id) {
      if (ctr_sanity_rejected_ != nullptr) ctr_sanity_rejected_->inc();
      mark_suspect(from);
      return;
    }
  }
  if (from == probe_peer_.addr) {
    if (!probe_answered_) {
      if (config_.adaptive_timeout && !exchange_retried_ && now_ >= exchange_sent_at_) {
        rtt_.on_sample(now_ - exchange_sent_at_);
        if (ctr_rtt_samples_ != nullptr) ctr_rtt_samples_->inc();
      }
      close_span(now_, obs::SpanOutcome::Answered,
                 static_cast<std::uint32_t>(msg->entry_count()));
    }
    probe_answered_ = true;
  }
  if (msg->is_request) {
    auto reply = create_message(msg->sender.id, /*is_request=*/false);
    if (stats_ != nullptr) ++stats_->replies_sent;
    if (ctr_replies_ != nullptr) ctr_replies_->inc();
    // The answer travels on behalf of the requester's exchange: carry its
    // span id so the engine attributes the return leg to the same span.
    // (Zero when the span rode a codec round trip — ids are not wire data.)
    reply->span = payload.span;
    ctx.send(from, std::move(reply));
  }
  if (stats_ != nullptr) ++stats_->messages_received;
  if (config_.evict_unresponsive) adopt_tombstones(msg->tombstones, ctx.now());
  update_from(*msg, from);
}

bool BootstrapProtocol::raise_suspicion(Address addr) {
  if (addr == kNullAddress) return false;
  int& level = suspicion_[addr];
  ++level;
  if (ctr_suspect_marked_ != nullptr) ctr_suspect_marked_->inc();
  return level >= config_.suspicion_threshold;
}

void BootstrapProtocol::decay_suspicion(Address addr) {
  const auto it = suspicion_.find(addr);
  if (it == suspicion_.end()) return;
  if (ctr_suspect_decayed_ != nullptr) ctr_suspect_decayed_->inc();
  if (--it->second <= 0) suspicion_.erase(it);
}

void BootstrapProtocol::condemn(NodeId id, SimTime now) {
  // Condemning the peer of the pending exchange closes its span: no answer
  // can be accepted from an evicted peer. No-op if already closed.
  if (open_span_ != obs::kNoSpan && id == open_span_peer_) {
    close_span(now, obs::SpanOutcome::Evicted);
  }
  if (ctr_condemned_ != nullptr) ctr_condemned_->inc();
  leaf_->remove(id);
  prefix_->remove(id);
  const SimTime expiry = now + config_.tombstone_ttl_cycles * config_.delta;
  auto& slot = tombstones_[id];
  slot = std::max(slot, expiry);
}

bool BootstrapProtocol::is_tombstoned(NodeId id, SimTime now) const {
  const auto it = tombstones_.find(id);
  return it != tombstones_.end() && it->second > now;
}

void BootstrapProtocol::adopt_tombstones(const std::vector<Tombstone>& incoming, SimTime now) {
  for (const auto& ts : incoming) {
    if (ts.expiry <= now || ts.id == self_.id) continue;
    auto& slot = tombstones_[ts.id];
    if (ts.expiry > slot) {
      slot = ts.expiry;
      if (leaf_) leaf_->remove(ts.id);
      if (prefix_) prefix_->remove(ts.id);
    }
  }
}

void BootstrapProtocol::update_from(const BootstrapMessage& msg, Address from) {
  // One combined pass: both methods take "a set of node descriptors", and a
  // single leaf-set rebuild is cheaper than three. The flat message already
  // holds ring-then-prefix in one buffer, and the scratch vector is reused
  // across deliveries.
  DescriptorList& combined = scratch().combined_buf;
  combined.clear();
  combined.reserve(msg.entry_count() + 1);
  const auto all = msg.all_entries();
  combined.insert(combined.end(), all.begin(), all.end());
  combined.push_back(msg.sender);
  if (config_.evict_unresponsive && !tombstones_.empty()) {
    combined.erase(std::remove_if(combined.begin(), combined.end(),
                                  [this](const NodeDescriptor& d) {
                                    return is_tombstoned(d.id, now_);
                                  }),
                   combined.end());
  }
  if (config_.harden) {
    // Per-sender contribution cap: one message may carry at most what an
    // honest CREATEMESSAGE can structurally produce — c ring entries, cr
    // random samples, and a prefix part bounded by k entries per cell of a
    // full table — plus the sender. Flooded messages are truncated, not
    // trusted; compliant messages are never touched.
    const std::size_t cap =
        config_.c + config_.cr +
        static_cast<std::size_t>(config_.k) *
            static_cast<std::size_t>(config_.digits.radix()) *
            static_cast<std::size_t>(config_.digits.num_digits<NodeId>()) +
        1;
    if (combined.size() > cap) {
      if (ctr_sanity_rejected_ != nullptr) {
        ctr_sanity_rejected_->add(combined.size() - cap);
      }
      combined.resize(cap);
    }
    // Descriptor sanity: identity theft (our ID or address under a foreign
    // binding) and bindings contradicting a probe-confirmed pin are dropped.
    combined.erase(std::remove_if(combined.begin(), combined.end(),
                                  [this](const NodeDescriptor& d) {
                                    if ((d.addr == self_.addr) != (d.id == self_.id)) {
                                      if (ctr_sanity_rejected_ != nullptr) {
                                        ctr_sanity_rejected_->inc();
                                      }
                                      return true;
                                    }
                                    const auto pin = pinned_.find(d.addr);
                                    if (pin != pinned_.end() && pin->second != d.id) {
                                      if (ctr_pin_mismatch_ != nullptr) {
                                        ctr_pin_mismatch_->inc();
                                      }
                                      return true;
                                    }
                                    return false;
                                  }),
                   combined.end());
    // A peer caught lying gets no direct say anymore: its contributions go
    // to the quarantine and enter the tables only after a probe echo
    // confirms each binding (probe-before-trust).
    if (probing_defense() && suspects_.count(from) != 0) {
      for (const auto& d : combined) quarantine(d);
      return;
    }
    // Bounded provenance: remember who first vouched for each address, so a
    // later catch can purge the liar's plantings.
    if (contributed_by_.size() < kProvenanceCap) {
      for (const auto& d : combined) contributed_by_.emplace(d.addr, from);
    }
  }
  leaf_->update(combined);
  prefix_->insert_all(combined);
}

void BootstrapProtocol::on_probe_echo(Context& /*ctx*/, Address from, NodeId echoed_id,
                                      const std::optional<NodeDescriptor>& believed) {
  // The echo is ground truth for the address→ID binding (transport
  // addresses are unforgeable in this threat model; IDs are what gets lied
  // about). Newest echo wins.
  pinned_[from] = echoed_id;
  if (believed.has_value() && believed->id != echoed_id) {
    // Fabricated binding caught: the advertised ID does not live at this
    // address. Condemn the fake ID (the tombstone spreads the suppression)
    // and stop trusting whoever planted it.
    if (ctr_pin_mismatch_ != nullptr) ctr_pin_mismatch_->inc();
    condemn(believed->id, now_);
    const auto planter = contributed_by_.find(from);
    if (planter != contributed_by_.end()) mark_suspect(planter->second);
  }
  // The echo also tells us the true descriptor of the responder — adopt it
  // (unless it is tombstoned, e.g. a recently condemned flapper).
  if (!is_tombstoned(echoed_id, now_)) {
    const NodeDescriptor truth{echoed_id, from};
    leaf_->update({&truth, 1});
    prefix_->insert(truth);
  }
  // Settle a quarantined entry for this address: promote on a matching
  // echo, reject on a contradiction.
  const auto q = quarantine_.find(from);
  if (q != quarantine_.end()) {
    if (q->second.id == echoed_id) {
      if (ctr_q_promoted_ != nullptr) ctr_q_promoted_->inc();
    } else if (ctr_q_rejected_ != nullptr) {
      ctr_q_rejected_->inc();
    }
    quarantine_.erase(q);
  }
}

void BootstrapProtocol::mark_suspect(Address peer) {
  if (peer == kNullAddress || suspects_.count(peer) != 0) return;
  suspects_.insert(peer);
  if (leaf_.has_value()) {
    // Purge the liar's unverified plantings: table entries whose address it
    // vouched for and whose binding no probe echo has confirmed. Local
    // removal only — no tombstones, because the liar may have relayed some
    // honest descriptors and spreading certificates would amplify the lie.
    for (const auto& d : leaf_->all()) {
      const auto it = contributed_by_.find(d.addr);
      if (it == contributed_by_.end() || it->second != peer) continue;
      const auto pin = pinned_.find(d.addr);
      if (pin != pinned_.end() && pin->second == d.id) continue;
      leaf_->remove(d.id);
      prefix_->remove(d.id);
      if (ctr_q_rejected_ != nullptr) ctr_q_rejected_->inc();
    }
  }
}

void BootstrapProtocol::quarantine(const NodeDescriptor& d) {
  if (d.addr == kNullAddress || d.addr == self_.addr) return;
  const auto pin = pinned_.find(d.addr);
  if (pin != pinned_.end()) return;  // already settled, either way
  if (quarantine_.size() >= kQuarantineCap) return;
  if (quarantine_.emplace(d.addr, d).second && ctr_q_held_ != nullptr) {
    ctr_q_held_->inc();
  }
}

const LeafSet& BootstrapProtocol::leaf_set() const {
  BSVC_CHECK_MSG(leaf_.has_value(), "protocol not yet activated");
  return *leaf_;
}

const PrefixTable& BootstrapProtocol::prefix_table() const {
  BSVC_CHECK_MSG(prefix_.has_value(), "protocol not yet activated");
  return *prefix_;
}

}  // namespace bsvc
