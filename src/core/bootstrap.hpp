// The bootstrapping service protocol (paper §4, Figure 2).
//
// Every Δ ticks the active side picks a peer from the near half of its leaf
// set (SELECTPEER), builds a message optimized for that peer
// (CREATEMESSAGE), and sends it; the passive side answers with a message
// built the same way, and both sides merge what they received into their
// leaf set (UPDATELEAFSET) and prefix table (UPDATEPREFIXTABLE). The ring
// construction and the prefix tables feed each other: prefix entries join
// the ring candidate set, and the ring gossip carries targeted prefix
// entries, so the half-built routing structure already "routes" descriptors
// toward the nodes that need them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "common/arena.hpp"
#include "common/pool.hpp"
#include "common/rtt.hpp"
#include "common/stats.hpp"
#include "core/config.hpp"
#include "core/leaf_set.hpp"
#include "core/prefix_table.hpp"
#include "obs/span.hpp"
#include "sampling/peer_sampler.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace bsvc {

/// A death certificate: `id` was observed unresponsive; suppress it until
/// `expiry` (absolute virtual time). Spread epidemically with the gossip.
struct Tombstone {
  NodeId id = 0;
  SimTime expiry = 0;
};

/// One push or pull message of the protocol: the ring-building part (the c
/// locally known descriptors closest to the peer), the targeted prefix part
/// (descriptors that fit the peer's prefix table), and — with the liveness
/// extension — piggybacked death certificates.
///
/// Both parts live in one flat descriptor buffer (ring entries first) split
/// by an index: CREATEMESSAGE fills the buffer once with a single reserve
/// and receivers read span views — no per-part vector per message. The
/// message object and its buffer both recycle through thread-local pools
/// (common/pool.hpp), so steady-state exchanges touch no allocator.
class BootstrapMessage final : public Payload, public PooledAlloc<BootstrapMessage> {
 public:
  static constexpr PayloadKind kKind = PayloadKind::Bootstrap;

  /// Builder form: the caller fills entries() via append_ring_entry /
  /// append_prefix_entry before publishing (CREATEMESSAGE's path).
  BootstrapMessage(NodeDescriptor sender, bool is_request)
      : Payload(kKind), sender(sender), is_request(is_request) {
    BufferPool<NodeDescriptor>::acquire(entries_);
  }

  /// Assembles from separate lists (codec decode, adversary rewrites, tests).
  BootstrapMessage(NodeDescriptor sender, const DescriptorList& ring,
                   const DescriptorList& prefix, bool is_request)
      : Payload(kKind), sender(sender), is_request(is_request) {
    BufferPool<NodeDescriptor>::acquire(entries_);
    entries_.reserve(ring.size() + prefix.size());
    entries_.insert(entries_.end(), ring.begin(), ring.end());
    entries_.insert(entries_.end(), prefix.begin(), prefix.end());
    ring_count_ = ring.size();
  }

  /// Copying (the adversary's rewrite path) lands the clone's buffer in the
  /// pool too, so a tampered delivery stays allocation-free once warm.
  BootstrapMessage(const BootstrapMessage& other)
      : Payload(other),
        sender(other.sender),
        tombstones(other.tombstones),
        is_request(other.is_request),
        ring_count_(other.ring_count_) {
    BufferPool<NodeDescriptor>::acquire(entries_);
    entries_.assign(other.entries_.begin(), other.entries_.end());
  }
  BootstrapMessage& operator=(const BootstrapMessage&) = delete;

  ~BootstrapMessage() override {
    BufferPool<NodeDescriptor>::release(std::move(entries_));
  }

  std::size_t wire_bytes() const override;
  const char* type_name() const override { return "bootstrap"; }
  const char* metric_tag() const override {
    return is_request ? "bootstrap.request" : "bootstrap.answer";
  }

  /// Total descriptors carried (excluding the sender descriptor).
  std::size_t entry_count() const { return entries_.size(); }

  /// The two parts as views into the flat buffer.
  std::span<const NodeDescriptor> ring_part() const { return {entries_.data(), ring_count_}; }
  std::span<const NodeDescriptor> prefix_part() const {
    return {entries_.data() + ring_count_, entries_.size() - ring_count_};
  }
  /// All descriptors, ring part first — receivers that merge both parts
  /// (UPDATELEAFSET/UPDATEPREFIXTABLE) iterate once instead of twice.
  std::span<const NodeDescriptor> all_entries() const { return entries_; }

  // --- builder interface (pre-publication only) --------------------------
  /// Mutable view over the flat buffer for pre-publication rewrites (the
  /// adversary's copy-on-write path). Never call on a published message.
  std::span<NodeDescriptor> mutable_entries() { return entries_; }
  void reserve_entries(std::size_t n) { entries_.reserve(n); }
  /// Ring entries must all be appended before the first prefix entry.
  void append_ring_entry(const NodeDescriptor& d) {
    entries_.push_back(d);
    ring_count_ = entries_.size();
  }
  void append_prefix_entry(const NodeDescriptor& d) { entries_.push_back(d); }

  NodeDescriptor sender;
  /// Death certificates piggybacked by the evict_unresponsive extension
  /// (empty when the extension is off). Bounded by kMaxTombstonesPerMessage.
  std::vector<Tombstone> tombstones;
  bool is_request;

  static constexpr std::size_t kMaxTombstonesPerMessage = 64;

 private:
  DescriptorList entries_;  // ring part, then prefix part
  std::size_t ring_count_ = 0;
};

/// Tiny liveness probe (and its echo) used by the evict_unresponsive
/// extension's maintenance loop. The echo carries the responder's own ID,
/// which doubles as the binding confirmation of the hardened protocol: a
/// probe to an address whose echo contradicts the advertised ID exposes a
/// fabricated ID/address binding (the probe request itself discloses
/// nothing, so a malicious responder cannot tailor its answer).
class ProbeMessage final : public Payload, public PooledAlloc<ProbeMessage> {
 public:
  static constexpr PayloadKind kKind = PayloadKind::Probe;

  explicit ProbeMessage(bool is_reply, NodeId responder_id = 0)
      : Payload(kKind), responder_id(responder_id), is_reply(is_reply) {}
  std::size_t wire_bytes() const override { return 1 + 8; }
  const char* type_name() const override { return "probe"; }
  const char* metric_tag() const override {
    return is_reply ? "probe.reply" : "probe.request";
  }
  /// The responder's own ID (echo only; 0 on requests).
  NodeId responder_id;
  bool is_reply;
};

/// Shared per-experiment counters (owned by the harness, written by every
/// node's protocol instance). Under the sharded engine the harness hands
/// each node the stats block of its owning shard, so one block is only ever
/// written by one shard lane.
struct BootstrapStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t entries_sent = 0;       // descriptors across all messages
  std::uint64_t payload_bytes_sent = 0; // codec bytes, excl. UDP/IP headers
  std::uint64_t max_message_bytes = 0;
  std::uint64_t select_peer_empty = 0;  // active steps skipped: empty leaf set
};

/// Per-node protocol instance.
class BootstrapProtocol final : public Protocol {
 public:
  /// `sampler` is the co-located peer sampling service (never null);
  /// `stats` may be null. The protocol activates `start_delay` ticks after
  /// node start — the harness draws these delays from the paper's "within
  /// an interval of length Δ" to model the loosely synchronized start.
  BootstrapProtocol(BootstrapConfig config, PeerSampler* sampler, BootstrapStats* stats,
                    SimTime start_delay);

  void on_start(Context& ctx) override;
  void on_timer(Context& ctx, std::uint64_t timer_id) override;
  void on_message(Context& ctx, Address from, const Payload& payload) override;

  /// The evolving leaf set (valid after activation).
  const LeafSet& leaf_set() const;
  /// The evolving prefix table (valid after activation).
  const PrefixTable& prefix_table() const;
  /// Whether the protocol has initialized its tables yet.
  bool active() const { return leaf_.has_value(); }

  const BootstrapConfig& config() const { return config_; }

  /// Timer id that (re)initializes the tables from the sampling service and
  /// performs an immediate active step — the "bootstrap on demand" entry
  /// point used by the recovery and merge scenarios. Schedule it with
  /// Engine::schedule_timer(addr, slot, delay, kRestartTimer); the periodic
  /// gossip chain is unaffected (it is started once and keeps running).
  static constexpr std::uint64_t kRestartTimer = 1;

  /// Timer-id base for per-exchange timeouts (evict_unresponsive only):
  /// exchange n schedules timer kExchangeTimeoutBase + n, so a stale
  /// timeout — the peer answered, or a newer exchange superseded it — is
  /// recognized and ignored on fire.
  static constexpr std::uint64_t kExchangeTimeoutBase = 1ull << 32;

  /// CREATEMESSAGE(q): see file comment. Public because tests assert its
  /// invariants directly and the micro benches time it in isolation; the
  /// protocol itself calls it from the active and passive paths.
  std::unique_ptr<BootstrapMessage> create_message(NodeId peer_id, bool is_request);

 private:
  /// Initializes the leaf set from the sampling service and clears the
  /// prefix table (the paper's start-time step).
  void init_tables(Context& ctx);

  /// One iteration of the active thread.
  void active_step(Context& ctx);

  /// SELECTPEER: random element of the first half of the leaf set sorted by
  /// ring distance from the own ID.
  std::optional<NodeDescriptor> select_peer(Context& ctx);

  /// UPDATELEAFSET + UPDATEPREFIXTABLE over one received message. `from` is
  /// the transport-level sender (hardened filtering keys off it).
  void update_from(const BootstrapMessage& msg, Address from);

  BootstrapConfig config_;
  PeerSampler* sampler_;
  BootstrapStats* stats_;
  // Engine-registry counters, cached at on_start. All instances on one
  // engine share the same counters (registration is idempotent by name).
  obs::Counter* ctr_requests_ = nullptr;
  obs::Counter* ctr_replies_ = nullptr;
  obs::Counter* ctr_select_peer_empty_ = nullptr;
  obs::Counter* ctr_condemned_ = nullptr;
  obs::Counter* ctr_exchange_timeout_ = nullptr;
  // Retry / suspicion counters (registered only when the matching feature is
  // on, so legacy runs keep an unchanged metrics registry).
  obs::Counter* ctr_retry_ = nullptr;            // retry.exchange
  obs::Counter* ctr_rtt_samples_ = nullptr;      // rtt.samples
  obs::Counter* ctr_suspect_marked_ = nullptr;   // suspect.marked
  obs::Counter* ctr_suspect_decayed_ = nullptr;  // suspect.decayed
  obs::Counter* ctr_suspect_evicted_ = nullptr;  // suspect.evicted
  // Hardening counters (registered only with config_.harden, so unhardened
  // runs keep an unchanged metrics registry).
  obs::Counter* ctr_q_held_ = nullptr;          // quarantine.held
  obs::Counter* ctr_q_promoted_ = nullptr;      // quarantine.promoted
  obs::Counter* ctr_q_rejected_ = nullptr;      // quarantine.rejected
  obs::Counter* ctr_sanity_rejected_ = nullptr; // bootstrap.sanity_rejected
  obs::Counter* ctr_pin_mismatch_ = nullptr;    // bootstrap.pin_mismatch
  SimTime start_delay_;
  NodeDescriptor self_{};
  // Backs both tables' descriptor storage (SoA lanes; see common/arena.hpp).
  // Declared before the tables so it outlives them, and reset() on every
  // (re)initialization — handle invalidation is confined to init_tables.
  DescriptorArena arena_;
  std::optional<LeafSet> leaf_;
  std::optional<PrefixTable> prefix_;
  bool chain_started_ = false;
  // Liveness probe state for the evict_unresponsive extension: the peer the
  // last request went to, and whether anything has been heard from it since.
  NodeDescriptor probe_peer_{0, kNullAddress};
  bool probe_answered_ = true;
  // Maintenance loop state (extension): when each table entry was last
  // heard from, probes awaiting an echo, and the prefix-sweep cursor.
  std::unordered_map<Address, SimTime> last_heard_;
  struct OutstandingProbe {
    NodeDescriptor target;
    SimTime sent = 0;
    int attempts = 1;  // condemned only after kProbeAttempts failures
  };
  static constexpr int kProbeAttempts = 3;
  std::vector<OutstandingProbe> outstanding_probes_;
  std::size_t prefix_probe_cursor_ = 0;
  // Monotone exchange counter; pairs with kExchangeTimeoutBase.
  std::uint64_t exchange_seq_ = 0;
  // --- adaptive retry state (config_.retry_exchanges / adaptive_timeout) ---
  // Per-node RTT estimator fed from clean exchange round trips; Karn's rule
  // is enforced via exchange_retried_ (a retransmitted exchange contributes
  // no sample — its answer could belong to any of its transmissions).
  RttEstimator rtt_;
  int exchange_attempts_ = 1;      // transmissions of the current exchange
  bool exchange_retried_ = false;  // any retransmission happened
  SimTime exchange_sent_at_ = 0;   // first transmission time (RTT sample base)
  /// Current per-exchange answer timeout: the RTT estimate when
  /// adaptive_timeout is on, else the fixed config value (0 = Δ/2).
  SimTime exchange_timeout_value() const;
  // --- suspicion accrual (config_.suspicion_threshold > 0) ----------------
  // Suspicion level per address. Raised one unit per unanswered exchange or
  // silent probe round, lowered one unit per message heard; reaching the
  // threshold condemns. Bounded: entries leave on decay-to-zero or condemn.
  std::unordered_map<Address, int> suspicion_;
  /// Adds one suspicion unit; returns true when the threshold is reached
  /// (the caller condemns).
  bool raise_suspicion(Address addr);
  /// Removes one suspicion unit on any sign of life.
  void decay_suspicion(Address addr);
  // --- causal exchange spans (engine SpanLog installed; else inert) -------
  // The log pointer is cached at on_start; spans only open when it is set,
  // so an uninstalled log leaves every member below untouched.
  obs::SpanLog* span_log_ = nullptr;
  // At most one exchange span is open per protocol: the current cycle's
  // request. Ids are content-addressed — (own address << 40) | span_seq_ —
  // mirroring the sharded engine's event keys, so they are a pure function
  // of the trajectory, independent of shard count.
  obs::SpanId open_span_ = obs::kNoSpan;
  NodeId open_span_peer_ = 0;  // peer the open exchange targets (for Evicted)
  std::uint64_t span_seq_ = 0;
  /// Closes the open span (no-op when none); exactly-once by construction.
  void close_span(SimTime now, obs::SpanOutcome outcome,
                  std::uint32_t answer_descriptors = 0);
  // Active death certificates (id -> expiry), pruned lazily.
  std::unordered_map<NodeId, SimTime> tombstones_;
  // Virtual time at the latest callback (create_message has no Context).
  SimTime now_ = 0;

  /// One round of the maintenance loop: evict timed-out probe targets, then
  /// ping the least-recently-heard leaf entry and a few prefix entries.
  void maintenance_step(Context& ctx);

  /// True if a probe to `addr` is awaiting its echo (the peer is demoted:
  /// SELECTPEER skips it).
  bool already_probing(Address addr) const;
  /// Starts probing `target` unless one is already outstanding.
  void send_probe(Context& ctx, const NodeDescriptor& target);
  /// Fired kExchangeTimeoutBase + seq: the request of exchange `seq` went
  /// unanswered for config_.exchange_timeout ticks.
  void on_exchange_timeout(Context& ctx, std::uint64_t seq);

  /// Records a certificate for an unresponsive peer and removes it locally.
  void condemn(NodeId id, SimTime now);
  /// True if `id` is currently tombstoned.
  bool is_tombstoned(NodeId id, SimTime now) const;
  /// Adopts certificates received from a peer.
  void adopt_tombstones(const std::vector<Tombstone>& incoming, SimTime now);

  // --- Byzantine hardening (config_.harden) -------------------------------

  /// Whether the probe-based defenses are live (harden reuses the
  /// evict_unresponsive maintenance machinery).
  bool probing_defense() const { return config_.harden && config_.evict_unresponsive; }
  /// Handles a probe echo: pins the address→ID binding, exposes fabricated
  /// bindings (believed ID ≠ echoed ID), and settles quarantined entries.
  /// `believed` is the outstanding-probe target this echo answered, if any.
  void on_probe_echo(Context& ctx, Address from, NodeId echoed_id,
                     const std::optional<NodeDescriptor>& believed);
  /// Marks a peer as caught lying and purges its unverified contributions.
  void mark_suspect(Address peer);
  /// Places a descriptor in the bounded quarantine (probe-before-trust).
  void quarantine(const NodeDescriptor& d);

  // Address→ID bindings confirmed by probe echoes (ground truth under the
  // "addresses are unforgeable" transport assumption).
  std::unordered_map<Address, NodeId> pinned_;
  // Peers caught lying; their future contributions are quarantined.
  std::unordered_set<Address> suspects_;
  // Descriptor address -> the peer that first contributed it (bounded
  // provenance, enough to purge a liar's plantings when it is caught).
  std::unordered_map<Address, Address> contributed_by_;
  // Quarantined descriptors awaiting a confirming probe echo.
  std::unordered_map<Address, NodeDescriptor> quarantine_;
  static constexpr std::size_t kQuarantineCap = 64;
  static constexpr std::size_t kProvenanceCap = 4096;
  // CREATEMESSAGE / update_from scratch lives in thread-local buffers in
  // bootstrap.cpp (shared by every instance on a worker lane) rather than
  // per-node members: at 2^18 nodes the per-instance buffers alone were
  // gigabytes of warm capacity held for data only alive within one call.
};

}  // namespace bsvc
