// Parameters of the bootstrapping service (paper §4, last paragraph).
#pragma once

#include <cstddef>
#include <string>

#include "id/digits.hpp"
#include "sim/engine.hpp"

namespace bsvc {

/// All protocol parameters, defaulted to the paper's simulation settings
/// (§5: b = 4, k = 3, c = 20, cr = 30).
struct BootstrapConfig {
  /// Digit width in bits (the paper's b). Prefix table has 2^b columns.
  DigitConfig digits{4};
  /// Entries kept per (prefix length, differing digit) cell (the paper's k).
  int k = 3;
  /// Leaf set capacity: c/2 closest successors + c/2 closest predecessors.
  std::size_t c = 20;
  /// Random samples taken from the peer sampling service per message.
  std::size_t cr = 30;
  /// Communication period Δ in ticks.
  SimTime delta = kDelta;

  // --- ablation switches (all true = the paper's protocol) --------------

  /// Feed prefix-table entries into the ring-building candidate set
  /// (CREATEMESSAGE's union). Disabling isolates one direction of the
  /// paper's "the two components mutually boost each other".
  bool prefix_entries_in_union = true;
  /// Append the targeted prefix part (descriptors useful for the peer's
  /// table) to outgoing messages. Disabling degrades the protocol toward
  /// plain T-Man ring building with passive table filling.
  bool send_prefix_part = true;
  /// Mix cr fresh random samples into every message.
  bool use_random_samples = true;

  // --- extension beyond the paper ----------------------------------------

  /// Evict a peer from both tables when a request to it goes unanswered for
  /// a full cycle, run a probing maintenance loop (LRU leaf probe + prefix
  /// sweep), and spread death certificates: an evicted ID is tombstoned and
  /// the tombstone piggybacks on outgoing messages, so the whole network
  /// stops resurrecting the dead entry (without certificates, gossip
  /// re-infects tables faster than local eviction cleans them — the classic
  /// SIS-epidemic persistence). The paper's Fig. 2 protocol has no liveness
  /// handling (deployed DHTs layer their own maintenance on top), so this
  /// defaults to off; churn and recovery scenarios enable it. Under message
  /// loss this can temporarily suppress live peers (they return after the
  /// tombstone expires).
  bool evict_unresponsive = false;
  /// Tombstone lifetime, in cycles (only with evict_unresponsive).
  std::size_t tombstone_ttl_cycles = 20;
  /// Per-exchange answer timeout in ticks (only with evict_unresponsive;
  /// 0 = Δ/2). A request unanswered this long demotes the peer: it enters
  /// the probing path (SELECTPEER skips it until it answers) and is
  /// condemned after kProbeAttempts silent probes. This wires eviction
  /// through real non-answers — partitions, crashed-but-recovering nodes
  /// and heavy loss trigger it without any oracle liveness.
  SimTime exchange_timeout = 0;

  /// Byzantine hardening (see docs/faults.md, threat model): sender
  /// self-consistency checks, per-message contribution caps, address→ID
  /// pinning confirmed by probe echoes, and a quarantine with
  /// probe-before-trust for descriptors contributed by peers caught lying.
  /// The probe-based defenses require evict_unresponsive (they reuse its
  /// maintenance machinery). Off by default: with harden = false the
  /// protocol is byte-identical to the unhardened build — the golden
  /// replays witness this.
  bool harden = false;

  // --- adaptive retry / suspicion extension (requires evict_unresponsive,
  // --- which owns the per-exchange timeout machinery; see docs/workloads.md)

  /// Retransmit an unanswered exchange request — same peer, freshly rebuilt
  /// message, exponential backoff with per-node-RNG jitter — before demoting
  /// the peer into the probing path. Off by default: disabled runs are
  /// bit-identical to the pre-retry protocol (golden replays witness this).
  bool retry_exchanges = false;
  /// Retransmissions allowed per exchange beyond the first send. Must be
  /// positive when retry_exchanges is set (experiment setup enforces it).
  int exchange_retry_budget = 2;
  /// Backoff multiplier and jitter fraction of the retry schedule.
  double retry_backoff = 2.0;
  double retry_jitter = 0.1;
  /// Replace the fixed exchange_timeout with a per-node Jacobson/Karn
  /// estimate, srtt + 4 * rttvar clamped to [rtt_min_timeout,
  /// rtt_max_timeout]. Samples come from clean (never-retransmitted)
  /// exchange round trips; retried exchanges are discarded per Karn's rule.
  bool adaptive_timeout = false;
  SimTime rtt_min_timeout = 64;
  SimTime rtt_max_timeout = 4 * kDelta;
  /// Suspicion-level failure accrual replacing one-shot eviction: every
  /// unanswered exchange or silent probe round adds one suspicion unit for
  /// the peer, any message heard from it removes one, and the peer is
  /// condemned only when its level reaches this threshold — so a transient
  /// latency spike demotes (SELECTPEER skips the suspect) without evicting
  /// a live peer. 0 keeps the legacy kProbeAttempts one-shot eviction.
  int suspicion_threshold = 0;

  /// Returns "" when the retry/timeout knobs are coherent with the transport
  /// (min one-way latency `min_latency`), else the first problem. Experiment
  /// setup rejects a bad config via the exit-2 path.
  std::string validate(SimTime min_latency) const {
    if (evict_unresponsive && exchange_timeout != 0 && exchange_timeout <= min_latency) {
      return "exchange_timeout (" + std::to_string(exchange_timeout) +
             ") must exceed the transport's min_latency (" +
             std::to_string(min_latency) + "): an answer can never arrive sooner";
    }
    if (retry_exchanges && exchange_retry_budget <= 0) {
      return "exchange_retry_budget must be positive when retry_exchanges is set (got " +
             std::to_string(exchange_retry_budget) + ")";
    }
    if (retry_exchanges && !evict_unresponsive) {
      return "retry_exchanges requires evict_unresponsive (it rides the "
             "per-exchange timeout machinery)";
    }
    if (adaptive_timeout && !evict_unresponsive) {
      return "adaptive_timeout requires evict_unresponsive (it replaces the "
             "per-exchange timeout value)";
    }
    if (adaptive_timeout &&
        (rtt_min_timeout <= min_latency || rtt_min_timeout > rtt_max_timeout)) {
      return "adaptive timeout bounds must satisfy min_latency < rtt_min_timeout "
             "<= rtt_max_timeout";
    }
    if (suspicion_threshold < 0) {
      return "suspicion_threshold must be >= 0 (0 disables accrual)";
    }
    return "";
  }
};

}  // namespace bsvc
