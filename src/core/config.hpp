// Parameters of the bootstrapping service (paper §4, last paragraph).
#pragma once

#include <cstddef>

#include "id/digits.hpp"
#include "sim/engine.hpp"

namespace bsvc {

/// All protocol parameters, defaulted to the paper's simulation settings
/// (§5: b = 4, k = 3, c = 20, cr = 30).
struct BootstrapConfig {
  /// Digit width in bits (the paper's b). Prefix table has 2^b columns.
  DigitConfig digits{4};
  /// Entries kept per (prefix length, differing digit) cell (the paper's k).
  int k = 3;
  /// Leaf set capacity: c/2 closest successors + c/2 closest predecessors.
  std::size_t c = 20;
  /// Random samples taken from the peer sampling service per message.
  std::size_t cr = 30;
  /// Communication period Δ in ticks.
  SimTime delta = kDelta;

  // --- ablation switches (all true = the paper's protocol) --------------

  /// Feed prefix-table entries into the ring-building candidate set
  /// (CREATEMESSAGE's union). Disabling isolates one direction of the
  /// paper's "the two components mutually boost each other".
  bool prefix_entries_in_union = true;
  /// Append the targeted prefix part (descriptors useful for the peer's
  /// table) to outgoing messages. Disabling degrades the protocol toward
  /// plain T-Man ring building with passive table filling.
  bool send_prefix_part = true;
  /// Mix cr fresh random samples into every message.
  bool use_random_samples = true;

  // --- extension beyond the paper ----------------------------------------

  /// Evict a peer from both tables when a request to it goes unanswered for
  /// a full cycle, run a probing maintenance loop (LRU leaf probe + prefix
  /// sweep), and spread death certificates: an evicted ID is tombstoned and
  /// the tombstone piggybacks on outgoing messages, so the whole network
  /// stops resurrecting the dead entry (without certificates, gossip
  /// re-infects tables faster than local eviction cleans them — the classic
  /// SIS-epidemic persistence). The paper's Fig. 2 protocol has no liveness
  /// handling (deployed DHTs layer their own maintenance on top), so this
  /// defaults to off; churn and recovery scenarios enable it. Under message
  /// loss this can temporarily suppress live peers (they return after the
  /// tombstone expires).
  bool evict_unresponsive = false;
  /// Tombstone lifetime, in cycles (only with evict_unresponsive).
  std::size_t tombstone_ttl_cycles = 20;
  /// Per-exchange answer timeout in ticks (only with evict_unresponsive;
  /// 0 = Δ/2). A request unanswered this long demotes the peer: it enters
  /// the probing path (SELECTPEER skips it until it answers) and is
  /// condemned after kProbeAttempts silent probes. This wires eviction
  /// through real non-answers — partitions, crashed-but-recovering nodes
  /// and heavy loss trigger it without any oracle liveness.
  SimTime exchange_timeout = 0;

  /// Byzantine hardening (see docs/faults.md, threat model): sender
  /// self-consistency checks, per-message contribution caps, address→ID
  /// pinning confirmed by probe echoes, and a quarantine with
  /// probe-before-trust for descriptors contributed by peers caught lying.
  /// The probe-based defenses require evict_unresponsive (they reuse its
  /// maintenance machinery). Off by default: with harden = false the
  /// protocol is byte-identical to the unhardened build — the golden
  /// replays witness this.
  bool harden = false;
};

}  // namespace bsvc
