#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "sampling/graph_metrics.hpp"
#include "sampling/oracle_sampler.hpp"

namespace bsvc {

namespace {

[[noreturn]] void config_error(const char* what, const std::string& detail) {
  std::fprintf(stderr, "error: invalid %s: %s\n", what, detail.c_str());
  std::exit(2);
}

}  // namespace

BootstrapExperiment::BootstrapExperiment(ExperimentConfig config) : config_(std::move(config)) {
  BSVC_CHECK(config_.n >= 2);
  TransportConfig transport;
  transport.drop_probability = config_.drop_probability;
  // Reject a bad transport here, before the Engine's abort-based backstop:
  // a bench typo (drop=1.2, min>max) gets a clear message and exit(2).
  if (const std::string err = transport.validate(); !err.empty()) {
    config_error("transport config", err);
  }
  // The retry/timeout knobs are only coherent relative to the transport's
  // minimum latency, so they are checked here — where both are known.
  if (const std::string err = config_.bootstrap.validate(transport.min_latency);
      !err.empty()) {
    config_error("bootstrap config", err);
  }
  if (config_.shards != 0 && config_.sampler == SamplerKind::Oracle) {
    config_error("sampler config",
                 "SamplerKind::Oracle is incompatible with sharded execution "
                 "(it samples global engine state from inside node callbacks)");
  }
  stats_blocks_.resize(config_.shards == 0 ? 1 : config_.shards);
  engine_ = std::make_unique<Engine>(config_.seed, transport, config_.shards);
  if (!config_.trace_path.empty()) {
    trace_sink_ = std::make_unique<obs::JsonlTraceSink>(config_.trace_path);
    engine_->set_trace_sink(trace_sink_.get());
  }
  if (config_.spans) {
    span_log_ = std::make_unique<obs::SpanLog>();
    span_log_->bind_registry(engine_->metrics());
    engine_->set_span_log(span_log_.get());
  }
  if (!config_.profile_path.empty()) {
    if (config_.shards == 0) {
      config_error("profiler config",
                   "--profile requires the sharded engine (pass --shards K >= 1): "
                   "the profiler accounts window-crew phases, which the serial "
                   "engine does not have");
    }
    profiler_ = std::make_unique<obs::EngineProfiler>(config_.shards);
    engine_->set_profiler(profiler_.get());
  }
  FaultPlan plan = config_.fault_plan;
  if (!config_.fault_plan_path.empty()) {
    std::string err;
    if (!load_fault_plan(config_.fault_plan_path, plan, err)) {
      config_error("fault plan", err);
    }
  } else if (const std::string err = plan.validate(); !err.empty()) {
    config_error("fault plan", err);
  }
  injector_ = install_fault_plan(*engine_, plan);
  ids_ = std::make_unique<IdGenerator>(Rng(config_.seed ^ 0x1D8AF066EF5E2D3Cull));
  build_network();
}

Address BootstrapExperiment::make_node() {
  Engine& engine = *engine_;
  const Address addr = engine.add_node(ids_->next());

  PeerSampler* sampler = nullptr;
  if (config_.sampler == SamplerKind::Newscast) {
    auto newscast = std::make_unique<NewscastProtocol>(config_.newscast);
    sampler = newscast.get();
    engine.attach(addr, std::move(newscast));
  } else {
    auto oracle = std::make_unique<OracleSamplerProtocol>(engine, addr);
    sampler = oracle.get();
    engine.attach(addr, std::move(oracle));
  }

  // Initial network construction staggers bootstrap starts after the warmup;
  // later joiners (churn, merges) start within one cycle of being created.
  const SimTime window =
      std::max<SimTime>(1, static_cast<SimTime>(config_.start_window_cycles *
                                                static_cast<double>(config_.bootstrap.delta)));
  const SimTime start_delay =
      built_ ? engine.rng().below(config_.bootstrap.delta)
             : config_.warmup_cycles * config_.bootstrap.delta + engine.rng().below(window);
  BootstrapStats* stats =
      &stats_blocks_[config_.shards == 0 ? 0 : addr % config_.shards].stats;
  auto proto = std::make_unique<BootstrapProtocol>(config_.bootstrap, sampler, stats,
                                                   start_delay);
  bootstrap_ref_ = attach_typed(engine, addr, std::move(proto));

  // Joiners seed their Newscast view from random alive contacts (a joining
  // node knows some existing members, as in any deployment).
  if (built_ && config_.sampler == SamplerKind::Newscast) {
    OracleSampler contacts(engine, addr);
    newscast_ref_.of(engine, addr).init_view(contacts.sample(config_.bootstrap_contacts));
  }
  if (config_.node_extension) config_.node_extension(engine, addr);
  return addr;
}

void BootstrapExperiment::build_network() {
  Engine& engine = *engine_;
  for (std::size_t i = 0; i < config_.n; ++i) make_node();

  // Seed every Newscast view with random contacts (a functional-but-
  // arbitrary starting overlay; warmup randomizes it). With an initial
  // partition, contacts come from the node's own group only and a link
  // filter isolates the groups — independent pools from the first tick.
  const bool partitioned = !config_.initial_groups.empty();
  if (partitioned) {
    BSVC_CHECK_MSG(config_.initial_groups.size() == config_.n,
                   "initial_groups must cover every node");
    apply_partition(engine, config_.initial_groups);
  }
  if (config_.sampler == SamplerKind::Newscast) {
    const auto group_of = [&](Address a) {
      return partitioned ? config_.initial_groups[a] : 0u;
    };
    for (Address addr = 0; addr < config_.n; ++addr) {
      DescriptorList seeds;
      seeds.reserve(config_.bootstrap_contacts);
      std::size_t guard = 0;
      while (seeds.size() < config_.bootstrap_contacts && guard < 64 * config_.bootstrap_contacts) {
        ++guard;
        const auto peer = static_cast<Address>(engine.rng().below(config_.n));
        if (peer != addr && group_of(peer) == group_of(addr)) {
          seeds.push_back(engine.descriptor_of(peer));
        }
      }
      newscast_ref_.of(engine, addr).init_view(std::move(seeds));
    }
  }
  for (Address addr = 0; addr < config_.n; ++addr) engine.start_node(addr);
  bootstrap_epoch_ = config_.warmup_cycles * config_.bootstrap.delta;
  built_ = true;
}

ExperimentResult BootstrapExperiment::run(
    std::function<void(std::size_t, const ConvergenceMetrics&)> on_cycle) {
  Engine& engine = *engine_;
  const SimTime delta = config_.bootstrap.delta;

  engine.run_until(bootstrap_epoch_);
  engine.reset_traffic();
  reset_stats();

  const bool churn =
      config_.churn_fail_rate > 0.0 || config_.churn_join_rate > 0.0;
  if (churn) {
    ChurnConfig cc;
    cc.from = bootstrap_epoch_;
    cc.to = bootstrap_epoch_ + config_.max_cycles * delta;
    cc.period = delta;
    cc.fail_rate = config_.churn_fail_rate;
    cc.join_rate = config_.churn_join_rate;
    schedule_churn(engine, cc, [this](Engine&) { return make_node(); });
  }

  ExperimentResult result;
  result.n = config_.n;

  std::optional<ConvergenceOracle> oracle;
  oracle.emplace(engine, config_.bootstrap, bootstrap_ref_);

  if (config_.sample_every_cycles > 0) {
    sampler_ = std::make_unique<obs::Sampler>(engine);
    // Probes capture the local oracle by reference; the sampler is stopped
    // (and dropped) before run() returns, so no closure outlives it.
    sampler_->add_probe([&oracle, churn](Engine& e) {
      obs::MetricsRegistry& m = e.metrics();
      const ConvergenceMetrics cm = oracle->measure(churn);
      m.gauge("convergence.leaf_completeness").set(1.0 - cm.missing_leaf_fraction());
      m.gauge("convergence.prefix_fill").set(1.0 - cm.missing_prefix_fraction());
      m.gauge("net.alive_nodes").set(static_cast<double>(e.alive_count()));
      const TrafficStats& t = e.traffic();
      m.gauge("traffic.messages_sent").set(static_cast<double>(t.messages_sent));
      m.gauge("traffic.messages_dropped").set(static_cast<double>(t.messages_dropped));
      m.gauge("traffic.messages_delivered").set(static_cast<double>(t.messages_delivered));
      m.gauge("traffic.bytes_sent").set(static_cast<double>(t.bytes_sent));
    });
    if (config_.sampler == SamplerKind::Newscast) {
      const SlotRef<NewscastProtocol> nc_slot = newscast_slot();
      sampler_->add_probe([nc_slot](Engine& e) {
        const ViewGraphStats g = measure_view_graph(e, nc_slot);
        obs::MetricsRegistry& m = e.metrics();
        m.gauge("newscast.indegree_mean").set(g.indegree_mean);
        m.gauge("newscast.indegree_stddev").set(g.indegree_stddev);
        m.gauge("newscast.indegree_max").set(static_cast<double>(g.indegree_max));
        m.gauge("newscast.dead_entry_fraction").set(g.dead_entry_fraction);
      });
    }
    // First snapshot at the end of cycle 0, then every sample_every_cycles.
    sampler_->start(delta, delta * config_.sample_every_cycles);
  }

  for (std::size_t cycle = 0; cycle < config_.max_cycles; ++cycle) {
    engine.run_until(bootstrap_epoch_ + (cycle + 1) * delta);
    if (churn) oracle.emplace(engine, config_.bootstrap, bootstrap_ref_);
    const ConvergenceMetrics metrics = oracle->measure(churn);
    result.final_metrics = metrics;
    const auto& traffic = engine.traffic();
    result.series.add_row({static_cast<double>(cycle), metrics.missing_leaf_fraction(),
                           metrics.missing_prefix_fraction(),
                           static_cast<double>(engine.alive_count()),
                           static_cast<double>(traffic.messages_sent),
                           static_cast<double>(traffic.bytes_sent)});
    if (on_cycle) on_cycle(cycle, metrics);

    if (result.leaf_converged_cycle < 0 && metrics.leaf_converged()) {
      result.leaf_converged_cycle = static_cast<int>(cycle);
    }
    if (result.prefix_converged_cycle < 0 && metrics.prefix_converged()) {
      result.prefix_converged_cycle = static_cast<int>(cycle);
    }
    if (metrics.converged()) {
      result.converged_cycle = static_cast<int>(cycle);
      if (config_.stop_at_convergence && !churn) break;
    }
  }

  if (sampler_ != nullptr) {
    sampler_->stop();
    result.metric_series = sampler_->take_series();
    sampler_.reset();
  }
  if (trace_sink_ != nullptr) trace_sink_->flush();
  if (span_log_ != nullptr) {
    result.has_spans = true;
    result.span_summary = span_log_->summary();
  }
  if (profiler_ != nullptr) {
    result.has_profile = true;
    result.profile_summary = profiler_->summary();
    if (!profiler_->write_chrome_trace(config_.profile_path)) {
      BSVC_WARN("failed to write profile trace to %s", config_.profile_path.c_str());
    }
  }

  const BootstrapStats stats = merged_stats();
  result.bootstrap_stats = stats;
  result.traffic_during_bootstrap = engine.traffic();
  result.events_dispatched = engine.events_dispatched();
  const auto msgs = stats.requests_sent + stats.replies_sent;
  result.avg_message_bytes =
      msgs == 0 ? 0.0
                : static_cast<double>(stats.payload_bytes_sent) / static_cast<double>(msgs);
  result.max_message_bytes = stats.max_message_bytes;
  return result;
}

BootstrapStats BootstrapExperiment::merged_stats() const {
  BootstrapStats total;
  for (const StatsBlock& block : stats_blocks_) {
    const BootstrapStats& s = block.stats;
    total.requests_sent += s.requests_sent;
    total.replies_sent += s.replies_sent;
    total.messages_received += s.messages_received;
    total.entries_sent += s.entries_sent;
    total.payload_bytes_sent += s.payload_bytes_sent;
    total.max_message_bytes = std::max(total.max_message_bytes, s.max_message_bytes);
    total.select_peer_empty += s.select_peer_empty;
  }
  return total;
}

void BootstrapExperiment::reset_stats() {
  for (StatsBlock& block : stats_blocks_) block.stats = {};
}

const BootstrapProtocol& BootstrapExperiment::bootstrap_of(Address addr) const {
  return bootstrap_ref_.of(*engine_, addr);
}

}  // namespace bsvc
