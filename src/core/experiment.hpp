// Experiment harness: assembles a complete network (simulation engine +
// Newscast sampling layer + bootstrapping service on every node), drives it
// cycle by cycle, measures the paper's convergence metrics against the
// oracle, and reports traffic costs. All benches and most examples reuse it.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "common/stats.hpp"
#include "core/bootstrap.hpp"
#include "fault/fault_injector.hpp"
#include "core/config.hpp"
#include "core/oracle.hpp"
#include "id/id_generator.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sampling/newscast.hpp"
#include "sim/engine.hpp"
#include "sim/scenario.hpp"
#include "sim/slot_ref.hpp"

namespace bsvc {

/// Which peer sampling implementation backs the bootstrapping service.
enum class SamplerKind {
  Newscast,  // the paper's architecture: gossip sampling layer underneath
  Oracle,    // idealized uniform sampling (isolation / ablation)
};

struct ExperimentConfig {
  std::size_t n = std::size_t{1} << 12;
  std::uint64_t seed = 1;
  /// Engine shard count: 0 runs the serial engine (bit-identical to the
  /// historical goldens); K >= 1 runs the sharded engine with K worker
  /// lanes. Within the sharded family the trajectory is identical for every
  /// K at a fixed seed (K = 1 is the inline reference). Incompatible with
  /// SamplerKind::Oracle, which samples global engine state from inside
  /// node callbacks.
  std::size_t shards = 0;
  BootstrapConfig bootstrap;
  NewscastConfig newscast;
  SamplerKind sampler = SamplerKind::Newscast;
  /// Transport loss (paper Fig. 4: 0.2).
  double drop_probability = 0.0;
  /// Newscast runs alone for this many cycles before the bootstrap starts
  /// ("we are given a network where the sampling service is already
  /// functional").
  std::size_t warmup_cycles = 10;
  /// Nodes start the bootstrap protocol at a uniformly random time within
  /// this many Δ (paper: 1 — "within an interval of length Δ").
  double start_window_cycles = 1.0;
  /// Hard stop if not converged earlier.
  std::size_t max_cycles = 150;
  bool stop_at_convergence = true;
  /// Optional continuous churn during the bootstrap phase (rates are per
  /// cycle; enabled when fail_rate or join_rate > 0).
  double churn_fail_rate = 0.0;
  double churn_join_rate = 0.0;
  /// Initial Newscast view seeds per node.
  std::size_t bootstrap_contacts = 10;
  /// Optional initial partition: group id per node address (empty = one
  /// network). When set, a link filter blocks cross-group traffic from t=0
  /// and Newscast views are seeded within groups only — two genuinely
  /// independent pools, as in the merge scenarios. Heal with
  /// heal_partition(engine) when the pools "merge".
  std::vector<std::uint32_t> initial_groups;
  /// When > 0, a Sampler snapshots the engine's metrics registry — plus
  /// convergence and traffic gauges computed by probes — every this many
  /// cycles during the bootstrap phase; the series lands in
  /// ExperimentResult::metric_series. 0 disables sampling.
  std::size_t sample_every_cycles = 0;
  /// When non-empty, the engine streams every trace record (message sends /
  /// drops / deliveries, timer fires, node starts and kills) as JSONL to
  /// this path for the whole run including warmup. Empty disables tracing.
  std::string trace_path;
  /// When true, a SpanLog tracks every bootstrap exchange as a causal span
  /// (open at request send, closed on answer/timeout/supersession/eviction)
  /// and ExperimentResult::span_summary reports latency percentiles and
  /// outcome counts. Observe-only: the trajectory is bit-identical either
  /// way, and the summary is identical for every --shards K.
  bool spans = false;
  /// When non-empty, an EngineProfiler accounts every window's crew phases
  /// and writes Chrome trace-event JSON here at the end of the run (load in
  /// chrome://tracing or Perfetto). Requires shards >= 1 — the profiler
  /// measures the window crew; rejected with a config error otherwise.
  std::string profile_path;
  /// Scripted fault plan (partitions, correlated loss, latency faults,
  /// dup/reorder, crash–recover; see docs/faults.md). An empty plan installs
  /// no fault model at all — the run is bit-identical to the pre-fault
  /// engine. Window times are absolute virtual time, so warmup_cycles counts
  /// toward them.
  FaultPlan fault_plan;
  /// When non-empty, a text plan file loaded over `fault_plan` (the file
  /// wins). Rejected with a clear error at setup on parse failure.
  std::string fault_plan_path;
  /// Optional per-node extension hook, invoked at the end of make_node() for
  /// every node — the initial network and later churn joiners alike — so a
  /// layer above the bootstrap (e.g. the src/workload request/broadcast
  /// service) can attach additional protocols without core depending on it.
  /// The sampling service is slot 0 and the bootstrap slot 1; the hook's
  /// attachments land at slot 2 upward.
  std::function<void(Engine&, Address)> node_extension;
};

struct ExperimentResult {
  /// Columns: cycle, missing_leaf, missing_prefix, alive, msgs_sent_total,
  /// bytes_sent_total (cumulative engine traffic at end of cycle).
  TimeSeries series{{"cycle", "missing_leaf", "missing_prefix", "alive", "msgs", "bytes"}};
  int leaf_converged_cycle = -1;    // -1: not within max_cycles
  int prefix_converged_cycle = -1;
  int converged_cycle = -1;
  std::size_t n = 0;
  BootstrapStats bootstrap_stats;
  TrafficStats traffic_during_bootstrap;
  /// Mean/max wire bytes per bootstrap message.
  double avg_message_bytes = 0.0;
  std::uint64_t max_message_bytes = 0;
  /// Engine events dispatched over the whole run incl. warmup (throughput
  /// accounting for the bench --json reports).
  std::uint64_t events_dispatched = 0;
  /// Final metrics at the last measured cycle.
  ConvergenceMetrics final_metrics;
  /// Per-metric time series (name -> [(virtual time, value)]) sampled during
  /// the bootstrap phase; empty unless sample_every_cycles > 0.
  obs::MetricSeries metric_series;
  /// Exchange-span aggregates (valid when has_spans; config.spans enables).
  bool has_spans = false;
  obs::SpanSummary span_summary;
  /// Window-profiler aggregates (valid when has_profile; config.profile_path
  /// enables). The Chrome trace itself is written to profile_path.
  bool has_profile = false;
  obs::ProfileSummary profile_summary;
};

/// Builds and runs one bootstrap experiment. The object stays alive after
/// run() so examples can keep using the converged network (routing, etc.).
class BootstrapExperiment {
 public:
  explicit BootstrapExperiment(ExperimentConfig config);

  /// Runs warmup + bootstrap until convergence or max_cycles.
  /// `on_cycle` (optional) observes (cycle, metrics) after each cycle.
  ExperimentResult run(
      std::function<void(std::size_t, const ConvergenceMetrics&)> on_cycle = nullptr);

  Engine& engine() { return *engine_; }
  const ExperimentConfig& config() const { return config_; }
  /// Typed handle to the sampling slot. Only dereference protocols through
  /// it when sampler == Newscast (under SamplerKind::Oracle the slot holds
  /// an OracleSamplerProtocol); decaying it to a raw ProtocolSlot is always
  /// fine.
  SlotRef<NewscastProtocol> newscast_slot() const { return newscast_ref_; }
  SlotRef<BootstrapProtocol> bootstrap_slot() const { return bootstrap_ref_; }

  /// The bootstrap protocol instance of a node.
  const BootstrapProtocol& bootstrap_of(Address addr) const;

  /// Live protocol-stat totals (requests/replies/probes sent so far),
  /// merged across shard lanes. Tests use the request+reply delta across a
  /// window of simulated time as the exchange count for per-exchange
  /// allocation budgets.
  BootstrapStats current_stats() const { return merged_stats(); }

  /// Creates one more fully-stacked node (used by churn joins and the merge/
  /// split examples); the caller starts it.
  Address make_node();

 private:
  void build_network();

  ExperimentConfig config_;
  std::unique_ptr<Engine> engine_;
  // Installed right after engine construction so node starts are traced.
  // The engine never touches the sink while being destroyed, so the sink
  // may safely be torn down first.
  std::unique_ptr<obs::JsonlTraceSink> trace_sink_;
  // Span log and window profiler, installed before the network is built so
  // every protocol sees them at on_start; engine borrows, we own.
  std::unique_ptr<obs::SpanLog> span_log_;
  std::unique_ptr<obs::EngineProfiler> profiler_;
  // The live FaultModel executing config_.fault_plan (null when the plan is
  // empty); owned here because the engine only borrows it.
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::unique_ptr<IdGenerator> ids_;
  /// Protocol-written stats, one cache-line-aligned block per shard (a
  /// single block in serial mode): each node's protocol instance writes the
  /// block of its owning shard, so shard lanes never contend or false-share.
  /// Sized once in the constructor — protocols hold raw pointers into it.
  struct alignas(64) StatsBlock {
    BootstrapStats stats;
  };
  std::vector<StatsBlock> stats_blocks_;
  BootstrapStats merged_stats() const;
  void reset_stats();
  SlotRef<NewscastProtocol> newscast_ref_ = SlotRef<NewscastProtocol>::assume(0);
  SlotRef<BootstrapProtocol> bootstrap_ref_ = SlotRef<BootstrapProtocol>::assume(1);
  SimTime bootstrap_epoch_ = 0;
  bool built_ = false;
};

}  // namespace bsvc
