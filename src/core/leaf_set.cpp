#include "core/leaf_set.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bsvc {

namespace {
// UPDATELEAFSET staging buffers. Thread-local so the steady-state rebuild
// allocates nothing once warm; safe because the sharded engine's worker
// lanes are persistent threads and update() never re-enters itself.
struct RebuildScratch {
  std::vector<NodeDescriptor> candidates;
  std::vector<NodeDescriptor> succ;
  std::vector<NodeDescriptor> pred;
};

RebuildScratch& scratch() {
  thread_local RebuildScratch s;
  return s;
}
}  // namespace

LeafSet::LeafSet(NodeId own, std::size_t capacity)
    : own_(own),
      capacity_(capacity),
      arena_(&own_arena_),
      block_(arena_->allocate(static_cast<std::uint32_t>(capacity))) {
  BSVC_CHECK(capacity >= 2);
}

LeafSet::LeafSet(NodeId own, std::size_t capacity, DescriptorArena* arena)
    : own_(own),
      capacity_(capacity),
      arena_(arena),
      block_(arena_->allocate(static_cast<std::uint32_t>(capacity))) {
  BSVC_CHECK(capacity >= 2);
  BSVC_CHECK(arena != nullptr);
}

void LeafSet::copy_from(const LeafSet& other) {
  own_ = other.own_;
  capacity_ = other.capacity_;
  succ_count_ = other.succ_count_;
  pred_count_ = other.pred_count_;
  std::copy_n(other.ids(), other.size(), ids());
  std::copy_n(other.addrs(), other.size(), addrs());
}

LeafSet::LeafSet(const LeafSet& other)
    : own_(other.own_),
      capacity_(other.capacity_),
      arena_(&own_arena_),
      block_(arena_->allocate(static_cast<std::uint32_t>(other.capacity_))) {
  copy_from(other);
}

LeafSet& LeafSet::operator=(const LeafSet& other) {
  if (this == &other) return *this;
  // Copies always land in the private arena: an externally-backed set's
  // block capacity is tied to its own `capacity`, not the source's.
  own_arena_.reset();
  arena_ = &own_arena_;
  block_ = arena_->allocate(static_cast<std::uint32_t>(other.capacity_));
  copy_from(other);
  return *this;
}

LeafSet::LeafSet(LeafSet&& other) noexcept
    : own_(other.own_),
      capacity_(other.capacity_),
      own_arena_(std::move(other.own_arena_)),
      arena_(other.arena_ == &other.own_arena_ ? &own_arena_ : other.arena_),
      block_(other.block_),
      succ_count_(other.succ_count_),
      pred_count_(other.pred_count_) {
  other.arena_ = &other.own_arena_;
  other.block_ = {};
  other.succ_count_ = 0;
  other.pred_count_ = 0;
}

LeafSet& LeafSet::operator=(LeafSet&& other) noexcept {
  if (this == &other) return *this;
  own_ = other.own_;
  capacity_ = other.capacity_;
  own_arena_ = std::move(other.own_arena_);
  arena_ = other.arena_ == &other.own_arena_ ? &own_arena_ : other.arena_;
  block_ = other.block_;
  succ_count_ = other.succ_count_;
  pred_count_ = other.pred_count_;
  other.arena_ = &other.own_arena_;
  other.block_ = {};
  other.succ_count_ = 0;
  other.pred_count_ = 0;
  return *this;
}

void LeafSet::update(std::span<const NodeDescriptor> incoming) {
  // Merge current content and the parameter set, then rebuild both sides.
  auto& candidates = scratch().candidates;
  candidates.clear();
  const NodeId* id = ids();
  const Address* addr = addrs();
  for (std::size_t i = 0; i < size(); ++i) candidates.push_back({id[i], addr[i]});
  for (const auto& d : incoming) {
    if (d.id == own_ || d.addr == kNullAddress) continue;
    candidates.push_back(d);
  }
  rebuild(candidates);
}

bool LeafSet::remove(NodeId id) {
  NodeId* ids_p = ids();
  Address* addrs_p = addrs();
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    if (ids_p[i] != id) continue;
    std::copy(ids_p + i + 1, ids_p + n, ids_p + i);
    std::copy(addrs_p + i + 1, addrs_p + n, addrs_p + i);
    if (i < succ_count_) {
      --succ_count_;
    } else {
      --pred_count_;
    }
    return true;
  }
  return false;
}

void LeafSet::rebuild(std::vector<NodeDescriptor>& candidates) {
  // Dedupe by ID. Sorting by ID first makes the dedupe deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) { return a.id < b.id; });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const NodeDescriptor& a, const NodeDescriptor& b) {
                                 return a.id == b.id;
                               }),
                   candidates.end());

  auto& succ = scratch().succ;
  auto& pred = scratch().pred;
  succ.clear();
  pred.clear();
  for (const auto& d : candidates) {
    (is_successor(own_, d.id) ? succ : pred).push_back(d);
  }
  std::sort(succ.begin(), succ.end(), [this](const NodeDescriptor& a, const NodeDescriptor& b) {
    return successor_distance(own_, a.id) < successor_distance(own_, b.id);
  });
  std::sort(pred.begin(), pred.end(), [this](const NodeDescriptor& a, const NodeDescriptor& b) {
    return predecessor_distance(own_, a.id) < predecessor_distance(own_, b.id);
  });

  // Keep c/2 closest per direction; spare capacity from a short side tops up
  // the other ("filled with the closest elements in the other direction").
  const std::size_t half = capacity_ / 2;
  std::size_t take_s = std::min(succ.size(), half);
  std::size_t take_p = std::min(pred.size(), half);
  std::size_t spare = capacity_ - take_s - take_p;
  const std::size_t extra_s = std::min(succ.size() - take_s, spare);
  take_s += extra_s;
  spare -= extra_s;
  take_p += std::min(pred.size() - take_p, spare);

  NodeId* ids_p = ids();
  Address* addrs_p = addrs();
  for (std::size_t i = 0; i < take_s; ++i) {
    ids_p[i] = succ[i].id;
    addrs_p[i] = succ[i].addr;
  }
  for (std::size_t i = 0; i < take_p; ++i) {
    ids_p[take_s + i] = pred[i].id;
    addrs_p[take_s + i] = pred[i].addr;
  }
  succ_count_ = static_cast<std::uint32_t>(take_s);
  pred_count_ = static_cast<std::uint32_t>(take_p);
}

DescriptorList LeafSet::all() const {
  DescriptorList out;
  out.reserve(size());
  const DescriptorView view = all_view();
  out.insert(out.end(), view.begin(), view.end());
  return out;
}

DescriptorList LeafSet::sorted_by_ring_distance() const {
  DescriptorList out = all();
  std::sort(out.begin(), out.end(), [this](const NodeDescriptor& a, const NodeDescriptor& b) {
    return closer_on_ring(own_, a.id, b.id);
  });
  return out;
}

bool LeafSet::contains(NodeId id) const {
  const NodeId* ids_p = ids();
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    if (ids_p[i] == id) return true;
  }
  return false;
}

}  // namespace bsvc
