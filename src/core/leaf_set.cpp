#include "core/leaf_set.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bsvc {

LeafSet::LeafSet(NodeId own, std::size_t capacity) : own_(own), capacity_(capacity) {
  BSVC_CHECK(capacity >= 2);
}

void LeafSet::update(std::span<const NodeDescriptor> incoming) {
  // Merge current content and the parameter set, then rebuild both sides.
  std::vector<NodeDescriptor> candidates;
  candidates.reserve(succs_.size() + preds_.size() + incoming.size());
  candidates.insert(candidates.end(), succs_.begin(), succs_.end());
  candidates.insert(candidates.end(), preds_.begin(), preds_.end());
  for (const auto& d : incoming) {
    if (d.id == own_ || d.addr == kNullAddress) continue;
    candidates.push_back(d);
  }
  rebuild(std::move(candidates));
}

bool LeafSet::remove(NodeId id) {
  const auto erase_from = [id](std::vector<NodeDescriptor>& v) {
    const auto it = std::find_if(v.begin(), v.end(),
                                 [id](const NodeDescriptor& d) { return d.id == id; });
    if (it == v.end()) return false;
    v.erase(it);
    return true;
  };
  return erase_from(succs_) || erase_from(preds_);
}

void LeafSet::rebuild(std::vector<NodeDescriptor> candidates) {
  // Dedupe by ID. Sorting by ID first makes the dedupe deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) { return a.id < b.id; });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const NodeDescriptor& a, const NodeDescriptor& b) {
                                 return a.id == b.id;
                               }),
                   candidates.end());

  std::vector<NodeDescriptor> succ, pred;
  for (const auto& d : candidates) {
    (is_successor(own_, d.id) ? succ : pred).push_back(d);
  }
  std::sort(succ.begin(), succ.end(), [this](const NodeDescriptor& a, const NodeDescriptor& b) {
    return successor_distance(own_, a.id) < successor_distance(own_, b.id);
  });
  std::sort(pred.begin(), pred.end(), [this](const NodeDescriptor& a, const NodeDescriptor& b) {
    return predecessor_distance(own_, a.id) < predecessor_distance(own_, b.id);
  });

  // Keep c/2 closest per direction; spare capacity from a short side tops up
  // the other ("filled with the closest elements in the other direction").
  const std::size_t half = capacity_ / 2;
  std::size_t take_s = std::min(succ.size(), half);
  std::size_t take_p = std::min(pred.size(), half);
  std::size_t spare = capacity_ - take_s - take_p;
  const std::size_t extra_s = std::min(succ.size() - take_s, spare);
  take_s += extra_s;
  spare -= extra_s;
  take_p += std::min(pred.size() - take_p, spare);

  succ.resize(take_s);
  pred.resize(take_p);
  succs_ = std::move(succ);
  preds_ = std::move(pred);
}

DescriptorList LeafSet::all() const {
  DescriptorList out;
  out.reserve(size());
  out.insert(out.end(), succs_.begin(), succs_.end());
  out.insert(out.end(), preds_.begin(), preds_.end());
  return out;
}

DescriptorList LeafSet::sorted_by_ring_distance() const {
  DescriptorList out = all();
  std::sort(out.begin(), out.end(), [this](const NodeDescriptor& a, const NodeDescriptor& b) {
    return closer_on_ring(own_, a.id, b.id);
  });
  return out;
}

bool LeafSet::contains(NodeId id) const {
  const auto in = [id](const std::vector<NodeDescriptor>& v) {
    return std::any_of(v.begin(), v.end(),
                       [id](const NodeDescriptor& d) { return d.id == id; });
  };
  return in(succs_) || in(preds_);
}

}  // namespace bsvc
