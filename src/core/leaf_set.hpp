// The leaf set: a node's closest neighbours on the sorted ring of IDs.
//
// Semantics follow the paper's UPDATELEAFSET: merge new descriptors with the
// current content, classify every ID as successor or predecessor of the own
// ID on the ring of all possible IDs, and keep the c/2 closest in each
// direction — topping up from the other direction when one side runs short
// (only relevant when fewer than c other nodes are known to exist).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "id/descriptor.hpp"
#include "id/ring.hpp"

namespace bsvc {

class LeafSet {
 public:
  /// `capacity` is the paper's c; it need not be even, the odd slot floats
  /// to whichever direction has more candidates.
  LeafSet(NodeId own, std::size_t capacity);

  /// UPDATELEAFSET: tries to improve the set with the given descriptors.
  /// Descriptors equal to the own ID and null addresses are ignored.
  void update(std::span<const NodeDescriptor> incoming);

  /// Removes an entry (used when a peer is detected dead). Returns whether
  /// it was present.
  bool remove(NodeId id);

  /// Successors sorted by increasing successor-direction distance.
  const std::vector<NodeDescriptor>& successors() const { return succs_; }
  /// Predecessors sorted by increasing predecessor-direction distance.
  const std::vector<NodeDescriptor>& predecessors() const { return preds_; }

  /// All entries (successors then predecessors; no duplicates).
  DescriptorList all() const;

  /// Entries sorted by shortest ring distance from the own ID — the order
  /// SELECTPEER draws from.
  DescriptorList sorted_by_ring_distance() const;

  bool contains(NodeId id) const;
  std::size_t size() const { return succs_.size() + preds_.size(); }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return capacity_; }
  NodeId own_id() const { return own_; }

 private:
  void rebuild(std::vector<NodeDescriptor> candidates);

  NodeId own_;
  std::size_t capacity_;
  std::vector<NodeDescriptor> succs_;
  std::vector<NodeDescriptor> preds_;
};

}  // namespace bsvc
