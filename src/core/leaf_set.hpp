// The leaf set: a node's closest neighbours on the sorted ring of IDs.
//
// Semantics follow the paper's UPDATELEAFSET: merge new descriptors with the
// current content, classify every ID as successor or predecessor of the own
// ID on the ring of all possible IDs, and keep the c/2 closest in each
// direction — topping up from the other direction when one side runs short
// (only relevant when fewer than c other nodes are known to exist).
//
// Storage is struct-of-arrays in a DescriptorArena block (successors first,
// then predecessors): the hot ring-distance scans stream the contiguous
// NodeId lane, and a steady-state UPDATELEAFSET rebuild allocates nothing —
// candidates stage through thread-local scratch and the result is written
// back into the fixed-capacity block. Accessors hand out DescriptorView
// (values materialized on read); views are invalidated by any mutation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.hpp"
#include "id/descriptor.hpp"
#include "id/ring.hpp"

namespace bsvc {

class LeafSet {
 public:
  /// `capacity` is the paper's c; it need not be even, the odd slot floats
  /// to whichever direction has more candidates. Self-backed: entries live
  /// in a private arena.
  LeafSet(NodeId own, std::size_t capacity);
  /// Entries live in `arena` (not owned; must outlive the set). The block is
  /// allocated at construction and never grows — capacity is fixed.
  LeafSet(NodeId own, std::size_t capacity, DescriptorArena* arena);

  LeafSet(const LeafSet& other);
  LeafSet& operator=(const LeafSet& other);
  LeafSet(LeafSet&& other) noexcept;
  LeafSet& operator=(LeafSet&& other) noexcept;
  ~LeafSet() = default;

  /// UPDATELEAFSET: tries to improve the set with the given descriptors.
  /// Descriptors equal to the own ID and null addresses are ignored.
  void update(std::span<const NodeDescriptor> incoming);

  /// Removes an entry (used when a peer is detected dead). Returns whether
  /// it was present.
  bool remove(NodeId id);

  /// Successors sorted by increasing successor-direction distance.
  DescriptorView successors() const { return {ids(), addrs(), succ_count_}; }
  /// Predecessors sorted by increasing predecessor-direction distance.
  DescriptorView predecessors() const {
    return {ids() + succ_count_, addrs() + succ_count_, pred_count_};
  }
  /// All entries (successors then predecessors; no duplicates), zero-copy.
  DescriptorView all_view() const { return {ids(), addrs(), size()}; }

  /// All entries (successors then predecessors; no duplicates).
  DescriptorList all() const;

  /// Entries sorted by shortest ring distance from the own ID — the order
  /// SELECTPEER draws from.
  DescriptorList sorted_by_ring_distance() const;

  bool contains(NodeId id) const;
  std::size_t size() const { return succ_count_ + pred_count_; }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return capacity_; }
  NodeId own_id() const { return own_; }

 private:
  void rebuild(std::vector<NodeDescriptor>& candidates);
  void copy_from(const LeafSet& other);

  const NodeId* ids() const { return arena_->ids(block_); }
  const Address* addrs() const { return arena_->addrs(block_); }
  NodeId* ids() { return arena_->ids(block_); }
  Address* addrs() { return arena_->addrs(block_); }

  NodeId own_;
  std::size_t capacity_;
  DescriptorArena own_arena_;  // backs the block when no external arena given
  DescriptorArena* arena_;
  DescriptorArena::Block block_;
  std::uint32_t succ_count_ = 0;
  std::uint32_t pred_count_ = 0;
};

}  // namespace bsvc
