#include "core/oracle.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bsvc {

std::vector<NodeDescriptor> ConvergenceOracle::alive_members(const Engine& engine) {
  std::vector<NodeDescriptor> members;
  const auto alive = engine.alive_addresses();
  members.reserve(alive.size());
  for (const Address addr : alive) members.push_back(engine.descriptor_of(addr));
  return members;
}

TableAccess bootstrap_table_access(const Engine& engine, SlotRef<BootstrapProtocol> slot) {
  TableAccess access;
  access.active = [&engine, slot](Address a) { return slot.of(engine, a).active(); };
  access.leaf = [&engine, slot](Address a) -> const LeafSet& {
    return slot.of(engine, a).leaf_set();
  };
  access.prefix = [&engine, slot](Address a) -> const PrefixTable& {
    return slot.of(engine, a).prefix_table();
  };
  return access;
}

ConvergenceOracle::ConvergenceOracle(const Engine& engine, const BootstrapConfig& config,
                                     SlotRef<BootstrapProtocol> bootstrap_slot)
    : ConvergenceOracle(engine, alive_members(engine), config, bootstrap_slot) {}

ConvergenceOracle::ConvergenceOracle(const Engine& engine, std::vector<NodeDescriptor> members,
                                     const BootstrapConfig& config,
                                     SlotRef<BootstrapProtocol> bootstrap_slot)
    : ConvergenceOracle(engine, std::move(members), config,
                        bootstrap_table_access(engine, bootstrap_slot)) {}

ConvergenceOracle::ConvergenceOracle(const Engine& engine, std::vector<NodeDescriptor> members,
                                     const BootstrapConfig& config, TableAccess access)
    : engine_(engine), access_(std::move(access)), tables_(std::move(members), config) {
  rank_by_addr_.assign(engine.node_count(), 0xFFFFFFFFu);
  const auto& sorted = tables_.sorted_members();
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    rank_by_addr_[sorted[r].addr] = static_cast<std::uint32_t>(r);
  }
  // The membership is a proper subset of the alive set iff some alive node
  // is not a member (same size + all-alive members == identical sets).
  subset_ = sorted.size() != engine.alive_count();
  for (const auto& m : sorted) {
    if (!engine.is_alive(m.addr)) {
      subset_ = true;
      break;
    }
  }
}

ConvergenceMetrics ConvergenceOracle::measure(bool check_liveness) const {
  ConvergenceMetrics metrics;
  const auto& members = tables_.sorted_members();
  const std::size_t n = members.size();
  for (std::size_t rank = 0; rank < n; ++rank) {
    const Address addr = members[rank].addr;

    const PerfectTables::LeafSpan span = tables_.leaf_span(rank);
    metrics.leaf_perfect += span.succ_count + span.pred_count;
    metrics.prefix_perfect += tables_.perfect_prefix_total(rank);
    if (!access_.active(addr)) continue;  // tables not built yet: everything missing
    const LeafSet& node_leaf = access_.leaf(addr);
    const PrefixTable& node_prefix = access_.prefix(addr);

    // Leaf: two-pointer match of the actual per-direction lists (sorted by
    // directed distance) against the perfect contiguous rank spans.
    const NodeId p = members[rank].id;
    const auto count_matches = [&](DescriptorView actual, bool succ_dir,
                                   std::uint32_t perfect_count) {
      std::uint64_t matches = 0;
      std::size_t ai = 0;
      for (std::uint32_t s = 1; s <= perfect_count; ++s) {
        const std::size_t target_rank = succ_dir ? (rank + s) % n : (rank + n - s) % n;
        const NodeId target = members[target_rank].id;
        const NodeId target_dist =
            succ_dir ? successor_distance(p, target) : predecessor_distance(p, target);
        while (ai < actual.size()) {
          const NodeId actual_dist = succ_dir ? successor_distance(p, actual[ai].id)
                                              : predecessor_distance(p, actual[ai].id);
          if (actual_dist > target_dist) break;
          ++ai;
          if (actual_dist == target_dist) {
            ++matches;
            break;
          }
        }
      }
      return matches;
    };
    metrics.leaf_present += count_matches(node_leaf.successors(), true, span.succ_count);
    metrics.leaf_present += count_matches(node_leaf.predecessors(), false, span.pred_count);

    // Prefix: every held entry is a real node in its correct cell, and per
    // cell the count cannot exceed min(k, available), so the filled count is
    // directly comparable to the perfect total — as long as every entry is a
    // truthful member binding. Under churn or subset (partition)
    // measurement, entries pointing outside the membership must be
    // discounted; under a fault model, a Byzantine adversary may have
    // planted fabricated ID/address bindings, which never count as present.
    // The O(1) fast path (trusting filled()) is only sound when every entry
    // is necessarily a truthful member: no node has ever died, no fault
    // model is installed and the membership is the full alive set.
    const bool maybe_stale = engine_.alive_count() != engine_.node_count();
    if (check_liveness || subset_ || maybe_stale || engine_.fault_model() != nullptr) {
      std::uint64_t member_entries = 0;
      for (const auto& e : node_prefix.entries()) {
        const bool is_member =
            e.addr < rank_by_addr_.size() && rank_by_addr_[e.addr] != 0xFFFFFFFFu &&
            members[rank_by_addr_[e.addr]].id == e.id;
        if (!is_member) continue;
        if (check_liveness && !engine_.is_alive(e.addr)) continue;
        ++member_entries;
      }
      metrics.prefix_present += member_entries;
    } else {
      metrics.prefix_present += node_prefix.filled();
    }
  }
  BSVC_CHECK(metrics.leaf_present <= metrics.leaf_perfect);
  BSVC_CHECK(metrics.prefix_present <= metrics.prefix_perfect);
  return metrics;
}

std::vector<NodeId> ConvergenceOracle::perfect_leaf_ids(Address addr) const {
  return tables_.perfect_leaf_ids(rank_of(addr));
}

std::uint64_t ConvergenceOracle::perfect_prefix_total(Address addr) const {
  return tables_.perfect_prefix_total(rank_of(addr));
}

std::size_t ConvergenceOracle::rank_of(Address addr) const {
  BSVC_CHECK(addr < rank_by_addr_.size());
  const auto rank = rank_by_addr_[addr];
  BSVC_CHECK_MSG(rank != 0xFFFFFFFFu, "address is not an alive member");
  return rank;
}

}  // namespace bsvc
