// Convergence oracle: measures, against ground truth computed from global
// knowledge of the alive membership, the two "proportion of missing entries"
// metrics of the paper's Figures 3 and 4.
//
// The ground-truth math (perfect leaf spans, perfect prefix totals via one
// walk of the base-2^b digit trie over the sorted ID array) lives in
// PerfectTables; this class snapshots the engine's alive membership, binds
// the protocol instances, and compares.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/bootstrap.hpp"
#include "core/config.hpp"
#include "core/perfect_tables.hpp"
#include "sim/engine.hpp"
#include "sim/slot_ref.hpp"

namespace bsvc {

/// One measurement of the two convergence metrics.
struct ConvergenceMetrics {
  std::uint64_t leaf_perfect = 0;    // Σ perfect leaf entries over all nodes
  std::uint64_t leaf_present = 0;    // of those, how many nodes actually hold
  std::uint64_t prefix_perfect = 0;  // Σ perfect prefix entries
  std::uint64_t prefix_present = 0;

  /// The paper's y-axes.
  double missing_leaf_fraction() const {
    return leaf_perfect == 0
               ? 0.0
               : 1.0 - static_cast<double>(leaf_present) / static_cast<double>(leaf_perfect);
  }
  double missing_prefix_fraction() const {
    return prefix_perfect == 0
               ? 0.0
               : 1.0 - static_cast<double>(prefix_present) / static_cast<double>(prefix_perfect);
  }
  /// Perfect tables at all nodes (where each curve of Fig. 3/4 ends).
  bool leaf_converged() const { return leaf_present == leaf_perfect; }
  bool prefix_converged() const { return prefix_present == prefix_perfect; }
  bool converged() const { return leaf_converged() && prefix_converged(); }
};

/// How the oracle (and routers) reach a node's tables. The default binds to
/// BootstrapProtocol at a slot; any protocol exposing the same structures
/// (e.g. the message-level Pastry node) can provide its own accessor.
struct TableAccess {
  std::function<bool(Address)> active;
  std::function<const LeafSet&(Address)> leaf;
  std::function<const PrefixTable&(Address)> prefix;
};

/// Accessor for BootstrapProtocol instances at `slot`.
TableAccess bootstrap_table_access(const Engine& engine, SlotRef<BootstrapProtocol> slot);

class ConvergenceOracle {
 public:
  /// Snapshots the engine's alive membership and precomputes perfect
  /// structures. Reconstruct after membership changes.
  ConvergenceOracle(const Engine& engine, const BootstrapConfig& config,
                    SlotRef<BootstrapProtocol> bootstrap_slot);

  /// Same, but over an explicit member subset (e.g. one side of a
  /// partition). All members must be engine addresses with the bootstrap
  /// protocol at `bootstrap_slot`.
  ConvergenceOracle(const Engine& engine, std::vector<NodeDescriptor> members,
                    const BootstrapConfig& config, SlotRef<BootstrapProtocol> bootstrap_slot);

  /// Fully general form: explicit membership and table accessor.
  ConvergenceOracle(const Engine& engine, std::vector<NodeDescriptor> members,
                    const BootstrapConfig& config, TableAccess access);

  /// Measures both metrics across all alive nodes that have an activated
  /// bootstrap protocol. If `check_liveness` is true (churn scenarios),
  /// table entries pointing at dead nodes do not count as present.
  ConvergenceMetrics measure(bool check_liveness = false) const;

  // --- exposed for tests and routing validation --------------------------

  /// Perfect leaf-set IDs of a node (successors then predecessors).
  std::vector<NodeId> perfect_leaf_ids(Address addr) const;
  /// Perfect prefix-entry total of a node.
  std::uint64_t perfect_prefix_total(Address addr) const;
  /// The alive membership sorted by ID.
  const std::vector<NodeDescriptor>& sorted_members() const {
    return tables_.sorted_members();
  }
  /// The node responsible for a key (see PerfectTables::owner_of).
  NodeDescriptor owner_of(NodeId key) const { return tables_.owner_of(key); }
  /// The underlying ground-truth computations.
  const PerfectTables& perfect() const { return tables_; }

 private:
  std::size_t rank_of(Address addr) const;

  static std::vector<NodeDescriptor> alive_members(const Engine& engine);

  const Engine& engine_;
  TableAccess access_;
  PerfectTables tables_;
  std::vector<std::uint32_t> rank_by_addr_;  // addr -> rank (or ~0)
  bool subset_ = false;  // membership differs from the engine's alive set
};

}  // namespace bsvc
