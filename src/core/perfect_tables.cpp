#include "core/perfect_tables.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "id/ring.hpp"

namespace bsvc {

namespace {
constexpr NodeId kHalfRing = NodeId{1} << 63;

bool id_less(const NodeDescriptor& d, NodeId id) { return d.id < id; }
}  // namespace

PerfectTables::PerfectTables(std::vector<NodeDescriptor> members, const BootstrapConfig& config)
    : members_(std::move(members)), config_(config) {
  std::sort(members_.begin(), members_.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < members_.size(); ++i) {
    BSVC_CHECK_MSG(members_[i - 1].id != members_[i].id, "duplicate node IDs");
  }
  perfect_prefix_.assign(members_.size(), 0);
  if (members_.size() > 1) compute_perfect_prefix(0, members_.size(), 0, 0);
}

std::size_t PerfectTables::rank_of_id(NodeId id) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), id, id_less);
  BSVC_CHECK_MSG(it != members_.end() && it->id == id, "ID is not a member");
  return static_cast<std::size_t>(it - members_.begin());
}

void PerfectTables::compute_perfect_prefix(std::size_t lo, std::size_t hi, int depth,
                                           std::uint64_t acc) {
  if (hi - lo == 1) {
    // Alone at this prefix depth: all deeper rows have zero perfect entries.
    perfect_prefix_[lo] = acc;
    return;
  }
  BSVC_CHECK_MSG(depth < config_.digits.num_digits<NodeId>(),
                 "non-unique IDs reached the bottom of the trie");
  const int radix = config_.digits.radix();
  const NodeId base = members_[lo].id;

  // Child boundaries: bounds[j] = first index whose digit at `depth` is >= j.
  std::vector<std::size_t> bounds(static_cast<std::size_t>(radix) + 1);
  bounds[0] = lo;
  bounds[static_cast<std::size_t>(radix)] = hi;
  if (hi - lo < static_cast<std::size_t>(2 * radix)) {
    // Small range: one linear scan beats 2^b binary searches.
    std::size_t pos = lo;
    for (int j = 0; j < radix; ++j) {
      bounds[static_cast<std::size_t>(j)] = pos;
      while (pos < hi && digit(members_[pos].id, depth, config_.digits) == j) ++pos;
    }
  } else {
    for (int j = 1; j < radix; ++j) {
      const NodeId lo_val = prefix_range_lo(base, depth, j, config_.digits);
      bounds[static_cast<std::size_t>(j)] = static_cast<std::size_t>(
          std::lower_bound(members_.begin() + static_cast<std::ptrdiff_t>(lo),
                           members_.begin() + static_cast<std::ptrdiff_t>(hi), lo_val, id_less) -
          members_.begin());
    }
  }

  const auto capped = [this](std::size_t cnt) {
    return std::min<std::uint64_t>(cnt, static_cast<std::uint64_t>(config_.k));
  };
  std::uint64_t sum_all = 0;
  for (int j = 0; j < radix; ++j) {
    sum_all +=
        capped(bounds[static_cast<std::size_t>(j) + 1] - bounds[static_cast<std::size_t>(j)]);
  }
  for (int j = 0; j < radix; ++j) {
    const std::size_t clo = bounds[static_cast<std::size_t>(j)];
    const std::size_t chi = bounds[static_cast<std::size_t>(j) + 1];
    if (clo == chi) continue;
    // Row `depth` perfect count for every node in this child: all siblings,
    // capped at k per cell.
    compute_perfect_prefix(clo, chi, depth + 1, acc + sum_all - capped(chi - clo));
  }
}

PerfectTables::LeafSpan PerfectTables::leaf_span(std::size_t rank) const {
  const std::size_t n = members_.size();
  LeafSpan span;
  if (n <= 1) return span;
  const NodeId p = members_[rank].id;
  // Count members classified as successors: ids in (p, p + 2^63] on the ring
  // (the tie at exactly half the ring counts as successor).
  const NodeId hi_val = p + kHalfRing;  // wraps
  const auto upper_rank = [this](NodeId v) {
    return static_cast<std::size_t>(
        std::upper_bound(members_.begin(), members_.end(), v,
                         [](NodeId id, const NodeDescriptor& d) { return id < d.id; }) -
        members_.begin());
  };
  std::size_t ns;
  if (hi_val > p) {
    ns = upper_rank(hi_val) - (rank + 1);
  } else {
    ns = (n - (rank + 1)) + upper_rank(hi_val);
  }
  const std::size_t np = n - 1 - ns;

  const std::size_t half = config_.c / 2;
  std::size_t take_s = std::min(ns, half);
  std::size_t take_p = std::min(np, half);
  std::size_t spare = config_.c - take_s - take_p;
  const std::size_t extra_s = std::min(ns - take_s, spare);
  take_s += extra_s;
  spare -= extra_s;
  take_p += std::min(np - take_p, spare);
  span.succ_count = static_cast<std::uint32_t>(take_s);
  span.pred_count = static_cast<std::uint32_t>(take_p);
  return span;
}

std::vector<NodeId> PerfectTables::perfect_leaf_ids(std::size_t rank) const {
  const std::size_t n = members_.size();
  const LeafSpan span = leaf_span(rank);
  std::vector<NodeId> out;
  out.reserve(span.succ_count + span.pred_count);
  for (std::uint32_t s = 1; s <= span.succ_count; ++s) out.push_back(members_[(rank + s) % n].id);
  for (std::uint32_t s = 1; s <= span.pred_count; ++s) {
    out.push_back(members_[(rank + n - s) % n].id);
  }
  return out;
}

std::uint64_t PerfectTables::perfect_prefix_total(std::size_t rank) const {
  return perfect_prefix_.at(rank);
}

std::uint64_t PerfectTables::perfect_prefix_sum() const {
  std::uint64_t sum = 0;
  for (const auto v : perfect_prefix_) sum += v;
  return sum;
}

NodeDescriptor PerfectTables::owner_of(NodeId key) const {
  BSVC_CHECK(!members_.empty());
  const std::size_t n = members_.size();
  const auto it = std::lower_bound(members_.begin(), members_.end(), key, id_less);
  const std::size_t up = static_cast<std::size_t>(it - members_.begin()) % n;  // first >= key, wraps
  const std::size_t down = (up + n - 1) % n;
  const NodeDescriptor& a = members_[up];
  const NodeDescriptor& b = members_[down];
  return closer_on_ring(key, a.id, b.id) ? a : b;
}

}  // namespace bsvc
