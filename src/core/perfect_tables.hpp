// Ground-truth structure computations over an explicit membership list.
//
// Given the set of node descriptors that currently exist, this class
// answers: what is the perfect leaf set of each member, how many perfect
// prefix-table entries does each member have, and which member owns a key.
// ConvergenceOracle layers engine access on top of this; the sequential-join
// baseline and tests use it directly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "id/descriptor.hpp"

namespace bsvc {

class PerfectTables {
 public:
  /// Directional sizes of a member's perfect leaf set.
  struct LeafSpan {
    std::uint32_t succ_count = 0;  // ranks rank+1 .. rank+succ_count
    std::uint32_t pred_count = 0;  // ranks rank-1 .. rank-pred_count
  };

  /// `members` need not be sorted; IDs must be unique.
  PerfectTables(std::vector<NodeDescriptor> members, const BootstrapConfig& config);

  /// Membership sorted by ID.
  const std::vector<NodeDescriptor>& sorted_members() const { return members_; }
  std::size_t size() const { return members_.size(); }

  /// Rank (position in the ID-sorted membership) of a member ID.
  std::size_t rank_of_id(NodeId id) const;

  /// Perfect leaf-set span of the member at `rank`.
  LeafSpan leaf_span(std::size_t rank) const;

  /// Perfect leaf-set IDs (successors ascending, then predecessors).
  std::vector<NodeId> perfect_leaf_ids(std::size_t rank) const;

  /// Perfect prefix-table entry total of the member at `rank`.
  std::uint64_t perfect_prefix_total(std::size_t rank) const;

  /// Sum of perfect prefix totals over all members.
  std::uint64_t perfect_prefix_sum() const;

  /// The member responsible for `key`: numerically closest on the ring,
  /// successor side winning ties.
  NodeDescriptor owner_of(NodeId key) const;

  const BootstrapConfig& config() const { return config_; }

 private:
  void compute_perfect_prefix(std::size_t lo, std::size_t hi, int depth, std::uint64_t acc);

  std::vector<NodeDescriptor> members_;  // sorted by id
  BootstrapConfig config_;
  std::vector<std::uint64_t> perfect_prefix_;  // by rank
};

}  // namespace bsvc
