#include "core/prefix_table.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bsvc {

namespace {
bool id_less(const NodeDescriptor& d, NodeId id) { return d.id < id; }
}  // namespace

PrefixTable::PrefixTable(NodeId own, DigitConfig digits, int k)
    : own_(own), digits_(digits), k_(k), rows_(digits.num_digits<NodeId>()) {
  digits_.validate<NodeId>();
  BSVC_CHECK(k_ >= 1);
}

PrefixTable::Cell PrefixTable::cell_of(NodeId id) const {
  BSVC_CHECK_MSG(id != own_, "cell_of is undefined for the own ID");
  const int row = common_prefix_digits(own_, id, digits_);
  return {row, digit(id, row, digits_)};
}

bool PrefixTable::insert(const NodeDescriptor& d) {
  if (d.id == own_ || d.addr == kNullAddress) return false;
  const Cell c = cell_of(d.id);
  const auto [first, last] = cell_range(c.row, c.col);
  if (last - first >= static_cast<std::size_t>(k_)) return false;
  // Position within the (sorted) cell range; also detects duplicates.
  const auto it = std::lower_bound(entries_.begin() + static_cast<std::ptrdiff_t>(first),
                                   entries_.begin() + static_cast<std::ptrdiff_t>(last), d.id,
                                   id_less);
  if (it != entries_.begin() + static_cast<std::ptrdiff_t>(last) && it->id == d.id) return false;
  entries_.insert(it, d);
  return true;
}

std::size_t PrefixTable::insert_all(const DescriptorList& ds) {
  std::size_t added = 0;
  for (const auto& d : ds) {
    if (insert(d)) ++added;
  }
  return added;
}

bool PrefixTable::remove(NodeId id) {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), id, id_less);
  if (it == entries_.end() || it->id != id) return false;
  entries_.erase(it);
  return true;
}

std::size_t PrefixTable::cell_count(int row, int col) const {
  const auto [first, last] = cell_range(row, col);
  return last - first;
}

DescriptorList PrefixTable::cell(int row, int col) const {
  const auto [first, last] = cell_range(row, col);
  return DescriptorList(entries_.begin() + static_cast<std::ptrdiff_t>(first),
                        entries_.begin() + static_cast<std::ptrdiff_t>(last));
}

bool PrefixTable::contains(NodeId id) const {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), id, id_less);
  return it != entries_.end() && it->id == id;
}

std::pair<std::size_t, std::size_t> PrefixTable::cell_range(int row, int col) const {
  BSVC_CHECK(row >= 0 && row < rows_);
  BSVC_CHECK(col >= 0 && col < digits_.radix());
  // (row, own digit) is not a cell: that interval belongs to deeper rows.
  BSVC_CHECK_MSG(col != digit(own_, row, digits_), "queried the own-digit column");
  const NodeId lo = prefix_range_lo(own_, row, col, digits_);
  const NodeId hi = prefix_range_hi(own_, row, col, digits_);
  const auto first = std::lower_bound(entries_.begin(), entries_.end(), lo, id_less);
  // hi == 0 means the range runs to the top of the ID space.
  const auto last = hi == 0 ? entries_.end()
                            : std::lower_bound(first, entries_.end(), hi, id_less);
  return {static_cast<std::size_t>(first - entries_.begin()),
          static_cast<std::size_t>(last - entries_.begin())};
}

}  // namespace bsvc
