#include "core/prefix_table.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bsvc {

PrefixTable::PrefixTable(NodeId own, DigitConfig digits, int k)
    : own_(own),
      digits_(digits),
      k_(k),
      rows_(digits.num_digits<NodeId>()),
      arena_(&own_arena_) {
  digits_.validate<NodeId>();
  BSVC_CHECK(k_ >= 1);
}

PrefixTable::PrefixTable(NodeId own, DigitConfig digits, int k, DescriptorArena* arena)
    : own_(own),
      digits_(digits),
      k_(k),
      rows_(digits.num_digits<NodeId>()),
      arena_(arena) {
  digits_.validate<NodeId>();
  BSVC_CHECK(k_ >= 1);
  BSVC_CHECK(arena != nullptr);
}

void PrefixTable::copy_from(const PrefixTable& other) {
  own_ = other.own_;
  digits_ = other.digits_;
  k_ = other.k_;
  rows_ = other.rows_;
  size_ = other.size_;
  std::copy_n(other.ids(), other.size_, ids());
  std::copy_n(other.addrs(), other.size_, addrs());
}

PrefixTable::PrefixTable(const PrefixTable& other)
    : own_(other.own_),
      digits_(other.digits_),
      k_(other.k_),
      rows_(other.rows_),
      arena_(&own_arena_),
      block_(arena_->allocate(other.block_.cap)) {
  copy_from(other);
}

PrefixTable& PrefixTable::operator=(const PrefixTable& other) {
  if (this == &other) return *this;
  // Copies always land in the private arena (see LeafSet::operator=).
  own_arena_.reset();
  arena_ = &own_arena_;
  block_ = arena_->allocate(other.block_.cap);
  copy_from(other);
  return *this;
}

PrefixTable::PrefixTable(PrefixTable&& other) noexcept
    : own_(other.own_),
      digits_(other.digits_),
      k_(other.k_),
      rows_(other.rows_),
      own_arena_(std::move(other.own_arena_)),
      arena_(other.arena_ == &other.own_arena_ ? &own_arena_ : other.arena_),
      block_(other.block_),
      size_(other.size_) {
  other.arena_ = &other.own_arena_;
  other.block_ = {};
  other.size_ = 0;
}

PrefixTable& PrefixTable::operator=(PrefixTable&& other) noexcept {
  if (this == &other) return *this;
  own_ = other.own_;
  digits_ = other.digits_;
  k_ = other.k_;
  rows_ = other.rows_;
  own_arena_ = std::move(other.own_arena_);
  arena_ = other.arena_ == &other.own_arena_ ? &own_arena_ : other.arena_;
  block_ = other.block_;
  size_ = other.size_;
  other.arena_ = &other.own_arena_;
  other.block_ = {};
  other.size_ = 0;
  return *this;
}

PrefixTable::Cell PrefixTable::cell_of(NodeId id) const {
  BSVC_CHECK_MSG(id != own_, "cell_of is undefined for the own ID");
  const int row = common_prefix_digits(own_, id, digits_);
  return {row, digit(id, row, digits_)};
}

void PrefixTable::ensure_capacity(std::uint32_t need) {
  if (need <= block_.cap) return;
  std::uint32_t new_cap = block_.cap == 0 ? 16 : block_.cap * 2;
  while (new_cap < need) new_cap *= 2;
  arena_->grow(block_, new_cap, size_);
}

bool PrefixTable::insert(const NodeDescriptor& d) {
  if (d.id == own_ || d.addr == kNullAddress) return false;
  const Cell c = cell_of(d.id);
  const auto [first, last] = cell_range(c.row, c.col);
  if (last - first >= static_cast<std::size_t>(k_)) return false;
  // Position within the (sorted) cell range; also detects duplicates.
  const NodeId* ids_p = ids();
  const std::size_t pos = static_cast<std::size_t>(
      std::lower_bound(ids_p + first, ids_p + last, d.id) - ids_p);
  if (pos != last && ids_p[pos] == d.id) return false;
  ensure_capacity(size_ + 1);
  NodeId* mut_ids = ids();
  Address* mut_addrs = addrs();
  std::copy_backward(mut_ids + pos, mut_ids + size_, mut_ids + size_ + 1);
  std::copy_backward(mut_addrs + pos, mut_addrs + size_, mut_addrs + size_ + 1);
  mut_ids[pos] = d.id;
  mut_addrs[pos] = d.addr;
  ++size_;
  return true;
}

std::size_t PrefixTable::insert_all(const DescriptorList& ds) {
  std::size_t added = 0;
  for (const auto& d : ds) {
    if (insert(d)) ++added;
  }
  return added;
}

bool PrefixTable::remove(NodeId id) {
  NodeId* ids_p = ids();
  const std::size_t pos =
      static_cast<std::size_t>(std::lower_bound(ids_p, ids_p + size_, id) - ids_p);
  if (pos == size_ || ids_p[pos] != id) return false;
  Address* addrs_p = addrs();
  std::copy(ids_p + pos + 1, ids_p + size_, ids_p + pos);
  std::copy(addrs_p + pos + 1, addrs_p + size_, addrs_p + pos);
  --size_;
  return true;
}

std::size_t PrefixTable::cell_count(int row, int col) const {
  const auto [first, last] = cell_range(row, col);
  return last - first;
}

DescriptorList PrefixTable::cell(int row, int col) const {
  const auto [first, last] = cell_range(row, col);
  DescriptorList out;
  out.reserve(last - first);
  const NodeId* ids_p = ids();
  const Address* addrs_p = addrs();
  for (std::size_t i = first; i < last; ++i) out.push_back({ids_p[i], addrs_p[i]});
  return out;
}

bool PrefixTable::contains(NodeId id) const {
  const NodeId* ids_p = ids();
  const std::size_t pos =
      static_cast<std::size_t>(std::lower_bound(ids_p, ids_p + size_, id) - ids_p);
  return pos != size_ && ids_p[pos] == id;
}

std::pair<std::size_t, std::size_t> PrefixTable::cell_range(int row, int col) const {
  BSVC_CHECK(row >= 0 && row < rows_);
  BSVC_CHECK(col >= 0 && col < digits_.radix());
  // (row, own digit) is not a cell: that interval belongs to deeper rows.
  BSVC_CHECK_MSG(col != digit(own_, row, digits_), "queried the own-digit column");
  const NodeId lo = prefix_range_lo(own_, row, col, digits_);
  const NodeId hi = prefix_range_hi(own_, row, col, digits_);
  const NodeId* ids_p = ids();
  const std::size_t first =
      static_cast<std::size_t>(std::lower_bound(ids_p, ids_p + size_, lo) - ids_p);
  // hi == 0 means the range runs to the top of the ID space.
  const std::size_t last =
      hi == 0 ? size_
              : static_cast<std::size_t>(
                    std::lower_bound(ids_p + first, ids_p + size_, hi) - ids_p);
  return {first, last};
}

}  // namespace bsvc
