// The prefix table (paper §4).
//
// For every pair (i, j) — i the length in digits of the longest common
// prefix with the own ID, j the first differing digit — the table holds up
// to k descriptors. Cell (i, j) therefore covers exactly the IDs in the
// half-open interval [prefix_range_lo, prefix_range_hi): the first i digits
// equal the own ID's, digit i equals j (≠ own digit i). Those intervals are
// disjoint, so storing all entries in one ID-sorted vector keeps every cell
// contiguous; cell lookups are two binary searches and memory stays compact
// (12 bytes/entry), which is what makes 2^18-node simulations affordable.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "id/descriptor.hpp"
#include "id/digits.hpp"

namespace bsvc {

class PrefixTable {
 public:
  /// Coordinates of a cell.
  struct Cell {
    int row = 0;  // common prefix length i
    int col = 0;  // first differing digit j
  };

  PrefixTable(NodeId own, DigitConfig digits, int k);

  /// The cell a foreign ID falls into. Precondition: id != own ID.
  Cell cell_of(NodeId id) const;

  /// UPDATEPREFIXTABLE for one descriptor: fills a missing entry if the cell
  /// has free capacity and the ID is not already present. Returns whether
  /// the table changed. Own-ID and null-address descriptors are ignored.
  bool insert(const NodeDescriptor& d);

  /// Bulk UPDATEPREFIXTABLE. Returns the number of entries added.
  std::size_t insert_all(const DescriptorList& ds);

  /// Removes an entry by ID (dead-peer cleanup). Returns whether present.
  bool remove(NodeId id);

  /// Number of entries currently in cell (row, col).
  std::size_t cell_count(int row, int col) const;

  /// Copies the entries of one cell (at most k).
  DescriptorList cell(int row, int col) const;

  /// All entries, sorted by ID. This is the view CREATEMESSAGE unions into
  /// its candidate set.
  const std::vector<NodeDescriptor>& entries() const { return entries_; }

  /// Total number of filled entries.
  std::size_t filled() const { return entries_.size(); }

  bool contains(NodeId id) const;

  NodeId own_id() const { return own_; }
  const DigitConfig& digits() const { return digits_; }
  int k() const { return k_; }
  int rows() const { return rows_; }

 private:
  /// [first, last) iterator range of a cell in entries_.
  std::pair<std::size_t, std::size_t> cell_range(int row, int col) const;

  NodeId own_;
  DigitConfig digits_;
  int k_;
  int rows_;
  std::vector<NodeDescriptor> entries_;  // sorted by id
};

}  // namespace bsvc
