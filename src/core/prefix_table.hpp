// The prefix table (paper §4).
//
// For every pair (i, j) — i the length in digits of the longest common
// prefix with the own ID, j the first differing digit — the table holds up
// to k descriptors. Cell (i, j) therefore covers exactly the IDs in the
// half-open interval [prefix_range_lo, prefix_range_hi): the first i digits
// equal the own ID's, digit i equals j (≠ own digit i). Those intervals are
// disjoint, so storing all entries in one ID-sorted run keeps every cell
// contiguous; cell lookups are two binary searches and memory stays compact.
//
// Storage is struct-of-arrays in a DescriptorArena block: the binary
// searches walk a dense NodeId lane (8 bytes/element, no interleaved
// addresses), and in steady state an insert is a memmove within the block —
// growth doubles the block at the arena tip without touching the allocator
// once the slabs are warm. entries() hands out a DescriptorView; views are
// invalidated by any mutation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "core/config.hpp"
#include "id/descriptor.hpp"
#include "id/digits.hpp"

namespace bsvc {

class PrefixTable {
 public:
  /// Coordinates of a cell.
  struct Cell {
    int row = 0;  // common prefix length i
    int col = 0;  // first differing digit j
  };

  /// Self-backed: entries live in a private arena.
  PrefixTable(NodeId own, DigitConfig digits, int k);
  /// Entries live in `arena` (not owned; must outlive the table).
  PrefixTable(NodeId own, DigitConfig digits, int k, DescriptorArena* arena);

  PrefixTable(const PrefixTable& other);
  PrefixTable& operator=(const PrefixTable& other);
  PrefixTable(PrefixTable&& other) noexcept;
  PrefixTable& operator=(PrefixTable&& other) noexcept;
  ~PrefixTable() = default;

  /// The cell a foreign ID falls into. Precondition: id != own ID.
  Cell cell_of(NodeId id) const;

  /// UPDATEPREFIXTABLE for one descriptor: fills a missing entry if the cell
  /// has free capacity and the ID is not already present. Returns whether
  /// the table changed. Own-ID and null-address descriptors are ignored.
  bool insert(const NodeDescriptor& d);

  /// Bulk UPDATEPREFIXTABLE. Returns the number of entries added.
  std::size_t insert_all(const DescriptorList& ds);

  /// Removes an entry by ID (dead-peer cleanup). Returns whether present.
  bool remove(NodeId id);

  /// Number of entries currently in cell (row, col).
  std::size_t cell_count(int row, int col) const;

  /// Copies the entries of one cell (at most k).
  DescriptorList cell(int row, int col) const;

  /// All entries, sorted by ID. This is the view CREATEMESSAGE unions into
  /// its candidate set.
  DescriptorView entries() const { return {ids(), addrs(), size_}; }

  /// Total number of filled entries.
  std::size_t filled() const { return size_; }

  bool contains(NodeId id) const;

  NodeId own_id() const { return own_; }
  const DigitConfig& digits() const { return digits_; }
  int k() const { return k_; }
  int rows() const { return rows_; }

 private:
  /// [first, last) index range of a cell in the sorted run.
  std::pair<std::size_t, std::size_t> cell_range(int row, int col) const;
  void ensure_capacity(std::uint32_t need);
  void copy_from(const PrefixTable& other);

  const NodeId* ids() const { return arena_->ids(block_); }
  const Address* addrs() const { return arena_->addrs(block_); }
  NodeId* ids() { return arena_->ids(block_); }
  Address* addrs() { return arena_->addrs(block_); }

  NodeId own_;
  DigitConfig digits_;
  int k_;
  int rows_;
  DescriptorArena own_arena_;  // backs the block when no external arena given
  DescriptorArena* arena_;
  DescriptorArena::Block block_;  // sorted-by-id run of size_ entries
  std::uint32_t size_ = 0;
};

}  // namespace bsvc
