#include "fault/chaos.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace bsvc {

namespace {

/// A window of `min_cycles`..`max_cycles` deltas placed uniformly inside
/// [epoch, horizon].
TimeWindow draw_window(Rng& rng, const ChaosGenConfig& gen, std::uint64_t min_cycles,
                       std::uint64_t max_cycles) {
  const SimTime span = gen.horizon - gen.epoch;
  SimTime len = (min_cycles + rng.below(max_cycles - min_cycles + 1)) * gen.delta;
  if (len >= span) len = span - 1;
  const SimTime start = gen.epoch + rng.below(span - len);
  return TimeWindow{start, start + len};
}

void append(std::string& out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

}  // namespace

ChaosCase make_chaos_case(const ChaosGenConfig& gen, std::uint64_t suite_seed,
                          std::size_t index) {
  BSVC_CHECK(gen.horizon > gen.epoch + 4 * gen.delta);
  BSVC_CHECK(gen.n >= 8);
  // Distinct stream per (suite, case): the multiplier is odd so index + 1
  // never collapses two cases onto one seed.
  Rng rng(suite_seed ^ (0xC2B2AE3D27D4EB4Full * (index + 1)));

  ChaosCase c;
  c.index = index;
  c.seed = suite_seed * 1000003ull + index;
  c.plan.seed = rng.next_u64();

  if (rng.chance(0.55)) {
    PartitionSpec p;
    p.window = draw_window(rng, gen, 3, 8);
    if (rng.chance(0.30)) {
      p.kind = PartitionSpec::Kind::Modulo;
      p.value = static_cast<std::uint32_t>(2 + rng.below(3));
    } else {
      p.kind = PartitionSpec::Kind::Cut;
      p.value = static_cast<std::uint32_t>(gen.n / 4 + rng.below(gen.n / 2));
    }
    c.plan.partitions.push_back(p);
  }
  if (rng.chance(0.60)) {
    LinkLossSpec l;
    l.window = draw_window(rng, gen, 4, 10);
    l.drop_probability = 0.05 + 0.30 * rng.uniform01();
    c.plan.link_loss.push_back(l);
  }
  if (rng.chance(0.50)) {
    LatencySpec l;
    l.window = draw_window(rng, gen, 3, 8);
    if (rng.chance(0.50)) {
      l.mode = LatencySpec::Mode::Spike;
      l.add = gen.delta / 10 + rng.below(gen.delta / 2);
    } else {
      l.mode = LatencySpec::Mode::Pareto;
      l.scale = 20.0 + static_cast<double>(rng.below(60));
      l.alpha = 1.5 + rng.uniform01();
      l.cap = 4 * gen.delta;
    }
    c.plan.latency.push_back(l);
  }
  if (rng.chance(0.30)) {
    DuplicateSpec d;
    d.window = draw_window(rng, gen, 3, 8);
    d.probability = 0.05 + 0.25 * rng.uniform01();
    d.jitter = 20 + rng.below(180);
    c.plan.duplicates.push_back(d);
  }
  if (rng.chance(0.30)) {
    ReorderSpec r;
    r.window = draw_window(rng, gen, 3, 8);
    r.probability = 0.05 + 0.25 * rng.uniform01();
    r.max_delay = 50 + rng.below(150);
    c.plan.reorders.push_back(r);
  }
  if (rng.chance(0.50)) {
    CrashSpec cr;
    cr.window = draw_window(rng, gen, 2, 6);
    cr.fraction = 0.05 + 0.20 * rng.uniform01();
    c.plan.crashes.push_back(cr);
  }
  if (gen.byzantine_max_fraction > 0.0 && rng.chance(0.25)) {
    c.byzantine_fraction = gen.byzantine_max_fraction * (0.3 + 0.7 * rng.uniform01());
    c.adversary_seed = rng.next_u64();
    c.byz_poison = rng.chance(0.70);
    c.byz_eclipse = !c.byz_poison || rng.chance(0.30);
    c.byz_suppress = rng.chance(0.50) ? 0.3 * rng.uniform01() : 0.0;
  }
  // Adversarial cases always run hardened: the unhardened protocol is
  // eclipsable forever by design (the adversary bench demonstrates exactly
  // that), so demanding re-convergence from it would fuzz a known
  // vulnerability, not hunt regressions. Benign cases cover harden=off.
  c.harden = c.has_adversary() || rng.chance(0.50);
  c.retries = rng.chance(0.50);
  return c;
}

std::string ChaosCase::describe() const {
  std::string s;
  if (!plan.partitions.empty()) {
    s += plan.partitions[0].kind == PartitionSpec::Kind::Cut ? "partition=cut "
                                                             : "partition=mod ";
  }
  if (!plan.link_loss.empty()) append(s, "loss=%.2f ", plan.link_loss[0].drop_probability);
  if (!plan.latency.empty()) {
    s += plan.latency[0].mode == LatencySpec::Mode::Spike ? "lat=spike " : "lat=pareto ";
  }
  if (!plan.duplicates.empty()) append(s, "dup=%.2f ", plan.duplicates[0].probability);
  if (!plan.reorders.empty()) append(s, "reorder=%.2f ", plan.reorders[0].probability);
  if (!plan.crashes.empty()) append(s, "crash=%.2f ", plan.crashes[0].fraction);
  if (has_adversary()) append(s, "byz=%.3f ", byzantine_fraction);
  s += harden ? "harden=1 " : "harden=0 ";
  s += retries ? "retries=1" : "retries=0";
  return s;
}

std::vector<std::string> check_chaos_invariants(const ChaosObservation& o) {
  std::vector<std::string> bad;
  auto fail = [&bad](std::string msg) { bad.push_back(std::move(msg)); };

  // 1. Message conservation: every copy the transport accounted as an
  // outcome traces back to a send or a fault-injected duplicate.
  if (o.delivered + o.dropped + o.to_dead > o.sent + o.duplicated) {
    fail("message conservation violated: delivered " + std::to_string(o.delivered) +
         " + dropped " + std::to_string(o.dropped) + " + to_dead " +
         std::to_string(o.to_dead) + " > sent " + std::to_string(o.sent) +
         " + duplicated " + std::to_string(o.duplicated));
  }

  // 2. Workload ledger: every issued request resolved exactly one way, and
  // nothing is still pending after the quiesce tail.
  if (o.wl_issued != o.wl_answered + o.wl_timeouts + o.wl_unroutable) {
    fail("workload ledger unbalanced: issued " + std::to_string(o.wl_issued) +
         " != answered " + std::to_string(o.wl_answered) + " + timeouts " +
         std::to_string(o.wl_timeouts) + " + unroutable " +
         std::to_string(o.wl_unroutable));
  }
  if (o.wl_pending != 0) {
    fail("requests leaked: " + std::to_string(o.wl_pending) +
         " still pending after quiesce");
  }

  // 3. Span ledger.
  if (o.span_stray != 0) fail("stray span closes: " + std::to_string(o.span_stray));
  if (o.span_overflow != 0) {
    fail("span overflow drops: " + std::to_string(o.span_overflow));
  }
  if (o.span_closed > o.span_opened ||
      o.span_in_flight != o.span_opened - o.span_closed) {
    fail("span ledger unbalanced: opened " + std::to_string(o.span_opened) +
         ", closed " + std::to_string(o.span_closed) + ", in_flight " +
         std::to_string(o.span_in_flight));
  }

  // 4. Liveness: every crash window has healed and nobody is eclipsed
  // forever — an alive node that never activated, or whose leaf set is
  // empty after the recovery tail, is permanently cut off.
  if (o.alive != o.n) {
    fail("crash windows did not heal: " + std::to_string(o.alive) + "/" +
         std::to_string(o.n) + " alive");
  }
  if (o.inactive_alive != 0) {
    fail("eclipsed forever: " + std::to_string(o.inactive_alive) +
         " alive nodes never activated");
  }
  if (o.empty_leaf_alive != 0) {
    fail("eclipsed forever: " + std::to_string(o.empty_leaf_alive) +
         " alive nodes hold an empty leaf set");
  }

  // 5. Re-convergence, loosely: after the recovery tail the overlay must be
  // substantially rebuilt whatever the faults were (a strict bound belongs
  // to scenario-specific tests, not a fuzzer oracle). Hardened quarantine
  // repairs leaf sets slowly after compound partition+crash+byzantine
  // windows — prefix tables recover fully while leaf sets drain at a few
  // entries per cycle — so the bound only rejects overlays that stayed
  // mostly broken.
  if (o.missing_leaf_fraction > 0.65) {
    std::string msg = "no re-convergence: missing leaf fraction ";
    append(msg, "%.4f", o.missing_leaf_fraction);
    fail(std::move(msg));
  }
  return bad;
}

std::uint64_t chaos_digest(const ChaosObservation& o) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 0x100000001b3ull;
    }
  };
  mix(o.sent);
  mix(o.dropped);
  mix(o.to_dead);
  mix(o.delivered);
  mix(o.duplicated);
  mix(o.wl_issued);
  mix(o.wl_answered);
  mix(o.wl_timeouts);
  mix(o.wl_unroutable);
  mix(o.wl_pending);
  mix(o.span_opened);
  mix(o.span_closed);
  mix(o.span_in_flight);
  mix(o.n);
  mix(o.alive);
  mix(o.inactive_alive);
  mix(o.empty_leaf_alive);
  // Quantized so the digest stays a pure integer function of the trajectory.
  mix(static_cast<std::uint64_t>(o.missing_leaf_fraction * 1e9));
  return h;
}

}  // namespace bsvc
