// Chaos fuzzing for the fault layer: a seeded generator of randomized
// composite fault scenarios — partitions x link loss x latency spikes /
// heavy tails x duplication x reordering x crash-recover windows, with an
// optional Byzantine layer — plus the invariant oracles a soak harness
// checks after every run.
//
// A ChaosCase is plain data and a pure function of (suite seed, case index):
// the same pair regenerates the same case on any machine, so a soak failure
// reported as "seed S case I" reproduces with two numbers. The Byzantine
// half is carried as plain numbers (fraction / behavior flags) rather than
// an AdversaryPlan so this header stays inside bsvc_fault; the harness
// assembles the plan (bench/chaos_soak.cpp shows the three lines).
//
// The oracles are deliberately scenario-independent: whatever the fault mix
// did, after every window has closed and the run has quiesced, conservation
// of messages, the workload ledger, the span ledger, and basic liveness
// (nobody eclipsed forever, the overlay re-converged) must all hold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"

namespace bsvc {

/// Bounds the generator draws within: all fault windows open at or after
/// `epoch` and close by `horizon` (so the run's tail is a recovery phase the
/// re-convergence oracle can check).
struct ChaosGenConfig {
  std::size_t n = 48;
  SimTime delta = kDelta;
  SimTime epoch = 0;
  SimTime horizon = 0;
  /// Upper bound on the Byzantine fraction a case may draw (0 disables the
  /// adversary component entirely).
  double byzantine_max_fraction = 0.10;
};

/// One generated scenario. `plan` is ready to drop into
/// ExperimentConfig::fault_plan; the byz_* fields describe the adversary
/// layer for the harness to assemble; `harden`/`retries` toggle the defense
/// features so the soak covers every quadrant of the defense matrix.
struct ChaosCase {
  std::uint64_t seed = 0;  // experiment seed for this case
  std::size_t index = 0;
  FaultPlan plan;
  double byzantine_fraction = 0.0;
  std::uint64_t adversary_seed = 0;
  bool byz_poison = false;
  bool byz_eclipse = false;
  double byz_suppress = 0.0;
  bool harden = false;
  bool retries = false;

  bool has_adversary() const { return byzantine_fraction > 0.0; }
  /// One-line summary ("partition=cut loss=0.21 crash=0.12 byz=0.06 ...")
  /// for failure reports.
  std::string describe() const;
};

/// Generates case `index` of suite `suite_seed`. Deterministic and
/// platform-independent; every draw comes from a private splitmix-seeded
/// stream over (suite_seed, index).
ChaosCase make_chaos_case(const ChaosGenConfig& gen, std::uint64_t suite_seed,
                          std::size_t index);

/// What the harness measured after the run + quiesce. Plain numbers so the
/// oracle is trivially testable and the digest is platform-independent.
struct ChaosObservation {
  // Engine traffic totals.
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::uint64_t to_dead = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicated = 0;
  // Workload ledger.
  std::uint64_t wl_issued = 0;
  std::uint64_t wl_answered = 0;
  std::uint64_t wl_timeouts = 0;
  std::uint64_t wl_unroutable = 0;
  std::uint64_t wl_pending = 0;  // sum of pending_requests() after quiesce
  // Span ledger.
  std::uint64_t span_opened = 0;
  std::uint64_t span_closed = 0;
  std::uint64_t span_in_flight = 0;
  std::uint64_t span_stray = 0;
  std::uint64_t span_overflow = 0;
  // Population and convergence at the end of the recovery tail.
  std::size_t n = 0;
  std::size_t alive = 0;
  std::size_t inactive_alive = 0;    // alive nodes whose bootstrap never activated
  std::size_t empty_leaf_alive = 0;  // alive, active, but an empty leaf set
  double missing_leaf_fraction = 0.0;
};

/// Checks every invariant; returns one message per violation (empty = pass):
///   1. message conservation: delivered + dropped + to_dead <= sent + duplicated
///   2. workload ledger balances and nothing is left pending after quiesce
///   3. span ledger balances, no stray closes, no overflow drops
///   4. liveness: every crash window healed (alive == n), nobody is
///      eclipsed forever (no inactive or empty-leaf-set alive node)
///   5. re-convergence: missing-leaf fraction back under a loose bound
std::vector<std::string> check_chaos_invariants(const ChaosObservation& o);

/// Order-fixed FNV-1a digest over the observation: byte-identical across
/// --shards K iff the trajectories match, which is what the soak's replay
/// subset asserts.
std::uint64_t chaos_digest(const ChaosObservation& o);

}  // namespace bsvc
