#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "sim/engine.hpp"

namespace bsvc {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  BSVC_CHECK_MSG(plan_.validate().empty(), "invalid FaultPlan");
  for (const CrashSpec& c : plan_.crashes) {
    if (c.addr != kNullAddress) add_dark_window(c.addr, c.window);
  }
}

void FaultInjector::add_dark_window(Address addr, TimeWindow window) {
  dark_[addr].push_back(window);
}

SimTime FaultInjector::dark_until(SimTime now, Address addr) const {
  const auto it = dark_.find(addr);
  if (it == dark_.end()) return 0;
  for (const TimeWindow& w : it->second) {
    if (w.contains(now)) return w.end;
  }
  return 0;
}

FaultModel::SendDecision FaultInjector::on_send(SimTime now, Address from, Address to) {
  return on_send_rng(now, from, to, rng_);
}

FaultModel::SendDecision FaultInjector::on_send_rng(SimTime now, Address from, Address to,
                                                    Rng& rng) {
  SendDecision d;
  for (const PartitionSpec& p : plan_.partitions) {
    if (p.window.contains(now) && p.group_of(from) != p.group_of(to)) {
      d.drop = true;
      if (partition_dropped_ != nullptr) partition_dropped_->inc();
      return d;
    }
  }
  for (const LinkLossSpec& l : plan_.link_loss) {
    if (!l.window.contains(now)) continue;
    if (l.from != kNullAddress && l.from != from) continue;
    if (l.to != kNullAddress && l.to != to) continue;
    if (rng.chance(l.drop_probability)) {
      d.drop = true;
      if (link_dropped_ != nullptr) link_dropped_->inc();
      return d;
    }
  }
  for (const LatencySpec& l : plan_.latency) {
    if (!l.window.contains(now)) continue;
    if (l.mode == LatencySpec::Mode::Spike) {
      d.extra_delay += l.add;
    } else {
      // Pareto Type I: minimum `scale`, shape `alpha`; u in (0, 1].
      const double u = 1.0 - rng.uniform01();
      const double x = l.scale / std::pow(u, 1.0 / l.alpha);
      d.replace_latency = true;
      d.latency = std::min(static_cast<SimTime>(x), l.effective_cap());
    }
  }
  for (const DuplicateSpec& dup : plan_.duplicates) {
    if (dup.window.contains(now) && rng.chance(dup.probability)) {
      d.duplicate = true;
      d.duplicate_delay = rng.below(dup.jitter + 1);
      break;  // at most one extra copy per message
    }
  }
  for (const ReorderSpec& r : plan_.reorders) {
    if (r.window.contains(now) && rng.chance(r.probability)) {
      d.extra_delay += rng.below(r.max_delay + 1);
      if (reordered_ != nullptr) reordered_->inc();
    }
  }
  return d;
}

void FaultInjector::schedule_crash_calls(Engine& engine) {
  for (const CrashSpec& c : plan_.crashes) {
    const TimeWindow w = c.window;
    BSVC_CHECK_MSG(w.start >= engine.now(), "crash window starts in the past");
    if (c.addr != kNullAddress) {
      engine.schedule_call(w.start - engine.now(), [this, w](Engine&) {
        crashes_->inc();
        dark_nodes_->add(1.0);
      });
      engine.schedule_call(w.end - engine.now(), [this, w](Engine&) {
        recoveries_->inc();
        dark_nodes_->add(-1.0);
        dark_time_->add(static_cast<double>(w.end - w.start));
      });
      continue;
    }
    // Fractional crash: victims are picked from the nodes alive at
    // window.start, using the injector's rng — node/engine streams stay
    // untouched.
    const double fraction = c.fraction;
    engine.schedule_call(w.start - engine.now(), [this, w, fraction](Engine& e) {
      const auto alive = e.alive_addresses();
      const auto k = static_cast<std::uint32_t>(
          fraction * static_cast<double>(alive.size()));
      if (k == 0) return;
      const auto picks =
          rng_.distinct_indices(k, static_cast<std::uint32_t>(alive.size()));
      for (const std::uint32_t i : picks) add_dark_window(alive[i], w);
      crashes_->add(k);
      dark_nodes_->add(static_cast<double>(k));
      e.schedule_call(w.end - e.now(), [this, w, k](Engine&) {
        recoveries_->add(k);
        dark_nodes_->add(-static_cast<double>(k));
        for (std::uint32_t i = 0; i < k; ++i) {
          dark_time_->add(static_cast<double>(w.end - w.start));
        }
      });
    });
  }
}

void FaultInjector::schedule_partition_gauge(Engine& engine) {
  for (const PartitionSpec& p : plan_.partitions) {
    BSVC_CHECK_MSG(p.window.start >= engine.now(), "partition window starts in the past");
    engine.schedule_call(p.window.start - engine.now(),
                         [this](Engine&) { partition_active_->add(1.0); });
    engine.schedule_call(p.window.end - engine.now(),
                         [this](Engine&) { partition_active_->add(-1.0); });
  }
}

void FaultInjector::install(Engine& engine) {
  obs::MetricsRegistry& m = engine.metrics();
  partition_dropped_ = &m.counter("fault.partition.dropped");
  link_dropped_ = &m.counter("fault.link.dropped");
  reordered_ = &m.counter("msg.reordered");
  crashes_ = &m.counter("fault.crash");
  recoveries_ = &m.counter("fault.recover");
  partition_active_ = &m.gauge("fault.partition.active");
  dark_nodes_ = &m.gauge("fault.dark.nodes");
  // Dark spans in ticks; kDelta = one cycle, so [0, 64 cycles) in 64 buckets.
  dark_time_ = &m.histogram("fault.dark_time", 0.0, 64.0 * kDelta, 64);
  schedule_partition_gauge(engine);
  schedule_crash_calls(engine);
  engine.set_fault_model(this);
}

std::unique_ptr<FaultInjector> install_fault_plan(Engine& engine, const FaultPlan& plan) {
  if (plan.empty()) return nullptr;
  auto injector = std::make_unique<FaultInjector>(plan);
  injector->install(engine);
  return injector;
}

}  // namespace bsvc
