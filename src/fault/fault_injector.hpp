// FaultInjector: the scripted FaultModel. Executes a FaultPlan against an
// engine — partition cuts, correlated link loss, latency spikes / Pareto
// heavy tails, duplication, reordering hold-back, and crash–recover dark
// windows. All randomness comes from a private Rng seeded by the plan, so
// installing (or editing) a plan never perturbs the engine or node RNG
// streams of the underlying trajectory.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"

namespace bsvc {

class Engine;

class FaultInjector : public FaultModel {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Binds the injector to `engine`: registers metrics, installs itself as
  /// the engine's fault model, and schedules the plan's bookkeeping calls
  /// (fractional crash victim picks, partition gauge flips, dark-time
  /// records). Call once, before running; the injector must outlive the
  /// engine's use of it.
  void install(Engine& engine);

  const FaultPlan& plan() const { return plan_; }

  // --- FaultModel ---------------------------------------------------------
  /// Serial path: draws from the injector's private plan-seeded rng_.
  SendDecision on_send(SimTime now, Address from, Address to) override;
  /// Sharded path: same verdict logic, but every draw comes from the
  /// sender's transport stream, so decisions are shard-count independent
  /// and shard workers never touch shared RNG state.
  SendDecision on_send_rng(SimTime now, Address from, Address to, Rng& rng) override;
  SimTime dark_until(SimTime now, Address addr) const override;

  /// True if `addr` is dark at `now` (convenience for tests/benches).
  bool is_dark(SimTime now, Address addr) const { return dark_until(now, addr) > now; }

 private:
  void add_dark_window(Address addr, TimeWindow window);
  void schedule_crash_calls(Engine& engine);
  void schedule_partition_gauge(Engine& engine);

  FaultPlan plan_;
  Rng rng_;
  // Resolved crash windows per node (explicit addrs at install time,
  // fractional victims picked at window.start).
  std::unordered_map<Address, std::vector<TimeWindow>> dark_;

  // Metric handles, bound at install().
  obs::Counter* partition_dropped_ = nullptr;  // fault.partition.dropped
  obs::Counter* link_dropped_ = nullptr;       // fault.link.dropped
  obs::Counter* reordered_ = nullptr;          // msg.reordered
  obs::Counter* crashes_ = nullptr;            // fault.crash
  obs::Counter* recoveries_ = nullptr;         // fault.recover
  obs::Gauge* partition_active_ = nullptr;     // fault.partition.active
  obs::Gauge* dark_nodes_ = nullptr;           // fault.dark.nodes
  obs::HistogramMetric* dark_time_ = nullptr;  // fault.dark_time (per-node ticks)
};

/// Convenience: builds an injector for `plan` and installs it into `engine`.
/// Returns nullptr (and installs nothing) when the plan is empty, so callers
/// can thread an optional plan straight through. Aborts on an invalid plan —
/// validate earlier for a recoverable error.
std::unique_ptr<FaultInjector> install_fault_plan(Engine& engine, const FaultPlan& plan);

}  // namespace bsvc
