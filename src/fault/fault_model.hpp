// The engine's fault-injection hook.
//
// A FaultModel is consulted by the transport at send time (one call per
// transmitted message) and by the dispatcher at delivery time (dark-node
// query). The engine holds a raw pointer defaulting to nullptr; with no
// model installed every hook is a single pointer test and the simulation is
// bit-identical to the pre-fault engine — the golden-replay witnesses pin
// this down. The scripted implementation (FaultInjector, driven by a
// FaultPlan) lives in fault_injector.hpp; this header is the only part of
// src/fault the engine depends on.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "id/node_id.hpp"
#include "sim/event_queue.hpp"
#include "sim/payload.hpp"

namespace bsvc {

/// Interface consulted by Engine::send_message and Engine::dispatch.
/// Implementations own their randomness (typically a dedicated Rng seeded
/// from the plan) so fault decisions never perturb the engine or node RNG
/// streams of the underlying trajectory.
class FaultModel {
 public:
  /// Verdict for one message about to enter the transport.
  struct SendDecision {
    /// Message is lost before the transport sees it (partition cut or
    /// correlated link loss). The base i.i.d. drop still applies to
    /// surviving messages on top.
    bool drop = false;
    /// Replace the base latency draw with `latency` (heavy-tail mode).
    bool replace_latency = false;
    /// Inject one extra copy of the message (delivered `duplicate_delay`
    /// ticks after the original). Requires the payload to be clonable.
    bool duplicate = false;
    SimTime latency = 0;
    /// Added on top of the (possibly replaced) latency: spikes and
    /// reordering hold-back.
    SimTime extra_delay = 0;
    SimTime duplicate_delay = 0;
  };

  virtual ~FaultModel() = default;

  /// Consulted once per send, after the link filter and before the base
  /// drop model. May mutate internal state (RNG, counters).
  virtual SendDecision on_send(SimTime now, Address from, Address to) = 0;

  /// Sharded-engine variant of on_send: every random draw must come from
  /// `rng` (the sending node's private transport stream) instead of model-
  /// owned state, so the verdict is a pure function of (trajectory, sender
  /// stream) and identical for every shard count. Plan lookups and metric
  /// counters may still be touched — both are safe from shard workers (the
  /// plan is immutable while a window runs; counters are atomic). Defaults
  /// to the serial hook for models that are never run sharded.
  virtual SendDecision on_send_rng(SimTime now, Address from, Address to, Rng& rng) {
    (void)rng;
    return on_send(now, from, to);
  }

  /// If `addr` is dark (crashed-but-recovering) at `now`, returns the
  /// recovery time (> now); otherwise 0. While dark a node keeps its state:
  /// messages to it are dropped, its timers are deferred to the recovery
  /// time, and it resumes where it left off — distinct from kill_node.
  virtual SimTime dark_until(SimTime now, Address addr) const = 0;

  /// Verdict of on_payload: what happens to the message content itself.
  struct TamperVerdict {
    enum class Action : std::uint8_t {
      Deliver,   // untouched (the default for every benign model)
      Suppress,  // silently withheld by the sender (Byzantine reply drop)
      Corrupt,   // damaged beyond parsing: counted as a msg.corrupt drop
      Replace,   // content rewritten in flight; `replacement` is delivered
    };
    Action action = Action::Deliver;
    /// Published replacement for Action::Replace. Models build a fresh
    /// payload and publish it here — the original stays untouched, so other
    /// references to it (duplicates, multicast peers) are unaffected
    /// (copy-on-write at the tamper point).
    PayloadRef replacement;
  };

  /// Consulted once per send after the on_send verdict (survivors only),
  /// letting a model act on message *content* — the hook Byzantine behavior
  /// models build on (descriptor poisoning, reply suppression, wire
  /// corruption). Benign models inherit this no-op, so the scripted
  /// FaultInjector and the null model stay bit-identical to the pre-tamper
  /// engine.
  virtual TamperVerdict on_payload(SimTime now, Address from, Address to,
                                   const Payload& payload) {
    (void)now;
    (void)from;
    (void)to;
    (void)payload;
    return {};
  }

  /// Sharded-engine variant of on_payload, same contract as on_send_rng:
  /// draws come from the sender's stream, shared mutable model state is off
  /// limits. Defaults to the serial hook.
  virtual TamperVerdict on_payload_rng(SimTime now, Address from, Address to,
                                       const Payload& payload, Rng& rng) {
    (void)rng;
    return on_payload(now, from, to, payload);
  }
};

}  // namespace bsvc
