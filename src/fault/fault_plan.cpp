#include "fault/fault_plan.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace bsvc {

namespace {

bool valid_probability(double p) { return p >= 0.0 && p <= 1.0 && !std::isnan(p); }

std::string window_error(const char* what, const TimeWindow& w) {
  if (w.start < w.end) return "";
  return std::string(what) + " window [" + std::to_string(w.start) + ".." +
         std::to_string(w.end) + ") is empty (need start < end)";
}

// --- tokenization ---------------------------------------------------------

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    tokens.push_back(tok);
  }
  return tokens;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

bool parse_f64(const std::string& s, double& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

/// "A..B" -> half-open window [A, B).
bool parse_window(const std::string& s, TimeWindow& out) {
  const auto dots = s.find("..");
  if (dots == std::string::npos) return false;
  return parse_u64(s.substr(0, dots), out.start) &&
         parse_u64(s.substr(dots + 2), out.end);
}

/// Key=value arguments after the window token.
struct Args {
  std::vector<std::pair<std::string, std::string>> kv;

  const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  bool get_u64(const std::string& key, std::uint64_t& out, std::string& error) const {
    const std::string* v = find(key);
    if (v == nullptr) return false;
    if (!parse_u64(*v, out)) {
      error = key + " expects an unsigned integer, got '" + *v + "'";
      return false;
    }
    return true;
  }

  bool get_f64(const std::string& key, double& out, std::string& error) const {
    const std::string* v = find(key);
    if (v == nullptr) return false;
    if (!parse_f64(*v, out)) {
      error = key + " expects a number, got '" + *v + "'";
      return false;
    }
    return true;
  }
};

bool parse_args(const std::vector<std::string>& tokens, std::size_t first, Args& out,
                std::string& error) {
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      error = "expected key=value, got '" + tokens[i] + "'";
      return false;
    }
    out.kv.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
  }
  return true;
}

/// One event line (already tokenized, non-empty). Returns "" or the error.
std::string parse_line(const std::vector<std::string>& tokens, FaultPlan& plan) {
  const std::string& kind = tokens[0];
  std::string error;

  if (kind == "seed") {
    if (tokens.size() != 2 || !parse_u64(tokens[1], plan.seed)) {
      return "seed expects one unsigned integer";
    }
    return "";
  }

  // Every other keyword takes a window as its first operand.
  if (tokens.size() < 2) return kind + " expects a START..END window";
  TimeWindow window;
  if (!parse_window(tokens[1], window)) {
    return "bad window '" + tokens[1] + "' (expected START..END in ticks)";
  }
  Args args;
  if (!parse_args(tokens, 2, args, error)) return error;

  if (kind == "partition") {
    PartitionSpec spec;
    spec.window = window;
    std::uint64_t value = 0;
    if (args.get_u64("cut", value, error)) {
      spec.kind = PartitionSpec::Kind::Cut;
      spec.value = static_cast<std::uint32_t>(value);
    } else if (!error.empty()) {
      return error;
    } else if (args.get_u64("mod", value, error)) {
      spec.kind = PartitionSpec::Kind::Modulo;
      spec.value = static_cast<std::uint32_t>(value);
    } else if (!error.empty()) {
      return error;
    } else {
      return "partition expects cut=ADDR or mod=GROUPS";
    }
    plan.partitions.push_back(spec);
    return "";
  }

  if (kind == "loss") {
    LinkLossSpec spec;
    spec.window = window;
    if (!args.get_f64("p", spec.drop_probability, error)) {
      return error.empty() ? "loss expects p=PROBABILITY" : error;
    }
    std::uint64_t addr = 0;
    if (args.get_u64("from", addr, error)) spec.from = static_cast<Address>(addr);
    if (!error.empty()) return error;
    if (args.get_u64("to", addr, error)) spec.to = static_cast<Address>(addr);
    if (!error.empty()) return error;
    plan.link_loss.push_back(spec);
    return "";
  }

  if (kind == "delay") {
    LatencySpec spec;
    spec.window = window;
    spec.mode = LatencySpec::Mode::Spike;
    if (!args.get_u64("add", spec.add, error)) {
      return error.empty() ? "delay expects add=TICKS" : error;
    }
    plan.latency.push_back(spec);
    return "";
  }

  if (kind == "pareto") {
    LatencySpec spec;
    spec.window = window;
    spec.mode = LatencySpec::Mode::Pareto;
    if (!args.get_f64("scale", spec.scale, error)) {
      return error.empty() ? "pareto expects scale=TICKS" : error;
    }
    if (!args.get_f64("alpha", spec.alpha, error) && !error.empty()) return error;
    if (!args.get_u64("cap", spec.cap, error) && !error.empty()) return error;
    plan.latency.push_back(spec);
    return "";
  }

  if (kind == "dup") {
    DuplicateSpec spec;
    spec.window = window;
    if (!args.get_f64("p", spec.probability, error)) {
      return error.empty() ? "dup expects p=PROBABILITY" : error;
    }
    if (!args.get_u64("jitter", spec.jitter, error) && !error.empty()) return error;
    plan.duplicates.push_back(spec);
    return "";
  }

  if (kind == "reorder") {
    ReorderSpec spec;
    spec.window = window;
    if (!args.get_f64("p", spec.probability, error)) {
      return error.empty() ? "reorder expects p=PROBABILITY" : error;
    }
    if (!args.get_u64("delay", spec.max_delay, error) && !error.empty()) return error;
    plan.reorders.push_back(spec);
    return "";
  }

  if (kind == "crash") {
    CrashSpec spec;
    spec.window = window;
    std::uint64_t addr = 0;
    const bool has_addr = args.get_u64("addr", addr, error);
    if (!error.empty()) return error;
    const bool has_frac = args.get_f64("frac", spec.fraction, error);
    if (!error.empty()) return error;
    if (has_addr == has_frac) return "crash expects exactly one of addr=NODE or frac=FRACTION";
    if (has_addr) spec.addr = static_cast<Address>(addr);
    plan.crashes.push_back(spec);
    return "";
  }

  return "unknown event '" + kind + "'";
}

}  // namespace

std::string FaultPlan::validate() const {
  for (const auto& p : partitions) {
    if (auto e = window_error("partition", p.window); !e.empty()) return e;
    if (p.kind == PartitionSpec::Kind::Modulo && p.value < 2) {
      return "partition mod=" + std::to_string(p.value) + " needs at least 2 groups";
    }
  }
  for (const auto& l : link_loss) {
    if (auto e = window_error("loss", l.window); !e.empty()) return e;
    if (!valid_probability(l.drop_probability)) {
      return "loss p=" + std::to_string(l.drop_probability) + " outside [0, 1]";
    }
  }
  for (const auto& l : latency) {
    if (auto e = window_error(l.mode == LatencySpec::Mode::Spike ? "delay" : "pareto",
                              l.window);
        !e.empty()) {
      return e;
    }
    if (l.mode == LatencySpec::Mode::Pareto) {
      if (!(l.scale > 0.0)) return "pareto scale must be > 0";
      if (!(l.alpha > 0.0)) return "pareto alpha must be > 0";
    }
  }
  for (const auto& d : duplicates) {
    if (auto e = window_error("dup", d.window); !e.empty()) return e;
    if (!valid_probability(d.probability)) {
      return "dup p=" + std::to_string(d.probability) + " outside [0, 1]";
    }
  }
  for (const auto& r : reorders) {
    if (auto e = window_error("reorder", r.window); !e.empty()) return e;
    if (!valid_probability(r.probability)) {
      return "reorder p=" + std::to_string(r.probability) + " outside [0, 1]";
    }
  }
  for (const auto& c : crashes) {
    if (auto e = window_error("crash", c.window); !e.empty()) return e;
    if (c.addr == kNullAddress && !(c.fraction > 0.0 && c.fraction <= 1.0)) {
      return "crash frac=" + std::to_string(c.fraction) + " outside (0, 1]";
    }
  }
  return "";
}

bool parse_fault_plan(const std::string& text, FaultPlan& out, std::string& error) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = split_tokens(line);
    if (tokens.empty()) continue;  // blank or comment-only line
    if (const std::string e = parse_line(tokens, plan); !e.empty()) {
      error = "line " + std::to_string(line_no) + ": " + e;
      return false;
    }
  }
  if (const std::string e = plan.validate(); !e.empty()) {
    error = e;
    return false;
  }
  out = std::move(plan);
  error.clear();
  return true;
}

bool load_fault_plan(const std::string& path, FaultPlan& out, std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot open fault plan '" + path + "'";
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  if (!parse_fault_plan(text, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

}  // namespace bsvc
