// FaultPlan: a deterministic, seeded schedule of timed fault events —
// network partitions, correlated/asymmetric link loss, latency spikes and
// heavy-tail (Pareto) latency, message duplication, reordering windows, and
// crash–recover node schedules. A plan is plain data: it can be built
// programmatically, parsed from the text format documented in
// docs/faults.md, and copied freely (ExperimentConfig carries one by
// value). FaultInjector turns a plan into a live FaultModel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "id/node_id.hpp"
#include "sim/event_queue.hpp"

namespace bsvc {

/// Half-open window of virtual time: active for start <= t < end.
struct TimeWindow {
  SimTime start = 0;
  SimTime end = 0;
  bool contains(SimTime t) const { return t >= start && t < end; }
};

/// Network partition: node groups that cannot exchange messages until the
/// window closes (the heal). Groups are a pure function of the address so
/// plans stay independent of network size.
struct PartitionSpec {
  enum class Kind : std::uint8_t {
    Cut,     // two groups: addr < value vs addr >= value
    Modulo,  // value groups: addr % value
  };
  TimeWindow window;
  Kind kind = Kind::Cut;
  std::uint32_t value = 1;

  std::uint32_t group_of(Address a) const {
    return kind == Kind::Cut ? (a >= value ? 1u : 0u) : a % value;
  }
};

/// Correlated / asymmetric link loss: an extra drop probability applied to
/// messages from `from` to `to` (kNullAddress = wildcard, any endpoint),
/// layered over the transport's base i.i.d. rate. Directed: loss from A to
/// B says nothing about B to A.
struct LinkLossSpec {
  TimeWindow window;
  Address from = kNullAddress;
  Address to = kNullAddress;
  double drop_probability = 0.0;
};

/// Latency manipulation. Spike adds a constant to every base draw; Pareto
/// replaces the draw with a heavy-tail sample: scale / u^(1/alpha) for
/// uniform u, i.e. a Pareto Type I with minimum `scale`, clamped to `cap`
/// (0 = 100 * scale).
struct LatencySpec {
  enum class Mode : std::uint8_t { Spike, Pareto };
  TimeWindow window;
  Mode mode = Mode::Spike;
  SimTime add = 0;
  double scale = 0.0;
  double alpha = 2.0;
  SimTime cap = 0;

  SimTime effective_cap() const {
    return cap != 0 ? cap : static_cast<SimTime>(100.0 * scale);
  }
};

/// Message duplication: with `probability`, one extra copy of the message
/// is injected, arriving uniform[0, jitter] ticks after the original.
struct DuplicateSpec {
  TimeWindow window;
  double probability = 0.0;
  SimTime jitter = 100;
};

/// Reordering window: with `probability`, a message is held back an extra
/// uniform[0, max_delay] ticks, letting later sends overtake it.
struct ReorderSpec {
  TimeWindow window;
  double probability = 0.0;
  SimTime max_delay = 100;
};

/// Crash–recover schedule: the node is dark for the window, keeps its
/// state, and returns (deferred timers fire at window.end). Either a fixed
/// address or a fraction of the alive nodes picked at window.start from the
/// plan's seeded RNG.
struct CrashSpec {
  TimeWindow window;
  Address addr = kNullAddress;  // explicit node, or
  double fraction = 0.0;        // fraction of alive nodes at window.start
};

struct FaultPlan {
  /// Seeds the injector's private RNG (loss/dup/reorder/Pareto draws and
  /// fractional crash victim picks). Independent of the engine seed: the
  /// same plan replays identically over any base trajectory.
  std::uint64_t seed = 0x5EEDFA017ull;

  std::vector<PartitionSpec> partitions;
  std::vector<LinkLossSpec> link_loss;
  std::vector<LatencySpec> latency;
  std::vector<DuplicateSpec> duplicates;
  std::vector<ReorderSpec> reorders;
  std::vector<CrashSpec> crashes;

  bool empty() const {
    return partitions.empty() && link_loss.empty() && latency.empty() &&
           duplicates.empty() && reorders.empty() && crashes.empty();
  }

  /// Returns "" when the plan is well-formed, else a description of the
  /// first problem (window start >= end, probability outside [0,1], ...).
  std::string validate() const;
};

/// Parses the text plan format (one event per line; see docs/faults.md).
/// On failure returns false and sets `error` to "line N: <problem>".
bool parse_fault_plan(const std::string& text, FaultPlan& out, std::string& error);

/// Reads `path` and parses it. On failure returns false and sets `error`.
bool load_fault_plan(const std::string& path, FaultPlan& out, std::string& error);

}  // namespace bsvc
