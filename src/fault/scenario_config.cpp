#include "fault/scenario_config.hpp"

#include <utility>

#include "common/assert.hpp"

namespace bsvc {

std::optional<FaultPlan> resolve_fault_plan(const ScenarioConfig& config,
                                            std::string& error) {
  if (config.faults_path.empty()) {
    if (const std::string e = config.faults.validate(); !e.empty()) {
      error = e;
      return std::nullopt;
    }
    return config.faults;
  }
  FaultPlan plan;
  if (!load_fault_plan(config.faults_path, plan, error)) return std::nullopt;
  return plan;
}

std::unique_ptr<FaultInjector> apply_scenario(Engine& engine, const ScenarioConfig& config,
                                              NodeFactory factory) {
  if (config.churn.to > config.churn.from &&
      (config.churn.fail_rate > 0.0 || config.churn.join_rate > 0.0)) {
    BSVC_CHECK_MSG(factory != nullptr, "churn scenario needs a NodeFactory");
    schedule_churn(engine, config.churn, std::move(factory));
  }
  if (config.catastrophe_fraction > 0.0) {
    schedule_catastrophe(engine, config.catastrophe_at, config.catastrophe_fraction);
  }
  std::string error;
  auto plan = resolve_fault_plan(config, error);
  BSVC_CHECK_MSG(plan.has_value(), "unloadable fault plan");
  return install_fault_plan(engine, *plan);
}

}  // namespace bsvc
