// ScenarioConfig: one declarative bundle for everything hostile a run can
// contain — continuous churn, a catastrophic kill, and a FaultPlan (inline
// or loaded from a file). BootstrapExperiment consumes the fault half via
// ExperimentConfig; standalone benches and tests apply a whole bundle with
// apply_scenario().
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "sim/scenario.hpp"

namespace bsvc {

struct ScenarioConfig {
  /// Continuous churn (empty window = none). See sim/scenario.hpp.
  ChurnConfig churn;
  /// One-shot catastrophic kill of `catastrophe_fraction` alive nodes at
  /// `catastrophe_at` (0 fraction = none). Permanent, unlike a crash window.
  SimTime catastrophe_at = 0;
  double catastrophe_fraction = 0.0;
  /// Scripted faults: the inline plan, or a text plan file to load over it
  /// (the file wins when both are set).
  FaultPlan faults;
  std::string faults_path;
};

/// Resolves the scenario's effective fault plan: loads `faults_path` when
/// set, else returns the inline plan. On a load/parse failure returns
/// std::nullopt and sets `error`.
std::optional<FaultPlan> resolve_fault_plan(const ScenarioConfig& config,
                                            std::string& error);

/// Applies the whole bundle to `engine`: schedules churn (when `factory` is
/// provided) and the catastrophe, and installs the fault plan. Returns the
/// installed injector (nullptr when the plan is empty); the caller must keep
/// it alive as long as the engine runs. Aborts on an unloadable plan — call
/// resolve_fault_plan() first for a recoverable error.
std::unique_ptr<FaultInjector> apply_scenario(Engine& engine, const ScenarioConfig& config,
                                              NodeFactory factory = nullptr);

}  // namespace bsvc
