#include "gossip/aggregation.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace bsvc {

namespace {
constexpr std::uint64_t kExchangeTimer = 1;
}

AggregationProtocol::AggregationProtocol(AggregationConfig config, PeerSampler* sampler,
                                         double initial_value)
    : config_(config), sampler_(sampler), value_(initial_value) {
  BSVC_CHECK(sampler_ != nullptr);
  BSVC_CHECK(config_.period > 0);
}

void AggregationProtocol::on_start(Context& ctx) {
  ctx.schedule_timer(ctx.rng().below(config_.period), kExchangeTimer);
}

void AggregationProtocol::on_timer(Context& ctx, std::uint64_t timer_id) {
  BSVC_CHECK(timer_id == kExchangeTimer);
  const auto peers = sampler_->sample(1);
  if (!peers.empty()) {
    ctx.send(peers.front().addr,
             std::make_unique<AggregationMessage>(value_, /*is_request=*/true));
  }
  ctx.schedule_timer(config_.period, kExchangeTimer);
}

void AggregationProtocol::on_message(Context& ctx, Address from, const Payload& payload) {
  const auto* msg = payload_cast<AggregationMessage>(payload);
  if (msg == nullptr) {
    BSVC_WARN("aggregation: unexpected payload type %s", payload.type_name());
    return;
  }
  if (msg->is_request) {
    // Answer with the pre-averaging value so both sides converge to the same
    // mean even though the messages cross.
    ctx.send(from, std::make_unique<AggregationMessage>(value_, /*is_request=*/false));
  }
  value_ = (value_ + msg->value) / 2.0;
}

}  // namespace bsvc
