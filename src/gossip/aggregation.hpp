// Push–pull gossip aggregation (averaging) over the peer sampling service.
//
// The second Fig. 1 component [7]: every period a node exchanges its value
// with a random peer and both adopt the mean; all values converge
// exponentially fast to the global average. Network size estimation (used by
// the examples to decide how many bootstrap cycles to run) is the classic
// instance: one node starts at 1, the rest at 0, the average is 1/N.
#pragma once

#include <cstdint>

#include "sampling/peer_sampler.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace bsvc {

/// Value exchange message. A push carries the sender's value; the pull
/// answer carries the value the responder held before averaging.
class AggregationMessage final : public Payload {
 public:
  static constexpr PayloadKind kKind = PayloadKind::Aggregation;

  AggregationMessage(double value, bool is_request)
      : Payload(kKind), value(value), is_request(is_request) {}
  std::size_t wire_bytes() const override { return 8 + 1; }
  const char* type_name() const override { return "aggregation"; }
  double value;
  bool is_request;
};

struct AggregationConfig {
  SimTime period = kDelta;
};

/// Per-node averaging protocol instance.
class AggregationProtocol final : public Protocol {
 public:
  AggregationProtocol(AggregationConfig config, PeerSampler* sampler, double initial_value);

  void on_start(Context& ctx) override;
  void on_timer(Context& ctx, std::uint64_t timer_id) override;
  void on_message(Context& ctx, Address from, const Payload& payload) override;

  /// Current local estimate of the global average.
  double value() const { return value_; }
  /// Network size estimate assuming the 1-at-one-node / 0-elsewhere init.
  double size_estimate() const { return value_ > 0.0 ? 1.0 / value_ : 0.0; }

 private:
  AggregationConfig config_;
  PeerSampler* sampler_;
  double value_;
};

}  // namespace bsvc
