#include "gossip/broadcast.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace bsvc {

namespace {
constexpr std::uint64_t kPushTimer = 1;
}

BroadcastProtocol::BroadcastProtocol(BroadcastConfig config, PeerSampler* sampler,
                                     std::function<void(Context&, std::uint64_t)> on_delivery)
    : config_(config), sampler_(sampler), on_delivery_(std::move(on_delivery)) {
  BSVC_CHECK(sampler_ != nullptr);
  BSVC_CHECK(config_.fanout >= 1);
  BSVC_CHECK(config_.period > 0);
}

void BroadcastProtocol::seed(Context& ctx, std::uint64_t tag) { infect(ctx, tag); }

void BroadcastProtocol::on_start(Context& /*ctx*/) {}

void BroadcastProtocol::infect(Context& ctx, std::uint64_t tag) {
  if (infected_) return;
  infected_ = true;
  infected_at_ = ctx.now();
  tag_ = tag;
  rounds_left_ = config_.hot_rounds;
  if (on_delivery_) on_delivery_(ctx, tag);
  push(ctx);
  if (rounds_left_ > 0) ctx.schedule_timer(config_.period, kPushTimer);
}

void BroadcastProtocol::push(Context& ctx) {
  for (const auto& peer : sampler_->sample(config_.fanout)) {
    ctx.send(peer.addr, std::make_unique<RumorMessage>(tag_));
  }
  if (rounds_left_ > 0) --rounds_left_;
}

void BroadcastProtocol::on_timer(Context& ctx, std::uint64_t timer_id) {
  BSVC_CHECK(timer_id == kPushTimer);
  push(ctx);
  if (rounds_left_ > 0) ctx.schedule_timer(config_.period, kPushTimer);
}

void BroadcastProtocol::on_message(Context& ctx, Address /*from*/, const Payload& payload) {
  const auto* msg = payload_cast<RumorMessage>(payload);
  if (msg == nullptr) {
    BSVC_WARN("broadcast: unexpected payload type %s", payload.type_name());
    return;
  }
  infect(ctx, msg->tag);
}

}  // namespace bsvc
