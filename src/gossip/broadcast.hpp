// SI-model probabilistic broadcast over the peer sampling service.
//
// One of the architecture's "components that rely only on random samples"
// (paper Fig. 1, [3]), and the mechanism the paper suggests for starting the
// bootstrapping protocol "in a loosely synchronized manner ... by a system
// administrator, using some form of broadcasting or flooding on top of the
// peer sampling service". Infected nodes push the rumor to `fanout` random
// peers every period; coverage reaches all nodes in O(log N) periods w.h.p.
#pragma once

#include <cstdint>
#include <functional>

#include "sampling/peer_sampler.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace bsvc {

/// The rumor message: an application-defined 64-bit tag (e.g. "start the
/// bootstrap protocol at time T").
class RumorMessage final : public Payload {
 public:
  static constexpr PayloadKind kKind = PayloadKind::Rumor;

  explicit RumorMessage(std::uint64_t tag) : Payload(kKind), tag(tag) {}
  std::size_t wire_bytes() const override { return 8; }
  const char* type_name() const override { return "rumor"; }
  std::uint64_t tag;
};

struct BroadcastConfig {
  /// Peers pushed to per period while hot.
  std::size_t fanout = 2;
  /// Push period in ticks.
  SimTime period = kDelta;
  /// Periods a node keeps pushing after infection (bounded redundancy).
  /// Total expected pushes per node is fanout * (hot_rounds + 1); residual
  /// uninfected fraction ≈ exp(-fanout * (hot_rounds + 1)), so the default
  /// leaves ~exp(-14) ≈ 1e-6 — full coverage at any practical size.
  std::size_t hot_rounds = 6;
};

/// Per-node broadcast protocol instance.
class BroadcastProtocol final : public Protocol {
 public:
  /// `on_delivery` fires exactly once per node, at infection time.
  BroadcastProtocol(BroadcastConfig config, PeerSampler* sampler,
                    std::function<void(Context&, std::uint64_t)> on_delivery = nullptr);

  /// Injects the rumor at this node (the administrator's entry point).
  /// Callable only via engine scheduling, e.g. schedule_call + protocol().
  void seed(Context& ctx, std::uint64_t tag);

  void on_start(Context& ctx) override;
  void on_timer(Context& ctx, std::uint64_t timer_id) override;
  void on_message(Context& ctx, Address from, const Payload& payload) override;

  bool infected() const { return infected_; }
  /// Time of infection (valid when infected()).
  SimTime infected_at() const { return infected_at_; }

 private:
  void infect(Context& ctx, std::uint64_t tag);
  void push(Context& ctx);

  BroadcastConfig config_;
  PeerSampler* sampler_;
  std::function<void(Context&, std::uint64_t)> on_delivery_;
  bool infected_ = false;
  SimTime infected_at_ = 0;
  std::uint64_t tag_ = 0;
  std::size_t rounds_left_ = 0;
};

}  // namespace bsvc
