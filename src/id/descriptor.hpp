// Node descriptors: what protocol messages carry around.
//
// A descriptor pairs a logical ID with a transport address. Newscast
// additionally timestamps descriptors; the bootstrapping service does not
// need timestamps, so the timestamped variant lives with the sampling code.
#pragma once

#include <cstddef>
#include <iterator>
#include <vector>

#include "id/node_id.hpp"

namespace bsvc {

/// Identity + reachability of one node. Trivially copyable, 12 bytes packed
/// semantics (we account 14 wire bytes: 8 id + 4 IPv4 + 2 port).
struct NodeDescriptor {
  NodeId id = 0;
  Address addr = kNullAddress;

  friend bool operator==(const NodeDescriptor&, const NodeDescriptor&) = default;
};

/// Estimated wire size of one descriptor (id + IPv4 + port), in bytes.
/// Used by the transport's byte accounting; the exact binary codec in
/// src/net encodes descriptors at this size.
inline constexpr std::size_t kDescriptorWireBytes = 14;

/// A set of descriptors as carried by one protocol message.
using DescriptorList = std::vector<NodeDescriptor>;

/// Non-owning view over descriptors stored struct-of-arrays: one contiguous
/// NodeId lane and one parallel Address lane (see common/arena.hpp).
/// Iteration and indexing materialize NodeDescriptor values on the fly, so
/// table consumers keep the AoS-shaped API while the storage underneath
/// streams dense 8-byte lanes. The view is invalidated by whatever
/// invalidates the lanes (arena grow/reset, table mutation).
class DescriptorView {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = NodeDescriptor;
    using difference_type = std::ptrdiff_t;
    using pointer = const NodeDescriptor*;
    using reference = NodeDescriptor;  // proxy reference: values materialize on read

    iterator() = default;
    iterator(const NodeId* ids, const Address* addrs) : ids_(ids), addrs_(addrs) {}

    NodeDescriptor operator*() const { return {*ids_, *addrs_}; }
    iterator& operator++() {
      ++ids_;
      ++addrs_;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    const NodeId* ids_ = nullptr;
    const Address* addrs_ = nullptr;
  };

  DescriptorView() = default;
  DescriptorView(const NodeId* ids, const Address* addrs, std::size_t count)
      : ids_(ids), addrs_(addrs), count_(count) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  NodeDescriptor operator[](std::size_t i) const { return {ids_[i], addrs_[i]}; }
  NodeDescriptor front() const { return (*this)[0]; }
  NodeDescriptor back() const { return (*this)[count_ - 1]; }

  const NodeId* ids() const { return ids_; }
  const Address* addrs() const { return addrs_; }

  iterator begin() const { return {ids_, addrs_}; }
  iterator end() const { return {ids_ + count_, addrs_ + count_}; }

 private:
  const NodeId* ids_ = nullptr;
  const Address* addrs_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace bsvc
