// Node descriptors: what protocol messages carry around.
//
// A descriptor pairs a logical ID with a transport address. Newscast
// additionally timestamps descriptors; the bootstrapping service does not
// need timestamps, so the timestamped variant lives with the sampling code.
#pragma once

#include <cstddef>
#include <vector>

#include "id/node_id.hpp"

namespace bsvc {

/// Identity + reachability of one node. Trivially copyable, 12 bytes packed
/// semantics (we account 14 wire bytes: 8 id + 4 IPv4 + 2 port).
struct NodeDescriptor {
  NodeId id = 0;
  Address addr = kNullAddress;

  friend bool operator==(const NodeDescriptor&, const NodeDescriptor&) = default;
};

/// Estimated wire size of one descriptor (id + IPv4 + port), in bytes.
/// Used by the transport's byte accounting; the exact binary codec in
/// src/net encodes descriptors at this size.
inline constexpr std::size_t kDescriptorWireBytes = 14;

/// A set of descriptors as carried by one protocol message.
using DescriptorList = std::vector<NodeDescriptor>;

}  // namespace bsvc
