// Base-2^b digit and prefix arithmetic over IDs.
//
// An ID is read as a sequence of digits of b bits each, most significant
// digit first (digit 0). The prefix table of the bootstrapping service and
// the routing logic of Pastry/Tapestry/Bamboo are defined in terms of:
//   - digit(id, i): the i-th digit,
//   - common_prefix_digits(x, y): length in digits of the longest common
//     prefix of x and y,
//   - prefix ranges: the contiguous interval of the sorted ID space that
//     shares a given digit prefix (used by the convergence oracle).
#pragma once

#include "common/assert.hpp"
#include "id/node_id.hpp"

namespace bsvc {

/// Digit-space configuration: b bits per digit.
struct DigitConfig {
  int bits_per_digit = 4;

  /// Number of distinct digit values (the paper's 2^b).
  constexpr int radix() const { return 1 << bits_per_digit; }

  /// Number of digits in an ID of type U.
  template <IdUint U>
  constexpr int num_digits() const {
    return id_bits<U>() / bits_per_digit;
  }

  /// Validates that b divides the ID width and is in a sane range.
  template <IdUint U>
  void validate() const {
    BSVC_CHECK_MSG(bits_per_digit >= 1 && bits_per_digit <= 8,
                   "bits_per_digit must be in [1, 8]");
    BSVC_CHECK_MSG(id_bits<U>() % bits_per_digit == 0,
                   "bits_per_digit must divide the ID width");
  }
};

/// The i-th digit (0 = most significant) of `id` under config `cfg`.
template <IdUint U>
constexpr int digit(U idv, int i, const DigitConfig& cfg) {
  const int b = cfg.bits_per_digit;
  const int shift = id_bits<U>() - (i + 1) * b;
  return static_cast<int>((idv >> shift) & static_cast<U>((U{1} << b) - 1));
}

/// Length in digits of the longest common prefix of x and y.
/// Returns num_digits if x == y.
template <IdUint U>
constexpr int common_prefix_digits(U x, U y, const DigitConfig& cfg) {
  if (x == y) return cfg.num_digits<U>();
  return count_leading_zeros<U>(x ^ y) / cfg.bits_per_digit;
}

/// Smallest ID whose first `digits` digits equal those of `idv` and whose
/// digit `digits` is `d`; remaining bits are zero. This is the inclusive
/// lower bound of the prefix range used by the oracle.
/// Precondition: digits < num_digits (digit position `digits` must exist).
template <IdUint U>
constexpr U prefix_range_lo(U idv, int digits, int d, const DigitConfig& cfg) {
  const int b = cfg.bits_per_digit;
  const int kept_bits = digits * b;
  U prefix = 0;
  if (kept_bits > 0) {
    // kept_bits < id_bits because digits < num_digits; the shift is valid.
    prefix = static_cast<U>(idv >> (id_bits<U>() - kept_bits) << (id_bits<U>() - kept_bits));
  }
  const int shift = id_bits<U>() - kept_bits - b;
  return static_cast<U>(prefix | (static_cast<U>(d) << shift));
}

/// Exclusive upper bound of the same prefix range; 0 means "wrapped past the
/// top of the ID space" (i.e. the range extends to the maximum ID inclusive).
template <IdUint U>
constexpr U prefix_range_hi(U idv, int digits, int d, const DigitConfig& cfg) {
  const int b = cfg.bits_per_digit;
  const int shift = id_bits<U>() - digits * b - b;
  return static_cast<U>(prefix_range_lo(idv, digits, d, cfg) + (U{1} << shift));
}

}  // namespace bsvc
