#include "id/id_generator.hpp"

namespace bsvc {

NodeId IdGenerator::next() {
  // Collisions in a 64-bit space are vanishingly rare at simulated sizes;
  // the loop exists for correctness, not performance.
  for (;;) {
    const NodeId id = rng_.next_u64();
    if (used_.insert(id).second) return id;
  }
}

std::vector<NodeId> IdGenerator::next_batch(std::size_t n) {
  std::vector<NodeId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

bool IdGenerator::reserve(NodeId id) { return used_.insert(id).second; }

}  // namespace bsvc
