// Generation of unique random node IDs.
//
// The paper assumes "all nodes have unique numeric IDs" drawn uniformly at
// random (as produced by hashing keys/addresses in deployed DHTs). The
// generator guarantees uniqueness, which the simulator requires: duplicate
// IDs would make "the" perfect leaf set ill-defined.
#pragma once

#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "id/node_id.hpp"

namespace bsvc {

/// Produces unique uniformly random 64-bit node IDs.
class IdGenerator {
 public:
  explicit IdGenerator(Rng rng) : rng_(rng) {}

  /// Returns a fresh ID never returned before by this generator.
  NodeId next();

  /// Returns `n` fresh unique IDs.
  std::vector<NodeId> next_batch(std::size_t n);

  /// Registers an externally-chosen ID so next() will avoid it.
  /// Returns false if it was already taken.
  bool reserve(NodeId id);

 private:
  Rng rng_;
  std::unordered_set<NodeId> used_;
};

}  // namespace bsvc
