// Node identifier types.
//
// The paper uses 64-bit IDs ("using only 64 bits ... is not limiting since
// the length of the largest common prefix is much less than 64 bits for all
// node pairs in networks of any practical size"). All ring and prefix
// arithmetic in this library is generic over the unsigned ID width, so the
// canonical 128-bit DHT ID space is available too (used in property tests).
#pragma once

#include <concepts>
#include <cstdint>

namespace bsvc {

/// Concept satisfied by valid ID representations: built-in unsigned integers
/// including the 128-bit extension type.
template <typename U>
concept IdUint = std::unsigned_integral<U> || std::same_as<U, unsigned __int128>;

/// The canonical ID type used by the simulator (matches the paper).
using NodeId = std::uint64_t;

/// Wide ID type for 128-bit ID spaces (Kademlia/Pastry deployments).
using NodeId128 = unsigned __int128;

/// Number of bits in an ID type.
template <IdUint U>
constexpr int id_bits() {
  return static_cast<int>(sizeof(U) * 8);
}

/// Count of leading zero bits, generic over width; 128-bit aware.
/// Returns id_bits<U>() for x == 0.
template <IdUint U>
constexpr int count_leading_zeros(U x) {
  if (x == 0) return id_bits<U>();
  if constexpr (sizeof(U) <= 8) {
    return __builtin_clzll(static_cast<unsigned long long>(x)) -
           (64 - id_bits<U>());
  } else {
    const auto hi = static_cast<std::uint64_t>(x >> 64);
    if (hi != 0) return __builtin_clzll(hi);
    return 64 + __builtin_clzll(static_cast<std::uint64_t>(x));
  }
}

/// A network address: a dense handle the simulated transport can deliver to.
/// Real deployments would hold IP:port here; the simulator uses the node's
/// slot index. kNullAddress is "no such node".
using Address = std::uint32_t;
inline constexpr Address kNullAddress = 0xFFFFFFFFu;

}  // namespace bsvc
