// Ring geometry over the full ID space (the "ring of all possible IDs").
//
// Distances wrap around 2^bits via unsigned arithmetic. The paper classifies
// every ID relative to a node's own ID as a successor (closer in the
// increasing direction) or a predecessor (otherwise); ties at exactly half
// the ring are resolved as successor so the classification is total.
#pragma once

#include <algorithm>

#include "id/node_id.hpp"

namespace bsvc {

/// Distance from `from` to `to` travelling in the increasing direction.
template <IdUint U>
constexpr U successor_distance(U from, U to) {
  return static_cast<U>(to - from);  // wraps mod 2^bits
}

/// Distance from `from` to `to` travelling in the decreasing direction.
template <IdUint U>
constexpr U predecessor_distance(U from, U to) {
  return static_cast<U>(from - to);
}

/// Shortest ring distance between two IDs (min of the two directions).
template <IdUint U>
constexpr U ring_distance(U a, U b) {
  return std::min(successor_distance(a, b), predecessor_distance(a, b));
}

/// True iff `x` is a successor of `own`: strictly closer (or equally close)
/// in the increasing direction. `x == own` is not a successor of itself.
template <IdUint U>
constexpr bool is_successor(U own, U x) {
  if (x == own) return false;
  return successor_distance(own, x) <= predecessor_distance(own, x);
}

/// Three-way helper for sorting by ring distance from a pivot with a total,
/// deterministic order: primary key is the shortest ring distance, ties
/// (successor vs predecessor at the same distance) prefer the successor,
/// and equal IDs compare equal.
template <IdUint U>
constexpr bool closer_on_ring(U pivot, U a, U b) {
  const U da = ring_distance(pivot, a);
  const U db = ring_distance(pivot, b);
  if (da != db) return da < db;
  if (a == b) return false;
  // Same distance, different IDs: one is the successor side, prefer it.
  return is_successor(pivot, a) && !is_successor(pivot, b);
}

}  // namespace bsvc
