#include "net/codec.hpp"

#include "common/assert.hpp"

namespace bsvc {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::descriptor(const NodeDescriptor& d) {
  u64(d.id);
  u32(d.addr);                                   // stands in for IPv4
  u16(static_cast<std::uint16_t>(d.addr % 65536));  // stands in for port
}

void ByteWriter::descriptor_list(std::span<const NodeDescriptor> list) {
  BSVC_CHECK_MSG(list.size() <= 65535, "descriptor list too long for wire format");
  u16(static_cast<std::uint16_t>(list.size()));
  for (const auto& d : list) descriptor(d);
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return std::nullopt;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::optional<NodeDescriptor> ByteReader::descriptor() {
  const auto id = u64();
  const auto addr = u32();
  const auto port = u16();
  if (!id || !addr || !port) return std::nullopt;
  return NodeDescriptor{*id, *addr};
}

std::optional<DescriptorList> ByteReader::descriptor_list() {
  const auto count = u16();
  if (!count) return std::nullopt;
  DescriptorList list;
  list.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto d = descriptor();
    if (!d) return std::nullopt;
    list.push_back(*d);
  }
  return list;
}

std::size_t descriptor_list_wire_bytes(std::size_t entries) {
  return 2 + entries * kDescriptorWireBytes;
}

}  // namespace bsvc
