// Compact binary wire format.
//
// The paper stresses that its protocols run over "small UDP messages"; this
// codec defines the exact datagram layout a deployment would use, and the
// simulator's byte accounting (Payload::wire_bytes) is kept consistent with
// it by construction (tests assert the equivalence). Integers are encoded
// little-endian, fixed width; descriptor lists carry a u16 count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "id/descriptor.hpp"

namespace bsvc {

/// Append-only byte buffer with typed writers.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// Encodes a descriptor as: id u64, IPv4 u32, port u16 (14 bytes). The
  /// simulator maps its dense Address into the IPv4 field; a deployment
  /// would store the real endpoint.
  void descriptor(const NodeDescriptor& d);

  /// Encodes a u16 length prefix followed by each descriptor.
  /// Lists longer than 65535 are a protocol error. Accepts any contiguous
  /// descriptor range (DescriptorList converts implicitly; flat messages
  /// pass their span views directly).
  void descriptor_list(std::span<const NodeDescriptor> list);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked sequential reader over a received datagram. All reads
/// return std::nullopt past the end (malformed datagrams must not crash a
/// node); higher layers treat nullopt as "drop the message".
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<NodeDescriptor> descriptor();
  std::optional<DescriptorList> descriptor_list();

  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - pos_; }
  /// True when the whole datagram was consumed (strict parsers check this).
  bool exhausted() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Wire size of a descriptor list (2-byte count + 14 bytes each).
std::size_t descriptor_list_wire_bytes(std::size_t entries);

}  // namespace bsvc
