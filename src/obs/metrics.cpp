#include "obs/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bsvc::obs {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  BSVC_CHECK(buckets > 0);
  BSVC_CHECK(lo < hi);
}

void HistogramMetric::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto b = static_cast<std::ptrdiff_t>((x - lo_) / width);
  b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

double HistogramMetric::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::uint64_t c = counts_[b];
    if (c == 0) continue;
    if (static_cast<double>(seen) + static_cast<double>(c) >= target) {
      const double within =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      const double estimate = bucket_lo(b) + within * width;
      return std::clamp(estimate, min_, max_);
    }
    seen += c;
  }
  return max_;
}

double HistogramMetric::bucket_lo(std::size_t b) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + static_cast<double>(b) * width;
}

void HistogramMetric::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

// Caller must hold mutex_: lookups and first-registration both mutate the
// map, and sharded-engine workers register concurrently from on_start.
MetricsRegistry::Entry& MetricsRegistry::entry_of(std::string_view name, MetricKind kind) {
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    BSVC_CHECK_MSG(it->second->kind == kind, "metric registered under a different kind");
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  Entry& ref = *entry;
  entries_.emplace(std::string(name), std::move(entry));
  return ref;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_of(name, MetricKind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_of(name, MetricKind::Gauge).gauge;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                            std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_of(name, MetricKind::Histogram);
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<HistogramMetric>(lo, hi, buckets);
  }
  return *entry.histogram;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    switch (entry->kind) {
      case MetricKind::Counter: entry->counter.reset(); break;
      case MetricKind::Gauge: entry->gauge.reset(); break;
      case MetricKind::Histogram: entry->histogram->reset(); break;
    }
  }
}

void MetricsRegistry::snapshot(const std::function<void(const std::string&, double)>& emit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    switch (entry->kind) {
      case MetricKind::Counter:
        emit(name, static_cast<double>(entry->counter.value()));
        break;
      case MetricKind::Gauge:
        emit(name, entry->gauge.value());
        break;
      case MetricKind::Histogram:
        emit(name + ".count", static_cast<double>(entry->histogram->count()));
        emit(name + ".mean", entry->histogram->mean());
        emit(name + ".max", entry->histogram->max());
        emit(name + ".p50", entry->histogram->quantile(0.50));
        emit(name + ".p95", entry->histogram->quantile(0.95));
        emit(name + ".p99", entry->histogram->quantile(0.99));
        break;
    }
  }
}

}  // namespace bsvc::obs
