// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// One registry is owned per Engine (see sim/engine.hpp), so parallel bench
// replicas stay fully isolated — there is no process-global metric state.
// Registration returns a stable reference; the hot path then increments
// through that reference with zero lookup cost. Names follow the dotted
// scheme documented in docs/observability.md ("msg.sent.<tag>",
// "bootstrap.requests", "convergence.leaf_completeness", ...).
//
// This layer deliberately knows nothing about the simulation engine; the
// periodic Sampler that snapshots a registry against virtual time lives in
// obs/sampler.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bsvc::obs {

/// Monotone event count. Increments are relaxed atomics so sharded-engine
/// workers may bump shared handles concurrently; totals are only *read* at
/// window barriers (or after the run), where the crew's synchronization
/// makes every increment visible. Under the serial engine the atomic costs
/// one uncontended lock-free add — negligible next to the dispatch path.
class Counter {
 public:
  void inc() { value_.fetch_add(1, std::memory_order_relaxed); }
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range observations are
/// clamped into the first/last bucket (same contract as common/stats.hpp).
/// Tracks sum/min/max so snapshots can report the mean without the buckets.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t b) const { return counts_.at(b); }
  /// Lower edge of bucket b.
  double bucket_lo(std::size_t b) const;
  /// Estimated q-quantile (q in [0, 1]): linear interpolation inside the
  /// bucket holding the q*count-th observation, clamped to the exact
  /// observed [min, max] so single-value histograms report that value.
  /// 0 when empty.
  double quantile(double q) const;
  void reset();

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// A named collection of metrics with stable handles.
///
/// Lookups by the same name return the same instance; registering a name
/// under a different kind is a programming error and aborts. Handed-out
/// references stay valid for the registry's lifetime (entries are
/// heap-allocated and never removed).
///
/// Registration (counter()/gauge()/histogram()) is guarded by a mutex:
/// under the sharded engine, protocols register their handles from
/// on_start callbacks running on different shard workers. The hot path —
/// incrementing through an already-held handle — never touches the lock.
/// Gauge and Histogram *observations* are not synchronized; they are
/// written from barrier context only (probes, fault bookkeeping calls).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First registration fixes the bucket layout; later calls with the same
  /// name return the existing histogram regardless of the bounds passed.
  HistogramMetric& histogram(std::string_view name, double lo, double hi, std::size_t buckets);

  /// True if `name` is registered (any kind).
  bool has(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.find(name) != entries_.end();
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  /// Zeroes every metric's observations; registrations (and handed-out
  /// references) survive.
  void reset();

  /// Emits every metric as (name, value) pairs in lexicographic name order:
  /// counters as their count, gauges as their value, histograms expanded to
  /// "<name>.count", "<name>.mean", "<name>.max" and the "<name>.p50"/
  /// ".p95"/".p99" quantile estimates. The deterministic order is what makes
  /// sampled series and JSON exports byte-stable.
  void snapshot(const std::function<void(const std::string&, double)>& emit) const;

 private:
  struct Entry {
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry& entry_of(std::string_view name, MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Entry>, std::less<>> entries_;
};

/// Per-metric time series collected by a Sampler: name -> [(virtual time,
/// value)], deterministically ordered by name. The bench reports embed this
/// verbatim as JSON ("series": {"name": [[t, v], ...]}).
struct MetricSeries {
  std::map<std::string, std::vector<std::pair<std::uint64_t, double>>> by_name;

  bool empty() const { return by_name.empty(); }
  std::size_t metrics() const { return by_name.size(); }
};

}  // namespace bsvc::obs
