#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>

namespace bsvc::obs {

namespace {

const char* phase_name(int phase) {
  switch (phase) {
    case 0: return "dispatch";
    case 1: return "drain";
    case 2: return "stall";
    case 3: return "idle";
  }
  return "?";
}

double ns_to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

double ns_to_s(std::uint64_t ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace

EngineProfiler::EngineProfiler(std::size_t shards, std::size_t max_trace_events)
    : shards_(shards), max_trace_events_(max_trace_events) {}

void EngineProfiler::record_window(const WindowSample& sample) {
  ++windows_;
  events_ += sample.events;
  wall_ns_total_ += sample.wall_ns;
  // The two crew phases cannot exceed the whole window; idle is whatever the
  // coordinator spent outside them (merge, queue bookkeeping).
  const std::uint64_t phases_wall =
      std::min(sample.wall_ns, sample.dispatch_wall_ns + sample.drain_wall_ns);
  const std::uint64_t idle_ns = sample.wall_ns - phases_wall;
  const bool trace_room =
      slices_.size() + counters_.size() + 5 * sample.shards <= max_trace_events_;
  if (!trace_room) trace_events_dropped_ += 5 * sample.shards;
  for (std::size_t s = 0; s < sample.shards; ++s) {
    const std::uint64_t dispatch_work =
        std::min(sample.dispatch_work_ns[s], sample.dispatch_wall_ns);
    const std::uint64_t drain_work = std::min(sample.drain_work_ns[s], sample.drain_wall_ns);
    const std::uint64_t stall =
        (sample.dispatch_wall_ns - dispatch_work) + (sample.drain_wall_ns - drain_work);
    dispatch_ns_total_ += dispatch_work;
    drain_ns_total_ += drain_work;
    stall_ns_total_ += stall;
    idle_ns_total_ += idle_ns;
    mailbox_messages_ += sample.mailbox_in[s];
    queue_depth_total_ += sample.queue_depth[s];
    if (!trace_room) continue;
    // Lay the four phases out consecutively on the shard's timeline; they
    // partition the window wall exactly, so slices never overlap.
    const auto shard = static_cast<std::uint32_t>(s);
    std::uint64_t ts = cursor_ns_;
    const std::uint64_t durs[4] = {dispatch_work, drain_work, stall, idle_ns};
    for (int p = 0; p < 4; ++p) {
      if (durs[p] > 0) {
        slices_.push_back({ts, durs[p], shard, static_cast<Phase>(p)});
      }
      ts += durs[p];
    }
    counters_.push_back(
        {cursor_ns_, shard,
         static_cast<std::uint32_t>(std::min<std::uint64_t>(sample.queue_depth[s], ~0u)),
         static_cast<std::uint32_t>(std::min<std::uint64_t>(sample.mailbox_in[s], ~0u))});
  }
  cursor_ns_ += sample.wall_ns;
}

ProfileSummary EngineProfiler::summary() const {
  ProfileSummary s;
  s.shards = shards_;
  s.windows = windows_;
  s.events = events_;
  s.mailbox_messages = mailbox_messages_;
  s.wall_seconds = ns_to_s(wall_ns_total_);
  s.dispatch_seconds = ns_to_s(dispatch_ns_total_);
  s.drain_seconds = ns_to_s(drain_ns_total_);
  s.stall_seconds = ns_to_s(stall_ns_total_);
  s.idle_seconds = ns_to_s(idle_ns_total_);
  const double shard_time = static_cast<double>(wall_ns_total_) * static_cast<double>(shards_);
  if (shard_time > 0.0) {
    s.barrier_stall_fraction = static_cast<double>(stall_ns_total_) / shard_time;
  }
  const double shard_windows = static_cast<double>(windows_) * static_cast<double>(shards_);
  if (shard_windows > 0.0) {
    s.mailbox_mean_per_window = static_cast<double>(mailbox_messages_) / shard_windows;
    s.queue_depth_mean = static_cast<double>(queue_depth_total_) / shard_windows;
  }
  s.trace_events = slices_.size() + counters_.size();
  s.trace_events_dropped = trace_events_dropped_;
  return s;
}

bool EngineProfiler::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"traceEvents\":[", f);
  bool first = true;
  const auto sep = [&first, f] {
    if (!first) std::fputc(',', f);
    first = false;
    std::fputc('\n', f);
  };
  for (std::size_t s = 0; s < shards_; ++s) {
    sep();
    std::fprintf(f,
                 "{\"ph\":\"M\",\"pid\":0,\"tid\":%zu,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"shard %zu\"}}",
                 s, s);
  }
  for (const Slice& slice : slices_) {
    sep();
    std::fprintf(f,
                 "{\"ph\":\"X\",\"pid\":0,\"tid\":%u,\"cat\":\"window\","
                 "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                 slice.shard, phase_name(static_cast<int>(slice.phase)),
                 ns_to_us(slice.ts_ns), ns_to_us(slice.dur_ns));
  }
  for (const CounterSample& c : counters_) {
    sep();
    std::fprintf(f,
                 "{\"ph\":\"C\",\"pid\":0,\"tid\":%u,\"name\":\"shard %u io\","
                 "\"ts\":%.3f,\"args\":{\"queue_depth\":%u,\"mailbox_in\":%u}}",
                 c.shard, c.shard, ns_to_us(c.ts_ns), c.queue_depth, c.mailbox_in);
  }
  std::fputs("\n],\n\"displayTimeUnit\":\"ms\",\n", f);
  std::fprintf(
      f,
      "\"bsvc_profile\":{\"shards\":%zu,\"windows\":%llu,\"events\":%llu,"
      "\"mailbox_messages\":%llu,\"wall_ns\":%llu,\"dispatch_ns\":%llu,"
      "\"drain_ns\":%llu,\"stall_ns\":%llu,\"idle_ns\":%llu,"
      "\"trace_events_dropped\":%llu}}\n",
      shards_, static_cast<unsigned long long>(windows_),
      static_cast<unsigned long long>(events_),
      static_cast<unsigned long long>(mailbox_messages_),
      static_cast<unsigned long long>(wall_ns_total_),
      static_cast<unsigned long long>(dispatch_ns_total_),
      static_cast<unsigned long long>(drain_ns_total_),
      static_cast<unsigned long long>(stall_ns_total_),
      static_cast<unsigned long long>(idle_ns_total_),
      static_cast<unsigned long long>(trace_events_dropped_));
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace bsvc::obs
