// Engine profiler for the sharded window engine: per-shard wall-clock
// accounting that splits every conservative time window into four phases —
// dispatch (in-window event processing), mailbox drain (cross-shard
// hand-off), barrier stall (waiting for the slowest lane) and idle
// (coordinator bookkeeping between crew rounds) — plus queue-depth and
// mailbox-occupancy gauges per window.
//
// The engine hands the profiler one WindowSample per window from the
// coordinator thread at the barrier, where the crew's synchronization has
// already made the per-lane timings visible; the profiler itself is
// single-threaded and lock-free. Aggregates export through summary() into
// the BENCH_*.json "prof" section, and the bounded per-window slice buffer
// exports as Chrome trace-event JSON (write_chrome_trace) loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Phase times are constructed to partition the measured wall time exactly:
// per shard, dispatch-work + drain-work + stall + idle == window wall (work
// clamped to its phase wall), so the per-shard phase sum over a whole run
// accounts for 100% of measured window wall time — scripts/check_profile.py
// gates on >= 95%.
//
// Like the rest of obs/, this header must not depend on sim/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bsvc::obs {

/// One window's measurements, handed over by the engine at the barrier.
/// The per-shard pointers refer to `shards` entries each and are only read
/// during the record_window call.
struct WindowSample {
  std::uint64_t virtual_time = 0;      // window end, virtual ticks
  std::uint64_t wall_ns = 0;           // whole window, merge included
  std::uint64_t dispatch_wall_ns = 0;  // crew dispatch phase, caller clock
  std::uint64_t drain_wall_ns = 0;     // crew mailbox-drain phase
  const std::uint64_t* dispatch_work_ns = nullptr;  // per-lane busy time
  const std::uint64_t* drain_work_ns = nullptr;
  const std::uint64_t* queue_depth = nullptr;  // pending events, end of window
  const std::uint64_t* mailbox_in = nullptr;   // messages drained in this window
  std::uint64_t events = 0;                    // events dispatched this window
  std::size_t shards = 0;
};

/// Aggregate profile over every recorded window (see EngineProfiler::summary).
struct ProfileSummary {
  std::uint64_t shards = 0;
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  std::uint64_t mailbox_messages = 0;
  double wall_seconds = 0.0;      // sum of window wall times
  double dispatch_seconds = 0.0;  // per-shard work, summed over shards
  double drain_seconds = 0.0;
  double stall_seconds = 0.0;
  double idle_seconds = 0.0;
  /// Fraction of total shard-time spent waiting at barriers:
  /// stall / (wall * shards).
  double barrier_stall_fraction = 0.0;
  /// Mean messages crossing into one shard per window.
  double mailbox_mean_per_window = 0.0;
  /// Mean pending-event queue depth per shard at window ends.
  double queue_depth_mean = 0.0;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_events_dropped = 0;
};

class EngineProfiler {
 public:
  /// Caps the Chrome trace buffer (slices + counter samples); windows past
  /// the cap still aggregate into the summary but emit no trace events,
  /// counted in trace_events_dropped.
  static constexpr std::size_t kDefaultMaxTraceEvents = std::size_t{1} << 20;

  explicit EngineProfiler(std::size_t shards,
                          std::size_t max_trace_events = kDefaultMaxTraceEvents);

  EngineProfiler(const EngineProfiler&) = delete;
  EngineProfiler& operator=(const EngineProfiler&) = delete;

  std::size_t shards() const { return shards_; }

  /// Folds one window into the aggregates and (buffer permitting) the trace.
  /// Coordinator thread only.
  void record_window(const WindowSample& sample);

  ProfileSummary summary() const;

  /// Writes the buffered slices as Chrome trace-event JSON (object form:
  /// {"traceEvents": [...], "displayTimeUnit": "ms", "bsvc_profile": {...}}).
  /// The bsvc_profile object carries the aggregate totals check_profile.py
  /// validates. Returns false when the file cannot be written.
  bool write_chrome_trace(const std::string& path) const;

 private:
  enum class Phase : std::uint8_t { Dispatch, Drain, Stall, Idle };

  struct Slice {
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t shard = 0;
    Phase phase = Phase::Dispatch;
  };

  struct CounterSample {
    std::uint64_t ts_ns = 0;
    std::uint32_t shard = 0;
    std::uint32_t queue_depth = 0;
    std::uint32_t mailbox_in = 0;
  };

  std::size_t shards_;
  std::size_t max_trace_events_;
  std::vector<Slice> slices_;
  std::vector<CounterSample> counters_;
  std::uint64_t cursor_ns_ = 0;  // wall-time layout cursor for the trace
  std::uint64_t windows_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t mailbox_messages_ = 0;
  std::uint64_t queue_depth_total_ = 0;
  std::uint64_t wall_ns_total_ = 0;
  std::uint64_t dispatch_ns_total_ = 0;
  std::uint64_t drain_ns_total_ = 0;
  std::uint64_t stall_ns_total_ = 0;
  std::uint64_t idle_ns_total_ = 0;
  std::uint64_t trace_events_dropped_ = 0;
};

}  // namespace bsvc::obs
