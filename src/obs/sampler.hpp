// Periodic metrics sampler: snapshots an Engine's registry (plus optional
// observer-computed probes) on a fixed virtual-time cadence, accumulating a
// per-metric time series.
//
// Header-only by design: obs/ must not link against sim/ (the engine already
// links obs for the registry and trace types), so the one piece that needs
// Engine — scheduling itself via schedule_call — lives here and is compiled
// into whoever uses it (experiments, benches, tests).
//
// Determinism: a running sampler only *adds* Call events to the queue. Those
// consume insertion sequence numbers but never touch the engine or node RNG
// streams, so the relative order of all simulation events — and therefore
// every observable series — is unchanged. Golden-replay witnesses are run
// with a sampler installed to pin this down.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace bsvc::obs {

class Sampler {
 public:
  /// A probe runs just before each snapshot and typically sets gauges from
  /// observer state (convergence oracles, graph metrics, traffic counters).
  using Probe = std::function<void(Engine&)>;

  explicit Sampler(Engine& engine) : state_(std::make_shared<State>(engine)) {}

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Destroying the sampler stops it; closures still queued in the engine
  /// keep the shared state alive and become no-ops when they fire.
  ~Sampler() { stop(); }

  void add_probe(Probe probe) { state_->probes.push_back(std::move(probe)); }

  /// Starts sampling: first snapshot at now() + first_delay, then every
  /// `period` ticks until stop(). Call at most once.
  void start(SimTime first_delay, SimTime period) {
    state_->period = period;
    state_->running = true;
    schedule(state_, first_delay);
  }

  void stop() { state_->running = false; }
  bool running() const { return state_->running; }

  const MetricSeries& series() const { return state_->series; }
  MetricSeries take_series() { return std::move(state_->series); }
  std::size_t samples() const { return state_->samples; }

 private:
  struct State {
    explicit State(Engine& e) : engine(e) {}
    Engine& engine;
    std::vector<Probe> probes;
    MetricSeries series;
    SimTime period = 0;
    std::size_t samples = 0;
    bool running = false;
  };

  static void schedule(const std::shared_ptr<State>& state, SimTime delay) {
    state->engine.schedule_call(delay, [state](Engine& engine) {
      if (!state->running) return;
      for (const Probe& probe : state->probes) probe(engine);
      const SimTime t = engine.now();
      engine.metrics().snapshot([&](const std::string& name, double value) {
        state->series.by_name[name].emplace_back(t, value);
      });
      ++state->samples;
      if (state->period > 0) schedule(state, state->period);
    });
  }

  std::shared_ptr<State> state_;
};

}  // namespace bsvc::obs
