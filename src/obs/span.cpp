#include "obs/span.hpp"

namespace bsvc::obs {

namespace {

// Latency histograms in virtual ticks. The transport draws per-hop latency
// in [min_latency, max_latency] (tens of ticks by default) and supersession
// waits out a full gossip cycle, so these ranges cover the realistic span
// comfortably; the clamped-bucket contract plus quantile()'s min/max clamp
// keep estimates sane for outliers either way.
constexpr double kRttHi = 4096.0;
constexpr double kLifetimeHi = 16384.0;
constexpr std::size_t kLatencyBuckets = 256;

}  // namespace

const char* span_outcome_name(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::Answered: return "answered";
    case SpanOutcome::Timeout: return "timeout";
    case SpanOutcome::Superseded: return "superseded";
    case SpanOutcome::Evicted: return "evicted";
  }
  return "?";
}

SpanLog::SpanLog(std::size_t max_in_flight)
    : max_in_flight_(max_in_flight),
      rtt_(0.0, kRttHi, kLatencyBuckets),
      lifetime_(0.0, kLifetimeHi, kLatencyBuckets) {}

void SpanLog::bind_registry(MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  reg_opened_ = &registry.counter("span.opened");
  reg_outcomes_[static_cast<std::size_t>(SpanOutcome::Answered)] =
      &registry.counter("span.answered");
  reg_outcomes_[static_cast<std::size_t>(SpanOutcome::Timeout)] =
      &registry.counter("span.timeout");
  reg_outcomes_[static_cast<std::size_t>(SpanOutcome::Superseded)] =
      &registry.counter("span.superseded");
  reg_outcomes_[static_cast<std::size_t>(SpanOutcome::Evicted)] =
      &registry.counter("span.evicted");
  reg_retries_ = &registry.counter("span.retries");
}

void SpanLog::open(SpanId id, std::uint64_t now, std::uint32_t request_descriptors) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++opened_;
  if (reg_opened_ != nullptr) reg_opened_->inc();
  if (in_flight_.size() >= max_in_flight_) {
    ++overflow_dropped_;
    return;
  }
  InFlight& rec = in_flight_[id];
  rec.opened_at = now;
  rec.request_descriptors = request_descriptors;
}

void SpanLog::close(SpanId id, std::uint64_t now, SpanOutcome outcome,
                    std::uint32_t answer_descriptors) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = in_flight_.find(id);
  if (it == in_flight_.end()) {
    ++stray_closes_;
    return;
  }
  const InFlight rec = it->second;
  in_flight_.erase(it);
  ++closed_;
  ++outcomes_[static_cast<std::size_t>(outcome)];
  if (Counter* c = reg_outcomes_[static_cast<std::size_t>(outcome)]; c != nullptr) c->inc();
  const std::uint64_t lifetime = now >= rec.opened_at ? now - rec.opened_at : 0;
  lifetime_.add(static_cast<double>(lifetime));
  if (outcome == SpanOutcome::Answered) {
    rtt_.add(static_cast<double>(lifetime));
    answer_descriptors_total_ += answer_descriptors;
  }
  hops_total_ += rec.delivers;
  // Explicit retransmissions only: transport sends also count multi-hop
  // forwards and answer legs, so sends - 1 over-reported for anything but a
  // plain two-leg exchange.
  retries_total_ += rec.retries;
  request_descriptors_total_ += rec.request_descriptors;
}

void SpanLog::on_transport(SpanId id, SpanTransport transport) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++transports_[static_cast<std::size_t>(transport)];
  const auto it = in_flight_.find(id);
  if (it == in_flight_.end()) return;
  if (transport == SpanTransport::Send) ++it->second.sends;
  if (transport == SpanTransport::Deliver) ++it->second.delivers;
}

void SpanLog::on_retry(SpanId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (reg_retries_ != nullptr) reg_retries_->inc();
  const auto it = in_flight_.find(id);
  if (it != in_flight_.end()) ++it->second.retries;
}

SpanSummary SpanLog::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanSummary s;
  s.opened = opened_;
  s.closed = closed_;
  s.in_flight = in_flight_.size();
  s.overflow_dropped = overflow_dropped_;
  s.stray_closes = stray_closes_;
  s.answered = outcomes_[static_cast<std::size_t>(SpanOutcome::Answered)];
  s.timeout = outcomes_[static_cast<std::size_t>(SpanOutcome::Timeout)];
  s.superseded = outcomes_[static_cast<std::size_t>(SpanOutcome::Superseded)];
  s.evicted = outcomes_[static_cast<std::size_t>(SpanOutcome::Evicted)];
  s.sends = transports_[static_cast<std::size_t>(SpanTransport::Send)];
  s.drops = transports_[static_cast<std::size_t>(SpanTransport::Drop)];
  s.delivers = transports_[static_cast<std::size_t>(SpanTransport::Deliver)];
  s.dead_letters = transports_[static_cast<std::size_t>(SpanTransport::DeadDest)];
  s.rtt_count = rtt_.count();
  s.rtt_mean = rtt_.mean();
  s.rtt_max = rtt_.max();
  s.rtt_p50 = rtt_.quantile(0.50);
  s.rtt_p95 = rtt_.quantile(0.95);
  s.rtt_p99 = rtt_.quantile(0.99);
  s.lifetime_p50 = lifetime_.quantile(0.50);
  s.lifetime_p95 = lifetime_.quantile(0.95);
  s.lifetime_p99 = lifetime_.quantile(0.99);
  if (closed_ > 0) {
    const auto n = static_cast<double>(closed_);
    s.hops_mean = static_cast<double>(hops_total_) / n;
    s.retries_mean = static_cast<double>(retries_total_) / n;
    s.request_descriptors_mean = static_cast<double>(request_descriptors_total_) / n;
  }
  if (s.answered > 0) {
    s.answer_descriptors_mean =
        static_cast<double>(answer_descriptors_total_) / static_cast<double>(s.answered);
  }
  return s;
}

}  // namespace bsvc::obs
