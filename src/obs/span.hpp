// Causal exchange spans: one span per bootstrap request/answer exchange,
// allocated by the protocol when CREATEMESSAGE opens an exchange and closed
// exactly once on answer, timeout, supersession or eviction.
//
// Simulation-side only: the span id rides on the in-memory Payload and is
// never encoded on the wire (the codec round trip drops it — see
// docs/observability.md#causal-exchange-spans). The engine feeds per-span
// transport events (send/drop/deliver/dead-destination) through the same
// nullptr-default hook pattern as the trace layer, so an uninstalled
// SpanLog costs one pointer test per hook.
//
// The log is bounded: at most `max_in_flight` spans are tracked at once
// (overflow opens are counted and ignored), and closed spans retain no
// per-span state — only order-independent aggregates (atomically-merged
// counters and fixed-bucket histograms guarded by the log's mutex). Every
// aggregate is a commutative sum over per-event contributions, which is
// what keeps the exported summary byte-identical across --shards K.
//
// Like the rest of obs/, this header must not depend on sim/ — span ids and
// times are plain integers here; the engine and protocols own the mapping.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace bsvc::obs {

/// Simulation-side exchange identifier; 0 means "no span". Allocated
/// content-addressed like the sharded engine's event keys — (requester
/// address << 40) | per-requester sequence — so ids are a pure function of
/// the trajectory, independent of shard count and thread schedule.
using SpanId = std::uint64_t;

inline constexpr SpanId kNoSpan = 0;

/// Why a span closed. Answered: the peer's answer reached the requester.
/// Timeout: the per-exchange timer fired with no answer (liveness extension
/// on). Superseded: the next cycle's ACTIVESTEP opened a new exchange while
/// this one was still pending. Evicted: the peer was condemned while the
/// exchange was pending.
enum class SpanOutcome : std::uint8_t { Answered, Timeout, Superseded, Evicted };

/// Short stable name ("answered", "timeout", "superseded", "evicted").
const char* span_outcome_name(SpanOutcome outcome);

/// Transport event kinds the engine attributes to a span, mirroring the
/// trace layer's message kinds.
enum class SpanTransport : std::uint8_t { Send, Drop, Deliver, DeadDest };

/// Order-independent aggregate view of a SpanLog (see SpanLog::summary()).
/// Latencies are virtual ticks.
struct SpanSummary {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;
  std::uint64_t in_flight = 0;         // still open at summary time
  std::uint64_t overflow_dropped = 0;  // opens ignored: table at capacity
  std::uint64_t stray_closes = 0;      // close without a matching open (tripwire)
  std::uint64_t answered = 0;
  std::uint64_t timeout = 0;
  std::uint64_t superseded = 0;
  std::uint64_t evicted = 0;
  std::uint64_t sends = 0;
  std::uint64_t drops = 0;
  std::uint64_t delivers = 0;
  std::uint64_t dead_letters = 0;
  // Request->answer latency, answered exchanges only.
  std::uint64_t rtt_count = 0;
  double rtt_mean = 0.0;
  double rtt_max = 0.0;
  double rtt_p50 = 0.0;
  double rtt_p95 = 0.0;
  double rtt_p99 = 0.0;
  // Open->close lifetime, every closed span (supersession waits a full cycle).
  double lifetime_p50 = 0.0;
  double lifetime_p95 = 0.0;
  double lifetime_p99 = 0.0;
  // Per-closed-span means.
  double hops_mean = 0.0;     // transport deliveries per span (request + answer)
  double retries_mean = 0.0;  // explicit retransmissions per span (on_retry)
  double request_descriptors_mean = 0.0;
  double answer_descriptors_mean = 0.0;  // over answered spans
};

/// Bounded, thread-safe span aggregator. One instance per Engine, installed
/// with Engine::set_span_log; protocols open/close through the engine's
/// pointer. All methods are serialized by one mutex — open/close/transport
/// rates are per-exchange, far off the per-event hot path.
class SpanLog {
 public:
  static constexpr std::size_t kDefaultMaxInFlight = std::size_t{1} << 16;

  explicit SpanLog(std::size_t max_in_flight = kDefaultMaxInFlight);

  SpanLog(const SpanLog&) = delete;
  SpanLog& operator=(const SpanLog&) = delete;

  /// Optionally mirrors live outcome counters into an engine registry
  /// ("span.opened", "span.answered", "span.timeout", "span.superseded",
  /// "span.evicted") so periodic samplers pick spans up as time series.
  /// Call before the run; the registry must outlive the log.
  void bind_registry(MetricsRegistry& registry);

  /// Starts tracking span `id` opened at virtual time `now` with
  /// `request_descriptors` descriptors in the request message. When the
  /// in-flight table is at capacity the open is counted as dropped and the
  /// span is not tracked (its close will then count as stray).
  void open(SpanId id, std::uint64_t now, std::uint32_t request_descriptors);

  /// Closes span `id` at virtual time `now`. Exactly one close per open is
  /// the contract; a close with no matching open (double close, or open
  /// dropped on overflow) bumps the stray_closes tripwire instead.
  void close(SpanId id, std::uint64_t now, SpanOutcome outcome,
             std::uint32_t answer_descriptors = 0);

  /// Attributes one engine transport event to span `id`. Unknown ids still
  /// count in the global transport tallies (e.g. a duplicate delivered
  /// after the span closed) but update no per-span state.
  void on_transport(SpanId id, SpanTransport transport);

  /// Records one explicit retransmission on span `id` (the retry layer's
  /// hook — transport sends alone cannot distinguish a retry from a
  /// multi-hop forward). Mirrors into the "span.retries" registry counter.
  void on_retry(SpanId id);

  SpanSummary summary() const;

 private:
  struct InFlight {
    std::uint64_t opened_at = 0;
    std::uint32_t request_descriptors = 0;
    std::uint32_t sends = 0;
    std::uint32_t delivers = 0;
    std::uint32_t retries = 0;
  };

  mutable std::mutex mutex_;
  std::size_t max_in_flight_;
  std::unordered_map<SpanId, InFlight> in_flight_;
  std::uint64_t opened_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t overflow_dropped_ = 0;
  std::uint64_t stray_closes_ = 0;
  std::uint64_t outcomes_[4] = {0, 0, 0, 0};    // indexed by SpanOutcome
  std::uint64_t transports_[4] = {0, 0, 0, 0};  // indexed by SpanTransport
  std::uint64_t hops_total_ = 0;
  std::uint64_t retries_total_ = 0;
  std::uint64_t request_descriptors_total_ = 0;
  std::uint64_t answer_descriptors_total_ = 0;
  HistogramMetric rtt_;
  HistogramMetric lifetime_;
  Counter* reg_opened_ = nullptr;
  Counter* reg_retries_ = nullptr;
  Counter* reg_outcomes_[4] = {nullptr, nullptr, nullptr, nullptr};
};

}  // namespace bsvc::obs
