#include "obs/trace.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace bsvc::obs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::Send: return "send";
    case TraceKind::Drop: return "drop";
    case TraceKind::DeadDest: return "dead";
    case TraceKind::Deliver: return "deliver";
    case TraceKind::TimerFire: return "timer";
    case TraceKind::NodeStart: return "start";
    case TraceKind::NodeKill: return "kill";
  }
  return "?";
}

std::size_t MemoryTraceSink::count(TraceKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [kind](const TraceRecord& r) { return r.kind == kind; }));
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    BSVC_WARN("trace: cannot open '%s' for writing; tracing disabled", path.c_str());
    return;
  }
  // Trace streams are tens of bytes per event; a fat stdio buffer keeps the
  // per-record cost to a formatted append.
  io_buffer_.resize(std::size_t{1} << 16);
  std::setvbuf(file_, io_buffer_.data(), _IOFBF, io_buffer_.size());
}

JsonlTraceSink::~JsonlTraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlTraceSink::record(const TraceRecord& r) {
  if (file_ == nullptr) return;
  // Compact keys: t = virtual time, k = kind, n = node, p = peer, s = slot,
  // m = payload metric tag, b/id/d = kind-dependent aux (bytes / timer id /
  // start delay). Unused fields are omitted, so lines stay short.
  switch (r.kind) {
    case TraceKind::Send:
    case TraceKind::Drop:
    case TraceKind::DeadDest:
    case TraceKind::Deliver:
      std::fprintf(file_, "{\"t\":%llu,\"k\":\"%s\",\"n\":%u,\"p\":%u,\"s\":%u,\"m\":\"%s\",\"b\":%llu}\n",
                   static_cast<unsigned long long>(r.time), trace_kind_name(r.kind), r.node,
                   r.peer, r.slot, r.tag != nullptr ? r.tag : "?",
                   static_cast<unsigned long long>(r.aux));
      break;
    case TraceKind::TimerFire:
      std::fprintf(file_, "{\"t\":%llu,\"k\":\"timer\",\"n\":%u,\"s\":%u,\"id\":%llu}\n",
                   static_cast<unsigned long long>(r.time), r.node, r.slot,
                   static_cast<unsigned long long>(r.aux));
      break;
    case TraceKind::NodeStart:
      std::fprintf(file_, "{\"t\":%llu,\"k\":\"start\",\"n\":%u,\"d\":%llu}\n",
                   static_cast<unsigned long long>(r.time), r.node,
                   static_cast<unsigned long long>(r.aux));
      break;
    case TraceKind::NodeKill:
      std::fprintf(file_, "{\"t\":%llu,\"k\":\"kill\",\"n\":%u}\n",
                   static_cast<unsigned long long>(r.time), r.node);
      break;
  }
}

void JsonlTraceSink::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace bsvc::obs
