// Engine trace layer: a sink interface the simulation engine feeds with
// compact records at its hook points (message send/drop/dead-destination/
// delivery, timer fires, node starts and kills), each stamped with virtual
// time.
//
// The engine holds a raw `TraceSink*` that defaults to nullptr; every hook
// is a single pointer test on the hot path, no allocation, no virtual call
// unless a sink is installed. Sinks only *observe* — installing one must
// never perturb the simulation (golden-replay witnesses are replayed with
// tracing on to pin this down). Record layout and the JSONL wire format are
// documented in docs/observability.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "id/node_id.hpp"

namespace bsvc::obs {

enum class TraceKind : std::uint8_t {
  Send,       // payload handed to the transport
  Drop,       // lost: link filter, random drop, or transcoder rejection
  DeadDest,   // arrived at a dead/removed node
  Deliver,    // reached a live protocol
  TimerFire,  // on_timer about to run
  NodeStart,  // node marked alive
  NodeKill,   // node killed
};

/// Short stable name of a kind ("send", "drop", "dead", "deliver", "timer",
/// "start", "kill").
const char* trace_kind_name(TraceKind kind);

/// One trace record. Field meaning by kind:
///  - message kinds (Send/Drop/DeadDest/Deliver): `node` is the sender for
///    Send/Drop and the destination for DeadDest/Deliver, `peer` the other
///    endpoint; `tag` is the payload's metric_tag(), `aux` its wire bytes
///    including UDP/IP headers;
///  - TimerFire: `node` + `slot`, `aux` is the timer id;
///  - NodeStart: `node`, `aux` is the start delay in ticks;
///  - NodeKill: `node`.
/// `tag` is a string literal owned by the payload's class; sinks that
/// outlive the engine must copy it.
struct TraceRecord {
  std::uint64_t time = 0;
  std::uint64_t aux = 0;
  const char* tag = nullptr;
  Address node = kNullAddress;
  Address peer = kNullAddress;
  TraceKind kind = TraceKind::Send;
  std::uint8_t slot = 0;
};

/// The engine-facing interface. Implementations must not touch the engine.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& r) = 0;
  virtual void flush() {}
};

/// Buffers records in memory; for tests and in-process analysis.
class MemoryTraceSink final : public TraceSink {
 public:
  void record(const TraceRecord& r) override { records_.push_back(r); }
  const std::vector<TraceRecord>& records() const { return records_; }
  /// Number of records of one kind.
  std::size_t count(TraceKind kind) const;
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// Streams records as one compact JSON object per line. Output is a pure
/// function of the record stream, so fixed-seed runs produce byte-identical
/// files whatever the bench thread count. Open failures are reported through
/// bsvc::log_message and turn the sink into a no-op (ok() == false).
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  bool ok() const { return file_ != nullptr; }
  void record(const TraceRecord& r) override;
  void flush() override;

 private:
  std::FILE* file_ = nullptr;
  std::vector<char> io_buffer_;
};

}  // namespace bsvc::obs
