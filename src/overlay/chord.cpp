#include "overlay/chord.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "net/codec.hpp"

namespace bsvc {

namespace {
constexpr std::uint64_t kInitTimer = 1;
constexpr std::uint64_t kActiveTimer = 2;

bool id_less(const NodeDescriptor& d, NodeId id) { return d.id < id; }

/// First descriptor at ring position >= target (wrapping), in an id-sorted
/// list; nullopt for an empty list.
std::optional<NodeDescriptor> first_at_or_after(const std::vector<NodeDescriptor>& sorted,
                                                NodeId target) {
  if (sorted.empty()) return std::nullopt;
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), target, id_less);
  return it == sorted.end() ? sorted.front() : *it;
}
}  // namespace

// --- FingerTable ---------------------------------------------------------

FingerTable::FingerTable(NodeId own) : own_(own) {
  for (auto& slot : best_) slot = {0, kNullAddress};
}

bool FingerTable::offer(const NodeDescriptor& d) {
  if (d.id == own_ || d.addr == kNullAddress) return false;
  bool improved = false;
  for (int i = 0; i < kBits; ++i) {
    const NodeId target = own_ + (NodeId{1} << i);  // wraps
    const NodeId dist = successor_distance(target, d.id);
    if (best_[static_cast<std::size_t>(i)].addr == kNullAddress ||
        dist < successor_distance(target, best_[static_cast<std::size_t>(i)].id)) {
      best_[static_cast<std::size_t>(i)] = d;
      improved = true;
    }
  }
  return improved;
}

std::size_t FingerTable::offer_all(const DescriptorList& ds) {
  std::size_t improved = 0;
  for (const auto& d : ds) {
    if (offer(d)) ++improved;
  }
  return improved;
}

bool FingerTable::remove(NodeId id) {
  bool removed = false;
  for (auto& slot : best_) {
    if (slot.addr != kNullAddress && slot.id == id) {
      slot = {0, kNullAddress};
      removed = true;
    }
  }
  return removed;
}

std::optional<NodeDescriptor> FingerTable::finger(int i) const {
  BSVC_CHECK(i >= 0 && i < kBits);
  const auto& slot = best_[static_cast<std::size_t>(i)];
  if (slot.addr == kNullAddress) return std::nullopt;
  return slot;
}

DescriptorList FingerTable::entries() const {
  DescriptorList out;
  for (const auto& slot : best_) {
    if (slot.addr == kNullAddress) continue;
    bool seen = false;
    for (const auto& e : out) seen |= e.id == slot.id;
    if (!seen) out.push_back(slot);
  }
  return out;
}

std::size_t FingerTable::filled() const {
  std::size_t n = 0;
  for (const auto& slot : best_) n += slot.addr != kNullAddress ? 1 : 0;
  return n;
}

// --- ChordMessage --------------------------------------------------------

std::size_t ChordMessage::wire_bytes() const {
  return kDescriptorWireBytes + 1 + descriptor_list_wire_bytes(ring_part.size()) +
         descriptor_list_wire_bytes(finger_part.size());
}

// --- ChordBootstrapProtocol ----------------------------------------------

ChordBootstrapProtocol::ChordBootstrapProtocol(ChordConfig config, PeerSampler* sampler,
                                               SimTime start_delay)
    : config_(config), sampler_(sampler), start_delay_(start_delay) {
  BSVC_CHECK(sampler_ != nullptr);
  BSVC_CHECK(config_.c >= 2);
}

void ChordBootstrapProtocol::on_start(Context& ctx) {
  self_ = {ctx.self_id(), ctx.self()};
  ctx.schedule_timer(start_delay_, kInitTimer);
}

void ChordBootstrapProtocol::on_timer(Context& ctx, std::uint64_t timer_id) {
  switch (timer_id) {
    case kInitTimer:
      init_tables();
      active_step(ctx);
      if (!chain_started_) {
        chain_started_ = true;
        ctx.schedule_timer(config_.delta, kActiveTimer);
      }
      break;
    case kActiveTimer:
      active_step(ctx);
      ctx.schedule_timer(config_.delta, kActiveTimer);
      break;
    default:
      BSVC_CHECK_MSG(false, "unknown timer");
  }
}

void ChordBootstrapProtocol::init_tables() {
  leaf_.emplace(self_.id, config_.c);
  fingers_.emplace(self_.id);
  leaf_->update(sampler_->sample(config_.c));
}

void ChordBootstrapProtocol::active_step(Context& ctx) {
  if (leaf_->empty()) {
    leaf_->update(sampler_->sample(config_.c));
    if (leaf_->empty()) return;
  }
  const auto peer = select_peer(ctx);
  if (!peer) return;
  ctx.send(peer->addr, create_message(peer->id, /*is_request=*/true));

  if (config_.fix_fingers) {
    const int slot = FingerTable::kBits - 1 - probe_cursor_;
    probe_cursor_ = (probe_cursor_ + 1) % std::max(1, config_.probe_span);
    const auto candidate = fingers_->finger(slot);
    if (candidate && candidate->id != self_.id && candidate->addr != peer->addr) {
      ctx.send(candidate->addr, create_message(candidate->id, /*is_request=*/true));
    }
  }
}

std::optional<NodeDescriptor> ChordBootstrapProtocol::select_peer(Context& ctx) {
  // Same directional near-half selection as the prefix-table protocol (see
  // BootstrapProtocol::select_peer for why per-direction matters).
  const auto& succ = leaf_->successors();
  const auto& pred = leaf_->predecessors();
  const std::size_t ns = succ.empty() ? 0 : std::max<std::size_t>(1, succ.size() / 2);
  const std::size_t np = pred.empty() ? 0 : std::max<std::size_t>(1, pred.size() / 2);
  if (ns + np == 0) return std::nullopt;
  const std::size_t pick = ctx.rng().below(ns + np);
  return pick < ns ? succ[pick] : pred[pick - ns];
}

std::unique_ptr<ChordMessage> ChordBootstrapProtocol::create_message(NodeId peer_id,
                                                                     bool is_request) {
  DescriptorList un = leaf_->all();
  const DescriptorList samples = sampler_->sample(config_.cr);
  un.insert(un.end(), samples.begin(), samples.end());
  const DescriptorList finger_entries = fingers_->entries();
  un.insert(un.end(), finger_entries.begin(), finger_entries.end());
  un.push_back(self_);

  std::sort(un.begin(), un.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) { return a.id < b.id; });
  un.erase(std::unique(un.begin(), un.end(),
                       [](const NodeDescriptor& a, const NodeDescriptor& b) {
                         return a.id == b.id;
                       }),
           un.end());
  un.erase(std::remove_if(un.begin(), un.end(),
                          [peer_id](const NodeDescriptor& d) { return d.id == peer_id; }),
           un.end());

  // Ring part: the peer's would-be leaf set (directional halves + top-up).
  DescriptorList succ, pred;
  for (const auto& d : un) (is_successor(peer_id, d.id) ? succ : pred).push_back(d);
  std::sort(succ.begin(), succ.end(),
            [peer_id](const NodeDescriptor& a, const NodeDescriptor& b) {
              return successor_distance(peer_id, a.id) < successor_distance(peer_id, b.id);
            });
  std::sort(pred.begin(), pred.end(),
            [peer_id](const NodeDescriptor& a, const NodeDescriptor& b) {
              return predecessor_distance(peer_id, a.id) < predecessor_distance(peer_id, b.id);
            });
  const std::size_t half = config_.c / 2;
  std::size_t take_s = std::min(succ.size(), half);
  std::size_t take_p = std::min(pred.size(), half);
  std::size_t spare = config_.c - take_s - take_p;
  const std::size_t extra_s = std::min(succ.size() - take_s, spare);
  take_s += extra_s;
  spare -= extra_s;
  take_p += std::min(pred.size() - take_p, spare);
  DescriptorList ring_part;
  ring_part.reserve(take_s + take_p);
  ring_part.insert(ring_part.end(), succ.begin(),
                   succ.begin() + static_cast<std::ptrdiff_t>(take_s));
  ring_part.insert(ring_part.end(), pred.begin(),
                   pred.begin() + static_cast<std::ptrdiff_t>(take_p));

  // Finger part: for each of the peer's finger targets, the best local
  // candidate (first at or past peer + 2^i). `un` is already id-sorted.
  DescriptorList finger_part;
  std::unordered_set<NodeId> shipped;
  for (const auto& d : ring_part) shipped.insert(d.id);
  for (int i = 0; i < FingerTable::kBits; ++i) {
    const NodeId target = peer_id + (NodeId{1} << i);
    const auto best = first_at_or_after(un, target);
    if (!best) break;
    if (shipped.insert(best->id).second) finger_part.push_back(*best);
  }

  return std::make_unique<ChordMessage>(self_, std::move(ring_part), std::move(finger_part),
                                        is_request);
}

void ChordBootstrapProtocol::on_message(Context& ctx, Address from, const Payload& payload) {
  const auto* msg = payload_cast<ChordMessage>(payload);
  if (msg == nullptr) {
    BSVC_WARN("chord: unexpected payload type %s", payload.type_name());
    return;
  }
  if (!active()) return;
  if (msg->is_request) {
    ctx.send(from, create_message(msg->sender.id, /*is_request=*/false));
  }
  update_from(*msg);
}

void ChordBootstrapProtocol::update_from(const ChordMessage& msg) {
  DescriptorList combined;
  combined.reserve(msg.ring_part.size() + msg.finger_part.size() + 1);
  combined.insert(combined.end(), msg.ring_part.begin(), msg.ring_part.end());
  combined.insert(combined.end(), msg.finger_part.begin(), msg.finger_part.end());
  combined.push_back(msg.sender);
  leaf_->update(combined);
  fingers_->offer_all(combined);
}

const LeafSet& ChordBootstrapProtocol::leaf_set() const {
  BSVC_CHECK_MSG(leaf_.has_value(), "protocol not yet activated");
  return *leaf_;
}

const FingerTable& ChordBootstrapProtocol::fingers() const {
  BSVC_CHECK_MSG(fingers_.has_value(), "protocol not yet activated");
  return *fingers_;
}

// --- ChordOracle ---------------------------------------------------------

ChordOracle::ChordOracle(const Engine& engine, SlotRef<ChordBootstrapProtocol> chord_slot)
    : engine_(engine), slot_(chord_slot) {
  for (const Address addr : engine.alive_addresses()) {
    members_.push_back(engine.descriptor_of(addr));
  }
  std::sort(members_.begin(), members_.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) { return a.id < b.id; });
}

NodeDescriptor ChordOracle::true_finger(NodeId id, int i) const {
  BSVC_CHECK(!members_.empty());
  const NodeId target = id + (NodeId{1} << i);
  const auto hit = first_at_or_after(members_, target);
  return *hit;
}

ChordMetrics ChordOracle::measure() const {
  ChordMetrics metrics;
  for (const auto& m : members_) {
    const auto& proto = slot_.of(engine_, m.addr);
    for (int i = 0; i < FingerTable::kBits; ++i) {
      const NodeDescriptor truth = true_finger(m.id, i);
      if (truth.id == m.id) continue;  // degenerate slot (self)
      ++metrics.finger_perfect;
      if (!proto.active()) continue;
      const auto got = proto.fingers().finger(i);
      if (got && got->id == truth.id) ++metrics.finger_present;
    }
  }
  return metrics;
}

}  // namespace bsvc
