// Chord on demand: bootstrapping a Chord ring + finger tables from scratch.
//
// The paper (§4) contrasts its prefix-table protocol with the authors'
// earlier work on jump-starting CHORD [9], whose routing state is defined by
// *distance in the ID space* instead of prefixes: finger i of node p is the
// first node at or past p + 2^i on the ring. This module implements that
// second instantiation of the bootstrapping service over the same
// architecture (peer sampling below, T-Man-style ring gossip, targeted
// finger candidates piggybacked on the exchanged messages), so the two
// designs can be compared under identical conditions (bench/chord_on_demand).
#pragma once

#include <cstdint>
#include <optional>

#include "core/config.hpp"
#include "core/leaf_set.hpp"
#include "core/perfect_tables.hpp"
#include "sampling/peer_sampler.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"
#include "sim/slot_ref.hpp"

namespace bsvc {

/// Chord finger table: for each i in [0, 64), the first known node at ring
/// position >= own + 2^i (the "successor of own + 2^i"). Slots for small i
/// collapse onto the immediate successor; only distinct fingers are stored.
class FingerTable {
 public:
  explicit FingerTable(NodeId own);

  /// Offers a candidate: keeps it for every finger slot i where it lies in
  /// [own + 2^i, current best for i) — i.e. improves the slot toward the
  /// true successor of own + 2^i. Returns whether any slot improved.
  bool offer(const NodeDescriptor& d);

  /// Bulk offer; returns the number of slots improved.
  std::size_t offer_all(const DescriptorList& ds);

  /// Removes a node from every slot that holds it (dead-peer cleanup).
  bool remove(NodeId id);

  /// Current best for finger i (nullopt if no candidate yet).
  std::optional<NodeDescriptor> finger(int i) const;

  /// All distinct finger entries, deduplicated.
  DescriptorList entries() const;

  /// Number of filled slots (out of 64).
  std::size_t filled() const;

  NodeId own_id() const { return own_; }
  static constexpr int kBits = 64;

 private:
  NodeId own_;
  // best_[i].addr == kNullAddress means empty.
  std::array<NodeDescriptor, kBits> best_{};
};

/// Message of the Chord bootstrap: ring part + finger candidates for the
/// peer (nodes lying just past the peer's finger targets).
class ChordMessage final : public Payload {
 public:
  static constexpr PayloadKind kKind = PayloadKind::Chord;

  ChordMessage(NodeDescriptor sender, DescriptorList ring_part, DescriptorList finger_part,
               bool is_request)
      : Payload(kKind),
        sender(sender),
        ring_part(std::move(ring_part)),
        finger_part(std::move(finger_part)),
        is_request(is_request) {}

  std::size_t wire_bytes() const override;
  const char* type_name() const override { return "chord"; }
  const char* metric_tag() const override {
    return is_request ? "chord.request" : "chord.answer";
  }
  NodeDescriptor sender;
  DescriptorList ring_part;
  DescriptorList finger_part;
  bool is_request;
};

struct ChordConfig {
  /// Ring neighbourhood size (successor list + predecessor list).
  std::size_t c = 20;
  /// Random samples mixed into each message.
  std::size_t cr = 30;
  /// Gossip period.
  SimTime delta = kDelta;
  /// Candidates shipped per finger slot of the peer.
  int per_finger = 1;
  /// Run a fix_fingers-style probe alongside each ring exchange: every
  /// cycle the node also exchanges with its current best candidate for one
  /// high finger slot (sweeping probe_span slots from the top). Targets of
  /// the high slots land in far, uniformly random regions that ring gossip
  /// never covers; the candidate sits just past the target, so its reply —
  /// with its own predecessor list in the union — corrects the slot to the
  /// exact successor. Low slots resolve through ring knowledge alone.
  /// Costs one extra message pair per node per cycle while enabled.
  bool fix_fingers = true;
  int probe_span = 16;
};

/// Per-node Chord bootstrap instance (mirrors BootstrapProtocol's shape).
class ChordBootstrapProtocol final : public Protocol {
 public:
  ChordBootstrapProtocol(ChordConfig config, PeerSampler* sampler, SimTime start_delay);

  void on_start(Context& ctx) override;
  void on_timer(Context& ctx, std::uint64_t timer_id) override;
  void on_message(Context& ctx, Address from, const Payload& payload) override;

  bool active() const { return leaf_.has_value(); }
  const LeafSet& leaf_set() const;
  const FingerTable& fingers() const;

  /// Builds the message for `peer_id` (public for tests/benches).
  std::unique_ptr<ChordMessage> create_message(NodeId peer_id, bool is_request);

 private:
  void init_tables();
  void active_step(Context& ctx);
  std::optional<NodeDescriptor> select_peer(Context& ctx);
  void update_from(const ChordMessage& msg);

  ChordConfig config_;
  PeerSampler* sampler_;
  SimTime start_delay_;
  NodeDescriptor self_{};
  std::optional<LeafSet> leaf_;
  std::optional<FingerTable> fingers_;
  bool chain_started_ = false;
  int probe_cursor_ = 0;  // fix_fingers sweep position (0 = topmost slot)
};

/// Convergence metric for Chord: fraction of finger slots (over all nodes,
/// counting only slots whose true target exists and is distinct per node's
/// perfect table) not yet holding the exact successor of own + 2^i, plus
/// the leaf metric shared with the prefix experiments.
struct ChordMetrics {
  std::uint64_t finger_perfect = 0;
  std::uint64_t finger_present = 0;
  double missing_finger_fraction() const {
    return finger_perfect == 0
               ? 0.0
               : 1.0 - static_cast<double>(finger_present) / static_cast<double>(finger_perfect);
  }
  bool fingers_converged() const { return finger_present == finger_perfect; }
};

/// Measures finger correctness against the true membership.
class ChordOracle {
 public:
  ChordOracle(const Engine& engine, SlotRef<ChordBootstrapProtocol> chord_slot);

  ChordMetrics measure() const;

  /// True finger i of the given member: successor of id + 2^i.
  NodeDescriptor true_finger(NodeId id, int i) const;

 private:
  const Engine& engine_;
  SlotRef<ChordBootstrapProtocol> slot_;
  std::vector<NodeDescriptor> members_;  // sorted by id
};

}  // namespace bsvc
