#include "overlay/join_protocol.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "id/id_generator.hpp"
#include "net/codec.hpp"
#include "overlay/pastry_router.hpp"

namespace bsvc {

SequentialJoinNetwork::SequentialJoinNetwork(BootstrapConfig config, std::uint64_t seed,
                                             std::uint64_t hop_latency)
    : config_(config), rng_(seed), hop_latency_(hop_latency) {
  config_.digits.validate<NodeId>();
}

void SequentialJoinNetwork::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    ctr_messages_ = ctr_route_hops_ = ctr_joins_ = nullptr;
    return;
  }
  ctr_messages_ = &metrics->counter("join.messages");
  ctr_route_hops_ = &metrics->counter("join.route_hops");
  ctr_joins_ = &metrics->counter("join.joins");
}

std::size_t SequentialJoinNetwork::index_of(Address addr) const {
  BSVC_CHECK(addr < index_by_addr_.size());
  return index_by_addr_[addr];
}

std::vector<std::size_t> SequentialJoinNetwork::route_to(std::size_t start, NodeId key) const {
  std::vector<std::size_t> path{start};
  std::size_t at = start;
  for (std::size_t hop = 0; hop < 64; ++hop) {
    const JoinedNode& node = *nodes_[at];
    const Address next_addr = pastry_next_hop(node.descriptor.id, node.descriptor.addr,
                                              node.leaf, node.prefix, key);
    if (next_addr == node.descriptor.addr) return path;
    at = index_of(next_addr);
    path.push_back(at);
  }
  return path;  // hop bound hit; caller treats the last node as best effort
}

void SequentialJoinNetwork::join(const NodeDescriptor& descriptor) {
  const std::uint64_t messages_before = costs_.messages;
  const std::uint64_t hops_before = costs_.total_route_hops;
  auto node = std::make_unique<JoinedNode>(descriptor, config_);
  if (descriptor.addr >= index_by_addr_.size()) {
    index_by_addr_.resize(descriptor.addr + 1, 0xFFFFFFFFu);
  }

  if (!nodes_.empty()) {
    // 1. Join request routed from a random seed toward the new node's ID.
    const std::size_t seed = static_cast<std::size_t>(rng_.below(nodes_.size()));
    const auto path = route_to(seed, descriptor.id);
    costs_.messages += path.size();  // request forwarded along every hop
    costs_.bytes += path.size() * (kDescriptorWireBytes + kUdpIpHeaderBytes);
    costs_.total_route_hops += path.size() - 1;
    costs_.critical_time += path.size() * hop_latency_;

    // 2. Each hop returns the prefix-table row matching its shared-prefix
    // depth with X, plus its own descriptor.
    DescriptorList gathered;
    for (const std::size_t hop_idx : path) {
      const JoinedNode& hop = *nodes_[hop_idx];
      DescriptorList row;
      if (hop.descriptor.id != descriptor.id) {
        const int depth = common_prefix_digits(descriptor.id, hop.descriptor.id, config_.digits);
        // Entries in the hop's rows 0..depth share the same usefulness for X;
        // standard Pastry ships row `depth`. Cells are scanned column-wise.
        for (int col = 0; col < config_.digits.radix(); ++col) {
          if (col == digit(hop.descriptor.id, depth, config_.digits)) continue;
          const DescriptorList cell = hop.prefix.cell(depth, col);
          row.insert(row.end(), cell.begin(), cell.end());
        }
      }
      row.push_back(hop.descriptor);
      costs_.messages += 1;
      costs_.bytes += descriptor_list_wire_bytes(row.size()) + kUdpIpHeaderBytes;
      gathered.insert(gathered.end(), row.begin(), row.end());
    }
    // Replies stream back in parallel with the forward path; one extra
    // hop-latency covers the last leg.
    costs_.critical_time += hop_latency_;

    // 3. The root returns its leaf set.
    const JoinedNode& root = *nodes_[path.back()];
    const DescriptorList root_leaf = root.leaf.all();
    gathered.insert(gathered.end(), root_leaf.begin(), root_leaf.end());
    costs_.messages += 1;
    costs_.bytes += descriptor_list_wire_bytes(root_leaf.size()) + kUdpIpHeaderBytes;
    costs_.critical_time += hop_latency_;

    // 4. X assembles its state and announces itself to everyone it knows.
    node->leaf.update(gathered);
    node->prefix.insert_all(gathered);

    std::unordered_set<Address> contacts;
    for (const auto& d : node->leaf.all()) contacts.insert(d.addr);
    for (const auto& d : node->prefix.entries()) contacts.insert(d.addr);
    for (const Address contact : contacts) {
      const std::size_t idx = index_of(contact);
      const NodeDescriptor self = descriptor;
      nodes_[idx]->leaf.update(std::span<const NodeDescriptor>(&self, 1));
      nodes_[idx]->prefix.insert(self);
      costs_.messages += 1;
      costs_.bytes += kDescriptorWireBytes + kUdpIpHeaderBytes;
    }
    // Announcements fan out concurrently: one latency on the critical path.
    costs_.critical_time += hop_latency_;
  }

  index_by_addr_[descriptor.addr] = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  ++costs_.joins;
  if (ctr_joins_ != nullptr) {
    ctr_messages_->add(costs_.messages - messages_before);
    ctr_route_hops_->add(costs_.total_route_hops - hops_before);
    ctr_joins_->inc();
  }
}

void SequentialJoinNetwork::grow(std::size_t n) {
  IdGenerator ids(rng_.split());
  for (std::size_t i = 0; i < n; ++i) {
    join({ids.next(), static_cast<Address>(index_by_addr_.size())});
  }
}

JoinQuality SequentialJoinNetwork::measure_quality(std::size_t lookups) {
  JoinQuality quality;
  if (nodes_.empty()) return quality;

  std::vector<NodeDescriptor> members;
  members.reserve(nodes_.size());
  for (const auto& node : nodes_) members.push_back(node->descriptor);
  const PerfectTables truth(members, config_);

  std::uint64_t leaf_perfect = 0;
  std::uint64_t leaf_present = 0;
  std::uint64_t prefix_perfect = truth.perfect_prefix_sum();
  std::uint64_t prefix_present = 0;
  for (const auto& node : nodes_) {
    const std::size_t rank = truth.rank_of_id(node->descriptor.id);
    for (const NodeId want : truth.perfect_leaf_ids(rank)) {
      ++leaf_perfect;
      if (node->leaf.contains(want)) ++leaf_present;
    }
    prefix_present += node->prefix.filled();
  }
  quality.missing_leaf_fraction =
      leaf_perfect == 0
          ? 0.0
          : 1.0 - static_cast<double>(leaf_present) / static_cast<double>(leaf_perfect);
  quality.missing_prefix_fraction =
      prefix_perfect == 0
          ? 0.0
          : 1.0 - static_cast<double>(prefix_present) / static_cast<double>(prefix_perfect);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < lookups; ++i) {
    const std::size_t start = static_cast<std::size_t>(rng_.below(nodes_.size()));
    const NodeId key = rng_.next_u64();
    const auto path = route_to(start, key);
    if (nodes_[path.back()]->descriptor.id == truth.owner_of(key).id) ++correct;
  }
  quality.lookup_success_rate =
      lookups == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(lookups);
  return quality;
}

}  // namespace bsvc
