// Sequential Pastry-style join: the conventional way to populate a DHT,
// used as the baseline the bootstrapping service is compared against
// (paper §6: bootstrapping a large network by individual joins is exactly
// what "known protocols do not support very well").
//
// The standard join procedure for node X through seed A:
//   1. X sends a join request to A, which is routed greedily to X's own ID;
//      every hop costs one message.
//   2. Hop i returns row i of its prefix table (one message each) — by
//      construction hop i shares at least i digits with X.
//   3. The root Z (numerically closest existing node) returns its leaf set.
//   4. X assembles its tables from the returned state and announces itself
//      to every node it now knows (one message each); recipients fold X into
//      their own tables.
// Joins are serialized through the network (a join must complete before the
// next begins — the well-known correctness requirement for concurrent
// Pastry joins is precisely what makes massive joins slow). Virtual time
// advances by one hop latency per message leg on the join's critical path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/leaf_set.hpp"
#include "core/perfect_tables.hpp"
#include "core/prefix_table.hpp"
#include "obs/metrics.hpp"

namespace bsvc {

/// Cumulative cost of all joins performed so far.
struct JoinCosts {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;        // descriptor payloads, codec-sized
  std::uint64_t critical_time = 0;  // serialized makespan in ticks
  std::uint64_t total_route_hops = 0;
  std::uint64_t joins = 0;

  double avg_route_hops() const {
    return joins == 0 ? 0.0
                      : static_cast<double>(total_route_hops) / static_cast<double>(joins);
  }
};

/// Quality of the resulting tables versus ground truth over the final
/// membership (same metric definitions as the bootstrap experiments).
struct JoinQuality {
  double missing_leaf_fraction = 0.0;
  double missing_prefix_fraction = 0.0;
  double lookup_success_rate = 0.0;  // greedy Pastry routing over the tables
};

/// An in-memory DHT grown by sequential joins. Not engine-backed: join cost
/// is deterministic given the ID sequence, so the baseline counts messages
/// and critical-path latency directly.
class SequentialJoinNetwork {
 public:
  /// `hop_latency` is the per-message latency used for the makespan.
  SequentialJoinNetwork(BootstrapConfig config, std::uint64_t seed,
                        std::uint64_t hop_latency = 80);

  /// Joins one node; the first node founds the network for free.
  void join(const NodeDescriptor& descriptor);

  /// Joins `n` nodes with generated unique IDs (addresses 0..n-1).
  void grow(std::size_t n);

  const JoinCosts& costs() const { return costs_; }
  std::size_t size() const { return nodes_.size(); }

  /// Optional metrics registry (the network is not engine-backed, so the
  /// harness passes one explicitly; nullptr detaches). Each join() then
  /// advances the counters "join.messages", "join.route_hops" and
  /// "join.joins" alongside the JoinCosts totals.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Measures table quality over the current membership; `lookups` random
  /// greedy routes probe end-to-end usability.
  JoinQuality measure_quality(std::size_t lookups = 500);

  const LeafSet& leaf_of(std::size_t index) const { return nodes_[index]->leaf; }
  const PrefixTable& prefix_of(std::size_t index) const { return nodes_[index]->prefix; }

 private:
  struct JoinedNode {
    NodeDescriptor descriptor;
    LeafSet leaf;
    PrefixTable prefix;

    JoinedNode(const NodeDescriptor& d, const BootstrapConfig& cfg)
        : descriptor(d), leaf(d.id, cfg.c), prefix(d.id, cfg.digits, cfg.k) {}
  };

  /// Greedy route over joined nodes' tables; returns the path (start first).
  std::vector<std::size_t> route_to(std::size_t start, NodeId key) const;

  std::size_t index_of(Address addr) const;

  BootstrapConfig config_;
  Rng rng_;
  std::uint64_t hop_latency_;
  JoinCosts costs_;
  obs::Counter* ctr_messages_ = nullptr;
  obs::Counter* ctr_route_hops_ = nullptr;
  obs::Counter* ctr_joins_ = nullptr;
  std::vector<std::unique_ptr<JoinedNode>> nodes_;
  std::vector<std::uint32_t> index_by_addr_;
};

}  // namespace bsvc
