#include "overlay/kademlia_lookup.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"

namespace bsvc {

KademliaLookup::KademliaLookup(const Engine& engine, SlotRef<BootstrapProtocol> bootstrap_slot,
                               KademliaConfig config)
    : engine_(engine), slot_(bootstrap_slot), config_(config) {
  BSVC_CHECK(config_.alpha >= 1);
  BSVC_CHECK(config_.k_closest >= 1);
}

std::vector<NodeDescriptor> KademliaLookup::closest_known(Address node, NodeId target) const {
  const auto& proto = slot_.of(engine_, node);
  std::vector<NodeDescriptor> known;
  if (proto.active()) {
    const auto leaf = proto.leaf_set().all();
    known.insert(known.end(), leaf.begin(), leaf.end());
    const auto& tbl = proto.prefix_table().entries();
    known.insert(known.end(), tbl.begin(), tbl.end());
  }
  known.push_back(engine_.descriptor_of(node));
  std::sort(known.begin(), known.end(),
            [target](const NodeDescriptor& a, const NodeDescriptor& b) {
              return xor_distance(a.id, target) < xor_distance(b.id, target);
            });
  known.erase(std::unique(known.begin(), known.end(),
                          [](const NodeDescriptor& a, const NodeDescriptor& b) {
                            return a.id == b.id;
                          }),
              known.end());
  if (known.size() > config_.k_closest) known.resize(config_.k_closest);
  return known;
}

KademliaResult KademliaLookup::find_node(Address origin, NodeId target,
                                         const ConvergenceOracle& oracle) const {
  KademliaResult result;

  // Shortlist of candidates ordered by XOR distance to the target.
  std::vector<NodeDescriptor> shortlist = closest_known(origin, target);
  std::unordered_set<Address> queried{origin};
  result.queries = 1;

  const auto xor_less = [target](const NodeDescriptor& a, const NodeDescriptor& b) {
    return xor_distance(a.id, target) < xor_distance(b.id, target);
  };

  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    // Pick the α closest not-yet-queried, alive candidates.
    std::vector<NodeDescriptor> batch;
    for (const auto& d : shortlist) {
      if (batch.size() >= config_.alpha) break;
      if (queried.count(d.addr) > 0 || !engine_.is_alive(d.addr)) continue;
      batch.push_back(d);
    }
    if (batch.empty()) break;
    ++result.rounds;

    bool improved = false;
    const NodeId best_before =
        shortlist.empty() ? ~NodeId{0} : xor_distance(shortlist.front().id, target);
    for (const auto& d : batch) {
      queried.insert(d.addr);
      ++result.queries;
      const auto answer = closest_known(d.addr, target);
      shortlist.insert(shortlist.end(), answer.begin(), answer.end());
    }
    std::sort(shortlist.begin(), shortlist.end(), xor_less);
    shortlist.erase(std::unique(shortlist.begin(), shortlist.end(),
                                [](const NodeDescriptor& a, const NodeDescriptor& b) {
                                  return a.id == b.id;
                                }),
                    shortlist.end());
    if (shortlist.size() > config_.k_closest) shortlist.resize(config_.k_closest);
    improved = !shortlist.empty() && xor_distance(shortlist.front().id, target) < best_before;
    if (!improved && queried.count(shortlist.front().addr) > 0) break;
  }

  BSVC_CHECK(!shortlist.empty());
  result.closest = shortlist.front();

  // Ground truth: the alive node with minimal XOR distance to the target.
  const auto& members = oracle.sorted_members();
  NodeId best = ~NodeId{0};
  for (const auto& m : members) best = std::min(best, xor_distance(m.id, target));
  result.exact = xor_distance(result.closest.id, target) == best;
  return result;
}

KademliaStats KademliaLookup::run_lookups(const ConvergenceOracle& oracle, Rng& rng,
                                          std::size_t lookups) const {
  KademliaStats stats;
  const auto& members = oracle.sorted_members();
  BSVC_CHECK(!members.empty());
  obs::MetricsRegistry& metrics = engine_.metrics();
  obs::Counter& ctr_attempted = metrics.counter("lookup.kademlia.attempted");
  obs::Counter& ctr_exact = metrics.counter("lookup.kademlia.exact");
  double query_sum = 0.0;
  for (std::size_t i = 0; i < lookups; ++i) {
    const Address origin = members[rng.below(members.size())].addr;
    const NodeId target = rng.next_u64();
    const KademliaResult r = find_node(origin, target, oracle);
    ++stats.attempted;
    ctr_attempted.inc();
    if (r.exact) {
      ++stats.exact;
      ctr_exact.inc();
    }
    query_sum += static_cast<double>(r.queries);
  }
  stats.avg_queries =
      stats.attempted == 0 ? 0.0 : query_sum / static_cast<double>(stats.attempted);
  return stats;
}

}  // namespace bsvc
