// Kademlia-style iterative lookup over bootstrapped tables.
//
// Kademlia is the second family the paper names as a consumer of prefix
// tables: with b bits per digit, cell row i is the generalized k-bucket of
// nodes at XOR distance 2^(64-b(i+1)) .. 2^(64-bi). This module runs the
// iterative FIND_NODE procedure — query the α closest known nodes to the
// target, merge their answers, repeat until no progress — using each queried
// node's bootstrap tables as its contact store, and validates the result
// against the true global XOR-closest node. Each query round-trip counts as
// two messages in a deployment.
#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "core/oracle.hpp"
#include "sim/engine.hpp"

namespace bsvc {

/// XOR metric (Kademlia distance).
inline NodeId xor_distance(NodeId a, NodeId b) { return a ^ b; }

struct KademliaConfig {
  std::size_t alpha = 3;       // parallel queries per round
  std::size_t k_closest = 8;   // shortlist width / answer size
  std::size_t max_rounds = 32; // safety bound
};

struct KademliaResult {
  NodeDescriptor closest{};       // best node found
  bool exact = false;             // equals the global XOR-closest node
  std::size_t queries = 0;        // nodes contacted
  std::size_t rounds = 0;
};

struct KademliaStats {
  std::uint64_t attempted = 0;
  std::uint64_t exact = 0;
  double avg_queries = 0.0;
  double exact_rate() const {
    return attempted == 0 ? 0.0 : static_cast<double>(exact) / static_cast<double>(attempted);
  }
};

class KademliaLookup {
 public:
  KademliaLookup(const Engine& engine, SlotRef<BootstrapProtocol> bootstrap_slot,
                 KademliaConfig config = {});

  /// Iterative FIND_NODE for `target` starting from `origin`'s tables.
  KademliaResult find_node(Address origin, NodeId target, const ConvergenceOracle& oracle) const;

  /// Runs `lookups` random lookups from random origins.
  KademliaStats run_lookups(const ConvergenceOracle& oracle, Rng& rng, std::size_t lookups) const;

 private:
  /// A node's answer: its k_closest known contacts to `target`.
  std::vector<NodeDescriptor> closest_known(Address node, NodeId target) const;

  const Engine& engine_;
  SlotRef<BootstrapProtocol> slot_;
  KademliaConfig config_;
};

}  // namespace bsvc
