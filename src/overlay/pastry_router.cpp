#include "overlay/pastry_router.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bsvc {

Address pastry_next_hop(NodeId own, Address own_addr, const LeafSet& leaf,
                        const PrefixTable& prefix, NodeId key,
                        const std::function<bool(const NodeDescriptor&)>& usable) {
  if (key == own || leaf.empty()) return own_addr;
  const auto ok = [&usable](const NodeDescriptor& d) { return !usable || usable(d); };

  // 1. Leaf-set range: if the key falls inside the ring segment the leaf set
  // covers, deliver to the numerically closest of self and leaf entries.
  const auto& succ = leaf.successors();
  const auto& pred = leaf.predecessors();
  const bool in_succ_range =
      !succ.empty() && successor_distance(own, key) <= successor_distance(own, succ.back().id);
  const bool in_pred_range =
      !pred.empty() &&
      predecessor_distance(own, key) <= predecessor_distance(own, pred.back().id);
  if (in_succ_range || in_pred_range) {
    NodeId best_id = own;
    Address best_addr = own_addr;
    for (const auto& list : {&succ, &pred}) {
      for (const auto& d : *list) {
        if (ok(d) && closer_on_ring(key, d.id, best_id)) {
          best_id = d.id;
          best_addr = d.addr;
        }
      }
    }
    return best_addr;
  }

  // 2. Prefix table: a node sharing a strictly longer prefix with the key.
  const int l = common_prefix_digits(own, key, prefix.digits());
  {
    const int j = digit(key, l, prefix.digits());
    DescriptorList cell = prefix.cell(l, j);
    cell.erase(std::remove_if(cell.begin(), cell.end(),
                              [&ok](const NodeDescriptor& d) { return !ok(d); }),
               cell.end());
    if (!cell.empty()) {
      // Any entry works; prefer the one numerically closest to the key.
      const auto it =
          std::min_element(cell.begin(), cell.end(),
                           [key](const NodeDescriptor& a, const NodeDescriptor& b) {
                             return closer_on_ring(key, a.id, b.id);
                           });
      return it->addr;
    }
  }

  // 3. Rare case: any known node with at least as long a common prefix that
  // is numerically closer to the key than we are.
  NodeId best_id = own;
  Address best_addr = own_addr;
  const auto consider = [&](const NodeDescriptor& d) {
    if (ok(d) && common_prefix_digits(d.id, key, prefix.digits()) >= l &&
        closer_on_ring(key, d.id, best_id)) {
      best_id = d.id;
      best_addr = d.addr;
    }
  };
  for (const auto& d : succ) consider(d);
  for (const auto& d : pred) consider(d);
  for (const auto& d : prefix.entries()) consider(d);
  return best_addr;
}

PastryRouter::PastryRouter(const Engine& engine, SlotRef<BootstrapProtocol> bootstrap_slot,
                           std::size_t max_hops)
    : PastryRouter(engine, bootstrap_table_access(engine, bootstrap_slot), max_hops) {}

PastryRouter::PastryRouter(const Engine& engine, TableAccess access, std::size_t max_hops)
    : engine_(engine), access_(std::move(access)), max_hops_(max_hops) {}

Address PastryRouter::next_hop(Address node, NodeId key) const {
  if (!access_.active(node)) return node;
  // Liveness filter: a real router times out on a dead next hop and falls
  // back to the next-best candidate; the simulator knows liveness directly.
  const std::function<bool(const NodeDescriptor&)> usable =
      avoid_dead_ ? std::function<bool(const NodeDescriptor&)>(
                        [this](const NodeDescriptor& d) {
                          return d.addr < engine_.node_count() && engine_.is_alive(d.addr);
                        })
                  : nullptr;
  return pastry_next_hop(engine_.id_of(node), node, access_.leaf(node), access_.prefix(node),
                         key, usable);
}

RouteResult PastryRouter::route(Address start, NodeId key,
                                const ConvergenceOracle& oracle) const {
  RouteResult result;
  Address at = start;
  result.path.push_back(at);
  for (std::size_t hop = 0; hop < max_hops_; ++hop) {
    if (!engine_.is_alive(at)) return result;  // forwarded to a dead node
    const Address next = next_hop(at, key);
    if (next == at) {
      result.delivered = true;
      result.root = at;
      result.correct = oracle.owner_of(key).addr == at;
      return result;
    }
    at = next;
    result.path.push_back(at);
  }
  return result;  // hop budget exhausted (routing loop / broken tables)
}

LookupStats PastryRouter::run_lookups(const ConvergenceOracle& oracle, Rng& rng,
                                      std::size_t lookups) const {
  LookupStats stats;
  const auto& members = oracle.sorted_members();
  BSVC_CHECK(!members.empty());
  // Registry counters aggregate across calls; the LookupStats return value
  // stays per-call. The engine registry is mutable through const (see
  // Engine::metrics()).
  obs::MetricsRegistry& metrics = engine_.metrics();
  obs::Counter& ctr_attempted = metrics.counter("lookup.pastry.attempted");
  obs::Counter& ctr_correct = metrics.counter("lookup.pastry.correct");
  obs::HistogramMetric& hops_hist = metrics.histogram("lookup.pastry.hops", 0.0, 32.0, 32);
  double hop_sum = 0.0;
  for (std::size_t i = 0; i < lookups; ++i) {
    const Address start = members[rng.below(members.size())].addr;
    const NodeId key = rng.next_u64();
    const RouteResult r = route(start, key, oracle);
    ++stats.attempted;
    ctr_attempted.inc();
    if (r.delivered) {
      ++stats.delivered;
      if (r.correct) {
        ++stats.correct;
        ctr_correct.inc();
      }
      hop_sum += static_cast<double>(r.hops());
      hops_hist.add(static_cast<double>(r.hops()));
      stats.max_hops = std::max(stats.max_hops, r.hops());
    }
  }
  stats.avg_hops = stats.delivered == 0 ? 0.0 : hop_sum / static_cast<double>(stats.delivered);
  return stats;
}

}  // namespace bsvc
