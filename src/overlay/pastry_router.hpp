// Pastry-style greedy prefix routing over bootstrapped tables.
//
// The paper's point is that the structures its service builds — leaf set +
// prefix table — are exactly what Pastry/Tapestry/Bamboo route with. This
// module implements the Pastry routing decision over the tables of a
// converged (or converging) network and checks lookups against the oracle's
// key ownership, quantifying how usable the network is at any point of the
// bootstrap. Routing is evaluated as a traversal over node tables (each hop
// corresponds to one message in a deployment).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/experiment.hpp"
#include "core/oracle.hpp"
#include "sim/engine.hpp"

namespace bsvc {

/// Outcome of routing one key from one start node.
struct RouteResult {
  bool delivered = false;       // reached a node that believes it is the root
  bool correct = false;         // that node is the oracle's owner of the key
  std::vector<Address> path;    // visited nodes, start first
  Address root = kNullAddress;  // final node
  std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

/// Aggregate statistics over many lookups.
struct LookupStats {
  std::uint64_t attempted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t correct = 0;
  double avg_hops = 0.0;
  std::size_t max_hops = 0;

  double success_rate() const {
    return attempted == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(attempted);
  }
};

/// The Pastry routing decision over one node's tables: returns the next hop
/// for `key`, or `own_addr` when the node considers itself the root. Shared
/// by PastryRouter (engine-backed) and the sequential-join baseline (local
/// tables). Decision order: leaf-set range delivery, then a prefix-table
/// entry with a strictly longer common prefix, then (rare case) any known
/// node at least as prefix-close and numerically closer.
///
/// `usable` filters candidate entries (never applied to the node itself);
/// pass a liveness check to model the standard timeout-and-try-alternate
/// behaviour of deployed DHT routers, or nullptr to use every entry.
Address pastry_next_hop(NodeId own, Address own_addr, const LeafSet& leaf,
                        const PrefixTable& prefix, NodeId key,
                        const std::function<bool(const NodeDescriptor&)>& usable = nullptr);

/// Routes over the bootstrap protocols' current tables.
class PastryRouter {
 public:
  /// `max_hops` bounds traversals (loops indicate broken tables).
  PastryRouter(const Engine& engine, SlotRef<BootstrapProtocol> bootstrap_slot,
               std::size_t max_hops = 64);

  /// Routes over any protocol exposing leaf set + prefix table.
  PastryRouter(const Engine& engine, TableAccess access, std::size_t max_hops = 64);

  /// When true (default), routing skips table entries whose node is dead —
  /// the simulator's shorthand for timeout-and-try-alternate. Disable to
  /// route blindly over possibly stale tables.
  void set_avoid_dead(bool avoid) { avoid_dead_ = avoid; }

  /// The Pastry next hop at `node` for `key`; kNullAddress when `node`
  /// considers itself the root (no strictly better candidate known).
  Address next_hop(Address node, NodeId key) const;

  /// Full greedy traversal from `start`.
  RouteResult route(Address start, NodeId key, const ConvergenceOracle& oracle) const;

  /// Routes `lookups` random (start, key) pairs and aggregates.
  LookupStats run_lookups(const ConvergenceOracle& oracle, Rng& rng, std::size_t lookups) const;

 private:
  const Engine& engine_;
  TableAccess access_;
  std::size_t max_hops_;
  bool avoid_dead_ = true;
};

}  // namespace bsvc
