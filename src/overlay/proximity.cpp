#include "overlay/proximity.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace bsvc {

CoordinateSpace::CoordinateSpace(std::size_t node_count, Rng rng, double side,
                                 double base_latency)
    : rng_(rng), side_(side), base_latency_(base_latency) {
  BSVC_CHECK(side > 0.0);
  points_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    points_.push_back({rng_.uniform(0.0, side_), rng_.uniform(0.0, side_)});
  }
}

SimTime CoordinateSpace::latency(Address a, Address b) const {
  BSVC_CHECK(a < points_.size() && b < points_.size());
  const double dx = points_[a].x - points_[b].x;
  const double dy = points_[a].y - points_[b].y;
  return static_cast<SimTime>(base_latency_ + std::sqrt(dx * dx + dy * dy));
}

void CoordinateSpace::extend(Address addr) {
  while (points_.size() <= addr) {
    points_.push_back({rng_.uniform(0.0, side_), rng_.uniform(0.0, side_)});
  }
}

void CoordinateSpace::install(Engine& engine) const {
  engine.set_latency_model([this](Address a, Address b) { return latency(a, b); });
}

ProximityRouter::ProximityRouter(const Engine& engine, SlotRef<BootstrapProtocol> bootstrap_slot,
                                 const CoordinateSpace& space, HopSelection selection)
    : engine_(engine), slot_(bootstrap_slot), space_(space), selection_(selection) {}

Address ProximityRouter::next_hop(Address node, NodeId key) const {
  const auto& proto = slot_.of(engine_, node);
  if (!proto.active()) return node;
  const NodeId own = engine_.id_of(node);
  const auto& prefix = proto.prefix_table();

  if (selection_ == HopSelection::Proximity && key != own && !proto.leaf_set().empty()) {
    // Apply proximity selection only on the prefix-table step (the leaf-set
    // delivery step has a unique correct target); fall through to the
    // default decision when the cell is empty.
    const auto& leaf = proto.leaf_set();
    const auto& succ = leaf.successors();
    const auto& pred = leaf.predecessors();
    const bool in_leaf_range =
        (!succ.empty() &&
         successor_distance(own, key) <= successor_distance(own, succ.back().id)) ||
        (!pred.empty() &&
         predecessor_distance(own, key) <= predecessor_distance(own, pred.back().id));
    if (!in_leaf_range) {
      const int l = common_prefix_digits(own, key, prefix.digits());
      const int j = digit(key, l, prefix.digits());
      const DescriptorList cell = prefix.cell(l, j);
      if (!cell.empty()) {
        // All k alternatives advance the prefix match equally; take the one
        // with the lowest measured latency from here.
        const auto it = std::min_element(
            cell.begin(), cell.end(), [&](const NodeDescriptor& a, const NodeDescriptor& b) {
              return space_.latency(node, a.addr) < space_.latency(node, b.addr);
            });
        return it->addr;
      }
    }
  }
  return pastry_next_hop(own, node, proto.leaf_set(), prefix, key);
}

ProximityRouter::Result ProximityRouter::route(Address start, NodeId key,
                                               const ConvergenceOracle& oracle) const {
  Result result;
  Address at = start;
  for (std::size_t hop = 0; hop < 64; ++hop) {
    const Address next = next_hop(at, key);
    if (next == at) {
      result.delivered = true;
      result.correct = oracle.owner_of(key).addr == at;
      return result;
    }
    result.latency += static_cast<double>(space_.latency(at, next));
    ++result.hops;
    at = next;
  }
  return result;
}

LatencyStats ProximityRouter::run_lookups(const ConvergenceOracle& oracle, Rng& rng,
                                          std::size_t lookups) const {
  LatencyStats stats;
  const auto& members = oracle.sorted_members();
  BSVC_CHECK(!members.empty());
  double latency_sum = 0.0;
  double hop_sum = 0.0;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < lookups; ++i) {
    const Address start = members[rng.below(members.size())].addr;
    const Result r = route(start, rng.next_u64(), oracle);
    if (r.delivered && r.correct) {
      ++delivered;
      latency_sum += r.latency;
      hop_sum += static_cast<double>(r.hops);
    }
  }
  stats.success_rate =
      lookups == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(lookups);
  stats.avg_route_latency = delivered == 0 ? 0.0 : latency_sum / static_cast<double>(delivered);
  stats.avg_hops = delivered == 0 ? 0.0 : hop_sum / static_cast<double>(delivered);
  return stats;
}

}  // namespace bsvc
