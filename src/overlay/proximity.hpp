// Network proximity substrate and proximity-aware route selection.
//
// Reproduces the paper's §5 remark that "for networks that do not require
// multiple alternatives of a given table entry, setting k > 1 is still
// useful because it allows for optimizing the routes according to
// proximity" (Pastry's classic proximity neighbour selection). Since the
// simulation has no real network, proximity is synthesized: every node gets
// a point in a 2D plane and the one-way latency between two nodes is a base
// cost plus the Euclidean distance (a standard transit-stub stand-in that
// preserves the triangle-inequality structure PNS exploits).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/oracle.hpp"
#include "overlay/pastry_router.hpp"
#include "sim/engine.hpp"

namespace bsvc {

/// Synthetic coordinate space assigning each node a 2D position.
class CoordinateSpace {
 public:
  /// Positions existing nodes uniformly in a `side` x `side` plane.
  /// `base_latency` models propagation/processing floor per message.
  CoordinateSpace(std::size_t node_count, Rng rng, double side = 1000.0,
                  double base_latency = 10.0);

  /// One-way latency between two nodes in ticks.
  SimTime latency(Address a, Address b) const;

  /// Adds a coordinate for a node created after construction.
  void extend(Address addr);

  /// Installs this space as the engine's latency model. The space must
  /// outlive the engine's use of it.
  void install(Engine& engine) const;

  double side() const { return side_; }

 private:
  struct Point {
    double x = 0.0;
    double y = 0.0;
  };
  mutable Rng rng_;
  double side_;
  double base_latency_;
  std::vector<Point> points_;
};

/// Route-latency statistics over many lookups.
struct LatencyStats {
  double avg_route_latency = 0.0;  // summed per-hop latency, ticks
  double avg_hops = 0.0;
  double success_rate = 0.0;
};

/// Selection policy for prefix-table alternatives during routing.
enum class HopSelection {
  First,      // arbitrary entry (numerically closest to the key)
  Proximity,  // lowest-latency entry among the cell's k alternatives
};

/// Greedy Pastry routing instrumented with the coordinate space: accumulates
/// real per-hop latency and optionally applies proximity selection among
/// the k alternatives of each prefix cell.
class ProximityRouter {
 public:
  ProximityRouter(const Engine& engine, SlotRef<BootstrapProtocol> bootstrap_slot,
                  const CoordinateSpace& space, HopSelection selection);

  /// Routes one key; returns (delivered?, total latency, hops).
  struct Result {
    bool delivered = false;
    bool correct = false;
    double latency = 0.0;
    std::size_t hops = 0;
  };
  Result route(Address start, NodeId key, const ConvergenceOracle& oracle) const;

  /// Aggregates `lookups` random routes.
  LatencyStats run_lookups(const ConvergenceOracle& oracle, Rng& rng,
                           std::size_t lookups) const;

 private:
  Address next_hop(Address node, NodeId key) const;

  const Engine& engine_;
  SlotRef<BootstrapProtocol> slot_;
  const CoordinateSpace& space_;
  HopSelection selection_;
};

}  // namespace bsvc
