#include "overlay/tman.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "net/codec.hpp"

namespace bsvc {

namespace {
constexpr std::uint64_t kInitTimer = 1;
constexpr std::uint64_t kActiveTimer = 2;

/// Best-first comparator for a pivot under a ranking, with ID tie-break so
/// sorting is total and deterministic.
struct RankLess {
  const RankingFunction& ranking;
  NodeId pivot;
  bool operator()(const NodeDescriptor& a, const NodeDescriptor& b) const {
    const auto ra = ranking(pivot, a.id);
    const auto rb = ranking(pivot, b.id);
    if (ra != rb) return ra < rb;
    return a.id < b.id;
  }
};

void sort_dedupe_for(DescriptorList& list, const RankingFunction& ranking, NodeId pivot) {
  std::sort(list.begin(), list.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) { return a.id < b.id; });
  list.erase(std::unique(list.begin(), list.end(),
                         [](const NodeDescriptor& a, const NodeDescriptor& b) {
                           return a.id == b.id;
                         }),
             list.end());
  std::sort(list.begin(), list.end(), RankLess{ranking, pivot});
}
}  // namespace

std::uint64_t ring_ranking(NodeId pivot, NodeId x) { return ring_distance(pivot, x); }

std::uint64_t xor_ranking(NodeId pivot, NodeId x) { return pivot ^ x; }

std::uint64_t torus_ranking(NodeId pivot, NodeId x) {
  const auto px = static_cast<std::uint32_t>(pivot >> 32);
  const auto py = static_cast<std::uint32_t>(pivot);
  const auto xx = static_cast<std::uint32_t>(x >> 32);
  const auto xy = static_cast<std::uint32_t>(x);
  const std::uint32_t dx = std::min(xx - px, px - xx);  // wrap-around per axis
  const std::uint32_t dy = std::min(xy - py, py - xy);
  return static_cast<std::uint64_t>(dx) + static_cast<std::uint64_t>(dy);
}

std::size_t TManMessage::wire_bytes() const {
  return kDescriptorWireBytes + 1 + descriptor_list_wire_bytes(entries.size());
}

TManProtocol::TManProtocol(TManConfig config, RankingFunction ranking, PeerSampler* sampler,
                           SimTime start_delay)
    : config_(config),
      ranking_(std::move(ranking)),
      sampler_(sampler),
      start_delay_(start_delay) {
  BSVC_CHECK(sampler_ != nullptr);
  BSVC_CHECK(ranking_ != nullptr);
  BSVC_CHECK(config_.m >= 1);
  BSVC_CHECK(config_.psi >= 1);
}

void TManProtocol::on_start(Context& ctx) {
  self_ = {ctx.self_id(), ctx.self()};
  ctr_exchanges_ = &ctx.engine().metrics().counter("tman.exchanges");
  ctx.schedule_timer(start_delay_, kInitTimer);
}

void TManProtocol::on_timer(Context& ctx, std::uint64_t timer_id) {
  switch (timer_id) {
    case kInitTimer:
      started_ = true;
      view_.clear();
      update_from(sampler_->sample(config_.m), self_);
      active_step(ctx);
      ctx.schedule_timer(config_.delta, kActiveTimer);
      break;
    case kActiveTimer:
      active_step(ctx);
      ctx.schedule_timer(config_.delta, kActiveTimer);
      break;
    default:
      BSVC_CHECK_MSG(false, "unknown timer");
  }
}

void TManProtocol::active_step(Context& ctx) {
  if (view_.empty()) {
    update_from(sampler_->sample(config_.m), self_);
    if (view_.empty()) return;
  }
  const std::size_t span = std::min(config_.psi, view_.size());
  const NodeDescriptor peer = view_[ctx.rng().below(span)];
  ctx.send(peer.addr, std::make_unique<TManMessage>(self_, select_for(peer.id),
                                                    /*is_request=*/true));
  ctr_exchanges_->inc();
}

DescriptorList TManProtocol::select_for(NodeId peer_id) const {
  DescriptorList candidates = view_;
  const DescriptorList samples = sampler_->sample(config_.cr);
  candidates.insert(candidates.end(), samples.begin(), samples.end());
  candidates.push_back(self_);
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [peer_id](const NodeDescriptor& d) {
                                    return d.id == peer_id;
                                  }),
                   candidates.end());
  sort_dedupe_for(candidates, ranking_, peer_id);
  if (candidates.size() > config_.m) candidates.resize(config_.m);
  return candidates;
}

void TManProtocol::update_from(const DescriptorList& entries, const NodeDescriptor& sender) {
  DescriptorList merged = view_;
  merged.insert(merged.end(), entries.begin(), entries.end());
  if (sender.addr != kNullAddress && sender.id != self_.id) merged.push_back(sender);
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [this](const NodeDescriptor& d) {
                                return d.id == self_.id || d.addr == kNullAddress;
                              }),
               merged.end());
  sort_dedupe_for(merged, ranking_, self_.id);
  if (merged.size() > config_.m) merged.resize(config_.m);
  view_ = std::move(merged);
}

void TManProtocol::on_message(Context& ctx, Address from, const Payload& payload) {
  const auto* msg = payload_cast<TManMessage>(payload);
  if (msg == nullptr) {
    BSVC_WARN("tman: unexpected payload type %s", payload.type_name());
    return;
  }
  if (!started_) return;
  if (msg->is_request) {
    ctx.send(from, std::make_unique<TManMessage>(self_, select_for(msg->sender.id),
                                                 /*is_request=*/false));
  }
  update_from(msg->entries, msg->sender);
}

TManOracle::TManOracle(const Engine& engine, SlotRef<TManProtocol> slot, RankingFunction ranking,
                       std::size_t m)
    : engine_(engine), slot_(slot), ranking_(std::move(ranking)), m_(m) {
  for (const Address addr : engine.alive_addresses()) {
    members_.push_back(engine.descriptor_of(addr));
  }
}

std::vector<NodeId> TManOracle::true_neighbours(NodeId pivot) const {
  DescriptorList others;
  others.reserve(members_.size());
  for (const auto& d : members_) {
    if (d.id != pivot) others.push_back(d);
  }
  std::sort(others.begin(), others.end(), RankLess{ranking_, pivot});
  if (others.size() > m_) others.resize(m_);
  std::vector<NodeId> out;
  out.reserve(others.size());
  for (const auto& d : others) out.push_back(d.id);
  return out;
}

double TManOracle::missing_fraction() const {
  std::uint64_t perfect = 0;
  std::uint64_t present = 0;
  for (const auto& member : members_) {
    const auto& proto = slot_.of(engine_, member.addr);
    const auto truth = true_neighbours(member.id);
    perfect += truth.size();
    if (!proto.active()) continue;
    for (const NodeId want : truth) {
      for (const auto& held : proto.view()) {
        if (held.id == want) {
          ++present;
          break;
        }
      }
    }
  }
  return perfect == 0
             ? 0.0
             : 1.0 - static_cast<double>(present) / static_cast<double>(perfect);
}

}  // namespace bsvc
