// T-Man: generic gossip-based topology construction (paper reference [5],
// the mechanism underlying the bootstrapping service's ring building, and
// the architecture's support for "other overlays, such as proximity based
// ones" — Fig. 1).
//
// Every node keeps a view of the m best-ranked peers according to a
// pluggable ranking function (lower rank value = better neighbour for the
// pivot). Each cycle it gossips with one of its best-ranked peers; both
// sides exchange the m entries best *for the receiver* plus fresh random
// samples, and merge keeping their m best. The view converges to each
// node's true m nearest neighbours in the ranking geometry.
//
// Rankings provided: ring distance (the bootstrap's geometry), XOR distance
// (Kademlia's), and wrap-around Manhattan distance on a 2D torus obtained
// by splitting the 64-bit ID into two 32-bit coordinates (a stand-in for
// proximity/semantic profiles).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "id/descriptor.hpp"
#include "id/ring.hpp"
#include "sampling/peer_sampler.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"
#include "sim/slot_ref.hpp"

namespace bsvc {

/// Distance of `x` from pivot `p` in some geometry; lower is better.
/// Must be symmetric-free (only comparisons against the same pivot matter)
/// and total: equal values are treated as ties broken by ID.
using RankingFunction = std::function<std::uint64_t(NodeId pivot, NodeId x)>;

/// The bootstrap's ring geometry: shortest wrap-around distance.
std::uint64_t ring_ranking(NodeId pivot, NodeId x);

/// Kademlia's geometry.
std::uint64_t xor_ranking(NodeId pivot, NodeId x);

/// 2D torus: id = (x: high 32 bits, y: low 32 bits), wrap-around Manhattan
/// distance. Models proximity/semantic profiles embedded in the ID.
std::uint64_t torus_ranking(NodeId pivot, NodeId x);

/// View exchange message.
class TManMessage final : public Payload {
 public:
  static constexpr PayloadKind kKind = PayloadKind::TMan;

  TManMessage(NodeDescriptor sender, DescriptorList entries, bool is_request)
      : Payload(kKind), sender(sender), entries(std::move(entries)), is_request(is_request) {}
  std::size_t wire_bytes() const override;
  const char* type_name() const override { return "tman"; }
  const char* metric_tag() const override {
    return is_request ? "tman.request" : "tman.answer";
  }
  NodeDescriptor sender;
  DescriptorList entries;
  bool is_request;
};

struct TManConfig {
  /// View size m (the target neighbourhood size).
  std::size_t m = 20;
  /// Random samples mixed into each exchange.
  std::size_t cr = 10;
  /// Gossip period.
  SimTime delta = kDelta;
  /// Peers are selected uniformly from the best `psi` view entries
  /// (T-Man's peer selection parameter).
  std::size_t psi = 5;
};

/// Per-node T-Man instance for an arbitrary ranking.
class TManProtocol final : public Protocol {
 public:
  /// `ranking` is shared by all nodes (stateless); `start_delay` staggers
  /// the loosely synchronized start.
  TManProtocol(TManConfig config, RankingFunction ranking, PeerSampler* sampler,
               SimTime start_delay);

  void on_start(Context& ctx) override;
  void on_timer(Context& ctx, std::uint64_t timer_id) override;
  void on_message(Context& ctx, Address from, const Payload& payload) override;

  bool active() const { return started_; }
  /// Current view, sorted best-first for the own ID.
  const DescriptorList& view() const { return view_; }

  /// The entries this node would send to `peer_id` (public for tests).
  DescriptorList select_for(NodeId peer_id) const;

 private:
  void active_step(Context& ctx);
  /// Merge + keep own m best.
  void update_from(const DescriptorList& entries, const NodeDescriptor& sender);

  TManConfig config_;
  RankingFunction ranking_;
  PeerSampler* sampler_;
  SimTime start_delay_;
  NodeDescriptor self_{};
  DescriptorList view_;
  bool started_ = false;
  // Engine-registry counter ("tman.exchanges"), cached at on_start.
  obs::Counter* ctr_exchanges_ = nullptr;
};

/// Ground truth and metric for a T-Man run: fraction of true m-nearest
/// neighbours (per ranking) currently missing from the views.
class TManOracle {
 public:
  TManOracle(const Engine& engine, SlotRef<TManProtocol> slot, RankingFunction ranking,
             std::size_t m);

  /// Missing-neighbour fraction over all alive nodes. O(N^2) — intended for
  /// test/bench sizes.
  double missing_fraction() const;

  /// The true m best-ranked member IDs for `pivot` (excluding itself).
  std::vector<NodeId> true_neighbours(NodeId pivot) const;

 private:
  const Engine& engine_;
  SlotRef<TManProtocol> slot_;
  RankingFunction ranking_;
  std::size_t m_;
  std::vector<NodeDescriptor> members_;
};

}  // namespace bsvc
