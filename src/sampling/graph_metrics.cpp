#include "sampling/graph_metrics.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "sampling/newscast.hpp"

namespace bsvc {

UnionFind::UnionFind(std::size_t n) { reset(n); }

void UnionFind::reset(std::size_t n) {
  parent_.resize(n);
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

void UnionFind::unite(std::size_t a, std::size_t b) {
  const auto ra = find(a);
  const auto rb = find(b);
  if (ra != rb) parent_[ra] = static_cast<std::uint32_t>(rb);
}

std::size_t UnionFind::count_components(const std::vector<std::uint32_t>& members) {
  std::unordered_set<std::size_t> roots;
  for (auto m : members) roots.insert(find(m));
  return roots.size();
}

namespace {
/// Scratch for measure_view_graph. The probe runs every sampled cycle from
/// the barrier context, so per-node adjacency lists as vector<vector> cost
/// O(alive) heap allocations per sample — enough to dominate the whole
/// simulation's allocation census. A flat CSR adjacency with capacity-
/// retaining scratch makes warm samples allocation-free.
struct ViewGraphScratch {
  std::vector<std::uint64_t> indegree;
  std::vector<std::uint32_t> degree;    // undirected degree (duplicate edges kept)
  std::vector<std::uint32_t> offset;    // CSR offsets, size n+1
  std::vector<std::uint32_t> cursor;    // per-node fill position
  std::vector<Address> edges;           // flat adjacency
  std::vector<std::uint32_t> uniq_len;  // unique-prefix length once clustered
  std::vector<std::uint32_t> stamp;     // neighbour-set membership marks
  std::uint32_t epoch = 0;
  UnionFind uf{0};
};
}  // namespace

ViewGraphStats measure_view_graph(const Engine& engine, SlotRef<NewscastProtocol> slot,
                                  std::size_t clustering_sample) {
  ViewGraphStats stats;
  const auto alive = engine.alive_addresses();
  stats.alive_nodes = alive.size();
  if (alive.empty()) return stats;

  const std::size_t n_nodes = engine.node_count();
  thread_local ViewGraphScratch g;
  g.indegree.assign(n_nodes, 0);
  g.degree.assign(n_nodes, 0);
  g.uf.reset(n_nodes);

  std::uint64_t total_entries = 0;
  std::uint64_t dead_entries = 0;

  // Pass 1: in-degrees, dead-entry census, undirected degrees for the CSR
  // adjacency (each alive edge contributes to both endpoints, duplicates
  // included — same multiset as the old per-node push_back lists).
  for (const auto addr : alive) {
    const auto& nc = slot.of(engine, addr);
    for (const auto& entry : nc.view()) {
      const Address peer = entry.descriptor.addr;
      ++total_entries;
      if (!engine.is_alive(peer)) {
        ++dead_entries;
        continue;
      }
      ++g.indegree[peer];
      ++g.degree[addr];
      ++g.degree[peer];
    }
  }

  g.offset.resize(n_nodes + 1);
  g.offset[0] = 0;
  for (std::size_t i = 0; i < n_nodes; ++i) g.offset[i + 1] = g.offset[i] + g.degree[i];
  g.edges.resize(g.offset[n_nodes]);
  g.cursor.assign(g.offset.begin(), g.offset.end() - 1);

  // Pass 2: fill the adjacency and union components, in the exact order the
  // old code pushed edges and united endpoints.
  for (const auto addr : alive) {
    const auto& nc = slot.of(engine, addr);
    for (const auto& entry : nc.view()) {
      const Address peer = entry.descriptor.addr;
      if (!engine.is_alive(peer)) continue;
      g.uf.unite(addr, peer);
      g.edges[g.cursor[addr]++] = peer;
      g.edges[g.cursor[peer]++] = addr;
    }
  }

  Accumulator acc;
  for (const auto addr : alive) {
    acc.add(static_cast<double>(g.indegree[addr]));
    stats.indegree_max = std::max(stats.indegree_max, g.indegree[addr]);
  }
  stats.indegree_mean = acc.mean();
  stats.indegree_stddev = acc.stddev();
  stats.dead_entry_fraction =
      total_entries == 0 ? 0.0
                         : static_cast<double>(dead_entries) / static_cast<double>(total_entries);
  stats.components = g.uf.count_components(alive);

  // Clustering over the first `clustering_sample` alive nodes (alive order is
  // deterministic, which keeps runs reproducible). Matches the old
  // vector<vector> version's in-place behaviour exactly: a sampled node's
  // list is sorted and deduplicated (uniq_len records the unique prefix), so
  // a later sample walking an earlier sample's list sees it deduplicated
  // while unsampled neighbours keep their duplicate edges.
  constexpr std::uint32_t kNotClustered = 0xFFFFFFFFu;
  g.uniq_len.assign(n_nodes, kNotClustered);
  g.stamp.assign(n_nodes, 0);
  g.epoch = 0;
  const auto sample_n = std::min(clustering_sample, alive.size());
  double cluster_sum = 0.0;
  std::size_t cluster_cnt = 0;
  for (std::size_t s = 0; s < sample_n; ++s) {
    const Address a = alive[s];
    const auto begin = g.edges.begin() + g.offset[a];
    const auto end = g.edges.begin() + g.offset[a + 1];
    std::sort(begin, end);
    const auto ulen = static_cast<std::uint32_t>(std::unique(begin, end) - begin);
    g.uniq_len[a] = ulen;
    if (ulen < 2) continue;
    ++g.epoch;
    for (std::uint32_t i = 0; i < ulen; ++i) g.stamp[begin[i]] = g.epoch;
    std::size_t links = 0;
    for (std::uint32_t i = 0; i < ulen; ++i) {
      const Address u = begin[i];
      const std::uint32_t extent =
          g.uniq_len[u] != kNotClustered ? g.uniq_len[u] : g.offset[u + 1] - g.offset[u];
      for (std::uint32_t j = 0; j < extent; ++j) {
        const Address v = g.edges[g.offset[u] + j];
        if (v != a && g.stamp[v] == g.epoch) ++links;
      }
    }
    const double possible = static_cast<double>(ulen) * static_cast<double>(ulen - 1);
    cluster_sum += static_cast<double>(links) / possible;
    ++cluster_cnt;
  }
  stats.clustering = cluster_cnt == 0 ? 0.0 : cluster_sum / static_cast<double>(cluster_cnt);
  return stats;
}

}  // namespace bsvc
