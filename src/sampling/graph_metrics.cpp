#include "sampling/graph_metrics.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "sampling/newscast.hpp"

namespace bsvc {

UnionFind::UnionFind(std::size_t n) : parent_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

void UnionFind::unite(std::size_t a, std::size_t b) {
  const auto ra = find(a);
  const auto rb = find(b);
  if (ra != rb) parent_[ra] = static_cast<std::uint32_t>(rb);
}

std::size_t UnionFind::count_components(const std::vector<std::uint32_t>& members) {
  std::unordered_set<std::size_t> roots;
  for (auto m : members) roots.insert(find(m));
  return roots.size();
}

ViewGraphStats measure_view_graph(const Engine& engine, SlotRef<NewscastProtocol> slot,
                                  std::size_t clustering_sample) {
  ViewGraphStats stats;
  const auto alive = engine.alive_addresses();
  stats.alive_nodes = alive.size();
  if (alive.empty()) return stats;

  std::vector<std::uint64_t> indegree(engine.node_count(), 0);
  std::uint64_t total_entries = 0;
  std::uint64_t dead_entries = 0;

  UnionFind uf(engine.node_count());
  // Undirected adjacency restricted to alive endpoints, for clustering.
  std::vector<std::vector<Address>> adj(engine.node_count());

  for (const auto addr : alive) {
    const auto& nc = slot.of(engine, addr);
    for (const auto& entry : nc.view()) {
      const Address peer = entry.descriptor.addr;
      ++total_entries;
      if (!engine.is_alive(peer)) {
        ++dead_entries;
        continue;
      }
      ++indegree[peer];
      uf.unite(addr, peer);
      adj[addr].push_back(peer);
      adj[peer].push_back(addr);
    }
  }

  Accumulator acc;
  for (const auto addr : alive) {
    acc.add(static_cast<double>(indegree[addr]));
    stats.indegree_max = std::max(stats.indegree_max, indegree[addr]);
  }
  stats.indegree_mean = acc.mean();
  stats.indegree_stddev = acc.stddev();
  stats.dead_entry_fraction =
      total_entries == 0 ? 0.0
                         : static_cast<double>(dead_entries) / static_cast<double>(total_entries);
  stats.components = uf.count_components(alive);

  // Clustering over the first `clustering_sample` alive nodes (alive order is
  // deterministic, which keeps runs reproducible).
  const auto sample_n = std::min(clustering_sample, alive.size());
  double cluster_sum = 0.0;
  std::size_t cluster_cnt = 0;
  for (std::size_t s = 0; s < sample_n; ++s) {
    auto& neigh = adj[alive[s]];
    std::sort(neigh.begin(), neigh.end());
    neigh.erase(std::unique(neigh.begin(), neigh.end()), neigh.end());
    if (neigh.size() < 2) continue;
    std::size_t links = 0;
    std::unordered_set<Address> nset(neigh.begin(), neigh.end());
    for (const auto u : neigh) {
      for (const auto v : adj[u]) {
        if (v != alive[s] && nset.count(v) > 0) ++links;
      }
    }
    const double possible = static_cast<double>(neigh.size()) *
                            static_cast<double>(neigh.size() - 1);
    cluster_sum += static_cast<double>(links) / possible;
    ++cluster_cnt;
  }
  stats.clustering = cluster_cnt == 0 ? 0.0 : cluster_sum / static_cast<double>(cluster_cnt);
  return stats;
}

}  // namespace bsvc
