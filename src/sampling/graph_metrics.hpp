// Quality metrics over the Newscast view graph.
//
// The sampling layer is "good" when the directed graph formed by the views
// looks like a random graph: balanced in-degrees, low clustering, and a
// single weakly connected component over alive nodes. These metrics back the
// paper's §3 claims (self-healing after 70% failure, fast randomization
// from degenerate initialization) in bench/newscast and the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/newscast.hpp"
#include "sim/engine.hpp"
#include "sim/slot_ref.hpp"

namespace bsvc {

/// Snapshot statistics of the view graph at one instant.
struct ViewGraphStats {
  std::size_t alive_nodes = 0;
  /// Mean / max in-degree over alive nodes and stddev (uniformity proxy;
  /// a random graph has stddev ≈ sqrt(mean)).
  double indegree_mean = 0.0;
  double indegree_stddev = 0.0;
  std::uint64_t indegree_max = 0;
  /// Fraction of view entries pointing at dead nodes.
  double dead_entry_fraction = 0.0;
  /// Number of weakly connected components over alive nodes (1 = healthy).
  std::size_t components = 0;
  /// Average clustering coefficient over a sample of alive nodes, treating
  /// views as undirected adjacency. Random graphs: ~view_size/N.
  double clustering = 0.0;
};

/// Computes stats over the Newscast instances at `slot` on every alive node.
/// `clustering_sample` bounds the nodes examined for the clustering metric.
ViewGraphStats measure_view_graph(const Engine& engine, SlotRef<NewscastProtocol> slot,
                                  std::size_t clustering_sample = 200);

/// Union-find over alive nodes where each alive view edge joins components.
/// Exposed separately because tests use it on arbitrary edge sets.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  /// Re-initializes to n singleton sets, reusing the parent array's
  /// capacity — lets periodic probes run allocation-free once warm.
  void reset(std::size_t n);
  std::size_t find(std::size_t x);
  void unite(std::size_t a, std::size_t b);
  /// Number of distinct components among the given members.
  std::size_t count_components(const std::vector<std::uint32_t>& members);

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace bsvc
