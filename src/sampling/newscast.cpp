#include "sampling/newscast.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace bsvc {

namespace {
constexpr std::uint64_t kGossipTimer = 1;
}

NewscastProtocol::NewscastProtocol(NewscastConfig config) : config_(config) {
  BSVC_CHECK(config_.view_size > 0);
  BSVC_CHECK(config_.period > 0);
}

void NewscastProtocol::init_view(DescriptorList seeds) { pending_seeds_ = std::move(seeds); }

void NewscastProtocol::add_contact(const NodeDescriptor& contact, SimTime now) {
  if (!started_) {
    pending_seeds_.push_back(contact);
    return;
  }
  merge({{contact, now}}, now);
}

void NewscastProtocol::on_start(Context& ctx) {
  self_ = {ctx.self_id(), ctx.self()};
  rng_ = &ctx.rng();
  ctr_exchanges_ = &ctx.engine().metrics().counter("newscast.exchanges");
  if (config_.harden) {
    ctr_rejected_ = &ctx.engine().metrics().counter("newscast.rejected");
  }
  started_ = true;
  view_.clear();
  for (const auto& seed : pending_seeds_) {
    if (seed.addr == self_.addr) continue;
    view_.push_back({seed, ctx.now()});
  }
  pending_seeds_.clear();
  if (view_.size() > config_.view_size) view_.resize(config_.view_size);
  // First exchange at a random offset within one period: the loosely
  // synchronized start the paper assumes.
  ctx.schedule_timer(ctx.rng().below(config_.period), kGossipTimer);
}

void NewscastProtocol::on_timer(Context& ctx, std::uint64_t timer_id) {
  BSVC_CHECK(timer_id == kGossipTimer);
  if (!view_.empty()) {
    const auto& peer = view_[ctx.rng().below(view_.size())].descriptor;
    ctx.send(peer.addr, outgoing(ctx, /*is_request=*/true));
    ctr_exchanges_->inc();
  }
  ctx.schedule_timer(config_.period, kGossipTimer);
}

void NewscastProtocol::on_message(Context& ctx, Address from, const Payload& payload) {
  const auto* msg = payload_cast<NewscastMessage>(payload);
  if (msg == nullptr) {
    BSVC_WARN("newscast: unexpected payload type %s", payload.type_name());
    return;
  }
  if (!started_) return;  // not yet initialized (staggered start): sender retries
  if (msg->is_request) {
    ctx.send(from, outgoing(ctx, /*is_request=*/false));
  }
  merge(msg->entries, ctx.now());
}

DescriptorList NewscastProtocol::sample(std::size_t n) {
  DescriptorList out;
  sample_into(n, out);
  return out;
}

void NewscastProtocol::sample_into(std::size_t n, DescriptorList& out) {
  if (view_.empty() || n == 0) return;
  BSVC_CHECK_MSG(rng_ != nullptr, "sample() before protocol start");
  const auto take = std::min(n, view_.size());
  rng_->distinct_indices_into(static_cast<std::uint32_t>(take),
                              static_cast<std::uint32_t>(view_.size()), idx_buf_);
  out.reserve(out.size() + take);
  for (auto i : idx_buf_) out.push_back(view_[i].descriptor);
}

void NewscastProtocol::merge(const std::vector<TimestampedDescriptor>& incoming, SimTime now) {
  // Union of view and incoming; per address keep the freshest timestamp.
  // The scratch buffer is reused across deliveries: a steady-state merge
  // allocates nothing once both buffers reached view_size capacity.
  std::vector<TimestampedDescriptor>& merged = merge_buf_;
  merged.assign(view_.begin(), view_.end());
  std::size_t accepted = 0;
  for (const auto& entry : incoming) {
    if (entry.descriptor.addr == self_.addr || entry.descriptor.addr == kNullAddress) continue;
    if (config_.harden) {
      // Future timestamps are freshness forgery — a poisoned entry stamped
      // ahead of the clock would win every dedupe until the horizon. The
      // flood cap bounds what a single message may change; a compliant
      // exchange carries at most the peer's view plus its self entry.
      if (entry.timestamp > now || accepted >= config_.view_size + 1) {
        if (ctr_rejected_ != nullptr) ctr_rejected_->inc();
        continue;
      }
      ++accepted;
    }
    auto it = std::find_if(merged.begin(), merged.end(), [&](const TimestampedDescriptor& e) {
      return e.descriptor.addr == entry.descriptor.addr;
    });
    if (it == merged.end()) {
      merged.push_back(entry);
    } else if (entry.timestamp > it->timestamp) {
      *it = entry;
    }
  }
  // Keep the freshest view_size entries. Stable tie-break on address keeps
  // the merge deterministic.
  std::sort(merged.begin(), merged.end(),
            [](const TimestampedDescriptor& a, const TimestampedDescriptor& b) {
              if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
              return a.descriptor.addr < b.descriptor.addr;
            });
  if (merged.size() > config_.view_size) merged.resize(config_.view_size);
  view_.swap(merged);
}

std::unique_ptr<NewscastMessage> NewscastProtocol::outgoing(Context& ctx,
                                                            bool is_request) const {
  auto msg = std::make_unique<NewscastMessage>(is_request);
  msg->entries.reserve(view_.size() + 1);
  msg->entries.assign(view_.begin(), view_.end());
  msg->entries.push_back({self_, ctx.now()});
  return msg;
}

}  // namespace bsvc
