// NEWSCAST: the gossip-based peer sampling protocol (paper §3, [6]).
//
// Each node keeps a small view of timestamped descriptors. Periodically it
// picks a random peer from the view and sends it the view plus a fresh
// self-descriptor; the peer answers with the same. Both sides then keep the
// `view_size` freshest entries (deduplicated by address, freshest wins).
// This cheap push–pull exchange keeps the view a continually reshuffled
// random sample of the membership, self-heals after massive failures, and
// re-randomizes quickly even from fully degenerate initial views.
#pragma once

#include <cstdint>

#include "common/pool.hpp"
#include "sampling/peer_sampler.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace bsvc {

/// A descriptor plus the virtual time at which its node vouched for itself.
struct TimestampedDescriptor {
  NodeDescriptor descriptor;
  SimTime timestamp = 0;
};

/// View exchange message (request or answer). Object and entry buffer both
/// recycle through thread-local pools (common/pool.hpp): a steady-state
/// exchange reuses the storage of an already-retired message.
class NewscastMessage final : public Payload, public PooledAlloc<NewscastMessage> {
 public:
  static constexpr PayloadKind kKind = PayloadKind::Newscast;

  NewscastMessage(std::vector<TimestampedDescriptor> entries, bool is_request)
      : Payload(kKind), entries(std::move(entries)), is_request(is_request) {}

  /// Builder form: the sender reserves and fills `entries` in place before
  /// publishing (the warmed pool buffer makes that reserve a no-op).
  explicit NewscastMessage(bool is_request) : Payload(kKind), is_request(is_request) {
    BufferPool<TimestampedDescriptor>::acquire(entries);
  }

  /// The adversary's poison path clones messages; route the clone's buffer
  /// through the pool like the builder's.
  NewscastMessage(const NewscastMessage& other)
      : Payload(other), is_request(other.is_request) {
    BufferPool<TimestampedDescriptor>::acquire(entries);
    entries.assign(other.entries.begin(), other.entries.end());
  }
  NewscastMessage& operator=(const NewscastMessage&) = delete;

  ~NewscastMessage() override {
    BufferPool<TimestampedDescriptor>::release(std::move(entries));
  }

  std::size_t wire_bytes() const override {
    // count u16 + per entry: descriptor (14) + coarse timestamp u32 + 1 flag.
    return 2 + entries.size() * (kDescriptorWireBytes + 4) + 1;
  }
  const char* type_name() const override { return "newscast"; }
  const char* metric_tag() const override {
    return is_request ? "newscast.request" : "newscast.answer";
  }

  std::vector<TimestampedDescriptor> entries;
  bool is_request;
};

/// Protocol parameters.
struct NewscastConfig {
  /// View size (the paper's implementations carry ~30 addresses).
  std::size_t view_size = 30;
  /// Gossip period in ticks (the paper's "typically long" interval; one
  /// exchange per node per period).
  SimTime period = kDelta;
  /// Byzantine hardening: reject descriptors timestamped in the future
  /// (freshness forgery would otherwise make a poisoned entry win every
  /// dedupe for the rest of the run) and cap the entries accepted from one
  /// message at view_size (flood cap). Off by default; with harden = false
  /// the merge is byte-identical to the unhardened build.
  bool harden = false;
};

/// The Newscast protocol instance of one node. Also implements PeerSampler
/// for co-located higher layers.
class NewscastProtocol final : public Protocol, public PeerSampler {
 public:
  explicit NewscastProtocol(NewscastConfig config);

  /// Seeds the initial view (descriptors get timestamp = now at start).
  /// Intentionally accepts degenerate seeds (e.g. every node given the same
  /// single contact): the protocol randomizes them quickly.
  void init_view(DescriptorList seeds);

  /// Administrator-supplied contact on a running node (e.g. a member of
  /// another organization's pool at merge time). Merged like a freshly
  /// received entry and then spread epidemically by the normal exchanges.
  void add_contact(const NodeDescriptor& contact, SimTime now);

  // Protocol interface.
  void on_start(Context& ctx) override;
  void on_timer(Context& ctx, std::uint64_t timer_id) override;
  void on_message(Context& ctx, Address from, const Payload& payload) override;

  // PeerSampler interface: uniform picks from the current view.
  DescriptorList sample(std::size_t n) override;
  void sample_into(std::size_t n, DescriptorList& out) override;

  /// Read access for metrics and tests.
  const std::vector<TimestampedDescriptor>& view() const { return view_; }

 private:
  /// Merges incoming entries into the view: dedupe by address keeping the
  /// freshest, drop self, keep the `view_size` freshest overall. With
  /// config_.harden, future-stamped and over-cap entries are rejected
  /// (counted in "newscast.rejected").
  void merge(const std::vector<TimestampedDescriptor>& incoming, SimTime now);

  /// Builds an exchange message carrying the view plus a fresh
  /// self-descriptor (one reserve for the whole body).
  std::unique_ptr<NewscastMessage> outgoing(Context& ctx, bool is_request) const;

  NewscastConfig config_;
  std::vector<TimestampedDescriptor> view_;
  // Scratch reused across merges and samples (steady-state exchanges stay
  // allocation-free; see tests/test_alloc.cpp).
  std::vector<TimestampedDescriptor> merge_buf_;
  std::vector<std::uint32_t> idx_buf_;
  DescriptorList pending_seeds_;
  NodeDescriptor self_{};
  bool started_ = false;
  // Cached context bits for sample(); set on first callback.
  Rng* rng_ = nullptr;
  // Engine-registry counter ("newscast.exchanges"), cached at on_start.
  obs::Counter* ctr_exchanges_ = nullptr;
  // Hardening rejections ("newscast.rejected"; registered only with harden).
  obs::Counter* ctr_rejected_ = nullptr;
};

}  // namespace bsvc
