#include "sampling/oracle_sampler.hpp"

namespace bsvc {

DescriptorList OracleSampler::sample(std::size_t n) {
  DescriptorList out;
  sample_into(n, out);
  return out;
}

void OracleSampler::sample_into(std::size_t n, DescriptorList& out) {
  if (n == 0) return;
  // Rejection-sample distinct alive addresses; membership is dense enough
  // in practice (alive_count ~ node_count) that this terminates fast. Falls
  // back to the exhaustive path if most nodes are dead.
  const auto total = static_cast<std::uint32_t>(engine_.node_count());
  if (total == 0) return;
  auto& rng = engine_.rng();
  const std::size_t base = out.size();
  if (engine_.alive_count() * 2 < engine_.node_count() || n * 4 > engine_.alive_count()) {
    auto alive = engine_.alive_addresses();
    rng.shuffle(alive);
    for (auto addr : alive) {
      if (addr == self_) continue;
      out.push_back(engine_.descriptor_of(addr));
      if (out.size() - base == n) break;
    }
    return;
  }
  taken_.assign(total, false);
  std::size_t guard = 0;
  while (out.size() - base < n && guard < 64 * n + 256) {
    ++guard;
    const auto addr = static_cast<Address>(rng.below(total));
    if (addr == self_ || taken_[addr] || !engine_.is_alive(addr)) continue;
    taken_[addr] = true;
    out.push_back(engine_.descriptor_of(addr));
  }
}

}  // namespace bsvc
