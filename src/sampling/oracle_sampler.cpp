#include "sampling/oracle_sampler.hpp"

namespace bsvc {

DescriptorList OracleSampler::sample(std::size_t n) {
  DescriptorList out;
  if (n == 0) return out;
  // Rejection-sample distinct alive addresses; membership is dense enough
  // in practice (alive_count ~ node_count) that this terminates fast. Falls
  // back to the exhaustive path if most nodes are dead.
  const auto total = static_cast<std::uint32_t>(engine_.node_count());
  if (total == 0) return out;
  auto& rng = engine_.rng();
  if (engine_.alive_count() * 2 < engine_.node_count() || n * 4 > engine_.alive_count()) {
    auto alive = engine_.alive_addresses();
    rng.shuffle(alive);
    for (auto addr : alive) {
      if (addr == self_) continue;
      out.push_back(engine_.descriptor_of(addr));
      if (out.size() == n) break;
    }
    return out;
  }
  std::vector<bool> taken(total, false);
  std::size_t guard = 0;
  while (out.size() < n && guard < 64 * n + 256) {
    ++guard;
    const auto addr = static_cast<Address>(rng.below(total));
    if (addr == self_ || taken[addr] || !engine_.is_alive(addr)) continue;
    taken[addr] = true;
    out.push_back(engine_.descriptor_of(addr));
  }
  return out;
}

}  // namespace bsvc
