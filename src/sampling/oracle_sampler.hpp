// Idealized peer sampler with global knowledge.
//
// Draws uniformly from the engine's alive node set. Used to (a) unit-test
// higher layers independently of Newscast and (b) run ablations that ask how
// much sampling quality matters. One instance is shared: give each node a
// NodeOracleSampler facade so "exclude self" works per node.
#pragma once

#include "sampling/peer_sampler.hpp"
#include "sim/engine.hpp"

namespace bsvc {

/// Per-node facade over the engine's global membership.
class OracleSampler final : public PeerSampler {
 public:
  /// `self` is excluded from all samples.
  OracleSampler(Engine& engine, Address self) : engine_(engine), self_(self) {}

  DescriptorList sample(std::size_t n) override;
  void sample_into(std::size_t n, DescriptorList& out) override;

 private:
  Engine& engine_;
  Address self_;
  // Rejection-sampling scratch, reused across calls.
  std::vector<bool> taken_;
};

/// Protocol-shaped adapter so an oracle-sampled node has the same stack
/// layout (slot 0 = sampling service) as a Newscast node. Does nothing on
/// the wire.
class OracleSamplerProtocol final : public Protocol, public PeerSampler {
 public:
  OracleSamplerProtocol(Engine& engine, Address self) : impl_(engine, self) {}
  DescriptorList sample(std::size_t n) override { return impl_.sample(n); }
  void sample_into(std::size_t n, DescriptorList& out) override { impl_.sample_into(n, out); }

 private:
  OracleSampler impl_;
};

}  // namespace bsvc
