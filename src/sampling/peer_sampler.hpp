// The peer sampling service abstraction (paper §3).
//
// Higher layers (the bootstrapping service, gossip broadcast, aggregation)
// depend only on this interface: "provide random peer addresses from the set
// of participating nodes". Two implementations exist:
//   - NewscastProtocol: the gossip implementation the paper builds on,
//   - OracleSampler:    an idealized uniform sampler with global knowledge,
//     used to isolate higher layers from sampling-quality effects in tests.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "id/descriptor.hpp"

namespace bsvc {

/// Produces random peer descriptors for one node.
class PeerSampler {
 public:
  virtual ~PeerSampler() = default;

  /// Returns up to `n` descriptors of (believed-alive) peers, excluding the
  /// caller itself, distinct within one call. May return fewer than `n` if
  /// the locally known pool is small.
  virtual DescriptorList sample(std::size_t n) = 0;

  /// Appends the sample to `out` instead of returning a fresh vector — the
  /// allocation-free variant CREATEMESSAGE uses on its hot path.
  /// Implementations MUST consume their randomness exactly as sample() does
  /// (the golden-replay determinism suite pins the two paths to the same
  /// trajectory); the default delegates to sample().
  virtual void sample_into(std::size_t n, DescriptorList& out) {
    const DescriptorList s = sample(n);
    out.insert(out.end(), s.begin(), s.end());
  }
};

}  // namespace bsvc
