#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include <cstdio>

namespace bsvc {

// --- Context (declared in protocol.hpp, implemented against Engine) -----

NodeId Context::self_id() const { return engine_.id_of(self_); }
std::uint64_t Context::now() const { return engine_.now(); }

Rng& Context::rng() {
  // Accessing node state through the engine keeps Context trivially small.
  return engine_.node_rng(self_);
}

void Context::send(Address to, PayloadRef payload) {
  engine_.send_message(self_, to, slot_, std::move(payload));
}

void Context::schedule_timer(std::uint64_t delay, std::uint64_t timer_id) {
  engine_.schedule_timer(self_, slot_, delay, timer_id);
}

// --- TransportConfig ----------------------------------------------------

std::string TransportConfig::validate() const {
  if (!(drop_probability >= 0.0 && drop_probability <= 1.0)) {
    return "drop_probability " + std::to_string(drop_probability) +
           " outside [0, 1]";
  }
  if (min_latency > max_latency) {
    return "min_latency " + std::to_string(min_latency) + " > max_latency " +
           std::to_string(max_latency);
  }
  return "";
}

// --- Engine ------------------------------------------------------------

thread_local Engine::ShardCtx* Engine::active_shard_ = nullptr;

Engine::Engine(std::uint64_t seed, TransportConfig transport, std::size_t shards)
    : rng_(seed), node_seed_state_(seed ^ 0xA24BAED4963EE407ull), transport_(transport),
      shards_(shards) {
  BSVC_CHECK_MSG(transport_.validate().empty(), "invalid TransportConfig");
  if (shards_ == 0) return;
  // min_latency is the conservative lookahead: a zero-latency transport has
  // no window inside which shards can run independently.
  BSVC_CHECK_MSG(transport_.min_latency >= 1,
                 "sharded engine requires min_latency >= 1 (the lookahead)");
  BSVC_CHECK_MSG(shards_ <= 4096, "shard count out of range");
  window_ticks_ = transport_.min_latency;
  shard_ctx_.reserve(shards_);
  for (std::size_t i = 0; i < shards_; ++i) {
    auto ctx = std::make_unique<ShardCtx>();
    ctx->index = static_cast<std::uint32_t>(i);
    ctx->queue.set_keyed_ordering(true);
    ctx->out.resize(shards_);
    shard_ctx_.push_back(std::move(ctx));
  }
  crew_ = std::make_unique<WindowCrew>(shards_);
  metrics_.gauge("shard.count").set(static_cast<double>(shards_));
  shard_windows_ = &metrics_.counter("shard.windows");
  shard_mailbox_ = &metrics_.counter("shard.mailbox.messages");
  // Events one shard dispatches per window; the paper-scale runs sit in the
  // hundreds, the top bucket absorbs bursts.
  shard_window_events_ = &metrics_.histogram("shard.window_events", 0.0, 4096.0, 64);
  // Bound eagerly: the serial engine binds this lazily at the first corrupt
  // frame, but lazy binding from inside a window would race on the handle.
  msg_corrupt_ = &metrics_.counter("msg.corrupt");
}

void Engine::reset_traffic() {
  traffic_ = {};
  // Shard deltas are zero at every barrier (merged each window); clearing
  // them keeps reset correct even if called between construction and run.
  for (const auto& sc : shard_ctx_) sc->traffic = {};
}

void Engine::set_profiler(obs::EngineProfiler* profiler) {
  if (profiler != nullptr) {
    // The profiler measures the window crew; the serial engine has no
    // windows to attribute. Experiment configs reject this combination
    // with a friendly config error — the check here is the backstop.
    BSVC_CHECK_MSG(shards_ != 0, "profiler requires the sharded engine");
    BSVC_CHECK_MSG(profiler->shards() == shards_, "profiler shard count mismatch");
    prof_dispatch_ns_.assign(shards_, 0);
    prof_drain_ns_.assign(shards_, 0);
    prof_queue_depth_.assign(shards_, 0);
    prof_mailbox_delta_.assign(shards_, 0);
  }
  profiler_ = profiler;
  if (crew_ != nullptr) crew_->set_timing(profiler != nullptr);
}

void Engine::set_fault_model(FaultModel* model) {
  fault_ = model;
  if (model != nullptr && fault_dup_ == nullptr) {
    fault_dup_ = &metrics_.counter("msg.dup");
    fault_dup_skipped_ = &metrics_.counter("msg.dup.skipped");
    fault_dark_dropped_ = &metrics_.counter("fault.dark.dropped");
    fault_dark_deferred_ = &metrics_.counter("fault.dark.deferred");
  }
  if (model != nullptr && msg_corrupt_ == nullptr) {
    msg_corrupt_ = &metrics_.counter("msg.corrupt");
  }
}

Address Engine::add_node(NodeId id) {
  BSVC_CHECK_MSG(nodes_.size() < kNullAddress, "address space exhausted");
  BSVC_CHECK_MSG(active_shard_ == nullptr, "add_node inside a sharded window");
  if (shards_ != 0) {
    // Ordering keys pack the origin address into the top 24 bits.
    BSVC_CHECK_MSG(nodes_.size() < (1u << 24),
                   "sharded engine caps addresses below 2^24");
  }
  Node node;
  node.id = id;
  // Exactly one splitmix step of the shared seed state per node, as the
  // serial engine has always done — golden replays pin this down. The
  // transport stream is split off the same primary seed locally, so both
  // streams depend only on (engine seed, address) and the sharded engine's
  // transport draws are independent of the shard count.
  const std::uint64_t primary = splitmix64(node_seed_state_);
  node.rng = Rng(primary);
  std::uint64_t salted = primary ^ 0x9E3779B97F4A7C15ull;
  node.net_rng = Rng(splitmix64(salted));
  nodes_.push_back(std::move(node));
  return static_cast<Address>(nodes_.size() - 1);
}

ProtocolSlot Engine::attach(Address addr, std::unique_ptr<Protocol> protocol) {
  Node& node = node_at(addr);
  BSVC_CHECK(protocol != nullptr);
  BSVC_CHECK_MSG(node.stack.size() < 255, "protocol stack overflow");
  node.stack.push_back(std::move(protocol));
  return static_cast<ProtocolSlot>(node.stack.size() - 1);
}

Engine::TypeCounters& Engine::counters_for(const char* tag) {
  // Tags are per-class string literals, so pointer equality almost always
  // hits; the strcmp fallback catches a literal duplicated across TUs. The
  // table has one entry per payload type in flight — single digits — so a
  // linear scan beats any hash on this path.
  for (TypeCounters& tc : type_counters_) {
    if (tc.tag == tag || std::strcmp(tc.tag, tag) == 0) return tc;
  }
  const std::string name(tag);
  TypeCounters tc;
  tc.tag = tag;
  tc.sent = &metrics_.counter("msg.sent." + name);
  tc.delivered = &metrics_.counter("msg.delivered." + name);
  type_counters_.push_back(tc);
  return type_counters_.back();
}

void Engine::start_node(Address addr, SimTime delay) {
  BSVC_CHECK_MSG(active_shard_ == nullptr, "start_node inside a sharded window");
  Node& node = node_at(addr);
  if (!node.alive) {
    node.alive = true;
    ++alive_count_;
  }
  if (trace_ != nullptr) {
    obs::TraceRecord r;
    r.time = now_;
    r.kind = obs::TraceKind::NodeStart;
    r.node = addr;
    r.aux = delay;
    trace_->record(r);
  }
  for (ProtocolSlot slot = 0; slot < node.stack.size(); ++slot) {
    SlimEvent ev;
    ev.time = now_ + delay;
    ev.kind = EventKind::Start;
    ev.addr = addr;
    ev.slot = slot;
    if (shards_ != 0) {
      ev.seq = make_key(addr, node.order_counter++);
      shard_ctx_[shard_of(addr)]->queue.push(ev);
    } else {
      push(ev);
    }
  }
}

void Engine::kill_node(Address addr) {
  BSVC_CHECK_MSG(active_shard_ == nullptr, "kill_node inside a sharded window");
  Node& node = node_at(addr);
  if (node.alive) {
    node.alive = false;
    --alive_count_;
    if (trace_ != nullptr) {
      obs::TraceRecord r;
      r.time = now_;
      r.kind = obs::TraceKind::NodeKill;
      r.node = addr;
      trace_->record(r);
    }
  }
}

Protocol& Engine::protocol(Address addr, ProtocolSlot slot) {
  Node& node = node_at(addr);
  BSVC_CHECK(slot < node.stack.size());
  return *node.stack[slot];
}

const Protocol& Engine::protocol(Address addr, ProtocolSlot slot) const {
  const Node& node = node_at(addr);
  BSVC_CHECK(slot < node.stack.size());
  return *node.stack[slot];
}

std::vector<Address> Engine::alive_addresses() const {
  std::vector<Address> out;
  out.reserve(alive_count_);
  for (Address a = 0; a < nodes_.size(); ++a) {
    if (nodes_[a].alive) out.push_back(a);
  }
  return out;
}

Rng& Engine::node_rng(Address addr) { return node_at(addr).rng; }

void Engine::send_message(Address from, Address to, ProtocolSlot slot, PayloadRef payload) {
  BSVC_CHECK(payload);
  BSVC_CHECK_MSG(to < nodes_.size(), "send to unknown address");
  if (shards_ != 0) {
    send_sharded(from, to, slot, std::move(payload));
    return;
  }
  // The span id outlives tamper replacement below: a rewritten payload still
  // travels on behalf of the same logical exchange.
  const std::uint64_t span_id = payload->span;
  ++traffic_.messages_sent;
  traffic_.bytes_sent += payload->wire_bytes() + kUdpIpHeaderBytes;
  counters_for(payload->metric_tag()).sent->inc();
  if (trace_ != nullptr) trace_message(obs::TraceKind::Send, from, to, slot, *payload);
  note_span(span_id, obs::SpanTransport::Send);

  if (link_filter_ && !link_filter_(from, to)) {
    ++traffic_.messages_dropped;
    if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
    note_span(span_id, obs::SpanTransport::Drop);
    return;
  }
  // Fault verdict before the base drop: a partition cut or correlated link
  // loss kills the message outright; survivors still face the i.i.d. drop.
  FaultModel::SendDecision fault;
  if (fault_ != nullptr) {
    fault = fault_->on_send(now_, from, to);
    if (fault.drop) {
      ++traffic_.messages_dropped;
      if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
      note_span(span_id, obs::SpanTransport::Drop);
      return;
    }
    // Tamper verdict: Byzantine senders may withhold, damage or rewrite the
    // content. The byte accounting above already charged the original
    // transmission; a rewritten payload travels in its place.
    auto tamper = fault_->on_payload(now_, from, to, *payload);
    using Action = FaultModel::TamperVerdict::Action;
    if (tamper.action == Action::Suppress || tamper.action == Action::Corrupt) {
      ++traffic_.messages_dropped;
      if (tamper.action == Action::Corrupt) msg_corrupt_->inc();
      if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
      note_span(span_id, obs::SpanTransport::Drop);
      return;
    }
    if (tamper.action == Action::Replace) {
      // Copy-on-write at the tamper point: only this transmission switches
      // to the rewritten payload; other refs to the original are untouched.
      BSVC_CHECK(tamper.replacement);
      payload = std::move(tamper.replacement);
    }
  }
  if (rng_.chance(transport_.drop_probability)) {
    ++traffic_.messages_dropped;
    if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
    note_span(span_id, obs::SpanTransport::Drop);
    return;
  }
  SimTime latency;
  if (fault.replace_latency) {
    // Heavy-tail mode replaces the base draw entirely; the base RNG is NOT
    // advanced, which is fine — determinism only requires that the same
    // trajectory makes the same draws, not that draw counts match the
    // no-fault run.
    latency = fault.latency;
  } else if (latency_model_) {
    latency = latency_model_(from, to) + rng_.below(transport_.min_latency + 1);
  } else {
    latency = transport_.min_latency +
              rng_.below(transport_.max_latency - transport_.min_latency + 1);
  }
  latency += fault.extra_delay;

  SlimEvent ev;
  ev.time = now_ + latency;
  ev.kind = EventKind::Message;
  ev.addr = to;
  ev.from = from;
  ev.slot = slot;
  // Inject one extra copy, arriving duplicate_delay after the original (and
  // sequenced after it on ties). A duplicate is a second reference to the
  // same immutable payload — no deep copy, and no payload type can opt out,
  // so the old "silently skipped when unclonable" hole is gone by
  // construction (msg.dup.skipped stays 0; kept as a tripwire). The
  // duplicate bypasses the base drop model (it already survived the fault
  // layer's own verdict).
  PayloadRef copy;
  if (fault.duplicate) copy = payload;
  ev.aux = payload_pool_.store(std::move(payload));
  push(ev);
  if (copy) {
    ++traffic_.messages_duplicated;
    traffic_.bytes_sent += copy->wire_bytes() + kUdpIpHeaderBytes;
    fault_dup_->inc();
    SlimEvent dup = ev;
    dup.time = ev.time + fault.duplicate_delay;
    dup.aux = payload_pool_.store(std::move(copy));
    push(dup);
  }
}

Engine::TypeDelta& Engine::delta_for(ShardCtx& sc, const char* tag) {
  // Same tag-resolution strategy as counters_for, against the shard's
  // private delta table — no shared registry access inside a window.
  for (TypeDelta& d : sc.type_deltas) {
    if (d.tag == tag || std::strcmp(d.tag, tag) == 0) return d;
  }
  sc.type_deltas.push_back(TypeDelta{tag, 0, 0});
  return sc.type_deltas.back();
}

void Engine::send_sharded(Address from, Address to, ProtocolSlot slot, PayloadRef payload) {
  ShardCtx* sc = active_shard_;
  // In-window sends come from the sender's own shard (Context::send); the
  // sender's streams and counter are that shard's private state.
  BSVC_CHECK_MSG(sc == nullptr || shard_of(from) == sc->index,
                 "cross-shard send on behalf of a foreign node inside a window");
  Node& sender = node_at(from);
  const SimTime now = sc != nullptr ? sc->now : now_;
  TrafficStats& tr = sc != nullptr ? sc->traffic : traffic_;
  // Captured before any tamper replacement, as in the serial path. SpanLog
  // aggregation is commutative, so lane-concurrent notes stay K-invariant.
  const std::uint64_t span_id = payload->span;
  ++tr.messages_sent;
  tr.bytes_sent += payload->wire_bytes() + kUdpIpHeaderBytes;
  if (sc != nullptr) {
    ++delta_for(*sc, payload->metric_tag()).sent;
  } else {
    counters_for(payload->metric_tag()).sent->inc();
  }
  if (trace_ != nullptr) trace_message(obs::TraceKind::Send, from, to, slot, *payload);
  note_span(span_id, obs::SpanTransport::Send);

  if (link_filter_ && !link_filter_(from, to)) {
    ++tr.messages_dropped;
    if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
    note_span(span_id, obs::SpanTransport::Drop);
    return;
  }
  // Same verdict pipeline as the serial engine, with every random draw
  // taken from the sender's transport stream — the decisions depend only on
  // (trajectory, sender), never on shard packing.
  FaultModel::SendDecision fault;
  if (fault_ != nullptr) {
    fault = fault_->on_send_rng(now, from, to, sender.net_rng);
    if (fault.drop) {
      ++tr.messages_dropped;
      if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
      note_span(span_id, obs::SpanTransport::Drop);
      return;
    }
    auto tamper = fault_->on_payload_rng(now, from, to, *payload, sender.net_rng);
    using Action = FaultModel::TamperVerdict::Action;
    if (tamper.action == Action::Suppress || tamper.action == Action::Corrupt) {
      ++tr.messages_dropped;
      if (tamper.action == Action::Corrupt) msg_corrupt_->inc();
      if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
      note_span(span_id, obs::SpanTransport::Drop);
      return;
    }
    if (tamper.action == Action::Replace) {
      BSVC_CHECK(tamper.replacement);
      payload = std::move(tamper.replacement);
    }
  }
  if (sender.net_rng.chance(transport_.drop_probability)) {
    ++tr.messages_dropped;
    if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
    note_span(span_id, obs::SpanTransport::Drop);
    return;
  }
  SimTime latency;
  if (fault.replace_latency) {
    latency = fault.latency;
  } else if (latency_model_) {
    latency = latency_model_(from, to) + sender.net_rng.below(transport_.min_latency + 1);
  } else {
    latency = transport_.min_latency +
              sender.net_rng.below(transport_.max_latency - transport_.min_latency + 1);
  }
  latency += fault.extra_delay;
  // Conservative lookahead: nothing may arrive inside the window it was
  // sent in. Only fault-replaced latencies can fall below min_latency; they
  // are clamped up to the window width.
  if (latency < window_ticks_) latency = window_ticks_;

  SlimEvent ev;
  ev.time = now + latency;
  ev.kind = EventKind::Message;
  ev.addr = to;
  ev.from = from;
  ev.slot = slot;
  ev.seq = make_key(from, sender.order_counter++);
  PayloadRef copy;
  if (fault.duplicate) copy = payload;
  route_sharded(ev, std::move(payload), sc);
  if (copy) {
    ++tr.messages_duplicated;
    tr.bytes_sent += copy->wire_bytes() + kUdpIpHeaderBytes;
    fault_dup_->inc();
    SlimEvent dup = ev;
    dup.time = ev.time + fault.duplicate_delay;
    // A fresh key: the duplicate is its own event, ordered after the
    // original on ties (higher per-origin counter).
    dup.seq = make_key(from, sender.order_counter++);
    route_sharded(dup, std::move(copy), sc);
  }
}

void Engine::route_sharded(SlimEvent ev, PayloadRef payload, ShardCtx* src) {
  const std::uint32_t dest = shard_of(ev.addr);
  if (src != nullptr && dest != src->index) {
    // Cross-shard, in-window: park in the outbox; the destination shard
    // assigns the payload slot when it drains the mailbox at the barrier.
    src->out[dest].push_back(MailboxEntry{ev, std::move(payload)});
    return;
  }
  // Same-shard (cursor is behind ev.time, so pushing mid-drain is safe) or
  // barrier context (no lanes running).
  ShardCtx& dst = *shard_ctx_[dest];
  ev.aux = dst.payload_pool.store(std::move(payload));
  dst.queue.push(ev);
}

void Engine::dispatch_sharded(ShardCtx& sc, const SlimEvent& ev) {
  ++sc.events;
  // Calls never reach shard queues; they live in the coordinator heap.
  BSVC_CHECK(ev.kind != EventKind::Call);
  PayloadRef payload;
  if (ev.kind == EventKind::Message) {
    payload = sc.payload_pool.take(static_cast<std::uint32_t>(ev.aux));
  }
  Node& node = node_at(ev.addr);
  if (!node.alive) {
    if (ev.kind == EventKind::Message) {
      ++sc.traffic.messages_to_dead;
      if (trace_ != nullptr) {
        trace_message(obs::TraceKind::DeadDest, ev.from, ev.addr, ev.slot, *payload);
      }
      note_span(payload->span, obs::SpanTransport::DeadDest);
    }
    return;  // dead nodes neither receive nor act
  }
  if (fault_ != nullptr) {
    const SimTime recover = fault_->dark_until(sc.now, ev.addr);
    if (recover > sc.now) {
      if (ev.kind == EventKind::Message) {
        ++sc.traffic.messages_dropped;
        fault_dark_dropped_->inc();
        if (trace_ != nullptr) {
          trace_message(obs::TraceKind::Drop, ev.from, ev.addr, ev.slot, *payload);
        }
        note_span(payload->span, obs::SpanTransport::Drop);
      } else {
        fault_dark_deferred_->inc();
        // Deferred events keep their original key: keys are unique per
        // origin for the whole run, so re-pushing at the recovery time
        // cannot collide, and relative order among one node's deferred
        // events is preserved — independent of shard count.
        SlimEvent deferred = ev;
        deferred.time = recover;
        sc.queue.push(deferred);
      }
      return;
    }
  }
  BSVC_CHECK(ev.slot < node.stack.size());
  Context ctx(*this, ev.addr, ev.slot);
  switch (ev.kind) {
    case EventKind::Start:
      node.stack[ev.slot]->on_start(ctx);
      break;
    case EventKind::Timer:
      if (trace_ != nullptr) {
        obs::TraceRecord r;
        r.time = sc.now;
        r.kind = obs::TraceKind::TimerFire;
        r.node = ev.addr;
        r.slot = ev.slot;
        r.aux = ev.aux;
        if (shards_ > 1) {
          // Only a multi-lane crew can record concurrently; a one-shard
          // engine runs inline and skips the lock like the serial path.
          const std::lock_guard<std::mutex> lock(trace_mutex_);
          trace_->record(r);
        } else {
          trace_->record(r);
        }
      }
      node.stack[ev.slot]->on_timer(ctx, ev.aux);
      break;
    case EventKind::Message: {
      // Span id survives the transcoder below: a codec round trip rebuilds
      // the payload and deliberately does not carry the simulation-side id.
      const std::uint64_t span_id = payload->span;
      if (transcoder_) {
        // The transcoder must be a pure function of the payload — shard
        // lanes invoke it concurrently (the wire codec round trip is).
        PayloadRef decoded = transcoder_(*payload);
        if (!decoded) {
          ++sc.traffic.messages_dropped;
          msg_corrupt_->inc();  // bound eagerly at construction
          if (trace_ != nullptr) {
            trace_message(obs::TraceKind::Drop, ev.from, ev.addr, ev.slot, *payload);
          }
          note_span(span_id, obs::SpanTransport::Drop);
          break;
        }
        payload = std::move(decoded);
      }
      ++sc.traffic.messages_delivered;
      ++delta_for(sc, payload->metric_tag()).delivered;
      if (trace_ != nullptr) {
        trace_message(obs::TraceKind::Deliver, ev.from, ev.addr, ev.slot, *payload);
      }
      note_span(span_id, obs::SpanTransport::Deliver);
      node.stack[ev.slot]->on_message(ctx, ev.from, *payload);
      break;
    }
    case EventKind::Call:
      break;  // unreachable, checked above
  }
}

void Engine::schedule_timer(Address addr, ProtocolSlot slot, SimTime delay,
                            std::uint64_t timer_id) {
  if (shards_ != 0) {
    ShardCtx* sc = active_shard_;
    // In-window timers are self-timers (Context::schedule_timer); a timer
    // for a foreign shard's node would race on its queue.
    BSVC_CHECK_MSG(sc == nullptr || shard_of(addr) == sc->index,
                   "cross-shard timer scheduled inside a window");
    Node& node = node_at(addr);
    SlimEvent ev;
    ev.time = (sc != nullptr ? sc->now : now_) + delay;
    ev.kind = EventKind::Timer;
    ev.addr = addr;
    ev.slot = slot;
    ev.aux = timer_id;
    ev.seq = make_key(addr, node.order_counter++);
    shard_ctx_[shard_of(addr)]->queue.push(ev);
    return;
  }
  SlimEvent ev;
  ev.time = now_ + delay;
  ev.kind = EventKind::Timer;
  ev.addr = addr;
  ev.slot = slot;
  ev.aux = timer_id;
  push(ev);
}

void Engine::schedule_call(SimTime delay, std::function<void(Engine&)> fn) {
  BSVC_CHECK(fn != nullptr);
  if (shards_ != 0) {
    // Calls are coordinator-side: they run single-threaded at barriers and
    // may touch anything (topology, filters, fault plans, Engine::rng()).
    BSVC_CHECK_MSG(active_shard_ == nullptr, "schedule_call inside a sharded window");
    PendingCall call;
    call.time = now_ + delay;
    call.seq = call_seq_++;
    call.slot = call_pool_.store(std::move(fn));
    calls_.push_back(call);
    std::push_heap(calls_.begin(), calls_.end(), call_later);
    return;
  }
  SlimEvent ev;
  ev.time = now_ + delay;
  ev.kind = EventKind::Call;
  ev.aux = call_pool_.store(std::move(fn));
  push(ev);
}

void Engine::run_until(SimTime t_end) {
  if (shards_ != 0) {
    run_sharded(t_end, /*settle_clock=*/true);
    return;
  }
  SlimEvent ev;
  while (queue_.pop_if_at_most(t_end, ev)) {
    BSVC_CHECK_MSG(ev.time >= now_, "event queue time went backwards");
    now_ = ev.time;
    dispatch(ev);
  }
  now_ = std::max(now_, t_end);
}

void Engine::run_all() {
  if (shards_ != 0) {
    run_sharded(~SimTime{0}, /*settle_clock=*/false);
    return;
  }
  SlimEvent ev;
  while (queue_.pop_if_at_most(~SimTime{0}, ev)) {
    now_ = ev.time;
    dispatch(ev);
  }
}

// --- sharded runtime ----------------------------------------------------

void Engine::run_sharded(SimTime t_end, bool settle_clock) {
  constexpr SimTime kNever = ~SimTime{0};
  for (;;) {
    const SimTime tc = calls_.empty() ? kNever : calls_.front().time;
    SimTime te = kNever;
    for (const auto& sc : shard_ctx_) te = std::min(te, sc->queue.min_time());
    const SimTime t = std::min(tc, te);
    if (t == kNever || t > t_end) break;
    now_ = t;
    if (tc <= t) {
      // In the sharded family, same-tick ordering between calls and node
      // events is fixed by rule — calls first — instead of by the serial
      // engine's insertion order (which no longer exists across shards).
      run_due_calls();
      continue;
    }
    // Conservative window [t, limit]: aligned to the lookahead grid so
    // nothing sent inside it can arrive inside it, capped by the horizon
    // and by the next scheduled call (which must run at a barrier).
    SimTime limit = t - (t % window_ticks_) + window_ticks_ - 1;
    limit = std::min(limit, t_end);
    if (tc != kNever) limit = std::min(limit, tc - 1);
    run_window(limit);
    now_ = limit;
  }
  if (settle_clock) now_ = std::max(now_, t_end);
}

void Engine::run_due_calls() {
  while (!calls_.empty() && calls_.front().time <= now_) {
    std::pop_heap(calls_.begin(), calls_.end(), call_later);
    const PendingCall call = calls_.back();
    calls_.pop_back();
    ++events_dispatched_;
    const auto fn = call_pool_.take(call.slot);
    fn(*this);
  }
}

void Engine::run_window(SimTime limit) {
  using Clock = std::chrono::steady_clock;
  const auto elapsed_ns = [](Clock::time_point a, Clock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };
  const bool profiling = profiler_ != nullptr;
  Clock::time_point w0;
  if (profiling) w0 = Clock::now();
  // Phase 1: every lane drains its own shard's queue through the window.
  crew_->run([this, limit](std::size_t lane) {
    ShardCtx& sc = *shard_ctx_[lane];
    active_shard_ = &sc;
    SlimEvent ev;
    while (sc.queue.pop_if_at_most(limit, ev)) {
      BSVC_CHECK_MSG(ev.time >= sc.now, "shard queue time went backwards");
      sc.now = ev.time;
      dispatch_sharded(sc, ev);
    }
    sc.now = limit;
    active_shard_ = nullptr;
  });
  Clock::time_point t1;
  if (profiling) {
    t1 = Clock::now();
    // Lane timings are visible after the run() barrier; copy into scratch
    // before the next round overwrites them.
    const auto& lanes = crew_->last_lane_ns();
    std::copy(lanes.begin(), lanes.end(), prof_dispatch_ns_.begin());
  }
  // Phase 2: drain inbound mailboxes into destination queues. The crew
  // barrier between the phases publishes every outbox; each lane reads only
  // boxes addressed to it and writes only its own queue. Drain order does
  // not matter for determinism — event order comes from the keys.
  crew_->run([this](std::size_t lane) {
    ShardCtx& dst = *shard_ctx_[lane];
    for (const auto& src : shard_ctx_) {
      std::vector<MailboxEntry>& box = src->out[lane];
      for (MailboxEntry& entry : box) {
        SlimEvent ev = entry.ev;
        ev.aux = dst.payload_pool.store(std::move(entry.payload));
        dst.queue.push(ev);
      }
      dst.mailbox_in += box.size();
      box.clear();
    }
  });
  if (!profiling) {
    merge_shard_deltas();
    return;
  }
  const Clock::time_point t2 = Clock::now();
  {
    const auto& lanes = crew_->last_lane_ns();
    std::copy(lanes.begin(), lanes.end(), prof_drain_ns_.begin());
  }
  // Gauges must be read before merge_shard_deltas resets the per-window
  // shard state (events, mailbox_in).
  std::uint64_t window_events = 0;
  for (std::size_t i = 0; i < shards_; ++i) {
    const ShardCtx& sc = *shard_ctx_[i];
    prof_queue_depth_[i] = sc.queue.size();
    prof_mailbox_delta_[i] = sc.mailbox_in;
    window_events += sc.events;
  }
  merge_shard_deltas();
  const Clock::time_point t3 = Clock::now();
  obs::WindowSample sample;
  sample.virtual_time = limit;
  sample.wall_ns = elapsed_ns(w0, t3);
  sample.dispatch_wall_ns = elapsed_ns(w0, t1);
  sample.drain_wall_ns = elapsed_ns(t1, t2);
  sample.dispatch_work_ns = prof_dispatch_ns_.data();
  sample.drain_work_ns = prof_drain_ns_.data();
  sample.queue_depth = prof_queue_depth_.data();
  sample.mailbox_in = prof_mailbox_delta_.data();
  sample.events = window_events;
  sample.shards = shards_;
  profiler_->record_window(sample);
}

void Engine::merge_shard_deltas() {
  for (const auto& scp : shard_ctx_) {
    ShardCtx& sc = *scp;
    traffic_.messages_sent += sc.traffic.messages_sent;
    traffic_.messages_dropped += sc.traffic.messages_dropped;
    traffic_.messages_to_dead += sc.traffic.messages_to_dead;
    traffic_.messages_delivered += sc.traffic.messages_delivered;
    traffic_.messages_duplicated += sc.traffic.messages_duplicated;
    traffic_.bytes_sent += sc.traffic.bytes_sent;
    sc.traffic = {};
    events_dispatched_ += sc.events;
    shard_window_events_->add(static_cast<double>(sc.events));
    sc.events = 0;
    shard_mailbox_->add(sc.mailbox_in);
    sc.mailbox_in = 0;
    for (TypeDelta& d : sc.type_deltas) {
      if (d.sent != 0) counters_for(d.tag).sent->add(d.sent);
      if (d.delivered != 0) counters_for(d.tag).delivered->add(d.delivered);
      d.sent = 0;
      d.delivered = 0;
    }
  }
  shard_windows_->inc();
}

void Engine::dispatch(const SlimEvent& ev) {
  ++events_dispatched_;
  if (ev.kind == EventKind::Call) {
    const auto fn = call_pool_.take(static_cast<std::uint32_t>(ev.aux));
    fn(*this);
    return;
  }
  // Message payloads are reclaimed from the pool unconditionally — even when
  // the destination died in flight, matching the old owning-event behavior.
  PayloadRef payload;
  if (ev.kind == EventKind::Message) {
    payload = payload_pool_.take(static_cast<std::uint32_t>(ev.aux));
  }
  Node& node = node_at(ev.addr);
  if (!node.alive) {
    if (ev.kind == EventKind::Message) {
      ++traffic_.messages_to_dead;
      if (trace_ != nullptr) {
        trace_message(obs::TraceKind::DeadDest, ev.from, ev.addr, ev.slot, *payload);
      }
      note_span(payload->span, obs::SpanTransport::DeadDest);
    }
    return;  // dead nodes neither receive nor act
  }
  if (fault_ != nullptr) {
    const SimTime recover = fault_->dark_until(now_, ev.addr);
    if (recover > now_) {
      // Crash–recover semantics: a dark node keeps its state but neither
      // receives nor acts. Messages to it are lost; its timers and starts
      // are deferred to the recovery time (re-sequenced, so relative order
      // among a node's deferred events is preserved).
      if (ev.kind == EventKind::Message) {
        ++traffic_.messages_dropped;
        fault_dark_dropped_->inc();
        if (trace_ != nullptr) {
          trace_message(obs::TraceKind::Drop, ev.from, ev.addr, ev.slot, *payload);
        }
        note_span(payload->span, obs::SpanTransport::Drop);
      } else {
        fault_dark_deferred_->inc();
        SlimEvent deferred = ev;
        deferred.time = recover;
        push(deferred);
      }
      return;
    }
  }
  BSVC_CHECK(ev.slot < node.stack.size());
  Context ctx(*this, ev.addr, ev.slot);
  switch (ev.kind) {
    case EventKind::Start:
      node.stack[ev.slot]->on_start(ctx);
      break;
    case EventKind::Timer:
      if (trace_ != nullptr) {
        obs::TraceRecord r;
        r.time = now_;
        r.kind = obs::TraceKind::TimerFire;
        r.node = ev.addr;
        r.slot = ev.slot;
        r.aux = ev.aux;
        trace_->record(r);
      }
      node.stack[ev.slot]->on_timer(ctx, ev.aux);
      break;
    case EventKind::Message: {
      // Span id survives the transcoder below (codec rebuilds drop it).
      const std::uint64_t span_id = payload->span;
      if (transcoder_) {
        PayloadRef decoded = transcoder_(*payload);
        if (!decoded) {
          // A frame the wire codec cannot decode is a corrupt datagram: a
          // counted drop, never a crash. Lazy binding keeps the registry of
          // clean runs untouched.
          ++traffic_.messages_dropped;
          if (msg_corrupt_ == nullptr) msg_corrupt_ = &metrics_.counter("msg.corrupt");
          msg_corrupt_->inc();
          if (trace_ != nullptr) {
            trace_message(obs::TraceKind::Drop, ev.from, ev.addr, ev.slot, *payload);
          }
          note_span(span_id, obs::SpanTransport::Drop);
          break;
        }
        payload = std::move(decoded);
      }
      ++traffic_.messages_delivered;
      counters_for(payload->metric_tag()).delivered->inc();
      if (trace_ != nullptr) {
        trace_message(obs::TraceKind::Deliver, ev.from, ev.addr, ev.slot, *payload);
      }
      note_span(span_id, obs::SpanTransport::Deliver);
      node.stack[ev.slot]->on_message(ctx, ev.from, *payload);
      break;
    }
    case EventKind::Call:
      break;  // handled above
  }
}

void Engine::push(SlimEvent ev) {
  ev.seq = next_seq_++;
  queue_.push(ev);
}

Node& Engine::node_at(Address addr) {
  BSVC_CHECK_MSG(addr < nodes_.size(), "address out of range");
  return nodes_[addr];
}

const Node& Engine::node_at(Address addr) const {
  BSVC_CHECK_MSG(addr < nodes_.size(), "address out of range");
  return nodes_[addr];
}

}  // namespace bsvc
