#include "sim/engine.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include <cstdio>

namespace bsvc {

// --- Context (declared in protocol.hpp, implemented against Engine) -----

NodeId Context::self_id() const { return engine_.id_of(self_); }
std::uint64_t Context::now() const { return engine_.now(); }

Rng& Context::rng() {
  // Accessing node state through the engine keeps Context trivially small.
  return engine_.node_rng(self_);
}

void Context::send(Address to, PayloadRef payload) {
  engine_.send_message(self_, to, slot_, std::move(payload));
}

void Context::schedule_timer(std::uint64_t delay, std::uint64_t timer_id) {
  engine_.schedule_timer(self_, slot_, delay, timer_id);
}

// --- TransportConfig ----------------------------------------------------

std::string TransportConfig::validate() const {
  if (!(drop_probability >= 0.0 && drop_probability <= 1.0)) {
    return "drop_probability " + std::to_string(drop_probability) +
           " outside [0, 1]";
  }
  if (min_latency > max_latency) {
    return "min_latency " + std::to_string(min_latency) + " > max_latency " +
           std::to_string(max_latency);
  }
  return "";
}

// --- Engine ------------------------------------------------------------

Engine::Engine(std::uint64_t seed, TransportConfig transport)
    : rng_(seed), node_seed_state_(seed ^ 0xA24BAED4963EE407ull), transport_(transport) {
  BSVC_CHECK_MSG(transport_.validate().empty(), "invalid TransportConfig");
}

void Engine::set_fault_model(FaultModel* model) {
  fault_ = model;
  if (model != nullptr && fault_dup_ == nullptr) {
    fault_dup_ = &metrics_.counter("msg.dup");
    fault_dup_skipped_ = &metrics_.counter("msg.dup.skipped");
    fault_dark_dropped_ = &metrics_.counter("fault.dark.dropped");
    fault_dark_deferred_ = &metrics_.counter("fault.dark.deferred");
  }
  if (model != nullptr && msg_corrupt_ == nullptr) {
    msg_corrupt_ = &metrics_.counter("msg.corrupt");
  }
}

Address Engine::add_node(NodeId id) {
  BSVC_CHECK_MSG(nodes_.size() < kNullAddress, "address space exhausted");
  Node node;
  node.id = id;
  node.rng = Rng(splitmix64(node_seed_state_));
  nodes_.push_back(std::move(node));
  return static_cast<Address>(nodes_.size() - 1);
}

ProtocolSlot Engine::attach(Address addr, std::unique_ptr<Protocol> protocol) {
  Node& node = node_at(addr);
  BSVC_CHECK(protocol != nullptr);
  BSVC_CHECK_MSG(node.stack.size() < 255, "protocol stack overflow");
  node.stack.push_back(std::move(protocol));
  return static_cast<ProtocolSlot>(node.stack.size() - 1);
}

Engine::TypeCounters& Engine::counters_for(const char* tag) {
  // Tags are per-class string literals, so pointer equality almost always
  // hits; the strcmp fallback catches a literal duplicated across TUs. The
  // table has one entry per payload type in flight — single digits — so a
  // linear scan beats any hash on this path.
  for (TypeCounters& tc : type_counters_) {
    if (tc.tag == tag || std::strcmp(tc.tag, tag) == 0) return tc;
  }
  const std::string name(tag);
  TypeCounters tc;
  tc.tag = tag;
  tc.sent = &metrics_.counter("msg.sent." + name);
  tc.delivered = &metrics_.counter("msg.delivered." + name);
  type_counters_.push_back(tc);
  return type_counters_.back();
}

void Engine::start_node(Address addr, SimTime delay) {
  Node& node = node_at(addr);
  if (!node.alive) {
    node.alive = true;
    ++alive_count_;
  }
  if (trace_ != nullptr) {
    obs::TraceRecord r;
    r.time = now_;
    r.kind = obs::TraceKind::NodeStart;
    r.node = addr;
    r.aux = delay;
    trace_->record(r);
  }
  for (ProtocolSlot slot = 0; slot < node.stack.size(); ++slot) {
    SlimEvent ev;
    ev.time = now_ + delay;
    ev.kind = EventKind::Start;
    ev.addr = addr;
    ev.slot = slot;
    push(ev);
  }
}

void Engine::kill_node(Address addr) {
  Node& node = node_at(addr);
  if (node.alive) {
    node.alive = false;
    --alive_count_;
    if (trace_ != nullptr) {
      obs::TraceRecord r;
      r.time = now_;
      r.kind = obs::TraceKind::NodeKill;
      r.node = addr;
      trace_->record(r);
    }
  }
}

Protocol& Engine::protocol(Address addr, ProtocolSlot slot) {
  Node& node = node_at(addr);
  BSVC_CHECK(slot < node.stack.size());
  return *node.stack[slot];
}

const Protocol& Engine::protocol(Address addr, ProtocolSlot slot) const {
  const Node& node = node_at(addr);
  BSVC_CHECK(slot < node.stack.size());
  return *node.stack[slot];
}

std::vector<Address> Engine::alive_addresses() const {
  std::vector<Address> out;
  out.reserve(alive_count_);
  for (Address a = 0; a < nodes_.size(); ++a) {
    if (nodes_[a].alive) out.push_back(a);
  }
  return out;
}

Rng& Engine::node_rng(Address addr) { return node_at(addr).rng; }

void Engine::send_message(Address from, Address to, ProtocolSlot slot, PayloadRef payload) {
  BSVC_CHECK(payload);
  BSVC_CHECK_MSG(to < nodes_.size(), "send to unknown address");
  ++traffic_.messages_sent;
  traffic_.bytes_sent += payload->wire_bytes() + kUdpIpHeaderBytes;
  counters_for(payload->metric_tag()).sent->inc();
  if (trace_ != nullptr) trace_message(obs::TraceKind::Send, from, to, slot, *payload);

  if (link_filter_ && !link_filter_(from, to)) {
    ++traffic_.messages_dropped;
    if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
    return;
  }
  // Fault verdict before the base drop: a partition cut or correlated link
  // loss kills the message outright; survivors still face the i.i.d. drop.
  FaultModel::SendDecision fault;
  if (fault_ != nullptr) {
    fault = fault_->on_send(now_, from, to);
    if (fault.drop) {
      ++traffic_.messages_dropped;
      if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
      return;
    }
    // Tamper verdict: Byzantine senders may withhold, damage or rewrite the
    // content. The byte accounting above already charged the original
    // transmission; a rewritten payload travels in its place.
    auto tamper = fault_->on_payload(now_, from, to, *payload);
    using Action = FaultModel::TamperVerdict::Action;
    if (tamper.action == Action::Suppress || tamper.action == Action::Corrupt) {
      ++traffic_.messages_dropped;
      if (tamper.action == Action::Corrupt) msg_corrupt_->inc();
      if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
      return;
    }
    if (tamper.action == Action::Replace) {
      // Copy-on-write at the tamper point: only this transmission switches
      // to the rewritten payload; other refs to the original are untouched.
      BSVC_CHECK(tamper.replacement);
      payload = std::move(tamper.replacement);
    }
  }
  if (rng_.chance(transport_.drop_probability)) {
    ++traffic_.messages_dropped;
    if (trace_ != nullptr) trace_message(obs::TraceKind::Drop, from, to, slot, *payload);
    return;
  }
  SimTime latency;
  if (fault.replace_latency) {
    // Heavy-tail mode replaces the base draw entirely; the base RNG is NOT
    // advanced, which is fine — determinism only requires that the same
    // trajectory makes the same draws, not that draw counts match the
    // no-fault run.
    latency = fault.latency;
  } else if (latency_model_) {
    latency = latency_model_(from, to) + rng_.below(transport_.min_latency + 1);
  } else {
    latency = transport_.min_latency +
              rng_.below(transport_.max_latency - transport_.min_latency + 1);
  }
  latency += fault.extra_delay;

  SlimEvent ev;
  ev.time = now_ + latency;
  ev.kind = EventKind::Message;
  ev.addr = to;
  ev.from = from;
  ev.slot = slot;
  // Inject one extra copy, arriving duplicate_delay after the original (and
  // sequenced after it on ties). A duplicate is a second reference to the
  // same immutable payload — no deep copy, and no payload type can opt out,
  // so the old "silently skipped when unclonable" hole is gone by
  // construction (msg.dup.skipped stays 0; kept as a tripwire). The
  // duplicate bypasses the base drop model (it already survived the fault
  // layer's own verdict).
  PayloadRef copy;
  if (fault.duplicate) copy = payload;
  ev.aux = payload_pool_.store(std::move(payload));
  push(ev);
  if (copy) {
    ++traffic_.messages_duplicated;
    traffic_.bytes_sent += copy->wire_bytes() + kUdpIpHeaderBytes;
    fault_dup_->inc();
    SlimEvent dup = ev;
    dup.time = ev.time + fault.duplicate_delay;
    dup.aux = payload_pool_.store(std::move(copy));
    push(dup);
  }
}

void Engine::schedule_timer(Address addr, ProtocolSlot slot, SimTime delay,
                            std::uint64_t timer_id) {
  SlimEvent ev;
  ev.time = now_ + delay;
  ev.kind = EventKind::Timer;
  ev.addr = addr;
  ev.slot = slot;
  ev.aux = timer_id;
  push(ev);
}

void Engine::schedule_call(SimTime delay, std::function<void(Engine&)> fn) {
  BSVC_CHECK(fn != nullptr);
  SlimEvent ev;
  ev.time = now_ + delay;
  ev.kind = EventKind::Call;
  ev.aux = call_pool_.store(std::move(fn));
  push(ev);
}

void Engine::run_until(SimTime t_end) {
  SlimEvent ev;
  while (queue_.pop_if_at_most(t_end, ev)) {
    BSVC_CHECK_MSG(ev.time >= now_, "event queue time went backwards");
    now_ = ev.time;
    dispatch(ev);
  }
  now_ = std::max(now_, t_end);
}

void Engine::run_all() {
  SlimEvent ev;
  while (queue_.pop_if_at_most(~SimTime{0}, ev)) {
    now_ = ev.time;
    dispatch(ev);
  }
}

void Engine::dispatch(const SlimEvent& ev) {
  ++events_dispatched_;
  if (ev.kind == EventKind::Call) {
    const auto fn = call_pool_.take(static_cast<std::uint32_t>(ev.aux));
    fn(*this);
    return;
  }
  // Message payloads are reclaimed from the pool unconditionally — even when
  // the destination died in flight, matching the old owning-event behavior.
  PayloadRef payload;
  if (ev.kind == EventKind::Message) {
    payload = payload_pool_.take(static_cast<std::uint32_t>(ev.aux));
  }
  Node& node = node_at(ev.addr);
  if (!node.alive) {
    if (ev.kind == EventKind::Message) {
      ++traffic_.messages_to_dead;
      if (trace_ != nullptr) {
        trace_message(obs::TraceKind::DeadDest, ev.from, ev.addr, ev.slot, *payload);
      }
    }
    return;  // dead nodes neither receive nor act
  }
  if (fault_ != nullptr) {
    const SimTime recover = fault_->dark_until(now_, ev.addr);
    if (recover > now_) {
      // Crash–recover semantics: a dark node keeps its state but neither
      // receives nor acts. Messages to it are lost; its timers and starts
      // are deferred to the recovery time (re-sequenced, so relative order
      // among a node's deferred events is preserved).
      if (ev.kind == EventKind::Message) {
        ++traffic_.messages_dropped;
        fault_dark_dropped_->inc();
        if (trace_ != nullptr) {
          trace_message(obs::TraceKind::Drop, ev.from, ev.addr, ev.slot, *payload);
        }
      } else {
        fault_dark_deferred_->inc();
        SlimEvent deferred = ev;
        deferred.time = recover;
        push(deferred);
      }
      return;
    }
  }
  BSVC_CHECK(ev.slot < node.stack.size());
  Context ctx(*this, ev.addr, ev.slot);
  switch (ev.kind) {
    case EventKind::Start:
      node.stack[ev.slot]->on_start(ctx);
      break;
    case EventKind::Timer:
      if (trace_ != nullptr) {
        obs::TraceRecord r;
        r.time = now_;
        r.kind = obs::TraceKind::TimerFire;
        r.node = ev.addr;
        r.slot = ev.slot;
        r.aux = ev.aux;
        trace_->record(r);
      }
      node.stack[ev.slot]->on_timer(ctx, ev.aux);
      break;
    case EventKind::Message:
      if (transcoder_) {
        PayloadRef decoded = transcoder_(*payload);
        if (!decoded) {
          // A frame the wire codec cannot decode is a corrupt datagram: a
          // counted drop, never a crash. Lazy binding keeps the registry of
          // clean runs untouched.
          ++traffic_.messages_dropped;
          if (msg_corrupt_ == nullptr) msg_corrupt_ = &metrics_.counter("msg.corrupt");
          msg_corrupt_->inc();
          if (trace_ != nullptr) {
            trace_message(obs::TraceKind::Drop, ev.from, ev.addr, ev.slot, *payload);
          }
          break;
        }
        payload = std::move(decoded);
      }
      ++traffic_.messages_delivered;
      counters_for(payload->metric_tag()).delivered->inc();
      if (trace_ != nullptr) {
        trace_message(obs::TraceKind::Deliver, ev.from, ev.addr, ev.slot, *payload);
      }
      node.stack[ev.slot]->on_message(ctx, ev.from, *payload);
      break;
    case EventKind::Call:
      break;  // handled above
  }
}

void Engine::push(SlimEvent ev) {
  ev.seq = next_seq_++;
  queue_.push(ev);
}

Node& Engine::node_at(Address addr) {
  BSVC_CHECK_MSG(addr < nodes_.size(), "address out of range");
  return nodes_[addr];
}

const Node& Engine::node_at(Address addr) const {
  BSVC_CHECK_MSG(addr < nodes_.size(), "address out of range");
  return nodes_[addr];
}

}  // namespace bsvc
