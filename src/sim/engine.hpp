// The discrete-event simulation engine (PeerSim equivalent).
//
// Single-threaded, virtual-time, deterministic given a seed. The engine owns
// all nodes, an event queue ordered by (time, insertion sequence), and the
// unreliable transport model (i.i.d. message drop + bounded uniform latency)
// under which the paper evaluates the bootstrapping service.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_model.hpp"
#include "id/descriptor.hpp"
#include "id/node_id.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/payload.hpp"
#include "sim/protocol.hpp"

namespace bsvc {

/// Transport model parameters.
struct TransportConfig {
  /// Probability that any single transmitted message is lost (paper Fig. 4
  /// uses 0.2). Answers to lost requests are never transmitted at all,
  /// which yields the paper's 28% effective loss.
  double drop_probability = 0.0;
  /// One-way delivery latency, uniform in [min_latency, max_latency] ticks.
  /// Defaults keep request+answer well inside one cycle.
  SimTime min_latency = 10;
  SimTime max_latency = 150;

  /// Returns "" when the configuration is sane, else a description of the
  /// first problem (drop_probability outside [0,1], min_latency >
  /// max_latency). Experiment setup rejects a bad config with this message;
  /// the Engine constructor aborts on it as a backstop.
  std::string validate() const;
};

/// Pairwise one-way base latency between two endpoints, in ticks. When a
/// model is installed the transport adds a small uniform jitter on top
/// (± min_latency of the TransportConfig); used by the proximity
/// experiments, where latency derives from synthetic network coordinates.
using LatencyModel = std::function<SimTime(Address, Address)>;

/// Aggregate traffic counters (since construction or last reset).
struct TrafficStats {
  std::uint64_t messages_sent = 0;       // handed to the transport
  std::uint64_t messages_dropped = 0;    // lost by the drop model
  std::uint64_t messages_to_dead = 0;    // addressed to a dead/removed node
  std::uint64_t messages_delivered = 0;  // reached a live protocol
  std::uint64_t messages_duplicated = 0; // extra copies injected by faults
  std::uint64_t bytes_sent = 0;          // wire bytes incl. UDP/IP headers
};

/// One simulated node: identity, liveness and its protocol stack.
struct Node {
  NodeId id = 0;
  bool alive = false;
  std::vector<std::unique_ptr<Protocol>> stack;
  Rng rng{0};
};

/// The simulation engine. See DESIGN.md §5 for the event model.
class Engine {
 public:
  explicit Engine(std::uint64_t seed, TransportConfig transport = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- topology construction -------------------------------------------

  /// Creates a node with the given ID; returns its address. The node is not
  /// alive until start_node() is called.
  Address add_node(NodeId id);

  /// Appends a protocol to the node's stack; returns its slot.
  ProtocolSlot attach(Address addr, std::unique_ptr<Protocol> protocol);

  /// Marks the node alive and schedules on_start for every protocol in its
  /// stack at now() + delay.
  void start_node(Address addr, SimTime delay = 0);

  /// Kills a node: pending messages to it are dropped, its timers are
  /// discarded on fire, and it never acts again. Idempotent.
  void kill_node(Address addr);

  // --- accessors ---------------------------------------------------------

  SimTime now() const { return now_; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t alive_count() const { return alive_count_; }
  bool is_alive(Address addr) const { return node_at(addr).alive; }
  NodeId id_of(Address addr) const { return node_at(addr).id; }
  NodeDescriptor descriptor_of(Address addr) const { return {id_of(addr), addr}; }

  /// Direct access to a protocol instance (observers, co-located services).
  Protocol& protocol(Address addr, ProtocolSlot slot);
  const Protocol& protocol(Address addr, ProtocolSlot slot) const;

  /// Addresses of all currently alive nodes (O(N); for observers).
  std::vector<Address> alive_addresses() const;

  /// Engine-level RNG (transport, scenarios). Node callbacks should use
  /// their per-node stream via Context::rng().
  Rng& rng() { return rng_; }

  /// Per-node deterministic random stream (backs Context::rng()).
  Rng& node_rng(Address addr);

  const TrafficStats& traffic() const { return traffic_; }
  void reset_traffic() { traffic_ = {}; }

  /// The engine-owned metrics registry (counters, gauges, histograms; see
  /// docs/observability.md for the naming scheme). Per-engine ownership keeps
  /// parallel bench replicas isolated. Const-qualified observers (oracles,
  /// routers) may record into it: metric state is measurement metadata and
  /// never feeds back into the simulation.
  obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Installs a trace sink (nullptr uninstalls). The sink only observes:
  /// with or without one, the simulation is bit-identical. The caller keeps
  /// ownership and must keep the sink alive while installed.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  /// Total events dispatched since construction (messages, timers, starts
  /// and calls). Benches report throughput as events/second against this.
  std::uint64_t events_dispatched() const { return events_dispatched_; }

  TransportConfig& transport() { return transport_; }

  /// Optional link filter: when set, a message from a->b is silently dropped
  /// unless the filter returns true. Models network partitions; clearing the
  /// filter heals the partition (used by the merge experiments).
  void set_link_filter(std::function<bool(Address, Address)> filter) {
    link_filter_ = std::move(filter);
  }
  void clear_link_filter() { link_filter_ = nullptr; }

  /// Installs a fault model (nullptr uninstalls). Consulted once per send
  /// (drop/latency/duplicate verdict) and once per non-Call dispatch
  /// (dark-node query). With no model installed every hook is a single
  /// pointer test and the simulation is bit-identical to the pre-fault
  /// engine — witnessed by the golden-replay tests. The caller keeps
  /// ownership and must keep the model alive while installed.
  void set_fault_model(FaultModel* model);
  FaultModel* fault_model() const { return fault_; }

  /// Installs a pairwise latency model (nullptr restores the uniform
  /// default). See LatencyModel.
  void set_latency_model(LatencyModel model) { latency_model_ = std::move(model); }
  const LatencyModel& latency_model() const { return latency_model_; }

  /// Optional payload transcoder: when set, every payload is passed through
  /// it at delivery time (e.g. a binary encode→decode round trip from
  /// src/wire, proving protocols depend only on what is actually on the
  /// wire). Returning an empty ref drops the message as malformed.
  void set_transcoder(std::function<PayloadRef(const Payload&)> transcoder) {
    transcoder_ = std::move(transcoder);
  }

  // --- event injection ----------------------------------------------------

  /// Sends a payload from one node's protocol through the transport model.
  /// Takes the ref by value: callers publishing a fresh message move it in;
  /// multicast callers pass a copy (refcount bump, no allocation). Used by
  /// Context; exposed for tests.
  void send_message(Address from, Address to, ProtocolSlot slot, PayloadRef payload);

  /// Schedules on_timer(timer_id) on (addr, slot) at now() + delay.
  void schedule_timer(Address addr, ProtocolSlot slot, SimTime delay,
                      std::uint64_t timer_id);

  /// Schedules an arbitrary callback (observers, scenario scripts) at
  /// now() + delay. Callbacks run in schedule order among same-time events.
  void schedule_call(SimTime delay, std::function<void(Engine&)> fn);

  // --- execution ------------------------------------------------------

  /// Runs events with time <= t_end, then sets now() = t_end.
  void run_until(SimTime t_end);

  /// Runs until the event queue is empty.
  void run_all();

 private:
  Node& node_at(Address addr);
  const Node& node_at(Address addr) const;
  void dispatch(const SlimEvent& ev);
  void push(SlimEvent ev);

  /// Per-payload-tag counters ("msg.sent.<tag>" / "msg.delivered.<tag>").
  /// Tags are class-owned string literals, so the common case is a pointer
  /// compare over a handful of entries; a strcmp fallback catches literals
  /// duplicated across translation units.
  struct TypeCounters {
    const char* tag;
    obs::Counter* sent;
    obs::Counter* delivered;
  };
  TypeCounters& counters_for(const char* tag);

  void trace_message(obs::TraceKind kind, Address from, Address to, ProtocolSlot slot,
                     const Payload& payload) {
    obs::TraceRecord r;
    r.time = now_;
    r.kind = kind;
    r.node = (kind == obs::TraceKind::Send || kind == obs::TraceKind::Drop) ? from : to;
    r.peer = (kind == obs::TraceKind::Send || kind == obs::TraceKind::Drop) ? to : from;
    r.slot = slot;
    r.tag = payload.metric_tag();
    r.aux = payload.wire_bytes() + kUdpIpHeaderBytes;
    trace_->record(r);
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
  Rng rng_;
  std::uint64_t node_seed_state_;
  TransportConfig transport_;
  TrafficStats traffic_;
  // Deque, not vector: nodes can be added while the simulation runs (churn
  // joins, merges), and protocols legitimately hold references into their
  // node (e.g. the per-node RNG), so Node addresses must be stable.
  std::deque<Node> nodes_;
  std::size_t alive_count_ = 0;
  // Events are 40-byte PODs; payloads and Call closures are parked in slot
  // pools and referenced by index (see event_queue.hpp for the rationale).
  TwoTierQueue queue_;
  SlotPool<PayloadRef> payload_pool_;
  SlotPool<std::function<void(Engine&)>> call_pool_;
  std::function<bool(Address, Address)> link_filter_;
  std::function<PayloadRef(const Payload&)> transcoder_;
  LatencyModel latency_model_;
  FaultModel* fault_ = nullptr;
  // Fault-path metric handles, bound when a model is installed.
  obs::Counter* fault_dup_ = nullptr;            // msg.dup
  // Duplications that could not produce a copy. Structurally pinned to zero
  // since the PayloadRef refactor (a refcount bump cannot fail for any
  // payload type); kept registered as a tripwire — see
  // docs/observability.md#msg-dup-skipped.
  obs::Counter* fault_dup_skipped_ = nullptr;    // msg.dup.skipped
  obs::Counter* fault_dark_dropped_ = nullptr;   // fault.dark.dropped
  obs::Counter* fault_dark_deferred_ = nullptr;  // fault.dark.deferred
  // Corrupt-frame drops (tamper verdicts and transcoder decode failures).
  // Bound lazily at the first corrupt frame (or with the fault model), so
  // runs that never see one keep an unchanged metrics registry.
  obs::Counter* msg_corrupt_ = nullptr;          // msg.corrupt
  // Mutable: observers holding `const Engine&` record measurements; metric
  // state never feeds back into event ordering or RNG streams.
  mutable obs::MetricsRegistry metrics_;
  obs::TraceSink* trace_ = nullptr;
  std::vector<TypeCounters> type_counters_;
};

}  // namespace bsvc
