// The discrete-event simulation engine (PeerSim equivalent).
//
// Virtual-time, deterministic given a seed. The engine owns all nodes, the
// event queue(s) ordered by (time, sequence), and the unreliable transport
// model (i.i.d. message drop + bounded uniform latency) under which the
// paper evaluates the bootstrapping service.
//
// Two execution modes share one API:
//
//  - serial (shards == 0, the default): the original single-threaded loop,
//    bit-identical to the historical engine — the golden-replay witnesses
//    pin this down;
//  - sharded (shards >= 1): nodes are partitioned addr % K across K shards,
//    each with its own event queue and worker lane, synchronized at
//    conservative time-window barriers of width min_latency (the transport
//    lookahead: no message can arrive inside the window it was sent in).
//    Cross-shard sends travel through per-shard-pair mailboxes drained at
//    each barrier. All transport randomness comes from per-NODE streams and
//    same-tick ordering is content-addressed (origin, per-origin counter),
//    so a (seed, K) run is bit-reproducible AND the trajectory is identical
//    for every K — shards=1 is the in-family golden reference. See
//    docs/architecture.md#sharded-execution.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "fault/fault_model.hpp"
#include "id/descriptor.hpp"
#include "id/node_id.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/payload.hpp"
#include "sim/protocol.hpp"

namespace bsvc {

/// Transport model parameters.
struct TransportConfig {
  /// Probability that any single transmitted message is lost (paper Fig. 4
  /// uses 0.2). Answers to lost requests are never transmitted at all,
  /// which yields the paper's 28% effective loss.
  double drop_probability = 0.0;
  /// One-way delivery latency, uniform in [min_latency, max_latency] ticks.
  /// Defaults keep request+answer well inside one cycle.
  SimTime min_latency = 10;
  SimTime max_latency = 150;

  /// Returns "" when the configuration is sane, else a description of the
  /// first problem (drop_probability outside [0,1], min_latency >
  /// max_latency). Experiment setup rejects a bad config with this message;
  /// the Engine constructor aborts on it as a backstop.
  std::string validate() const;
};

/// Pairwise one-way base latency between two endpoints, in ticks. When a
/// model is installed the transport adds a small uniform jitter on top
/// (± min_latency of the TransportConfig); used by the proximity
/// experiments, where latency derives from synthetic network coordinates.
using LatencyModel = std::function<SimTime(Address, Address)>;

/// Aggregate traffic counters (since construction or last reset).
struct TrafficStats {
  std::uint64_t messages_sent = 0;       // handed to the transport
  std::uint64_t messages_dropped = 0;    // lost by the drop model
  std::uint64_t messages_to_dead = 0;    // addressed to a dead/removed node
  std::uint64_t messages_delivered = 0;  // reached a live protocol
  std::uint64_t messages_duplicated = 0; // extra copies injected by faults
  std::uint64_t bytes_sent = 0;          // wire bytes incl. UDP/IP headers
};

/// One simulated node: identity, liveness and its protocol stack.
struct Node {
  NodeId id = 0;
  bool alive = false;
  std::vector<std::unique_ptr<Protocol>> stack;
  /// Protocol stream (Context::rng()). Seeded exactly as the historical
  /// engine seeded it, so protocol-visible randomness is unchanged.
  Rng rng{0};
  /// Transport stream: drop/latency/fault draws for messages *sent by* this
  /// node under the sharded engine. Node-local so transport randomness is
  /// independent of how nodes are packed into shards. Derived from the same
  /// per-node seed as `rng` (salted split), untouched by the serial engine.
  Rng net_rng{0};
  /// Monotone per-origin event counter backing the sharded engine's
  /// content-addressed ordering keys (see Engine::make_key).
  std::uint64_t order_counter = 0;
};

/// The simulation engine. See DESIGN.md §5 for the event model.
class Engine {
 public:
  /// `shards == 0` selects the serial engine (bit-identical to the
  /// historical one). `shards >= 1` selects the sharded engine with K
  /// worker lanes; K = 1 runs the identical sharded semantics inline on the
  /// calling thread and is the golden reference for every K. Sharded mode
  /// requires min_latency >= 1 (the lookahead) and caps addresses below
  /// 2^24 (ordering keys pack the origin address into the top bits).
  explicit Engine(std::uint64_t seed, TransportConfig transport = {},
                  std::size_t shards = 0);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- topology construction -------------------------------------------

  /// Creates a node with the given ID; returns its address. The node is not
  /// alive until start_node() is called.
  Address add_node(NodeId id);

  /// Appends a protocol to the node's stack; returns its slot.
  ProtocolSlot attach(Address addr, std::unique_ptr<Protocol> protocol);

  /// Marks the node alive and schedules on_start for every protocol in its
  /// stack at now() + delay.
  void start_node(Address addr, SimTime delay = 0);

  /// Kills a node: pending messages to it are dropped, its timers are
  /// discarded on fire, and it never acts again. Idempotent.
  void kill_node(Address addr);

  // --- accessors ---------------------------------------------------------

  /// Current virtual time. Inside a sharded window this is the dispatching
  /// shard's local clock (what a protocol callback must observe); at
  /// barriers and in serial mode it is the global clock.
  SimTime now() const {
    const ShardCtx* sc = active_shard_;
    return sc != nullptr ? sc->now : now_;
  }
  std::size_t node_count() const { return nodes_.size(); }

  /// Shard count: 0 = serial engine, >= 1 = sharded engine with K lanes.
  std::size_t shards() const { return shards_; }
  /// Owning shard of an address (sharded mode; addr % K).
  std::uint32_t shard_of(Address addr) const {
    return static_cast<std::uint32_t>(addr % shards_);
  }
  std::size_t alive_count() const { return alive_count_; }
  bool is_alive(Address addr) const { return node_at(addr).alive; }
  NodeId id_of(Address addr) const { return node_at(addr).id; }
  NodeDescriptor descriptor_of(Address addr) const { return {id_of(addr), addr}; }

  /// Direct access to a protocol instance (observers, co-located services).
  Protocol& protocol(Address addr, ProtocolSlot slot);
  const Protocol& protocol(Address addr, ProtocolSlot slot) const;

  /// Addresses of all currently alive nodes (O(N); for observers).
  std::vector<Address> alive_addresses() const;

  /// Engine-level RNG (serial transport, scenarios). Node callbacks should
  /// use their per-node stream via Context::rng(). Off limits inside a
  /// sharded window (it is shared, unsynchronized state); barrier-context
  /// users — scenario calls, oracles, builders — are fine.
  Rng& rng() {
    BSVC_CHECK_MSG(active_shard_ == nullptr,
                   "Engine::rng() used inside a sharded window");
    return rng_;
  }

  /// Per-node deterministic random stream (backs Context::rng()).
  Rng& node_rng(Address addr);

  /// Aggregate traffic counters. In sharded mode, totals are exact at
  /// barriers (per-shard deltas are merged at every window end); reading
  /// mid-window from outside is not supported.
  const TrafficStats& traffic() const { return traffic_; }
  void reset_traffic();

  /// The engine-owned metrics registry (counters, gauges, histograms; see
  /// docs/observability.md for the naming scheme). Per-engine ownership keeps
  /// parallel bench replicas isolated. Const-qualified observers (oracles,
  /// routers) may record into it: metric state is measurement metadata and
  /// never feeds back into the simulation.
  obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Installs a trace sink (nullptr uninstalls). The sink only observes:
  /// with or without one, the simulation is bit-identical. The caller keeps
  /// ownership and must keep the sink alive while installed.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  /// Installs a span log (nullptr uninstalls). Transport events on payloads
  /// carrying a span id are attributed to their span; protocols open and
  /// close spans through span_log(). Same observe-only contract as the
  /// trace sink: installed or not, the simulation is bit-identical. The
  /// caller keeps ownership and must keep the log alive while installed.
  void set_span_log(obs::SpanLog* log) { span_log_ = log; }
  obs::SpanLog* span_log() const { return span_log_; }

  /// Installs the window profiler (nullptr uninstalls). Sharded mode only:
  /// the profiler accounts crew phases, so a serial engine has nothing to
  /// feed it (experiment setup rejects the combination with a friendly
  /// exit; this hook aborts as the backstop). Enables per-lane timing on
  /// the crew; wall-clock is read outside the simulation state, so the
  /// trajectory stays bit-identical. The caller keeps ownership.
  void set_profiler(obs::EngineProfiler* profiler);
  obs::EngineProfiler* profiler() const { return profiler_; }

  /// Total events dispatched since construction (messages, timers, starts
  /// and calls). Benches report throughput as events/second against this.
  std::uint64_t events_dispatched() const { return events_dispatched_; }

  TransportConfig& transport() { return transport_; }

  /// Optional link filter: when set, a message from a->b is silently dropped
  /// unless the filter returns true. Models network partitions; clearing the
  /// filter heals the partition (used by the merge experiments).
  void set_link_filter(std::function<bool(Address, Address)> filter) {
    link_filter_ = std::move(filter);
  }
  void clear_link_filter() { link_filter_ = nullptr; }

  /// Installs a fault model (nullptr uninstalls). Consulted once per send
  /// (drop/latency/duplicate verdict) and once per non-Call dispatch
  /// (dark-node query). With no model installed every hook is a single
  /// pointer test and the simulation is bit-identical to the pre-fault
  /// engine — witnessed by the golden-replay tests. The caller keeps
  /// ownership and must keep the model alive while installed.
  void set_fault_model(FaultModel* model);
  FaultModel* fault_model() const { return fault_; }

  /// Installs a pairwise latency model (nullptr restores the uniform
  /// default). See LatencyModel.
  void set_latency_model(LatencyModel model) { latency_model_ = std::move(model); }
  const LatencyModel& latency_model() const { return latency_model_; }

  /// Optional payload transcoder: when set, every payload is passed through
  /// it at delivery time (e.g. a binary encode→decode round trip from
  /// src/wire, proving protocols depend only on what is actually on the
  /// wire). Returning an empty ref drops the message as malformed.
  void set_transcoder(std::function<PayloadRef(const Payload&)> transcoder) {
    transcoder_ = std::move(transcoder);
  }

  // --- event injection ----------------------------------------------------

  /// Sends a payload from one node's protocol through the transport model.
  /// Takes the ref by value: callers publishing a fresh message move it in;
  /// multicast callers pass a copy (refcount bump, no allocation). Used by
  /// Context; exposed for tests.
  void send_message(Address from, Address to, ProtocolSlot slot, PayloadRef payload);

  /// Schedules on_timer(timer_id) on (addr, slot) at now() + delay.
  void schedule_timer(Address addr, ProtocolSlot slot, SimTime delay,
                      std::uint64_t timer_id);

  /// Schedules an arbitrary callback (observers, scenario scripts) at
  /// now() + delay. Callbacks run in schedule order among same-time events.
  void schedule_call(SimTime delay, std::function<void(Engine&)> fn);

  // --- execution ------------------------------------------------------

  /// Runs events with time <= t_end, then sets now() = t_end.
  void run_until(SimTime t_end);

  /// Runs until the event queue is empty.
  void run_all();

 private:
  // --- sharded-engine state ----------------------------------------------

  /// A cross-shard message parked in a mailbox between phase 1 (send) and
  /// phase 2 (drain into the destination queue): the event with its payload
  /// still by-reference (the destination shard's pool assigns the slot).
  struct MailboxEntry {
    SlimEvent ev;
    PayloadRef payload;
  };

  /// Per-message-tag traffic delta accumulated by one shard inside a window
  /// and folded into the shared TypeCounters at the barrier.
  struct TypeDelta {
    const char* tag;
    std::uint64_t sent;
    std::uint64_t delivered;
  };

  /// Everything one shard touches while a window runs. Cache-line aligned:
  /// shard workers hammer their own ctx and must not false-share.
  struct alignas(64) ShardCtx {
    std::uint32_t index = 0;
    /// Local clock: time of the event being dispatched, == the global clock
    /// at barriers.
    SimTime now = 0;
    /// Per-shard event queue in keyed-ordering mode (same-tick events sort
    /// by content-addressed key, not insertion order).
    TwoTierQueue queue;
    SlotPool<PayloadRef> payload_pool;
    // Window-local deltas, merged into engine totals at each barrier.
    TrafficStats traffic;
    std::uint64_t events = 0;
    std::uint64_t mailbox_in = 0;
    std::vector<TypeDelta> type_deltas;
    /// Outboxes, one per destination shard (out[own index] stays empty:
    /// same-shard sends push directly).
    std::vector<std::vector<MailboxEntry>> out;
  };

  /// Content-addressed same-tick ordering key: (origin address, per-origin
  /// monotone counter). Independent of which shard runs the send and of the
  /// order mailboxes are drained in — the root of K-independence. 24 bits
  /// of address, 40 bits of counter.
  static std::uint64_t make_key(Address origin, std::uint64_t counter) {
    return (static_cast<std::uint64_t>(origin) << 40) | counter;
  }

  /// The shard whose window phase is running on this thread, else nullptr
  /// (serial engine, barrier context). Routes now()/send/dispatch without
  /// threading a context parameter through every protocol callback.
  static thread_local ShardCtx* active_shard_;

  void send_sharded(Address from, Address to, ProtocolSlot slot, PayloadRef payload);
  void route_sharded(SlimEvent ev, PayloadRef payload, ShardCtx* src);
  void dispatch_sharded(ShardCtx& sc, const SlimEvent& ev);
  void run_sharded(SimTime t_end, bool settle_clock);
  void run_window(SimTime limit);
  void run_due_calls();
  void merge_shard_deltas();
  TypeDelta& delta_for(ShardCtx& sc, const char* tag);

  Node& node_at(Address addr);
  const Node& node_at(Address addr) const;
  void dispatch(const SlimEvent& ev);
  void push(SlimEvent ev);

  /// Per-payload-tag counters ("msg.sent.<tag>" / "msg.delivered.<tag>").
  /// Tags are class-owned string literals, so the common case is a pointer
  /// compare over a handful of entries; a strcmp fallback catches literals
  /// duplicated across translation units.
  struct TypeCounters {
    const char* tag;
    obs::Counter* sent;
    obs::Counter* delivered;
  };
  TypeCounters& counters_for(const char* tag);

  void trace_message(obs::TraceKind kind, Address from, Address to, ProtocolSlot slot,
                     const Payload& payload) {
    obs::TraceRecord r;
    r.time = now();
    r.kind = kind;
    r.node = (kind == obs::TraceKind::Send || kind == obs::TraceKind::Drop) ? from : to;
    r.peer = (kind == obs::TraceKind::Send || kind == obs::TraceKind::Drop) ? to : from;
    r.slot = slot;
    r.tag = payload.metric_tag();
    r.aux = payload.wire_bytes() + kUdpIpHeaderBytes;
    if (shards_ > 1) {
      // Shard workers share the sink; record order across shards is
      // nondeterministic (records themselves are deterministic per shard).
      const std::lock_guard<std::mutex> lock(trace_mutex_);
      trace_->record(r);
    } else {
      // Serial engine and the one-shard inline crew are single-lane: skip
      // the lock entirely (micro_ops BM_EngineSendDispatch measures this
      // path's cost).
      trace_->record(r);
    }
  }

  /// Span transport hook, one pointer test when no log is installed.
  /// SpanLog serializes internally, so this is safe from shard workers.
  void note_span(std::uint64_t span_id, obs::SpanTransport transport) {
    if (span_log_ != nullptr && span_id != obs::kNoSpan) {
      span_log_->on_transport(span_id, transport);
    }
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
  Rng rng_;
  std::uint64_t node_seed_state_;
  TransportConfig transport_;
  TrafficStats traffic_;
  // Deque, not vector: nodes can be added while the simulation runs (churn
  // joins, merges), and protocols legitimately hold references into their
  // node (e.g. the per-node RNG), so Node addresses must be stable.
  std::deque<Node> nodes_;
  std::size_t alive_count_ = 0;
  // Events are 40-byte PODs; payloads and Call closures are parked in slot
  // pools and referenced by index (see event_queue.hpp for the rationale).
  TwoTierQueue queue_;
  SlotPool<PayloadRef> payload_pool_;
  SlotPool<std::function<void(Engine&)>> call_pool_;
  std::function<bool(Address, Address)> link_filter_;
  std::function<PayloadRef(const Payload&)> transcoder_;
  LatencyModel latency_model_;
  FaultModel* fault_ = nullptr;
  // Fault-path metric handles, bound when a model is installed.
  obs::Counter* fault_dup_ = nullptr;            // msg.dup
  // Duplications that could not produce a copy. Structurally pinned to zero
  // since the PayloadRef refactor (a refcount bump cannot fail for any
  // payload type); kept registered as a tripwire — see
  // docs/observability.md#msg-dup-skipped.
  obs::Counter* fault_dup_skipped_ = nullptr;    // msg.dup.skipped
  obs::Counter* fault_dark_dropped_ = nullptr;   // fault.dark.dropped
  obs::Counter* fault_dark_deferred_ = nullptr;  // fault.dark.deferred
  // Corrupt-frame drops (tamper verdicts and transcoder decode failures).
  // Bound lazily at the first corrupt frame (or with the fault model), so
  // runs that never see one keep an unchanged metrics registry.
  obs::Counter* msg_corrupt_ = nullptr;          // msg.corrupt
  // Mutable: observers holding `const Engine&` record measurements; metric
  // state never feeds back into event ordering or RNG streams.
  mutable obs::MetricsRegistry metrics_;
  obs::TraceSink* trace_ = nullptr;
  obs::SpanLog* span_log_ = nullptr;
  std::vector<TypeCounters> type_counters_;

  // --- sharded-engine members (inert when shards_ == 0) -------------------
  std::size_t shards_ = 0;
  /// Conservative window width = transport min latency (the lookahead).
  SimTime window_ticks_ = 0;
  /// unique_ptr elements: ShardCtx is neither copyable nor movable
  /// (alignas + queues), and stable addresses let workers cache pointers.
  std::vector<std::unique_ptr<ShardCtx>> shard_ctx_;
  std::unique_ptr<WindowCrew> crew_;
  /// Coordinator-side schedule_call heap: calls always run at barriers,
  /// single-threaded, before same-tick node events — churn scripts and
  /// observers keep their serial semantics. Ordered by (time, seq).
  struct PendingCall {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;  // closure parked in call_pool_
  };
  /// Heap comparator: earliest (time, seq) on top.
  static bool call_later(const PendingCall& a, const PendingCall& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
  std::vector<PendingCall> calls_;  // min-heap ordered by call_later
  std::uint64_t call_seq_ = 0;
  std::mutex trace_mutex_;
  // shard.* metric handles, bound at construction in sharded mode.
  obs::Counter* shard_windows_ = nullptr;        // shard.windows
  obs::Counter* shard_mailbox_ = nullptr;        // shard.mailbox.messages
  obs::HistogramMetric* shard_window_events_ = nullptr;  // shard.window_events
  // Window profiler (sharded mode only) and its per-window scratch, sized
  // shards_ once at install so run_window never allocates.
  obs::EngineProfiler* profiler_ = nullptr;
  std::vector<std::uint64_t> prof_dispatch_ns_;
  std::vector<std::uint64_t> prof_drain_ns_;
  std::vector<std::uint64_t> prof_queue_depth_;
  std::vector<std::uint64_t> prof_mailbox_delta_;
};

}  // namespace bsvc
