#include "sim/event_queue.hpp"

#include <algorithm>

namespace bsvc {

void TwoTierQueue::push(const SlimEvent& ev) {
  BSVC_CHECK_MSG(ev.time >= cursor_, "event scheduled in the past");
  if (ev.time < base_ + kWheelSpan) {
    Bucket& bucket = wheel_[ev.time & (kWheelSpan - 1)];
    bucket.events.push_back(ev);
    if (keyed_) bucket.dirty = true;
    ++wheel_count_;
  } else {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), LaterFirst{});
  }
  ++size_;
}

void TwoTierQueue::settle(Bucket& bucket) {
  if (!bucket.dirty) return;
  // Sorting only the unpopped tail is sound: any event inserted into a
  // bucket mid-drain was created while dispatching an event of this very
  // tick, and the sharded engine only ever self-schedules at the current
  // tick (zero-delay timers), so the insert carries the dispatching node's
  // own origin key with a counter above everything that node already popped.
  std::sort(bucket.events.begin() + bucket.head, bucket.events.end(),
            [](const SlimEvent& a, const SlimEvent& b) { return a.seq < b.seq; });
  bucket.dirty = false;
}

SimTime TwoTierQueue::min_time() const {
  if (size_ == 0) return ~SimTime{0};
  if (wheel_count_ == 0) return heap_.front().time;
  for (SimTime tick = cursor_;; ++tick) {
    const Bucket& b = wheel_[tick & (kWheelSpan - 1)];
    if (b.head < b.events.size()) return tick;
    BSVC_CHECK_MSG(tick < base_ + kWheelSpan, "wheel count out of sync");
  }
}

bool TwoTierQueue::pop_if_at_most(SimTime limit, SlimEvent& out) {
  if (size_ == 0) return false;
  if (wheel_count_ == 0) {
    // The minimum is the heap root. Only re-base once we know we will pop:
    // a failed probe must leave base_/cursor_ alone, or events pushed later
    // at times below the heap minimum would land behind the cursor.
    if (heap_.front().time > limit) return false;
    base_ = heap_.front().time;
    cursor_ = base_;
    // Drain everything inside the new window. Heap pops come out in
    // (time, seq) order, so per-bucket appends stay seq-sorted; later direct
    // pushes carry higher seq and append after them. (Keyed mode makes no
    // use of that invariant — drained buckets get the same lazy sort.)
    while (!heap_.empty() && heap_.front().time < base_ + kWheelSpan) {
      std::pop_heap(heap_.begin(), heap_.end(), LaterFirst{});
      const SlimEvent& ev = heap_.back();
      Bucket& bucket = wheel_[ev.time & (kWheelSpan - 1)];
      bucket.events.push_back(ev);
      if (keyed_) bucket.dirty = true;
      heap_.pop_back();
      ++wheel_count_;
    }
  }
  // The wheel minimum sits in the first non-empty bucket at or after the
  // cursor (every bucket behind it has been drained and cleared by pops).
  SimTime tick = cursor_;
  while (true) {
    const Bucket& b = wheel_[tick & (kWheelSpan - 1)];
    if (b.head < b.events.size()) break;
    ++tick;
    BSVC_CHECK_MSG(tick < base_ + kWheelSpan, "wheel count out of sync");
  }
  Bucket& bucket = wheel_[tick & (kWheelSpan - 1)];
  if (keyed_) settle(bucket);
  const SlimEvent& min = bucket.events[bucket.head];
  if (min.time > limit) return false;  // probe failed: do not commit the scan
  cursor_ = tick;
  out = min;
  ++bucket.head;
  if (bucket.head == bucket.events.size()) {
    bucket.events.clear();
    bucket.head = 0;
    bucket.dirty = false;
  }
  --wheel_count_;
  --size_;
  return true;
}

}  // namespace bsvc
