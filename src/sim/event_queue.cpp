#include "sim/event_queue.hpp"

#include <algorithm>

namespace bsvc {

void TwoTierQueue::push(const SlimEvent& ev) {
  BSVC_CHECK_MSG(ev.time >= cursor_, "event scheduled in the past");
  if (ev.time < base_ + kWheelSpan) {
    wheel_[ev.time & (kWheelSpan - 1)].events.push_back(ev);
    ++wheel_count_;
  } else {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), LaterFirst{});
  }
  ++size_;
}

bool TwoTierQueue::pop_if_at_most(SimTime limit, SlimEvent& out) {
  if (size_ == 0) return false;
  if (wheel_count_ == 0) {
    // The minimum is the heap root. Only re-base once we know we will pop:
    // a failed probe must leave base_/cursor_ alone, or events pushed later
    // at times below the heap minimum would land behind the cursor.
    if (heap_.front().time > limit) return false;
    base_ = heap_.front().time;
    cursor_ = base_;
    // Drain everything inside the new window. Heap pops come out in
    // (time, seq) order, so per-bucket appends stay seq-sorted; later direct
    // pushes carry higher seq and append after them.
    while (!heap_.empty() && heap_.front().time < base_ + kWheelSpan) {
      std::pop_heap(heap_.begin(), heap_.end(), LaterFirst{});
      const SlimEvent& ev = heap_.back();
      wheel_[ev.time & (kWheelSpan - 1)].events.push_back(ev);
      heap_.pop_back();
      ++wheel_count_;
    }
  }
  // The wheel minimum sits in the first non-empty bucket at or after the
  // cursor (every bucket behind it has been drained and cleared by pops).
  SimTime tick = cursor_;
  while (true) {
    const Bucket& b = wheel_[tick & (kWheelSpan - 1)];
    if (b.head < b.events.size()) break;
    ++tick;
    BSVC_CHECK_MSG(tick < base_ + kWheelSpan, "wheel count out of sync");
  }
  Bucket& bucket = wheel_[tick & (kWheelSpan - 1)];
  const SlimEvent& min = bucket.events[bucket.head];
  if (min.time > limit) return false;  // probe failed: do not commit the scan
  cursor_ = tick;
  out = min;
  ++bucket.head;
  if (bucket.head == bucket.events.size()) {
    bucket.events.clear();
    bucket.head = 0;
  }
  --wheel_count_;
  --size_;
  return true;
}

}  // namespace bsvc
