// The engine's event representation and priority queue.
//
// Events used to be ~80-byte structs carrying a std::unique_ptr<Payload> and
// a std::function directly inside a single binary heap, so every sift moved
// non-trivial objects and every Call event dragged a 32-byte function object
// through the heap. Here the queue stores trivially copyable 40-byte
// SlimEvents; payloads and call closures live in free-list slot pools on the
// side and are referenced by index.
//
// Ordering contract (identical to the old single binary heap): events are
// popped in strictly non-decreasing (time, seq) order, where seq is the
// monotone push counter — FIFO among equal times. The determinism suite
// replays recorded golden runs to pin this down bit-for-bit.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "id/node_id.hpp"
#include "sim/protocol.hpp"

namespace bsvc {

/// Virtual time in abstract ticks. Experiments use kDelta ticks per protocol
/// cycle; with the paper's Δ ≈ 10 s one tick is roughly 10 ms.
using SimTime = std::uint64_t;

/// Default cycle length Δ in ticks.
inline constexpr SimTime kDelta = 1000;

enum class EventKind : std::uint8_t { Message, Timer, Call, Start };

/// One queued event. Trivially copyable on purpose: the wheel buckets and
/// the overflow heap shuffle these around by the million. `aux` is
/// kind-dependent: the timer id (Timer), a payload-pool slot (Message) or a
/// call-pool slot (Call); unused for Start.
struct SlimEvent {
  SimTime time = 0;
  std::uint64_t seq = 0;  // tie-break: FIFO among equal times; set by push()
  std::uint64_t aux = 0;
  Address addr = kNullAddress;  // destination node (Message/Timer/Start)
  Address from = kNullAddress;  // sender (Message)
  EventKind kind = EventKind::Call;
  ProtocolSlot slot = 0;
};
static_assert(std::is_trivially_copyable_v<SlimEvent>);
static_assert(sizeof(SlimEvent) <= 40);

/// Free-list slot pool: parks a movable value, hands back a dense uint32
/// index, and recycles slots so steady-state traffic stops allocating.
/// Used for in-flight payload owners and Call closures.
template <typename T>
class SlotPool {
 public:
  /// Parks `value`; returns its slot index.
  std::uint32_t store(T value) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(value);
      ++live_;
      return slot;
    }
    BSVC_CHECK_MSG(slots_.size() < 0xFFFFFFFFu, "slot pool exhausted");
    slots_.push_back(std::move(value));
    ++live_;
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  /// Takes the value back and recycles the slot.
  T take(std::uint32_t slot) {
    BSVC_CHECK(slot < slots_.size());
    T value = std::move(slots_[slot]);
    slots_[slot] = T{};  // release any resource still held by the slot
    free_.push_back(slot);
    --live_;
    return value;
  }

  /// Number of currently parked values.
  std::size_t live() const { return live_; }
  /// High-water slot count (allocated capacity).
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<T> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

/// Two-tier event queue: a bucket wheel covering the next kWheelSpan ticks
/// (a few Δ — transport latencies and cycle timers, i.e. almost all
/// traffic) with a binary-heap fallback for far-future events.
///
/// Invariants:
///  - the wheel holds exactly the events with time in [base, base + span);
///    bucket index is time & (span - 1), so each bucket holds one tick and
///    appends arrive in increasing seq order (seq is monotone and events are
///    never scheduled in the past);
///  - the heap holds exactly the events with time >= base + span;
///  - the wheel re-bases only inside pop (lazy), when it is empty and the
///    heap is not: base jumps to the heap minimum and every heap event
///    inside the new window drains into the wheel in (time, seq) order, so
///    drained entries also land in seq order and sort before any later push.
/// Together these give exact (time, seq) pops, matching the old single heap.
class TwoTierQueue {
 public:
  static constexpr SimTime kWheelSpan = 4096;  // power of two, ~4 Δ

  /// Enqueues `ev` (seq must already be assigned, monotone across pushes,
  /// and ev.time must be >= the time of the last popped event).
  void push(const SlimEvent& ev);

  /// If the earliest event has time <= `limit`, pops it into `out` and
  /// returns true; otherwise leaves the queue untouched and returns false.
  bool pop_if_at_most(SimTime limit, SlimEvent& out);

  /// Time of the earliest queued event without popping it; ~SimTime{0} when
  /// empty. Used by the sharded engine to jump idle gaps between windows.
  SimTime min_time() const;

  /// Switches the tie-break contract from "seq is a monotone push counter"
  /// to "seq is an arbitrary 64-bit ordering key": events still pop in
  /// (time, seq) order, but pushes at one tick may arrive in any seq order.
  /// The sharded engine packs (origin node, per-origin counter) into seq so
  /// same-tick ordering is content-addressed — independent of shard count —
  /// rather than insertion-ordered. Buckets are sorted lazily at first
  /// inspection. Call before the first push.
  void set_keyed_ordering(bool keyed) {
    BSVC_CHECK(size_ == 0);
    keyed_ = keyed;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

 private:
  struct Bucket {
    std::vector<SlimEvent> events;
    std::uint32_t head = 0;  // pop cursor; bucket is clear()ed when drained
    bool dirty = false;      // keyed mode: [head, end) needs a sort by seq
  };

  // Heap comparator for a min-heap on (time, seq) via std::push/pop_heap.
  struct LaterFirst {
    bool operator()(const SlimEvent& a, const SlimEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Keyed mode: sorts the unpopped tail of `bucket` by seq key.
  static void settle(Bucket& bucket);

  std::vector<Bucket> wheel_{kWheelSpan};
  SimTime base_ = 0;    // wheel window is [base_, base_ + kWheelSpan)
  SimTime cursor_ = 0;  // next tick to inspect; base_ <= cursor_
  std::size_t wheel_count_ = 0;
  std::vector<SlimEvent> heap_;
  std::size_t size_ = 0;
  bool keyed_ = false;
};

}  // namespace bsvc
