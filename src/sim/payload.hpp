// Type-erased message payloads for the simulated transport.
#pragma once

#include <cstddef>
#include <memory>

namespace bsvc {

/// UDP/IPv4 header overhead added to every message's byte accounting.
inline constexpr std::size_t kUdpIpHeaderBytes = 28;

/// Base class of everything a protocol can put on the wire.
///
/// Payloads are heap-allocated, moved into the engine on send and handed to
/// the receiver by const reference (the receiver copies what it keeps; in a
/// real deployment it would deserialize from a datagram).
class Payload {
 public:
  virtual ~Payload() = default;

  /// Serialized size of the payload body in bytes, excluding UDP/IP headers.
  /// Drives the engine's traffic accounting; implementations must agree with
  /// the binary codec in src/net for message types that have one.
  virtual std::size_t wire_bytes() const = 0;

  /// Static type tag for logging and debugging.
  virtual const char* type_name() const = 0;

  /// Metric tag under which the engine counts this payload ("msg.sent.<tag>"
  /// and "msg.delivered.<tag>"; also the `m` field of trace records).
  /// Override to split one C++ type into semantic sub-streams (e.g. a gossip
  /// message reporting "newscast.request" vs "newscast.answer"). Must return
  /// a string literal (or other storage outliving the engine).
  virtual const char* metric_tag() const { return type_name(); }

  /// Deep copy, used by the fault layer to inject duplicate deliveries.
  /// The default (nullptr) marks the payload as unclonable: duplication is
  /// silently skipped for it. Concrete payloads override with a one-liner
  /// `return std::make_unique<T>(*this);`.
  virtual std::unique_ptr<Payload> clone() const { return nullptr; }
};

}  // namespace bsvc
