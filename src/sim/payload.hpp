// Type-erased message payloads for the simulated transport, and the shared
// immutable reference (`PayloadRef`) through which the engine owns them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

namespace bsvc {

/// UDP/IPv4 header overhead added to every message's byte accounting.
inline constexpr std::size_t kUdpIpHeaderBytes = 28;

/// Closed set of payload families on the simulated wire. One tag per
/// concrete message class (mirroring net::MessageType for the seven wire
/// types); `Custom` covers test doubles and experiment-local payloads.
/// payload_cast<T> dispatches on this tag — a load and a compare — instead
/// of a dynamic_cast, which keeps RTTI off the per-delivery hot path.
enum class PayloadKind : std::uint8_t {
  Bootstrap,
  Probe,
  Newscast,
  Chord,
  TMan,
  Rumor,
  Aggregation,
  KvRequest,
  KvResponse,
  PrefixCast,
  Custom,
};

/// Base class of everything a protocol can put on the wire.
///
/// Ownership model: a payload is built mutably (behind a unique_ptr), then
/// *published* into a PayloadRef when handed to the engine — from that point
/// it is logically immutable and shared by reference counting. Fault-layer
/// duplication and multicast are refcount bumps; anything that needs to
/// alter a published payload (the adversary's tamper hook, the wire
/// transcoder) builds a fresh payload and publishes that instead
/// (copy-on-write). The count is atomic: under the sharded engine a
/// multicast or fault-duplicated payload can cross shard mailboxes, and its
/// references are then released on different worker threads. The payload
/// *content* stays immutable after publication, so the count is the only
/// shared word (docs/architecture.md#payload-ownership).
class Payload {
 public:
  explicit Payload(PayloadKind kind = PayloadKind::Custom) : kind_(kind) {}
  virtual ~Payload() = default;

  /// Copies start a fresh life: the new object is uniquely owned by its
  /// creator (refcount 0 until published), whatever the source's count was.
  Payload(const Payload& other) : kind_(other.kind_) {}
  Payload& operator=(const Payload&) { return *this; }

  /// The dispatch tag set at construction; payload_cast<T> compares it
  /// against T::kKind.
  PayloadKind kind() const { return kind_; }

  /// Serialized size of the payload body in bytes, excluding UDP/IP headers.
  /// Drives the engine's traffic accounting; implementations must agree with
  /// the binary codec in src/net for message types that have one.
  virtual std::size_t wire_bytes() const = 0;

  /// Static type tag for logging and debugging.
  virtual const char* type_name() const = 0;

  /// Metric tag under which the engine counts this payload ("msg.sent.<tag>"
  /// and "msg.delivered.<tag>"; also the `m` field of trace records).
  /// Override to split one C++ type into semantic sub-streams (e.g. a gossip
  /// message reporting "newscast.request" vs "newscast.answer"). Must return
  /// a string literal (or other storage outliving the engine).
  virtual const char* metric_tag() const { return type_name(); }

  /// Simulation-side causal span id (obs::SpanId; 0 = none). Set by the
  /// protocol before publication; the engine attributes transport events on
  /// this payload to the span when a SpanLog is installed. Not part of the
  /// wire format: copies (copy-on-write tamper/transcoder rebuilds) and
  /// codec round trips deliberately do not carry it.
  std::uint64_t span = 0;

 private:
  friend class PayloadRef;
  PayloadKind kind_;
  /// Intrusive count, touched only through PayloadRef. 0 while the object
  /// is still uniquely owned by its builder.
  mutable std::atomic<std::uint32_t> refs_{0};
};

/// Shared, immutable reference to a published payload.
///
/// Constructible implicitly from a `std::unique_ptr` to any Payload
/// subclass, so `ctx.send(addr, std::make_unique<Msg>(...))` publishes in
/// place. Copying bumps the intrusive count; the last reference deletes.
/// Not thread-safe by design — see the Payload ownership note above.
class PayloadRef {
 public:
  PayloadRef() = default;

  /// Publishes a uniquely owned payload (refcount must be 0, i.e. the
  /// object has never been published before).
  template <typename T, std::enable_if_t<std::is_base_of_v<Payload, T>, int> = 0>
  PayloadRef(std::unique_ptr<T> payload) noexcept  // NOLINT(google-explicit-constructor)
      : ptr_(payload.release()) {
    if (ptr_ != nullptr) ptr_->refs_.store(1, std::memory_order_relaxed);
  }

  PayloadRef(const PayloadRef& other) noexcept : ptr_(other.ptr_) {
    // Relaxed suffices for the bump: the copier already holds a reference,
    // so the count cannot concurrently reach zero.
    if (ptr_ != nullptr) ptr_->refs_.fetch_add(1, std::memory_order_relaxed);
  }
  PayloadRef(PayloadRef&& other) noexcept : ptr_(std::exchange(other.ptr_, nullptr)) {}
  PayloadRef& operator=(PayloadRef other) noexcept {
    std::swap(ptr_, other.ptr_);
    return *this;
  }
  ~PayloadRef() { reset(); }

  void reset() noexcept {
    // The one sanctioned manual delete: PayloadRef IS the owner abstraction.
    // acq_rel on the drop orders every earlier read of the payload before
    // the delete performed by whichever thread releases last.
    if (ptr_ != nullptr && ptr_->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete ptr_;  // NOLINT(cppcoreguidelines-owning-memory)
    }
    ptr_ = nullptr;
  }

  const Payload* get() const { return ptr_; }
  const Payload& operator*() const { return *ptr_; }
  const Payload* operator->() const { return ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }

  /// True when this is the only reference — the copy-on-write fast path.
  bool unique() const {
    return ptr_ != nullptr && ptr_->refs_.load(std::memory_order_acquire) == 1;
  }

  /// Current reference count (0 for an empty ref); exposed for tests.
  std::uint32_t use_count() const {
    return ptr_ == nullptr ? 0 : ptr_->refs_.load(std::memory_order_relaxed);
  }

 private:
  const Payload* ptr_ = nullptr;
};

/// Builds and publishes a payload in one step.
template <typename T, typename... Args>
PayloadRef make_payload(Args&&... args) {
  return PayloadRef(std::make_unique<T>(std::forward<Args>(args)...));
}

/// Checked downcast on the PayloadKind tag: nullptr unless the payload was
/// constructed as a T (T must declare `static constexpr PayloadKind kKind`).
/// Replaces dynamic_cast on every delivery path.
template <typename T>
const T* payload_cast(const Payload* payload) {
  static_assert(std::is_base_of_v<Payload, T>);
  return (payload != nullptr && payload->kind() == T::kKind) ? static_cast<const T*>(payload)
                                                             : nullptr;
}

template <typename T>
const T* payload_cast(const Payload& payload) {
  return payload_cast<T>(&payload);
}

}  // namespace bsvc
