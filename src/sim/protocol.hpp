// Per-node protocol instances and the context through which they act.
//
// A simulated node hosts a stack of Protocol objects (e.g. slot 0: Newscast,
// slot 1: bootstrapping service). The engine dispatches three callbacks;
// protocols react by sending messages and scheduling timers through the
// Context. Everything is single-threaded and deterministic.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "id/node_id.hpp"
#include "sim/payload.hpp"

namespace bsvc {

class Engine;

/// Identifies a protocol slot within a node's stack.
using ProtocolSlot = std::uint8_t;

/// The capability surface a protocol sees when the engine invokes it.
/// Valid only for the duration of the callback.
class Context {
 public:
  Context(Engine& engine, Address self, ProtocolSlot slot)
      : engine_(engine), self_(self), slot_(slot) {}

  /// This node's address.
  Address self() const { return self_; }
  /// This node's ID.
  NodeId self_id() const;
  /// Current virtual time.
  std::uint64_t now() const;
  /// Deterministic per-node random stream.
  Rng& rng();

  /// Sends `payload` to the same protocol slot on node `to` through the
  /// unreliable transport (may be dropped/delayed per engine config).
  /// Accepts a freshly built `std::unique_ptr<Msg>` (published into a
  /// PayloadRef implicitly) or an existing ref (multicast: refcount bump).
  void send(Address to, PayloadRef payload);

  /// Fires on_timer(timer_id) on this protocol after `delay` time units.
  void schedule_timer(std::uint64_t delay, std::uint64_t timer_id);

  /// The hosting engine, for co-located service lookup (e.g. the bootstrap
  /// protocol asking its node's sampling service for samples — a local call,
  /// matching the paper's "samples are free" assumption).
  Engine& engine() { return engine_; }

 private:
  Engine& engine_;
  Address self_;
  ProtocolSlot slot_;
};

/// One protocol instance on one node. Implementations own all per-node
/// protocol state (views, tables, ...).
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Invoked once when the node (re)starts this protocol.
  virtual void on_start(Context& /*ctx*/) {}

  /// Invoked when a timer scheduled via Context fires. Timers scheduled
  /// before a node died are silently discarded.
  virtual void on_timer(Context& /*ctx*/, std::uint64_t /*timer_id*/) {}

  /// Invoked on message delivery. `from` is the sender's address; senders
  /// may have died since sending.
  virtual void on_message(Context& /*ctx*/, Address /*from*/, const Payload& /*payload*/) {}
};

}  // namespace bsvc
