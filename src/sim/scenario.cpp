#include "sim/scenario.hpp"

#include <memory>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace bsvc {

void schedule_catastrophe(Engine& engine, SimTime at, double fraction) {
  BSVC_CHECK(fraction >= 0.0 && fraction <= 1.0);
  BSVC_CHECK(at >= engine.now());
  engine.schedule_call(at - engine.now(), [fraction](Engine& e) {
    const auto alive = e.alive_addresses();
    const auto n_kill = static_cast<std::uint32_t>(fraction * static_cast<double>(alive.size()));
    const auto victims = e.rng().distinct_indices(n_kill, static_cast<std::uint32_t>(alive.size()));
    for (auto v : victims) e.kill_node(alive[v]);
    BSVC_INFO("catastrophe at t=%llu: killed %u of %zu nodes",
              static_cast<unsigned long long>(e.now()), n_kill, alive.size());
  });
}

namespace {

// Expected count `x` realized as floor(x) plus one more with prob frac(x).
std::uint32_t probabilistic_round(Rng& rng, double x) {
  const auto base = static_cast<std::uint32_t>(x);
  return base + (rng.chance(x - static_cast<double>(base)) ? 1u : 0u);
}

void churn_step(Engine& engine, ChurnConfig config, NodeFactory factory) {
  if (engine.now() >= config.to) return;

  const auto alive = engine.alive_addresses();
  if (!alive.empty()) {
    auto& rng = engine.rng();
    const auto n_fail =
        probabilistic_round(rng, config.fail_rate * static_cast<double>(alive.size()));
    const auto n_join =
        probabilistic_round(rng, config.join_rate * static_cast<double>(alive.size()));

    const auto victims =
        rng.distinct_indices(std::min<std::uint32_t>(n_fail, static_cast<std::uint32_t>(alive.size())),
                             static_cast<std::uint32_t>(alive.size()));
    for (auto v : victims) engine.kill_node(alive[v]);

    for (std::uint32_t i = 0; i < n_join && factory; ++i) {
      const Address addr = factory(engine);
      // Joiners start at a random offset within the period, like everyone
      // else in the loosely synchronized model.
      engine.start_node(addr, engine.rng().below(config.period));
    }
  }

  engine.schedule_call(config.period, [config, factory](Engine& e) {
    churn_step(e, config, factory);
  });
}

}  // namespace

void schedule_churn(Engine& engine, const ChurnConfig& config, NodeFactory factory) {
  BSVC_CHECK(config.period > 0);
  BSVC_CHECK(config.from <= config.to);
  BSVC_CHECK(config.from >= engine.now());
  engine.schedule_call(config.from - engine.now(), [config, factory](Engine& e) {
    churn_step(e, config, factory);
  });
}

void apply_partition(Engine& engine, std::vector<std::uint32_t> group_of) {
  auto groups = std::make_shared<std::vector<std::uint32_t>>(std::move(group_of));
  engine.set_link_filter([groups](Address from, Address to) {
    const auto g = [&](Address a) -> std::uint32_t {
      return a < groups->size() ? (*groups)[a] : 0u;
    };
    return g(from) == g(to);
  });
}

void heal_partition(Engine& engine) { engine.clear_link_filter(); }

}  // namespace bsvc
