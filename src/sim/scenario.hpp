// Scenario scripting: the "radical events" of the paper's vision — churn,
// catastrophic failure, massive joins, partitions and merges — expressed as
// scheduled manipulations of the engine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"

namespace bsvc {

/// Creates one fully-stacked node (protocols attached, not yet started) and
/// returns its address. Scenario code starts it.
using NodeFactory = std::function<Address(Engine&)>;

/// Kills a uniformly random `fraction` of the currently alive nodes at time
/// `at` (the paper's catastrophic-failure model; Newscast tolerates up to
/// ~70%). Returns nothing; the kill happens when the engine reaches `at`.
void schedule_catastrophe(Engine& engine, SimTime at, double fraction);

/// Continuous churn: every `period` ticks between `from` and `to`, kills
/// `fail_rate`·alive random nodes and starts `join_rate`·alive fresh nodes
/// built by `factory`. Fractional expectations are realized by probabilistic
/// rounding so small rates still produce events.
struct ChurnConfig {
  SimTime from = 0;
  SimTime to = 0;
  SimTime period = kDelta;
  double fail_rate = 0.0;  // fraction of alive nodes per period
  double join_rate = 0.0;  // fraction of alive nodes per period
};

void schedule_churn(Engine& engine, const ChurnConfig& config, NodeFactory factory);

/// Partitions the network into groups: messages crossing group boundaries
/// are dropped until heal_partition() is called. `group_of[addr]` assigns
/// each existing address a group id; nodes added later default to group 0.
void apply_partition(Engine& engine, std::vector<std::uint32_t> group_of);

/// Removes the partition filter (the "merge" event).
void heal_partition(Engine& engine);

}  // namespace bsvc
