// Typed protocol-slot handles.
//
// The engine stores protocol stacks type-erased (`Protocol&`), but almost
// every observer — oracles, routers, graph metrics, benches — knows the
// concrete type living in a slot because it wired the stack itself. A
// SlotRef<T> captures that knowledge once, at wiring time, so lookups are a
// bounds-checked static_cast instead of the dynamic_cast-per-node-per-cycle
// the observers used to pay (docs/architecture.md#typed-slots).
#pragma once

#include <memory>

#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace bsvc {

/// Handle to protocol slot `slot()` holding a T on every node it is used
/// with. Created by attach_typed() (the safe path: the attachment itself
/// proves the type) or by SlotRef<T>::assume() for stacks wired elsewhere.
/// The cast is unchecked by design — creation sites are the type proof.
template <typename T>
class SlotRef {
 public:
  static_assert(std::is_base_of_v<Protocol, T>);

  SlotRef() = default;

  /// The caller asserts that every node this handle will ever dereference
  /// has a T at `slot`. Use when the stack was wired by other code that
  /// guarantees the layout (e.g. BootstrapExperiment's fixed slots).
  static SlotRef assume(ProtocolSlot slot) { return SlotRef(slot); }

  T& of(Engine& engine, Address addr) const {
    return static_cast<T&>(engine.protocol(addr, slot_));
  }
  const T& of(const Engine& engine, Address addr) const {
    return static_cast<const T&>(engine.protocol(addr, slot_));
  }

  ProtocolSlot slot() const { return slot_; }
  /// Decays to the raw slot index for engine APIs (timers, traces) so typed
  /// handles flow everywhere a ProtocolSlot used to.
  operator ProtocolSlot() const { return slot_; }  // NOLINT(google-explicit-constructor)

 private:
  explicit SlotRef(ProtocolSlot slot) : slot_(slot) {}
  ProtocolSlot slot_ = 0;
};

/// Attaches `protocol` to the node's stack and returns the typed handle for
/// the slot it landed in — the one place where slot index and concrete type
/// are bound together.
template <typename T>
SlotRef<T> attach_typed(Engine& engine, Address addr, std::unique_ptr<T> protocol) {
  return SlotRef<T>::assume(engine.attach(addr, std::move(protocol)));
}

}  // namespace bsvc
