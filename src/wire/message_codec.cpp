#include "wire/message_codec.hpp"

#include <cstring>

#include "core/bootstrap.hpp"
#include "gossip/aggregation.hpp"
#include "gossip/broadcast.hpp"
#include "net/codec.hpp"
#include "overlay/chord.hpp"
#include "overlay/tman.hpp"
#include "sampling/newscast.hpp"

namespace bsvc {

namespace {

std::uint64_t double_to_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_to_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void put_timestamped(ByteWriter& w, const std::vector<TimestampedDescriptor>& entries) {
  w.u16(static_cast<std::uint16_t>(entries.size()));
  for (const auto& e : entries) {
    w.descriptor(e.descriptor);
    // Coarse 32-bit timestamp: ample for any simulated horizon (2^32 ticks
    // = 4M cycles) and what the declared wire size budgets for.
    w.u32(static_cast<std::uint32_t>(e.timestamp));
  }
}

std::optional<std::vector<TimestampedDescriptor>> get_timestamped(ByteReader& r) {
  const auto count = r.u16();
  if (!count) return std::nullopt;
  std::vector<TimestampedDescriptor> out;
  out.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto d = r.descriptor();
    const auto ts = r.u32();
    if (!d || !ts) return std::nullopt;
    out.push_back({*d, *ts});
  }
  return out;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> encode_message(const Payload& payload) {
  // Dispatch on the PayloadKind tag set at construction — a single switch
  // instead of the old dynamic_cast chain. PayloadKind::Custom (test
  // doubles) has no wire format.
  ByteWriter w;
  switch (payload.kind()) {
    case PayloadKind::Bootstrap: {
      const auto* m = static_cast<const BootstrapMessage*>(&payload);
      w.u8(static_cast<std::uint8_t>(MessageType::Bootstrap));
      w.descriptor(m->sender);
      w.u8(m->is_request ? 1 : 0);
      w.descriptor_list(m->ring_part());
      w.descriptor_list(m->prefix_part());
      w.u16(static_cast<std::uint16_t>(m->tombstones.size()));
      for (const auto& ts : m->tombstones) {
        w.u64(ts.id);
        w.u32(static_cast<std::uint32_t>(ts.expiry));
      }
      break;
    }
    case PayloadKind::Newscast: {
      const auto* m = static_cast<const NewscastMessage*>(&payload);
      w.u8(static_cast<std::uint8_t>(MessageType::Newscast));
      put_timestamped(w, m->entries);
      w.u8(m->is_request ? 1 : 0);
      break;
    }
    case PayloadKind::Chord: {
      const auto* m = static_cast<const ChordMessage*>(&payload);
      w.u8(static_cast<std::uint8_t>(MessageType::Chord));
      w.descriptor(m->sender);
      w.u8(m->is_request ? 1 : 0);
      w.descriptor_list(m->ring_part);
      w.descriptor_list(m->finger_part);
      break;
    }
    case PayloadKind::TMan: {
      const auto* m = static_cast<const TManMessage*>(&payload);
      w.u8(static_cast<std::uint8_t>(MessageType::TMan));
      w.descriptor(m->sender);
      w.u8(m->is_request ? 1 : 0);
      w.descriptor_list(m->entries);
      break;
    }
    case PayloadKind::Rumor: {
      const auto* m = static_cast<const RumorMessage*>(&payload);
      w.u8(static_cast<std::uint8_t>(MessageType::Rumor));
      w.u64(m->tag);
      break;
    }
    case PayloadKind::Aggregation: {
      const auto* m = static_cast<const AggregationMessage*>(&payload);
      w.u8(static_cast<std::uint8_t>(MessageType::Aggregation));
      w.u64(double_to_bits(m->value));
      w.u8(m->is_request ? 1 : 0);
      break;
    }
    case PayloadKind::Probe: {
      const auto* m = static_cast<const ProbeMessage*>(&payload);
      w.u8(static_cast<std::uint8_t>(MessageType::Probe));
      w.u8(m->is_reply ? 1 : 0);
      w.u64(m->responder_id);
      break;
    }
    case PayloadKind::KvRequest:
    case PayloadKind::KvResponse:
    case PayloadKind::PrefixCast:
    case PayloadKind::Custom:
      // Workload traffic and test doubles are simulation-local: no wire
      // format (the workload layer measures routing over the bootstrapped
      // tables, not codec costs).
      return std::nullopt;
  }
  return w.bytes();
}

std::unique_ptr<Payload> decode_message(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const auto tag = r.u8();
  if (!tag) return nullptr;
  switch (static_cast<MessageType>(*tag)) {
    case MessageType::Bootstrap: {
      const auto sender = r.descriptor();
      const auto flag = r.u8();
      auto ring = r.descriptor_list();
      auto prefix = r.descriptor_list();
      const auto ts_count = r.u16();
      if (!sender || !flag || !ring || !prefix || !ts_count || *flag > 1) return nullptr;
      std::vector<Tombstone> tombstones;
      tombstones.reserve(*ts_count);
      for (std::uint16_t i = 0; i < *ts_count; ++i) {
        const auto id = r.u64();
        const auto expiry = r.u32();
        if (!id || !expiry) return nullptr;
        tombstones.push_back({*id, *expiry});
      }
      if (!r.exhausted()) return nullptr;
      auto msg = std::make_unique<BootstrapMessage>(*sender, *ring, *prefix, *flag == 1);
      msg->tombstones = std::move(tombstones);
      return msg;
    }
    case MessageType::Newscast: {
      auto entries = get_timestamped(r);
      const auto flag = r.u8();
      if (!entries || !flag || *flag > 1 || !r.exhausted()) return nullptr;
      return std::make_unique<NewscastMessage>(std::move(*entries), *flag == 1);
    }
    case MessageType::Chord: {
      const auto sender = r.descriptor();
      const auto flag = r.u8();
      auto ring = r.descriptor_list();
      auto fingers = r.descriptor_list();
      if (!sender || !flag || !ring || !fingers || *flag > 1 || !r.exhausted()) return nullptr;
      return std::make_unique<ChordMessage>(*sender, std::move(*ring), std::move(*fingers),
                                            *flag == 1);
    }
    case MessageType::TMan: {
      const auto sender = r.descriptor();
      const auto flag = r.u8();
      auto entries = r.descriptor_list();
      if (!sender || !flag || !entries || *flag > 1 || !r.exhausted()) return nullptr;
      return std::make_unique<TManMessage>(*sender, std::move(*entries), *flag == 1);
    }
    case MessageType::Rumor: {
      const auto tag_value = r.u64();
      if (!tag_value || !r.exhausted()) return nullptr;
      return std::make_unique<RumorMessage>(*tag_value);
    }
    case MessageType::Aggregation: {
      const auto bits = r.u64();
      const auto flag = r.u8();
      if (!bits || !flag || *flag > 1 || !r.exhausted()) return nullptr;
      return std::make_unique<AggregationMessage>(bits_to_double(*bits), *flag == 1);
    }
    case MessageType::Probe: {
      const auto flag = r.u8();
      const auto responder = r.u64();
      if (!flag || !responder || *flag > 1 || !r.exhausted()) return nullptr;
      return std::make_unique<ProbeMessage>(*flag == 1, *responder);
    }
  }
  return nullptr;
}

std::function<PayloadRef(const Payload&)> wire_roundtrip_transcoder() {
  return [](const Payload& payload) -> PayloadRef {
    const auto bytes = encode_message(payload);
    if (!bytes) return {};
    // Build-then-publish: decode constructs a fresh mutable message, the
    // implicit conversion publishes it as an immutable ref.
    return decode_message(*bytes);
  };
}

}  // namespace bsvc
