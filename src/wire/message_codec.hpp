// Binary wire format for every protocol message in the system.
//
// Each datagram is a 1-byte message-type tag followed by the type's body,
// built from the primitives in net/codec. decode() is strict (the whole
// datagram must be consumed, all length prefixes honoured) and total (any
// byte string returns either a valid message or nullptr — never crashes),
// which the fuzz tests exercise.
//
// The per-class Payload::wire_bytes() used by the simulator's traffic
// accounting equals encode().size() - 1 (the tag byte is accounted as part
// of the UDP payload header overhead); tests pin this equivalence for every
// message type. Installing transcoder() on an Engine round-trips every
// delivered payload through encode→decode, proving the protocols depend
// only on wire-visible state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/payload.hpp"

namespace bsvc {

/// Wire tags. Values are part of the format; do not renumber.
enum class MessageType : std::uint8_t {
  Bootstrap = 1,
  Newscast = 2,
  Chord = 3,
  TMan = 4,
  Rumor = 5,
  Aggregation = 6,
  Probe = 7,
};

/// Serializes any known payload; nullopt for payload classes without a wire
/// format (test doubles).
std::optional<std::vector<std::uint8_t>> encode_message(const Payload& payload);

/// Parses a datagram; nullptr when malformed or of unknown type.
std::unique_ptr<Payload> decode_message(const std::vector<std::uint8_t>& bytes);

/// An Engine transcoder that round-trips every payload through
/// encode_message/decode_message (Engine::set_transcoder).
std::function<PayloadRef(const Payload&)> wire_roundtrip_transcoder();

}  // namespace bsvc
