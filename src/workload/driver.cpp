#include "workload/driver.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "sim/engine.hpp"

namespace bsvc {

WorkloadStack::WorkloadStack(WorkloadParams params) : params_(params) {
  // Same exit-2 setup-error convention as Experiment: an incoherent knob set
  // is an input mistake, not a simulation outcome.
  if (const std::string err = params_.validate(); !err.empty()) {
    std::fprintf(stderr, "workload config error: %s\n", err.c_str());
    std::exit(2);
  }
}

std::function<void(Engine&, Address)> WorkloadStack::node_extension(
    SlotRef<BootstrapProtocol> bootstrap) {
  return [this, bootstrap](Engine& engine, Address addr) {
    slot_ = attach_typed(
        engine, addr,
        std::make_unique<WorkloadService>(params_, bootstrap, &log_));
  };
}

WorkloadDriver::WorkloadDriver(WorkloadStack& stack, DriverConfig config)
    : stack_(stack),
      config_(config),
      // Salted so the driver's draws are independent of any node stream
      // seeded from the same experiment seed.
      rng_(config.seed ^ 0x9E3779B97F4A7C15ull) {}

void WorkloadDriver::start(Engine& engine) {
  const SimTime now = engine.now();
  const SimTime delay = config_.from > now ? config_.from - now : 0;
  engine.schedule_call(delay, [this](Engine& e) { step(e); });
}

void WorkloadDriver::step(Engine& engine) {
  if (engine.now() >= config_.to) return;
  for (std::size_t b = 0; b < config_.batch; ++b) {
    const Address origin = pick_alive(engine);
    if (origin == kNullAddress) break;
    const bool do_put = keys_.empty() || rng_.chance(config_.put_fraction);
    KvOp op = KvOp::Get;
    NodeId key;
    if (do_put) {
      op = KvOp::Put;
      key = rng_.next_u64();
      keys_.push_back(key);
    } else {
      key = rng_.pick(keys_);
    }
    Context ctx(engine, origin, stack_.slot().slot());
    stack_.service(engine, origin).begin_kv(ctx, op, key, config_.value_bytes);
  }
  if (engine.now() + config_.period < config_.to) {
    engine.schedule_call(config_.period, [this](Engine& e) { step(e); });
  }
}

Address WorkloadDriver::pick_alive(Engine& engine) {
  const std::size_t n = engine.node_count();
  if (n == 0) return kNullAddress;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto addr = static_cast<Address>(rng_.below(n));
    if (engine.is_alive(addr)) return addr;
  }
  return kNullAddress;
}

void WorkloadDriver::schedule_cast(Engine& engine, SimTime at,
                                   std::uint32_t payload_bytes) {
  const SimTime now = engine.now();
  const SimTime delay = at > now ? at - now : 0;
  engine.schedule_call(delay, [this, payload_bytes](Engine& e) {
    const Address origin = pick_alive(e);
    if (origin == kNullAddress) return;
    const std::uint64_t id = (static_cast<std::uint64_t>(origin) << 40) |
                             kWorkloadIdBit | kCastIdBit | cast_seq_++;
    casts_.push_back(CastRecord{id, e.alive_addresses()});
    Context ctx(e, origin, stack_.slot().slot());
    stack_.service(e, origin).begin_cast(ctx, id, payload_bytes);
  });
}

WorkloadDriver::CastCoverage WorkloadDriver::verify_casts(Engine& engine) const {
  CastCoverage cov;
  cov.casts = casts_.size();
  for (const CastRecord& rec : casts_) {
    for (const Address addr : rec.members) {
      // Nodes that died after the launch are excused; everyone else must
      // have received exactly one copy.
      if (!engine.is_alive(addr)) continue;
      ++cov.expected;
      const std::uint32_t copies = stack_.service(engine, addr).cast_copies(rec.id);
      if (copies >= 1) ++cov.reached;
      if (copies > 1) cov.duplicates += copies - 1;
    }
  }
  return cov;
}

}  // namespace bsvc
