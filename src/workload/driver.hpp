// Deterministic workload driver: attaches the per-node WorkloadService to a
// BootstrapExperiment (via ExperimentConfig::node_extension) and issues KV
// batches and prefix broadcasts from barrier context.
//
// Determinism: the driver owns a private RNG (derived from the run seed),
// never touches engine or per-node protocol streams, and acts only through
// schedule_call — which runs single-threaded at window barriers in sharded
// mode, at identical virtual times for every shard count K (window width is
// the transport lookahead, independent of K). Combined with the engine's
// K-independent transport streams, every workload outcome is a pure
// function of the seed and byte-identical across --shards K >= 1.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "workload/service.hpp"

namespace bsvc {

/// Shared state for one workload deployment: the aggregator log, the service
/// parameters, and the node-extension hook that stacks a WorkloadService on
/// every node (initial network and churn joiners alike). Must outlive the
/// experiment it is wired into.
class WorkloadStack {
 public:
  explicit WorkloadStack(WorkloadParams params = {});

  WorkloadStack(const WorkloadStack&) = delete;
  WorkloadStack& operator=(const WorkloadStack&) = delete;

  /// The hook for ExperimentConfig::node_extension. `bootstrap` is the slot
  /// the harness wires the BootstrapProtocol into (BootstrapExperiment:
  /// slot 1, the default).
  std::function<void(Engine&, Address)> node_extension(
      SlotRef<BootstrapProtocol> bootstrap = SlotRef<BootstrapProtocol>::assume(1));

  WorkloadLog& log() { return log_; }
  const WorkloadParams& params() const { return params_; }
  /// Typed handle to the workload slot (valid once a node was attached;
  /// slot 2 under BootstrapExperiment).
  SlotRef<WorkloadService> slot() const { return slot_; }
  WorkloadService& service(Engine& engine, Address addr) const {
    return slot_.of(engine, addr);
  }

 private:
  WorkloadParams params_;
  WorkloadLog log_;
  SlotRef<WorkloadService> slot_ = SlotRef<WorkloadService>::assume(2);
};

/// Shape of the KV request stream.
struct DriverConfig {
  /// Issue window in absolute virtual time: batches fire at `from`,
  /// `from + period`, ... while strictly before `to`.
  SimTime from = 0;
  SimTime to = 0;
  SimTime period = kDelta / 4;
  /// Requests per batch, spread over uniformly random alive origins.
  std::size_t batch = 4;
  /// Probability a request is a put; gets target a uniformly random
  /// previously put key (the first request is always a put).
  double put_fraction = 0.5;
  /// Value size carried by puts.
  std::uint32_t value_bytes = 64;
  /// Seed of the driver's private RNG.
  std::uint64_t seed = 1;
};

class WorkloadDriver {
 public:
  WorkloadDriver(WorkloadStack& stack, DriverConfig config);

  /// Schedules the KV issue chain (call before Engine::run_until /
  /// BootstrapExperiment::run).
  void start(Engine& engine);

  /// Schedules one prefix broadcast from a random alive origin at absolute
  /// time `at`, snapshotting the alive membership at launch for coverage
  /// verification.
  void schedule_cast(Engine& engine, SimTime at, std::uint32_t payload_bytes = 256);

  /// Coverage of all launched casts, measured against each cast's launch
  /// snapshot restricted to nodes still alive at verification time. Call
  /// after the network has quiesced (a couple of cycles past the last
  /// launch).
  struct CastCoverage {
    std::size_t casts = 0;
    std::size_t expected = 0;  // snapshot members still alive
    std::size_t reached = 0;   // of those, received >= 1 copy
    std::uint64_t duplicates = 0;

    double coverage() const {
      return expected == 0
                 ? 1.0
                 : static_cast<double>(reached) / static_cast<double>(expected);
    }
  };
  CastCoverage verify_casts(Engine& engine) const;

  std::size_t keys_issued() const { return keys_.size(); }

 private:
  void step(Engine& engine);
  /// Uniformly random alive address (bounded retries); kNullAddress when the
  /// draw keeps hitting dead nodes.
  Address pick_alive(Engine& engine);

  WorkloadStack& stack_;
  DriverConfig config_;
  Rng rng_;
  std::vector<NodeId> keys_;  // every key ever put (issue order)
  struct CastRecord {
    std::uint64_t id = 0;
    std::vector<Address> members;  // alive at launch
  };
  std::vector<CastRecord> casts_;
  std::uint64_t cast_seq_ = 0;
};

}  // namespace bsvc
