// Payloads of the workload layer: KV put/get requests routed hop by hop
// over the bootstrapped Pastry tables, the direct responses, and the
// prefix-space broadcast messages (Wählisch et al., "Broadcasting in Prefix
// Space"). All three are simulation-local — no binary wire format — but
// carry realistic byte accounting so traffic totals stay meaningful.
#pragma once

#include <cstdint>

#include "id/descriptor.hpp"
#include "sim/payload.hpp"

namespace bsvc {

/// The two KV operations a client issues.
enum class KvOp : std::uint8_t { Put, Get };

/// One KV request in flight. Forwarding rebuilds the message per hop
/// (payloads are immutable once published), bumping `hops` and decrementing
/// `ttl`; the root answers the origin directly with a KvResponseMessage.
/// With `replicate` set the message is a replica placement copy: the
/// receiver stores and neither forwards nor answers.
class KvRequestMessage final : public Payload {
 public:
  static constexpr PayloadKind kKind = PayloadKind::KvRequest;

  KvRequestMessage(std::uint64_t request_id, KvOp op, NodeId key,
                   std::uint32_t value_bytes, NodeDescriptor origin, std::uint8_t ttl,
                   std::uint8_t hops, bool replicate)
      : Payload(kKind),
        request_id(request_id),
        key(key),
        origin(origin),
        value_bytes(value_bytes),
        ttl(ttl),
        hops(hops),
        op(op),
        replicate(replicate) {}

  std::size_t wire_bytes() const override {
    // id + op + key + origin descriptor + ttl + hops + flag, plus the value
    // body on puts (gets carry no value).
    return 8 + 1 + 8 + kDescriptorWireBytes + 1 + 1 + 1 +
           (op == KvOp::Put ? value_bytes : 0);
  }
  const char* type_name() const override { return "kv_request"; }
  const char* metric_tag() const override {
    if (replicate) return "kv.replicate";
    return op == KvOp::Put ? "kv.put" : "kv.get";
  }

  std::uint64_t request_id;
  NodeId key;
  NodeDescriptor origin;
  std::uint32_t value_bytes;
  std::uint8_t ttl;   // forwards remaining before the request is dropped
  std::uint8_t hops;  // forwards taken so far (echoed in the response)
  KvOp op;
  bool replicate;
  /// Hedged duplicate of a get (tail-latency mitigation): any node holding
  /// the key — a leaf-set replica, not just the root — may answer directly.
  bool hedge = false;
};

/// The root's answer, sent directly to the request origin (one hop back, as
/// deployed DHTs do once the root is resolved).
class KvResponseMessage final : public Payload {
 public:
  static constexpr PayloadKind kKind = PayloadKind::KvResponse;

  KvResponseMessage(std::uint64_t request_id, KvOp op, bool found,
                    std::uint32_t value_bytes, NodeDescriptor root, std::uint8_t hops)
      : Payload(kKind),
        request_id(request_id),
        root(root),
        value_bytes(value_bytes),
        hops(hops),
        op(op),
        found(found) {}

  std::size_t wire_bytes() const override {
    // id + op + found + root descriptor + hops, plus the value on get hits.
    return 8 + 1 + 1 + kDescriptorWireBytes + 1 +
           (op == KvOp::Get && found ? value_bytes : 0);
  }
  const char* type_name() const override { return "kv_response"; }
  const char* metric_tag() const override { return "kv.response"; }

  std::uint64_t request_id;
  NodeDescriptor root;
  std::uint32_t value_bytes;
  std::uint8_t hops;  // request-path forwards (for origin-side accounting)
  KvOp op;
  bool found;  // gets: key present at the root; puts: always true
  /// The answer travelled on behalf of a hedged copy (origin-side hedge-win
  /// accounting when it arrives first).
  bool hedged = false;
};

/// One prefix-space broadcast message. `row` is the length of the ID prefix
/// the receiver is responsible for: it delegates every prefix-table cell
/// (i >= row, j != own digit i) to one entry with row i+1. Cells cover
/// disjoint ID regions, so the dissemination tree is duplicate-free by
/// construction; coverage measures how complete the tables are.
class PrefixCastMessage final : public Payload {
 public:
  static constexpr PayloadKind kKind = PayloadKind::PrefixCast;

  PrefixCastMessage(std::uint64_t cast_id, NodeDescriptor origin, std::uint8_t row,
                    std::uint32_t payload_bytes)
      : Payload(kKind),
        cast_id(cast_id),
        origin(origin),
        payload_bytes(payload_bytes),
        row(row) {}

  std::size_t wire_bytes() const override {
    return 8 + kDescriptorWireBytes + 1 + payload_bytes;
  }
  const char* type_name() const override { return "prefix_cast"; }
  const char* metric_tag() const override { return "cast"; }

  std::uint64_t cast_id;
  NodeDescriptor origin;
  std::uint32_t payload_bytes;
  std::uint8_t row;
  /// Re-delegation handshake (cast_retries > 0): the delegator sets
  /// want_ack and a delegator-local token; the receiver echoes the token in
  /// a tiny ack message (ack = true, payload_bytes = 0), and a silent cell
  /// entry is re-delegated to an alternate on timeout. All three fields are
  /// simulation-local, like the span id.
  bool want_ack = false;
  bool ack = false;
  std::uint64_t token = 0;
};

}  // namespace bsvc
