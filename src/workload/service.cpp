#include "workload/service.hpp"

#include <memory>

#include "common/assert.hpp"
#include "id/digits.hpp"
#include "overlay/pastry_router.hpp"

namespace bsvc {

namespace {

/// Table entries whose node is dead are skipped — the routing validation's
/// timeout-and-try-alternate shorthand. Liveness flags only change at window
/// barriers, so reading them inside shard windows is deterministic.
bool usable_entry(const Engine& engine, const NodeDescriptor& d) {
  return d.addr < engine.node_count() && engine.is_alive(d.addr);
}

}  // namespace

WorkloadService::WorkloadService(WorkloadParams params,
                                 SlotRef<BootstrapProtocol> bootstrap, WorkloadLog* log)
    : params_(params), bootstrap_(bootstrap), log_(log) {
  BSVC_CHECK(log_ != nullptr);
}

Address WorkloadService::route_step(Context& ctx, NodeId key) const {
  const Engine& engine = ctx.engine();
  const BootstrapProtocol& bp = bootstrap_.of(ctx.engine(), ctx.self());
  if (!bp.active()) return kNullAddress;
  return pastry_next_hop(ctx.self_id(), ctx.self(), bp.leaf_set(), bp.prefix_table(),
                         key,
                         [&engine](const NodeDescriptor& d) { return usable_entry(engine, d); });
}

std::uint64_t WorkloadService::begin_kv(Context& ctx, KvOp op, NodeId key,
                                        std::uint32_t value_bytes) {
  log_->on_issue(op);
  const Address hop = route_step(ctx, key);
  if (hop == kNullAddress) {
    // The origin cannot consult its tables yet (bootstrap mid-warmup or a
    // fresh churn joiner): fail fast, no span, no timer.
    log_->on_unroutable(op);
    return 0;
  }
  const std::uint64_t id =
      (static_cast<std::uint64_t>(ctx.self()) << 40) | kWorkloadIdBit | req_seq_++;
  if (obs::SpanLog* spans = ctx.engine().span_log(); spans != nullptr) {
    spans->open(id, ctx.now(), 0);
  }
  pending_.emplace(id, Pending{op, ctx.now()});
  ctx.schedule_timer(params_.timeout, id);

  KvRequestMessage req(id, op, key, value_bytes, ctx.engine().descriptor_of(ctx.self()),
                       static_cast<std::uint8_t>(params_.max_hops), 0, false);
  if (hop == ctx.self()) {
    // Already the root: serve locally, no wire traffic for the request.
    serve_as_root(ctx, req);
  } else {
    auto msg = std::make_unique<KvRequestMessage>(req);
    // `hops` counts request-path messages, so the origin's own send is the
    // first one; a request served by its first receiver reports hops = 1.
    msg->ttl = req.ttl - 1;
    msg->hops = 1;
    msg->span = id;
    ctx.send(hop, std::move(msg));
  }
  return id;
}

void WorkloadService::on_timer(Context& ctx, std::uint64_t timer_id) {
  const auto it = pending_.find(timer_id);
  if (it == pending_.end()) return;  // answered before the timeout fired
  const KvOp op = it->second.op;
  pending_.erase(it);
  log_->on_timeout(op);
  if (obs::SpanLog* spans = ctx.engine().span_log(); spans != nullptr) {
    spans->close(timer_id, ctx.now(), obs::SpanOutcome::Timeout);
  }
}

void WorkloadService::on_message(Context& ctx, Address /*from*/, const Payload& payload) {
  if (const auto* req = payload_cast<KvRequestMessage>(payload)) {
    handle_request(ctx, *req);
    return;
  }
  if (const auto* resp = payload_cast<KvResponseMessage>(payload)) {
    const auto it = pending_.find(resp->request_id);
    if (it == pending_.end()) return;  // timed out before the answer arrived
    const Pending pending = it->second;
    pending_.erase(it);
    log_->on_answer(pending.op, ctx.now() - pending.issued_at, resp->hops, resp->found);
    if (obs::SpanLog* spans = ctx.engine().span_log(); spans != nullptr) {
      spans->close(resp->request_id, ctx.now(), obs::SpanOutcome::Answered);
    }
    return;
  }
  if (const auto* cast = payload_cast<PrefixCastMessage>(payload)) {
    handle_cast(ctx, *cast);
  }
}

void WorkloadService::handle_request(Context& ctx, const KvRequestMessage& req) {
  if (req.replicate) {
    store_[req.key] = req.value_bytes;  // replica placement: store only
    return;
  }
  const Address hop = route_step(ctx, req.key);
  if (hop == ctx.self()) {
    serve_as_root(ctx, req);
    return;
  }
  // A node that cannot consult its tables, has exhausted the hop budget, or
  // finds no usable next hop drops the request — the origin's timeout is the
  // failure signal, exactly as in a deployment.
  if (hop == kNullAddress || req.ttl == 0) return;
  auto msg = std::make_unique<KvRequestMessage>(req);
  msg->ttl = req.ttl - 1;
  msg->hops = req.hops + 1;
  msg->span = req.request_id;
  ctx.send(hop, std::move(msg));
}

void WorkloadService::serve_as_root(Context& ctx, const KvRequestMessage& req) {
  bool found = true;
  if (req.op == KvOp::Put) {
    store_[req.key] = req.value_bytes;
    replicate_put(ctx, req);
  } else {
    found = store_.find(req.key) != store_.end();
  }
  if (req.origin.addr == ctx.self()) {
    // Origin is the root: complete synchronously, no response on the wire.
    finish(ctx, req.request_id, req.op, req.hops, found);
    return;
  }
  auto resp = std::make_unique<KvResponseMessage>(
      req.request_id, req.op, found, req.value_bytes,
      ctx.engine().descriptor_of(ctx.self()), req.hops);
  resp->span = req.request_id;
  ctx.send(req.origin.addr, std::move(resp));
}

void WorkloadService::replicate_put(Context& ctx, const KvRequestMessage& req) {
  const BootstrapProtocol& bp = bootstrap_.of(ctx.engine(), ctx.self());
  if (!bp.active()) return;
  std::size_t placed = 0;
  for (const NodeDescriptor& d : bp.leaf_set().sorted_by_ring_distance()) {
    if (placed == params_.replicas) break;
    if (!usable_entry(ctx.engine(), d)) continue;
    auto copy = std::make_unique<KvRequestMessage>(req);
    copy->replicate = true;
    copy->ttl = 0;
    copy->span = req.request_id;
    ctx.send(d.addr, std::move(copy));
    ++placed;
  }
}

void WorkloadService::finish(Context& ctx, std::uint64_t request_id, KvOp op,
                             std::uint32_t hops, bool found) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  const Pending pending = it->second;
  pending_.erase(it);
  log_->on_answer(op, ctx.now() - pending.issued_at, hops, found);
  if (obs::SpanLog* spans = ctx.engine().span_log(); spans != nullptr) {
    spans->close(request_id, ctx.now(), obs::SpanOutcome::Answered);
  }
}

void WorkloadService::begin_cast(Context& ctx, std::uint64_t cast_id,
                                 std::uint32_t payload_bytes) {
  log_->on_cast_launch();
  auto& copies = cast_copies_[cast_id];
  ++copies;
  log_->on_cast_receipt(copies == 1);
  forward_cast(ctx, cast_id, ctx.engine().descriptor_of(ctx.self()), 0, payload_bytes);
}

void WorkloadService::handle_cast(Context& ctx, const PrefixCastMessage& msg) {
  auto& copies = cast_copies_[msg.cast_id];
  ++copies;
  log_->on_cast_receipt(copies == 1);
  // The dissemination tree is duplicate-free by construction (cells cover
  // disjoint ID regions); not re-forwarding duplicates is a backstop.
  if (copies > 1) return;
  forward_cast(ctx, msg.cast_id, msg.origin, msg.row, msg.payload_bytes);
}

void WorkloadService::forward_cast(Context& ctx, std::uint64_t cast_id,
                                   const NodeDescriptor& origin, int row,
                                   std::uint32_t payload_bytes) {
  const BootstrapProtocol& bp = bootstrap_.of(ctx.engine(), ctx.self());
  if (!bp.active()) return;  // cannot delegate: this subtree is lost
  const PrefixTable& table = bp.prefix_table();
  const DigitConfig& digits = table.digits();
  const NodeId own = ctx.self_id();
  for (int i = row; i < table.rows(); ++i) {
    const int own_digit = digit(own, i, digits);
    for (int j = 0; j < digits.radix(); ++j) {
      if (j == own_digit) continue;
      if (table.cell_count(i, j) == 0) continue;
      // First alive entry of the cell; every entry covers the same disjoint
      // region, so any one of them keeps the tree duplicate-free.
      for (const NodeDescriptor& d : table.cell(i, j)) {
        if (!usable_entry(ctx.engine(), d)) continue;
        auto msg = std::make_unique<PrefixCastMessage>(
            cast_id, origin, static_cast<std::uint8_t>(i + 1), payload_bytes);
        ctx.send(d.addr, std::move(msg));
        log_->on_cast_forward();
        break;
      }
    }
  }
}

std::uint32_t WorkloadService::cast_copies(std::uint64_t cast_id) const {
  const auto it = cast_copies_.find(cast_id);
  return it == cast_copies_.end() ? 0 : it->second;
}

}  // namespace bsvc
