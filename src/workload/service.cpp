#include "workload/service.hpp"

#include <memory>

#include "common/assert.hpp"
#include "id/digits.hpp"
#include "overlay/pastry_router.hpp"

namespace bsvc {

namespace {

/// Table entries whose node is dead are skipped — the routing validation's
/// timeout-and-try-alternate shorthand. Liveness flags only change at window
/// barriers, so reading them inside shard windows is deterministic.
bool usable_entry(const Engine& engine, const NodeDescriptor& d) {
  return d.addr < engine.node_count() && engine.is_alive(d.addr);
}

}  // namespace

WorkloadService::WorkloadService(WorkloadParams params,
                                 SlotRef<BootstrapProtocol> bootstrap, WorkloadLog* log)
    : params_(params), bootstrap_(bootstrap), log_(log) {
  BSVC_CHECK(log_ != nullptr);
  RttConfig rc;
  rc.initial_timeout = params_.timeout;
  rc.min_timeout = params_.rtt_min_timeout;
  rc.max_timeout = params_.rtt_max_timeout;
  rtt_ = RttEstimator(rc);
}

SimTime WorkloadService::timeout_value() const {
  return params_.adaptive_timeout ? rtt_.timeout() : params_.timeout;
}

Address WorkloadService::route_step(Context& ctx, NodeId key) const {
  const Engine& engine = ctx.engine();
  const BootstrapProtocol& bp = bootstrap_.of(ctx.engine(), ctx.self());
  if (!bp.active()) return kNullAddress;
  return pastry_next_hop(ctx.self_id(), ctx.self(), bp.leaf_set(), bp.prefix_table(),
                         key,
                         [&engine](const NodeDescriptor& d) { return usable_entry(engine, d); });
}

Address WorkloadService::route_step_excluding(Context& ctx, NodeId key,
                                              Address exclude) const {
  const Engine& engine = ctx.engine();
  const BootstrapProtocol& bp = bootstrap_.of(ctx.engine(), ctx.self());
  if (!bp.active()) return kNullAddress;
  return pastry_next_hop(
      ctx.self_id(), ctx.self(), bp.leaf_set(), bp.prefix_table(), key,
      [&engine, exclude](const NodeDescriptor& d) {
        return d.addr != exclude && usable_entry(engine, d);
      });
}

std::uint64_t WorkloadService::begin_kv(Context& ctx, KvOp op, NodeId key,
                                        std::uint32_t value_bytes) {
  log_->on_issue(op);
  const Address hop = route_step(ctx, key);
  if (hop == kNullAddress) {
    // The origin cannot consult its tables yet (bootstrap mid-warmup or a
    // fresh churn joiner): fail fast, no span, no timer.
    log_->on_unroutable(op);
    return 0;
  }
  const std::uint64_t id =
      (static_cast<std::uint64_t>(ctx.self()) << 40) | kWorkloadIdBit | req_seq_++;
  if (obs::SpanLog* spans = ctx.engine().span_log(); spans != nullptr) {
    spans->open(id, ctx.now(), 0);
  }
  Pending pend{op, ctx.now()};
  pend.key = key;
  pend.value_bytes = value_bytes;
  pending_.emplace(id, pend);
  ctx.schedule_timer(timeout_value(), id);

  KvRequestMessage req(id, op, key, value_bytes, ctx.engine().descriptor_of(ctx.self()),
                       static_cast<std::uint8_t>(params_.max_hops), 0, false);
  if (hop == ctx.self()) {
    // Already the root: serve locally, no wire traffic for the request.
    serve_as_root(ctx, req);
  } else {
    if (op == KvOp::Get && params_.hedge_delay > 0) {
      ctx.schedule_timer(params_.hedge_delay, id | kHedgeTimerBit);
    }
    auto msg = std::make_unique<KvRequestMessage>(req);
    // `hops` counts request-path messages, so the origin's own send is the
    // first one; a request served by its first receiver reports hops = 1.
    msg->ttl = req.ttl - 1;
    msg->hops = 1;
    msg->span = id;
    ctx.send(hop, std::move(msg));
  }
  return id;
}

void WorkloadService::on_timer(Context& ctx, std::uint64_t timer_id) {
  if ((timer_id & kDelegTimerBit) != 0) {
    on_delegation_timeout(ctx, timer_id);
    return;
  }
  if ((timer_id & kHedgeTimerBit) != 0) {
    on_hedge_timer(ctx, timer_id & ~kHedgeTimerBit);
    return;
  }
  const auto it = pending_.find(timer_id);
  if (it == pending_.end()) return;  // answered before the timeout fired
  if (params_.retry && it->second.attempts <= params_.retry_budget) {
    retry_request(ctx, timer_id, it->second);
    return;
  }
  const KvOp op = it->second.op;
  pending_.erase(it);
  if (params_.adaptive_timeout) rtt_.on_timeout();
  log_->on_timeout(op);
  if (obs::SpanLog* spans = ctx.engine().span_log(); spans != nullptr) {
    spans->close(timer_id, ctx.now(), obs::SpanOutcome::Timeout);
  }
}

void WorkloadService::retry_request(Context& ctx, std::uint64_t id, Pending& p) {
  ++p.attempts;
  p.retried = true;
  if (params_.adaptive_timeout) rtt_.on_timeout();
  // Schedule the next backed-off timeout before resending: a same-node root
  // serve completes synchronously and erases the pending record, so nothing
  // may touch `p` after the send below.
  const RetryPolicy policy{params_.retry_budget, params_.retry_backoff,
                           params_.retry_jitter};
  ctx.schedule_timer(policy.delay(p.attempts - 1, timeout_value(), ctx.rng()), id);
  const KvOp op = p.op;
  const NodeId key = p.key;
  const std::uint32_t value_bytes = p.value_bytes;
  const Address hop = route_step(ctx, key);
  if (hop == kNullAddress) return;  // tables unusable right now; timer still set
  log_->on_retry(op);
  if (obs::SpanLog* spans = ctx.engine().span_log(); spans != nullptr) {
    spans->on_retry(id);
  }
  KvRequestMessage req(id, op, key, value_bytes, ctx.engine().descriptor_of(ctx.self()),
                       static_cast<std::uint8_t>(params_.max_hops), 0, false);
  if (hop == ctx.self()) {
    serve_as_root(ctx, req);  // erases the pending record via finish()
    return;
  }
  auto msg = std::make_unique<KvRequestMessage>(req);
  msg->ttl = req.ttl - 1;
  msg->hops = 1;
  msg->span = id;
  ctx.send(hop, std::move(msg));
}

void WorkloadService::on_hedge_timer(Context& ctx, std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;  // answered (or timed out) already
  Pending& p = it->second;
  if (p.op != KvOp::Get) return;
  // Prefer a first hop different from the one the primary copy took; fall
  // back to the primary route when the tables offer no alternative.
  const Address primary = route_step(ctx, p.key);
  Address hop = route_step_excluding(ctx, p.key, primary);
  if (hop == kNullAddress || hop == ctx.self()) hop = primary;
  if (hop == kNullAddress || hop == ctx.self()) return;
  p.hedge_sent = true;
  log_->on_hedge_sent();
  auto msg = std::make_unique<KvRequestMessage>(
      id, KvOp::Get, p.key, p.value_bytes, ctx.engine().descriptor_of(ctx.self()),
      static_cast<std::uint8_t>(params_.max_hops - 1), 1, false);
  msg->hedge = true;
  msg->span = id;
  ctx.send(hop, std::move(msg));
}

void WorkloadService::on_message(Context& ctx, Address from, const Payload& payload) {
  if (const auto* req = payload_cast<KvRequestMessage>(payload)) {
    handle_request(ctx, *req);
    return;
  }
  if (const auto* resp = payload_cast<KvResponseMessage>(payload)) {
    const auto it = pending_.find(resp->request_id);
    if (it == pending_.end()) return;  // timed out (or a hedge copy lost the race)
    const Pending pending = it->second;
    pending_.erase(it);
    // Karn's rule: only unambiguous answers — no retransmission, no hedge
    // copy in flight — feed the estimator.
    if (params_.adaptive_timeout && !pending.retried && !pending.hedge_sent &&
        ctx.now() >= pending.issued_at) {
      rtt_.on_sample(ctx.now() - pending.issued_at);
      log_->on_rtt_sample();
    }
    if (resp->hedged) log_->on_hedge_win();
    log_->on_answer(pending.op, ctx.now() - pending.issued_at, resp->hops, resp->found);
    if (obs::SpanLog* spans = ctx.engine().span_log(); spans != nullptr) {
      spans->close(resp->request_id, ctx.now(), obs::SpanOutcome::Answered);
    }
    return;
  }
  if (const auto* cast = payload_cast<PrefixCastMessage>(payload)) {
    handle_cast(ctx, from, *cast);
  }
}

void WorkloadService::handle_request(Context& ctx, const KvRequestMessage& req) {
  if (req.replicate) {
    store_[req.key] = req.value_bytes;  // replica placement: store only
    return;
  }
  if (req.hedge && req.op == KvOp::Get) {
    // Hedged gets relax root-only serving: any node holding the key — a
    // leaf-set replica en route — answers directly, shaving the tail.
    const auto hit = store_.find(req.key);
    if (hit != store_.end()) {
      auto resp = std::make_unique<KvResponseMessage>(
          req.request_id, req.op, true, hit->second,
          ctx.engine().descriptor_of(ctx.self()), req.hops);
      resp->hedged = true;
      resp->span = req.request_id;
      ctx.send(req.origin.addr, std::move(resp));
      return;
    }
  }
  const Address hop = route_step(ctx, req.key);
  if (hop == ctx.self()) {
    serve_as_root(ctx, req);
    return;
  }
  // A node that cannot consult its tables, has exhausted the hop budget, or
  // finds no usable next hop drops the request — the origin's timeout is the
  // failure signal, exactly as in a deployment.
  if (hop == kNullAddress || req.ttl == 0) return;
  auto msg = std::make_unique<KvRequestMessage>(req);
  msg->ttl = req.ttl - 1;
  msg->hops = req.hops + 1;
  msg->span = req.request_id;
  ctx.send(hop, std::move(msg));
}

void WorkloadService::serve_as_root(Context& ctx, const KvRequestMessage& req) {
  bool found = true;
  if (req.op == KvOp::Put) {
    store_[req.key] = req.value_bytes;
    replicate_put(ctx, req);
  } else {
    found = store_.find(req.key) != store_.end();
  }
  if (req.origin.addr == ctx.self()) {
    // Origin is the root: complete synchronously, no response on the wire.
    finish(ctx, req.request_id, req.op, req.hops, found);
    return;
  }
  auto resp = std::make_unique<KvResponseMessage>(
      req.request_id, req.op, found, req.value_bytes,
      ctx.engine().descriptor_of(ctx.self()), req.hops);
  resp->hedged = req.hedge;
  resp->span = req.request_id;
  ctx.send(req.origin.addr, std::move(resp));
}

void WorkloadService::replicate_put(Context& ctx, const KvRequestMessage& req) {
  const BootstrapProtocol& bp = bootstrap_.of(ctx.engine(), ctx.self());
  if (!bp.active()) return;
  std::size_t placed = 0;
  for (const NodeDescriptor& d : bp.leaf_set().sorted_by_ring_distance()) {
    if (placed == params_.replicas) break;
    if (!usable_entry(ctx.engine(), d)) continue;
    auto copy = std::make_unique<KvRequestMessage>(req);
    copy->replicate = true;
    copy->ttl = 0;
    copy->span = req.request_id;
    ctx.send(d.addr, std::move(copy));
    ++placed;
  }
}

void WorkloadService::finish(Context& ctx, std::uint64_t request_id, KvOp op,
                             std::uint32_t hops, bool found) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  const Pending pending = it->second;
  pending_.erase(it);
  log_->on_answer(op, ctx.now() - pending.issued_at, hops, found);
  if (obs::SpanLog* spans = ctx.engine().span_log(); spans != nullptr) {
    spans->close(request_id, ctx.now(), obs::SpanOutcome::Answered);
  }
}

void WorkloadService::begin_cast(Context& ctx, std::uint64_t cast_id,
                                 std::uint32_t payload_bytes) {
  log_->on_cast_launch();
  auto& copies = cast_copies_[cast_id];
  ++copies;
  log_->on_cast_receipt(copies == 1);
  forward_cast(ctx, cast_id, ctx.engine().descriptor_of(ctx.self()), 0, payload_bytes);
}

void WorkloadService::handle_cast(Context& ctx, Address from, const PrefixCastMessage& msg) {
  if (msg.ack) {
    // The delegate answered: the subtree is covered, disarm the timeout
    // (the pending timer finds no record and no-ops).
    delegations_.erase(msg.token);
    return;
  }
  if (msg.want_ack) {
    // Acks are sent for duplicates too — the delegator is waiting on this
    // token regardless of whether another copy arrived first.
    auto ack = std::make_unique<PrefixCastMessage>(msg.cast_id, msg.origin, msg.row, 0);
    ack->ack = true;
    ack->token = msg.token;
    ctx.send(from, std::move(ack));
  }
  auto& copies = cast_copies_[msg.cast_id];
  ++copies;
  log_->on_cast_receipt(copies == 1);
  // The dissemination tree is duplicate-free by construction (cells cover
  // disjoint ID regions); not re-forwarding duplicates is a backstop, and
  // with re-delegation it also keeps a re-covered subtree from re-casting.
  if (copies > 1) return;
  forward_cast(ctx, msg.cast_id, msg.origin, msg.row, msg.payload_bytes);
}

void WorkloadService::forward_cast(Context& ctx, std::uint64_t cast_id,
                                   const NodeDescriptor& origin, int row,
                                   std::uint32_t payload_bytes) {
  const BootstrapProtocol& bp = bootstrap_.of(ctx.engine(), ctx.self());
  if (!bp.active()) return;  // cannot delegate: this subtree is lost
  const PrefixTable& table = bp.prefix_table();
  const DigitConfig& digits = table.digits();
  const NodeId own = ctx.self_id();
  for (int i = row; i < table.rows(); ++i) {
    const int own_digit = digit(own, i, digits);
    for (int j = 0; j < digits.radix(); ++j) {
      if (j == own_digit) continue;
      if (table.cell_count(i, j) == 0) continue;
      // First alive entry of the cell; every entry covers the same disjoint
      // region, so any one of them keeps the tree duplicate-free.
      for (const NodeDescriptor& d : table.cell(i, j)) {
        if (!usable_entry(ctx.engine(), d)) continue;
        if (params_.cast_retries > 0) {
          send_delegation(ctx, cast_id, origin, d.addr, i, j, payload_bytes, {}, 1);
        } else {
          auto msg = std::make_unique<PrefixCastMessage>(
              cast_id, origin, static_cast<std::uint8_t>(i + 1), payload_bytes);
          ctx.send(d.addr, std::move(msg));
          log_->on_cast_forward();
        }
        break;
      }
    }
  }
}

void WorkloadService::send_delegation(Context& ctx, std::uint64_t cast_id,
                                      const NodeDescriptor& origin, Address to,
                                      int cell_row, int cell_digit,
                                      std::uint32_t payload_bytes,
                                      std::vector<Address> tried, int attempts) {
  const std::uint64_t token = (static_cast<std::uint64_t>(ctx.self()) << 40) |
                              kWorkloadIdBit | kCastIdBit | kDelegTimerBit |
                              deleg_seq_++;
  auto msg = std::make_unique<PrefixCastMessage>(
      cast_id, origin, static_cast<std::uint8_t>(cell_row + 1), payload_bytes);
  msg->want_ack = true;
  msg->token = token;
  ctx.send(to, std::move(msg));
  log_->on_cast_forward();
  tried.push_back(to);
  OutstandingDelegation rec;
  rec.cast_id = cast_id;
  rec.origin = origin;
  rec.cell_row = cell_row;
  rec.cell_digit = cell_digit;
  rec.payload_bytes = payload_bytes;
  rec.attempts = attempts;
  rec.tried = std::move(tried);
  delegations_.emplace(token, std::move(rec));
  ctx.schedule_timer(params_.cast_ack_timeout, token);
}

void WorkloadService::on_delegation_timeout(Context& ctx, std::uint64_t token) {
  const auto it = delegations_.find(token);
  if (it == delegations_.end()) return;  // acked in time
  OutstandingDelegation d = std::move(it->second);
  delegations_.erase(it);
  if (d.attempts > params_.cast_retries) return;  // budget exhausted: subtree lost
  const BootstrapProtocol& bp = bootstrap_.of(ctx.engine(), ctx.self());
  if (!bp.active()) return;
  const PrefixTable& table = bp.prefix_table();
  if (d.cell_row >= table.rows()) return;
  for (const NodeDescriptor& alt : table.cell(d.cell_row, d.cell_digit)) {
    if (!usable_entry(ctx.engine(), alt)) continue;
    bool already = false;
    for (const Address a : d.tried) {
      if (a == alt.addr) { already = true; break; }
    }
    if (already) continue;
    log_->on_cast_redelegate();
    send_delegation(ctx, d.cast_id, d.origin, alt.addr, d.cell_row, d.cell_digit,
                    d.payload_bytes, std::move(d.tried), d.attempts + 1);
    return;
  }
  // No untried alive alternate in the cell: retransmit to an already-tried
  // entry instead (single-entry cells are common, and an unacked delegation
  // usually means a lost datagram, not a dead delegate). A duplicate from a
  // lost ack is absorbed by the receiver's dedup.
  for (const NodeDescriptor& alt : table.cell(d.cell_row, d.cell_digit)) {
    if (!usable_entry(ctx.engine(), alt)) continue;
    log_->on_cast_redelegate();
    send_delegation(ctx, d.cast_id, d.origin, alt.addr, d.cell_row, d.cell_digit,
                    d.payload_bytes, std::move(d.tried), d.attempts + 1);
    return;
  }
  // Nobody usable in the cell at all: the subtree stays uncovered.
}

std::uint32_t WorkloadService::cast_copies(std::uint64_t cast_id) const {
  const auto it = cast_copies_.find(cast_id);
  return it == cast_copies_.end() ? 0 : it->second;
}

}  // namespace bsvc
