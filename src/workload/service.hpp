// The per-node workload service: a small KV store served over the
// bootstrapped overlay, plus prefix-space broadcast.
//
// Requests are routed hop by hop with the same Pastry decision the routing
// validation uses (overlay/pastry_next_hop) over the co-located bootstrap
// protocol's live tables, with dead table entries skipped — the simulator's
// shorthand for timeout-and-try-alternate. The root stores/serves the key,
// replicates puts onto its closest leaf-set neighbours, and answers the
// origin directly. Every request is one causal span (PR 7 machinery): opened
// at issue, closed on answer or timeout, transport events attributed via the
// payload's span id.
//
// Request ids are content-addressed like the engine's event keys —
// (origin address << 40) | kWorkloadIdBit | per-origin sequence — so they
// are a pure function of the trajectory and never collide with the
// bootstrap protocol's exchange span ids (which keep bit 39 clear).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/bootstrap.hpp"
#include "sim/protocol.hpp"
#include "sim/slot_ref.hpp"
#include "workload/messages.hpp"
#include "workload/workload_log.hpp"

namespace bsvc {

/// Bit 39 of the 40-bit id counter field: set on workload request ids,
/// clear on bootstrap exchange span ids — the two spaces stay disjoint.
inline constexpr std::uint64_t kWorkloadIdBit = 1ull << 39;
/// Additionally set (with kWorkloadIdBit) on broadcast cast ids.
inline constexpr std::uint64_t kCastIdBit = 1ull << 38;

/// Tunables of the workload service (shared by every node).
struct WorkloadParams {
  /// Replica copies a put places on the root's closest alive leaf-set
  /// neighbours (the root's own copy not counted).
  std::size_t replicas = 2;
  /// Ticks after which an unanswered request times out at the origin.
  SimTime timeout = 2 * kDelta;
  /// Forwarding budget per request; exhausting it drops the request
  /// (misrouted loops surface as timeouts, not infinite traffic).
  int max_hops = 64;
};

class WorkloadService final : public Protocol {
 public:
  /// `bootstrap` locates the co-located BootstrapProtocol whose tables the
  /// service routes over; `log` is the shared aggregator (never null).
  WorkloadService(WorkloadParams params, SlotRef<BootstrapProtocol> bootstrap,
                  WorkloadLog* log);

  void on_timer(Context& ctx, std::uint64_t timer_id) override;
  void on_message(Context& ctx, Address from, const Payload& payload) override;

  /// Issues one KV request from this node. Driver entry point, called from
  /// barrier context (schedule_call) or tests; returns the request id (0
  /// when the request was unroutable — the origin's bootstrap protocol has
  /// not activated yet).
  std::uint64_t begin_kv(Context& ctx, KvOp op, NodeId key, std::uint32_t value_bytes);

  /// Launches one prefix broadcast rooted at this node. The origin counts as
  /// its own first delivery.
  void begin_cast(Context& ctx, std::uint64_t cast_id, std::uint32_t payload_bytes);

  // --- observers (tests, the driver's coverage verification) -------------
  bool has_key(NodeId key) const { return store_.find(key) != store_.end(); }
  std::size_t store_size() const { return store_.size(); }
  /// Copies of `cast_id` received by this node (0 = never reached).
  std::uint32_t cast_copies(std::uint64_t cast_id) const;
  std::size_t pending_requests() const { return pending_.size(); }

 private:
  struct Pending {
    KvOp op;
    SimTime issued_at;
  };

  /// The Pastry next hop at this node for `key` over the live tables, with
  /// dead entries skipped; own address when this node is the root,
  /// kNullAddress when the bootstrap protocol is not active yet.
  Address route_step(Context& ctx, NodeId key) const;

  void handle_request(Context& ctx, const KvRequestMessage& req);
  /// Serves the request at the root: stores/looks up, replicates puts,
  /// answers the origin.
  void serve_as_root(Context& ctx, const KvRequestMessage& req);
  void replicate_put(Context& ctx, const KvRequestMessage& req);
  void finish(Context& ctx, std::uint64_t request_id, KvOp op, std::uint32_t hops,
              bool found);
  void handle_cast(Context& ctx, const PrefixCastMessage& msg);
  /// Delegates every cell (row >= `row`, digit != own) to one alive entry.
  void forward_cast(Context& ctx, std::uint64_t cast_id, const NodeDescriptor& origin,
                    int row, std::uint32_t payload_bytes);

  WorkloadParams params_;
  SlotRef<BootstrapProtocol> bootstrap_;
  WorkloadLog* log_;
  std::unordered_map<NodeId, std::uint32_t> store_;  // key -> value bytes
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::uint64_t, std::uint32_t> cast_copies_;
  std::uint64_t req_seq_ = 0;
};

}  // namespace bsvc
