// The per-node workload service: a small KV store served over the
// bootstrapped overlay, plus prefix-space broadcast.
//
// Requests are routed hop by hop with the same Pastry decision the routing
// validation uses (overlay/pastry_next_hop) over the co-located bootstrap
// protocol's live tables, with dead table entries skipped — the simulator's
// shorthand for timeout-and-try-alternate. The root stores/serves the key,
// replicates puts onto its closest leaf-set neighbours, and answers the
// origin directly. Every request is one causal span (PR 7 machinery): opened
// at issue, closed on answer or timeout, transport events attributed via the
// payload's span id.
//
// Request ids are content-addressed like the engine's event keys —
// (origin address << 40) | kWorkloadIdBit | per-origin sequence — so they
// are a pure function of the trajectory and never collide with the
// bootstrap protocol's exchange span ids (which keep bit 39 clear).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rtt.hpp"
#include "core/bootstrap.hpp"
#include "sim/protocol.hpp"
#include "sim/slot_ref.hpp"
#include "workload/messages.hpp"
#include "workload/workload_log.hpp"

namespace bsvc {

/// Bit 39 of the 40-bit id counter field: set on workload request ids,
/// clear on bootstrap exchange span ids — the two spaces stay disjoint.
inline constexpr std::uint64_t kWorkloadIdBit = 1ull << 39;
/// Additionally set (with kWorkloadIdBit) on broadcast cast ids.
inline constexpr std::uint64_t kCastIdBit = 1ull << 38;
/// Timer-id tags within the same counter field (per-origin sequences stay
/// far below 2^36, so the tag bits never collide with real ids): bit 37
/// marks the hedge timer of the request id with the bit cleared, bit 36
/// (together with the cast bits) a cast re-delegation ack timeout.
inline constexpr std::uint64_t kHedgeTimerBit = 1ull << 37;
inline constexpr std::uint64_t kDelegTimerBit = 1ull << 36;

/// Tunables of the workload service (shared by every node).
struct WorkloadParams {
  /// Replica copies a put places on the root's closest alive leaf-set
  /// neighbours (the root's own copy not counted).
  std::size_t replicas = 2;
  /// Ticks after which an unanswered request times out at the origin (the
  /// fixed fallback; adaptive_timeout replaces it with the RTT estimate).
  SimTime timeout = 2 * kDelta;
  /// Forwarding budget per request; exhausting it drops the request
  /// (misrouted loops surface as timeouts, not infinite traffic).
  int max_hops = 64;

  // --- retry / hedging extension (all off by default: a disabled build is
  // --- bit-identical to the pre-retry service; see docs/workloads.md) -----

  /// Retransmit an unanswered request from the origin — re-routed over the
  /// live tables, exponential backoff, per-node-RNG jitter — before the
  /// final timeout. The request id (and its causal span) stays the same.
  bool retry = false;
  /// Retransmissions allowed per request. Must be positive with retry on.
  int retry_budget = 3;
  double retry_backoff = 2.0;
  double retry_jitter = 0.1;
  /// Replace the fixed timeout with a per-node Jacobson/Karn estimate
  /// (srtt + 4 * rttvar clamped to [rtt_min_timeout, rtt_max_timeout]).
  /// Karn's rule: retried or hedged requests contribute no sample.
  bool adaptive_timeout = false;
  SimTime rtt_min_timeout = 64;
  SimTime rtt_max_timeout = 4 * kDelta;
  /// Hedged gets: when > 0 and the get is still unanswered this many ticks
  /// after issue, a second copy goes out over an alternate first hop, and
  /// any node holding the key (a leaf-set replica) may answer it directly.
  SimTime hedge_delay = 0;
  /// Per-cell cast re-delegation budget: when > 0 every delegated cell
  /// entry must ack, and a silent entry is re-delegated to an alternate
  /// entry of the same cell up to this many times. 0 disables the
  /// handshake entirely (no ack traffic).
  int cast_retries = 0;
  /// Ack timeout of the re-delegation handshake.
  SimTime cast_ack_timeout = kDelta / 2;

  /// Returns "" when coherent, else the first problem (zero/negative retry
  /// budgets with the feature on, inverted timeout bounds).
  std::string validate() const {
    if (retry && retry_budget <= 0) {
      return "retry_budget must be positive when retry is set (got " +
             std::to_string(retry_budget) + ")";
    }
    if (cast_retries < 0) return "cast_retries must be >= 0";
    if (cast_retries > 0 && cast_ack_timeout == 0) {
      return "cast_ack_timeout must be positive when cast_retries is set";
    }
    if (adaptive_timeout && (rtt_min_timeout == 0 || rtt_min_timeout > rtt_max_timeout)) {
      return "adaptive timeout bounds must satisfy 0 < rtt_min_timeout <= rtt_max_timeout";
    }
    if (timeout == 0) return "timeout must be positive";
    return "";
  }
};

class WorkloadService final : public Protocol {
 public:
  /// `bootstrap` locates the co-located BootstrapProtocol whose tables the
  /// service routes over; `log` is the shared aggregator (never null).
  WorkloadService(WorkloadParams params, SlotRef<BootstrapProtocol> bootstrap,
                  WorkloadLog* log);

  void on_timer(Context& ctx, std::uint64_t timer_id) override;
  void on_message(Context& ctx, Address from, const Payload& payload) override;

  /// Issues one KV request from this node. Driver entry point, called from
  /// barrier context (schedule_call) or tests; returns the request id (0
  /// when the request was unroutable — the origin's bootstrap protocol has
  /// not activated yet).
  std::uint64_t begin_kv(Context& ctx, KvOp op, NodeId key, std::uint32_t value_bytes);

  /// Launches one prefix broadcast rooted at this node. The origin counts as
  /// its own first delivery.
  void begin_cast(Context& ctx, std::uint64_t cast_id, std::uint32_t payload_bytes);

  // --- observers (tests, the driver's coverage verification) -------------
  bool has_key(NodeId key) const { return store_.find(key) != store_.end(); }
  std::size_t store_size() const { return store_.size(); }
  /// Copies of `cast_id` received by this node (0 = never reached).
  std::uint32_t cast_copies(std::uint64_t cast_id) const;
  std::size_t pending_requests() const { return pending_.size(); }

 private:
  struct Pending {
    KvOp op;
    SimTime issued_at;
    // Retry/hedge state (inert while both features are off).
    NodeId key = 0;
    std::uint32_t value_bytes = 0;
    int attempts = 1;        // transmissions so far (1 = original only)
    bool retried = false;    // Karn's rule: sample only unambiguous answers
    bool hedge_sent = false;
  };

  /// One outstanding cast delegation awaiting an ack (cast_retries > 0).
  struct OutstandingDelegation {
    std::uint64_t cast_id = 0;
    NodeDescriptor origin;
    int cell_row = 0;    // prefix-table cell the delegate covers
    int cell_digit = 0;
    std::uint32_t payload_bytes = 0;
    int attempts = 1;
    std::vector<Address> tried;  // entries already delegated for this cell
  };

  /// The Pastry next hop at this node for `key` over the live tables, with
  /// dead entries skipped; own address when this node is the root,
  /// kNullAddress when the bootstrap protocol is not active yet.
  Address route_step(Context& ctx, NodeId key) const;
  /// Same, but never returns `exclude` (hedge diversity: the second copy
  /// leaves over a different first hop when one exists).
  Address route_step_excluding(Context& ctx, NodeId key, Address exclude) const;

  /// The origin-side timeout for the next (re)transmission: the adaptive
  /// estimate when enabled, else the fixed params timeout.
  SimTime timeout_value() const;
  /// Retransmits request `id` (budget already checked): re-routes, resends
  /// under the same id/span, schedules the next backed-off timeout.
  void retry_request(Context& ctx, std::uint64_t id, Pending& p);
  void on_hedge_timer(Context& ctx, std::uint64_t id);
  void on_delegation_timeout(Context& ctx, std::uint64_t token);

  void handle_request(Context& ctx, const KvRequestMessage& req);
  /// Serves the request at the root: stores/looks up, replicates puts,
  /// answers the origin.
  void serve_as_root(Context& ctx, const KvRequestMessage& req);
  void replicate_put(Context& ctx, const KvRequestMessage& req);
  void finish(Context& ctx, std::uint64_t request_id, KvOp op, std::uint32_t hops,
              bool found);
  void handle_cast(Context& ctx, Address from, const PrefixCastMessage& msg);
  /// Delegates every cell (row >= `row`, digit != own) to one alive entry.
  void forward_cast(Context& ctx, std::uint64_t cast_id, const NodeDescriptor& origin,
                    int row, std::uint32_t payload_bytes);
  /// Sends one delegation copy with the ack handshake armed (cast_retries
  /// path): allocates a token, records the outstanding delegation, schedules
  /// its ack timeout.
  void send_delegation(Context& ctx, std::uint64_t cast_id, const NodeDescriptor& origin,
                       Address to, int cell_row, int cell_digit,
                       std::uint32_t payload_bytes, std::vector<Address> tried,
                       int attempts);

  WorkloadParams params_;
  SlotRef<BootstrapProtocol> bootstrap_;
  WorkloadLog* log_;
  std::unordered_map<NodeId, std::uint32_t> store_;  // key -> value bytes
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::uint64_t, std::uint32_t> cast_copies_;
  std::unordered_map<std::uint64_t, OutstandingDelegation> delegations_;  // token ->
  RttEstimator rtt_;
  std::uint64_t req_seq_ = 0;
  std::uint64_t deleg_seq_ = 0;
};

}  // namespace bsvc
