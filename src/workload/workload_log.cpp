#include "workload/workload_log.hpp"

#include <algorithm>

namespace bsvc {

// Request latency in ticks: a request travels a handful of transport hops
// (<= 150 ticks each) plus the direct response, and times out after a few
// cycles — [0, 4Δ) in 8-tick buckets covers the whole range; later
// observations clamp into the last bucket like every HistogramMetric.
WorkloadLog::WorkloadLog() : rtt_(0.0, 4.0 * kDelta, 512) {}

void WorkloadLog::bind_registry(obs::MetricsRegistry& registry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  reg_put_sent_ = &registry.counter("workload.put.sent");
  reg_get_sent_ = &registry.counter("workload.get.sent");
  reg_answered_ = &registry.counter("workload.answered");
  reg_timeout_ = &registry.counter("workload.timeout");
  reg_unroutable_ = &registry.counter("workload.unroutable");
  reg_cast_delivered_ = &registry.counter("workload.cast.delivered");
  reg_cast_forwarded_ = &registry.counter("workload.cast.forwarded");
}

void WorkloadLog::bind_retry_registry(obs::MetricsRegistry& registry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  reg_retry_kv_ = &registry.counter("retry.kv");
  reg_hedge_sent_ = &registry.counter("hedge.sent");
  reg_hedge_win_ = &registry.counter("hedge.win");
  reg_retry_cast_ = &registry.counter("retry.cast");
  reg_rtt_samples_ = &registry.counter("rtt.samples");
}

void WorkloadLog::on_issue(KvOp op) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (op == KvOp::Put) {
    ++puts_;
    if (reg_put_sent_ != nullptr) reg_put_sent_->inc();
  } else {
    ++gets_;
    if (reg_get_sent_ != nullptr) reg_get_sent_->inc();
  }
}

void WorkloadLog::on_unroutable(KvOp /*op*/) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++unroutable_;
  if (reg_unroutable_ != nullptr) reg_unroutable_->inc();
}

void WorkloadLog::on_answer(KvOp op, SimTime rtt, std::uint32_t hops, bool found) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (op == KvOp::Put) {
    ++put_ok_;
  } else {
    ++get_ok_;
    if (found) {
      ++get_found_;
    } else {
      ++get_miss_;
    }
  }
  rtt_.add(static_cast<double>(rtt));
  hops_total_ += hops;
  hops_max_ = std::max<std::uint64_t>(hops_max_, hops);
  if (reg_answered_ != nullptr) reg_answered_->inc();
}

void WorkloadLog::on_timeout(KvOp /*op*/) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++timeouts_;
  if (reg_timeout_ != nullptr) reg_timeout_->inc();
}

void WorkloadLog::on_retry(KvOp /*op*/) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++kv_retries_;
  if (reg_retry_kv_ != nullptr) reg_retry_kv_->inc();
}

void WorkloadLog::on_hedge_sent() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++hedges_sent_;
  if (reg_hedge_sent_ != nullptr) reg_hedge_sent_->inc();
}

void WorkloadLog::on_hedge_win() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++hedge_wins_;
  if (reg_hedge_win_ != nullptr) reg_hedge_win_->inc();
}

void WorkloadLog::on_rtt_sample() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++rtt_samples_;
  if (reg_rtt_samples_ != nullptr) reg_rtt_samples_->inc();
}

void WorkloadLog::on_cast_launch() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++casts_;
}

void WorkloadLog::on_cast_receipt(bool first) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (first) {
    ++cast_delivered_;
    if (reg_cast_delivered_ != nullptr) reg_cast_delivered_->inc();
  } else {
    ++cast_duplicates_;
  }
}

void WorkloadLog::on_cast_forward() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++cast_forwards_;
  if (reg_cast_forwarded_ != nullptr) reg_cast_forwarded_->inc();
}

void WorkloadLog::on_cast_redelegate() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++cast_redelegations_;
  if (reg_retry_cast_ != nullptr) reg_retry_cast_->inc();
}

WorkloadSummary WorkloadLog::summary() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  WorkloadSummary s;
  s.puts = puts_;
  s.gets = gets_;
  s.put_ok = put_ok_;
  s.get_ok = get_ok_;
  s.get_found = get_found_;
  s.get_miss = get_miss_;
  s.timeouts = timeouts_;
  s.unroutable = unroutable_;
  s.rtt_count = rtt_.count();
  s.rtt_mean = rtt_.mean();
  s.rtt_max = rtt_.max();
  s.rtt_p50 = rtt_.quantile(0.50);
  s.rtt_p95 = rtt_.quantile(0.95);
  s.rtt_p99 = rtt_.quantile(0.99);
  const std::uint64_t answered = put_ok_ + get_ok_;
  s.hops_mean = answered == 0 ? 0.0
                              : static_cast<double>(hops_total_) /
                                    static_cast<double>(answered);
  s.hops_max = static_cast<double>(hops_max_);
  s.casts = casts_;
  s.cast_delivered = cast_delivered_;
  s.cast_duplicates = cast_duplicates_;
  s.cast_forwards = cast_forwards_;
  s.kv_retries = kv_retries_;
  s.hedges_sent = hedges_sent_;
  s.hedge_wins = hedge_wins_;
  s.cast_redelegations = cast_redelegations_;
  s.rtt_samples = rtt_samples_;
  return s;
}

}  // namespace bsvc
