// Workload aggregator: request/broadcast outcome counters and the
// request-latency histogram behind the bench's p50/p95/p99 rows.
//
// One instance is shared by every node's WorkloadService. Issues happen in
// barrier context (the driver), but completions, timeouts and cast receipts
// run inside shard windows on different worker lanes, so — like obs::SpanLog
// — every method takes one mutex. All aggregates are commutative sums over
// per-event contributions and every latency is virtual time, which is what
// keeps summary() byte-identical across --shards K (and across thread
// schedules within one K).
#pragma once

#include <cstdint>
#include <mutex>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "workload/messages.hpp"

namespace bsvc {

/// Order-independent aggregate view of one workload run. Latencies are
/// virtual ticks; every field is a pure function of the trajectory.
struct WorkloadSummary {
  std::uint64_t puts = 0;  // issued
  std::uint64_t gets = 0;
  std::uint64_t put_ok = 0;  // answered by the root
  std::uint64_t get_ok = 0;
  std::uint64_t get_found = 0;
  std::uint64_t get_miss = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t unroutable = 0;  // origin's bootstrap not yet active
  // Request->response latency over answered requests.
  std::uint64_t rtt_count = 0;
  double rtt_mean = 0.0;
  double rtt_max = 0.0;
  double rtt_p50 = 0.0;
  double rtt_p95 = 0.0;
  double rtt_p99 = 0.0;
  // Request-path forwards per answered request.
  double hops_mean = 0.0;
  double hops_max = 0.0;
  // Prefix broadcast.
  std::uint64_t casts = 0;
  std::uint64_t cast_delivered = 0;   // first copies across all nodes
  std::uint64_t cast_duplicates = 0;  // extra copies (structurally 0)
  std::uint64_t cast_forwards = 0;    // delegate messages sent
  // Retry/hedging layer (all zero while the features are off).
  std::uint64_t kv_retries = 0;         // origin-side retransmissions
  std::uint64_t hedges_sent = 0;        // hedge copies dispatched
  std::uint64_t hedge_wins = 0;         // answers carried by a hedge copy
  std::uint64_t cast_redelegations = 0; // silent cells handed to an alternate
  std::uint64_t rtt_samples = 0;        // clean samples fed to the estimator

  std::uint64_t issued() const { return puts + gets; }
  std::uint64_t answered() const { return put_ok + get_ok; }
  /// Answered fraction of issued requests — the bench's goodput row.
  double goodput() const {
    return issued() == 0 ? 0.0
                         : static_cast<double>(answered()) / static_cast<double>(issued());
  }
};

/// Bounded-footprint, thread-safe workload aggregator. Counter mirrors into
/// an engine registry are optional (bind_registry) so sampled time series
/// pick the workload up alongside traffic and convergence gauges.
class WorkloadLog {
 public:
  WorkloadLog();

  WorkloadLog(const WorkloadLog&) = delete;
  WorkloadLog& operator=(const WorkloadLog&) = delete;

  /// Mirrors live counters into `registry` ("workload.put.sent",
  /// "workload.get.sent", "workload.answered", "workload.timeout",
  /// "workload.unroutable", "workload.cast.delivered",
  /// "workload.cast.forwarded"). Call before the run; the registry must
  /// outlive the log.
  void bind_registry(obs::MetricsRegistry& registry);

  /// Mirrors the retry-layer counters ("retry.kv", "hedge.sent",
  /// "hedge.win", "retry.cast", "rtt.samples"). Separate from
  /// bind_registry so a run with the features off keeps the registry —
  /// and every golden metric dump — byte-identical to the pre-retry tree.
  void bind_retry_registry(obs::MetricsRegistry& registry);

  void on_issue(KvOp op);
  void on_unroutable(KvOp op);
  void on_answer(KvOp op, SimTime rtt, std::uint32_t hops, bool found);
  void on_timeout(KvOp op);
  void on_retry(KvOp op);
  void on_hedge_sent();
  void on_hedge_win();
  void on_rtt_sample();

  void on_cast_launch();
  /// One cast copy reached a node; `first` is false for duplicates.
  void on_cast_receipt(bool first);
  void on_cast_forward();
  void on_cast_redelegate();

  WorkloadSummary summary() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t puts_ = 0, gets_ = 0;
  std::uint64_t put_ok_ = 0, get_ok_ = 0;
  std::uint64_t get_found_ = 0, get_miss_ = 0;
  std::uint64_t timeouts_ = 0, unroutable_ = 0;
  std::uint64_t hops_total_ = 0, hops_max_ = 0;
  std::uint64_t casts_ = 0, cast_delivered_ = 0, cast_duplicates_ = 0,
                cast_forwards_ = 0;
  std::uint64_t kv_retries_ = 0, hedges_sent_ = 0, hedge_wins_ = 0,
                cast_redelegations_ = 0, rtt_samples_ = 0;
  obs::HistogramMetric rtt_;
  obs::Counter* reg_put_sent_ = nullptr;
  obs::Counter* reg_get_sent_ = nullptr;
  obs::Counter* reg_answered_ = nullptr;
  obs::Counter* reg_timeout_ = nullptr;
  obs::Counter* reg_unroutable_ = nullptr;
  obs::Counter* reg_cast_delivered_ = nullptr;
  obs::Counter* reg_cast_forwarded_ = nullptr;
  obs::Counter* reg_retry_kv_ = nullptr;
  obs::Counter* reg_hedge_sent_ = nullptr;
  obs::Counter* reg_hedge_win_ = nullptr;
  obs::Counter* reg_retry_cast_ = nullptr;
  obs::Counter* reg_rtt_samples_ = nullptr;
};

}  // namespace bsvc
