// Adversary subsystem (src/adversary): plan validation, null-model golden
// safety (no plan / inactive plan perturbs nothing), deterministic replay,
// Byzantine behavior counters, composition with the fault injector, and the
// hardened bootstrap's recovery from poisoning and eclipse floods.
#include "adversary/byzantine_model.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/bootstrap.hpp"
#include "core/experiment.hpp"
#include "sim/engine.hpp"

namespace bsvc {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t series_hash(const ExperimentResult& r) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t row = 0; row < r.series.rows(); ++row) {
    for (std::size_t col = 0; col < r.series.columns(); ++col) {
      const double v = r.series.at(row, col);
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      h = fnv1a(h, &bits, sizeof(bits));
    }
  }
  return h;
}

ExperimentConfig small_config(std::uint64_t seed, std::size_t cycles,
                              bool hardened) {
  ExperimentConfig cfg;
  cfg.n = 128;
  cfg.seed = seed;
  cfg.max_cycles = cycles;
  cfg.stop_at_convergence = false;
  cfg.bootstrap.evict_unresponsive = true;
  cfg.bootstrap.tombstone_ttl_cycles = 6;
  cfg.bootstrap.harden = hardened;
  cfg.newscast.harden = hardened;
  return cfg;
}

AdversaryPlan full_mix_plan(const ExperimentConfig& cfg, double fraction) {
  AdversaryPlan plan;
  plan.fraction = fraction;
  plan.window.start = cfg.warmup_cycles * cfg.bootstrap.delta;
  plan.poison = true;
  plan.pool_size = 8;
  plan.eclipse = true;
  plan.spoof = true;
  plan.suppress_probability = 0.3;
  plan.corrupt_probability = 0.05;
  return plan;
}

// --- plan validation -------------------------------------------------------

TEST(AdversaryPlanValidate, RejectsMalformedPlans) {
  AdversaryPlan plan;
  EXPECT_EQ(plan.validate(), "");
  EXPECT_TRUE(plan.empty());

  plan.fraction = 1.5;
  EXPECT_NE(plan.validate().find("fraction"), std::string::npos);
  plan.fraction = 0.1;

  plan.suppress_probability = -0.5;
  EXPECT_NE(plan.validate().find("suppress"), std::string::npos);
  plan.suppress_probability = 0.0;

  plan.corrupt_probability = 2.0;
  EXPECT_NE(plan.validate().find("corrupt"), std::string::npos);
  plan.corrupt_probability = 0.0;

  plan.window = {100, 50};
  EXPECT_NE(plan.validate().find("window"), std::string::npos);
  plan.window = {100, 0};  // end == 0: open-ended, valid
  EXPECT_EQ(plan.validate(), "");

  plan.poison = true;
  plan.pool_size = 0;
  EXPECT_NE(plan.validate().find("pool"), std::string::npos);
  plan.pool_size = 4;
  EXPECT_EQ(plan.validate(), "");
  EXPECT_FALSE(plan.empty());
}

TEST(AdversaryPlanValidate, ActiveWindowSemantics) {
  AdversaryPlan plan;
  plan.window = {100, 200};
  EXPECT_FALSE(plan.active_at(99));
  EXPECT_TRUE(plan.active_at(100));
  EXPECT_TRUE(plan.active_at(199));
  EXPECT_FALSE(plan.active_at(200));
  plan.window = {100, 0};  // open-ended
  EXPECT_TRUE(plan.active_at(1'000'000'000));
}

// --- null-model safety -----------------------------------------------------

TEST(AdversaryNullModel, EmptyPlanInstallsNothing) {
  ExperimentConfig cfg = small_config(3, 4, false);
  BootstrapExperiment exp(cfg);
  ASSERT_EQ(exp.engine().fault_model(), nullptr);
  const auto model = install_adversary_plan(exp.engine(), AdversaryPlan{});
  EXPECT_EQ(model, nullptr);
  EXPECT_EQ(exp.engine().fault_model(), nullptr);
}

TEST(AdversaryNullModel, InactivePlanDoesNotPerturbTheRun) {
  // A model whose window never opens mutates nothing: the run must be
  // bit-identical to one with no adversary at all (the tamper hook and the
  // oracle's lie-aware slow path are both behavior-neutral for honest runs).
  ExperimentConfig cfg = small_config(9, 8, false);

  BootstrapExperiment plain(cfg);
  const auto plain_result = plain.run();

  BootstrapExperiment laced(cfg);
  AdversaryPlan plan = full_mix_plan(cfg, 0.10);
  plan.window.start = 1'000'000'000;  // far beyond the run
  const auto model = install_adversary_plan(laced.engine(), plan);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(laced.engine().fault_model(), model.get());
  const auto laced_result = laced.run();

  EXPECT_EQ(series_hash(plain_result), series_hash(laced_result));
  EXPECT_EQ(plain_result.traffic_during_bootstrap.messages_sent,
            laced_result.traffic_during_bootstrap.messages_sent);
  EXPECT_EQ(plain_result.traffic_during_bootstrap.bytes_sent,
            laced_result.traffic_during_bootstrap.bytes_sent);
  EXPECT_EQ(laced.engine().metrics().counter("adv.poisoned").value(), 0u);
}

// --- adversary set ---------------------------------------------------------

TEST(AdversarySet, FractionalPickIsSeededAndExplicitNodesJoin) {
  ExperimentConfig cfg = small_config(4, 2, false);
  AdversaryPlan plan = full_mix_plan(cfg, 0.05);
  plan.nodes = {7, 9};

  BootstrapExperiment a(cfg);
  const auto ma = install_adversary_plan(a.engine(), plan);
  ASSERT_NE(ma, nullptr);
  // round(0.05 * 128) = 6 fractional picks, plus the two explicit nodes
  // (minus any overlap).
  EXPECT_GE(ma->adversaries().size(), 6u);
  EXPECT_LE(ma->adversaries().size(), 8u);
  EXPECT_TRUE(ma->is_adversary(7));
  EXPECT_TRUE(ma->is_adversary(9));
  EXPECT_FALSE(ma->is_adversary(static_cast<Address>(cfg.n + 100)));

  // The same plan over a fresh engine picks the same set.
  BootstrapExperiment b(cfg);
  const auto mb = install_adversary_plan(b.engine(), plan);
  EXPECT_EQ(ma->adversaries(), mb->adversaries());
}

TEST(AdversarySet, ControlledFractionDetectsFabricatedBindings) {
  ExperimentConfig cfg = small_config(4, 2, false);
  BootstrapExperiment exp(cfg);
  AdversaryPlan plan;
  plan.nodes = {5};
  plan.poison = true;
  const auto model = install_adversary_plan(exp.engine(), plan);
  ASSERT_NE(model, nullptr);

  const Address honest = 11;
  ASSERT_FALSE(model->is_adversary(honest));
  const NodeId honest_id = exp.engine().id_of(honest);
  const DescriptorList entries = {
      {honest_id, honest},                  // truthful binding: not controlled
      {honest_id ^ 1, honest},              // fabricated binding: controlled
      {exp.engine().id_of(5), 5},           // adversary address: controlled
  };
  EXPECT_DOUBLE_EQ(model->controlled_fraction(entries), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(model->controlled_fraction({}), 0.0);
}

// --- behavior and replay ---------------------------------------------------

TEST(AdversaryCow, TamperCopiesSharedPayloadInsteadOfMutatingIt) {
  // Fault-layer duplication shares one immutable payload between two queued
  // deliveries (a refcount bump). When the adversary then tampers with one
  // delivery, it must copy-on-write a fresh message; the sibling delivery
  // keeps reading the untouched original.
  Engine engine(7);
  for (std::uint64_t i = 0; i < 8; ++i) engine.add_node(1000 + i * 7);
  AdversaryPlan plan;
  plan.nodes = {0};
  plan.eclipse = true;  // always rewrites bootstrap payloads
  const auto model = install_adversary_plan(engine, plan);
  ASSERT_NE(model, nullptr);

  auto fresh = std::make_unique<BootstrapMessage>(engine.descriptor_of(0), true);
  fresh->reserve_entries(3);
  for (Address a = 2; a <= 4; ++a) fresh->append_ring_entry(engine.descriptor_of(a));
  const DescriptorList before(fresh->all_entries().begin(), fresh->all_entries().end());

  PayloadRef first = std::move(fresh);  // publish
  PayloadRef second = first;            // the duplicate delivery's handle
  ASSERT_EQ(first.get(), second.get());
  ASSERT_EQ(first.use_count(), 2u);

  const auto verdict = model->on_payload(/*now=*/0, /*from=*/0, /*to=*/1, *first);
  ASSERT_EQ(verdict.action, FaultModel::TamperVerdict::Action::Replace);
  ASSERT_TRUE(verdict.replacement);
  EXPECT_NE(verdict.replacement.get(), first.get());

  const auto* untouched = payload_cast<BootstrapMessage>(second.get());
  ASSERT_NE(untouched, nullptr);
  ASSERT_EQ(untouched->entry_count(), before.size());
  const auto entries = untouched->all_entries();
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_EQ(entries[i], before[i]);
  // The replacement owns its own message: the shared original is still held
  // by exactly the two delivery handles.
  EXPECT_EQ(first.use_count(), 2u);
}

TEST(AdversaryBehavior, CountersTickAndReplayIsDeterministic) {
  const auto run_once = [](std::uint64_t* adv_counters, std::size_t n_counters) {
    ExperimentConfig cfg = small_config(21, 12, true);
    BootstrapExperiment exp(cfg);
    const AdversaryPlan plan = full_mix_plan(cfg, 0.10);
    const auto model = install_adversary_plan(exp.engine(), plan);
    const auto result = exp.run();
    const char* names[] = {"adv.poisoned",   "adv.eclipsed", "adv.spoofed",
                           "adv.suppressed", "adv.corrupted", "msg.corrupt"};
    for (std::size_t i = 0; i < n_counters; ++i) {
      adv_counters[i] = exp.engine().metrics().counter(names[i]).value();
    }
    return series_hash(result);
  };

  std::uint64_t first[6] = {0};
  std::uint64_t second[6] = {0};
  const auto h1 = run_once(first, 6);
  const auto h2 = run_once(second, 6);

  // Every behavior in the mix actually fired...
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GT(first[i], 0u) << "counter index " << i;
  }
  // ...and the whole run replays bit-identically: same series, same counts.
  EXPECT_EQ(h1, h2);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(first[i], second[i]) << "counter index " << i;
  }
}

TEST(AdversaryBehavior, ComposesWithFaultInjectorCrashPlan) {
  // A crash plan installed by the experiment, then the adversary layered on
  // top: the Byzantine model must delegate to the inner injector, so the
  // crash still happens while the adversary keeps attacking.
  ExperimentConfig cfg = small_config(31, 10, true);
  const SimTime epoch = cfg.warmup_cycles * cfg.bootstrap.delta;
  cfg.fault_plan.crashes.push_back(
      {{epoch + 2 * cfg.bootstrap.delta, epoch + 5 * cfg.bootstrap.delta}, 3, 0.0});

  BootstrapExperiment exp(cfg);
  ASSERT_NE(exp.engine().fault_model(), nullptr);  // the injector
  const auto model = install_adversary_plan(exp.engine(), full_mix_plan(cfg, 0.05));
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(exp.engine().fault_model(), model.get());  // adversary on top
  exp.run();

  obs::MetricsRegistry& m = exp.engine().metrics();
  EXPECT_EQ(m.counter("fault.crash").value(), 1u);    // inner still fires
  EXPECT_EQ(m.counter("fault.recover").value(), 1u);
  EXPECT_GT(m.counter("adv.poisoned").value(), 0u);   // outer still attacks
}

// --- hardening -------------------------------------------------------------

TEST(AdversaryHardening, HardenedRunRecoversWhereUnhardenedDoesNot) {
  // f = 5% full mix, same engine seed: the unhardened run must end visibly
  // degraded, the hardened run must detect the attack (sanity rejections,
  // pin mismatches, quarantine) and end materially healthier.
  const auto run_with = [](bool hardened) {
    ExperimentConfig cfg = small_config(5, 30, hardened);
    BootstrapExperiment exp(cfg);
    const auto model = install_adversary_plan(exp.engine(), full_mix_plan(cfg, 0.05));
    const auto result = exp.run();
    struct Out {
      double missing_leaf;
      std::uint64_t sanity, pins, quarantined;
    } out;
    out.missing_leaf = result.final_metrics.missing_leaf_fraction();
    obs::MetricsRegistry& m = exp.engine().metrics();
    out.sanity = m.counter("bootstrap.sanity_rejected").value();
    out.pins = m.counter("bootstrap.pin_mismatch").value();
    out.quarantined = m.counter("quarantine.held").value();
    return out;
  };

  const auto unhardened = run_with(false);
  const auto hardened = run_with(true);

  // The unhardened network is badly damaged by the eclipse floods.
  EXPECT_GT(unhardened.missing_leaf, 0.5);
  EXPECT_EQ(unhardened.sanity, 0u);  // defenses off: nothing rejected

  // The hardened one fights back and ends far healthier.
  EXPECT_GT(hardened.sanity, 0u);
  EXPECT_GT(hardened.pins, 0u);
  EXPECT_GT(hardened.quarantined, 0u);
  EXPECT_LT(hardened.missing_leaf, unhardened.missing_leaf / 2.0);
}

TEST(AdversaryHardening, HardeningNeverRejectsHonestTraffic) {
  // With no adversary, the validation layer rejects nothing and convergence
  // is not slowed. (The trajectories need not be identical: probe echoes
  // carry the responder's true descriptor, which the hardened run adopts.)
  ExperimentConfig plain_cfg = small_config(13, 40, false);
  plain_cfg.stop_at_convergence = true;
  ExperimentConfig hard_cfg = small_config(13, 40, true);
  hard_cfg.stop_at_convergence = true;

  BootstrapExperiment plain(plain_cfg);
  BootstrapExperiment hard(hard_cfg);
  const auto plain_result = plain.run();
  const auto hard_result = hard.run();
  ASSERT_GE(plain_result.converged_cycle, 0);
  ASSERT_GE(hard_result.converged_cycle, 0);
  EXPECT_LE(hard_result.converged_cycle, plain_result.converged_cycle + 1);
  obs::MetricsRegistry& m = hard.engine().metrics();
  EXPECT_EQ(m.counter("bootstrap.sanity_rejected").value(), 0u);
  EXPECT_EQ(m.counter("bootstrap.pin_mismatch").value(), 0u);
  EXPECT_EQ(m.counter("quarantine.held").value(), 0u);
  EXPECT_EQ(m.counter("quarantine.rejected").value(), 0u);
  EXPECT_EQ(m.counter("newscast.rejected").value(), 0u);
}

}  // namespace
}  // namespace bsvc
