// Allocation-regression gate for the message path.
//
// The CREATEMESSAGE / UPDATELEAFSET / UPDATEPREFIXTABLE pipeline is built to
// reuse scratch buffers and emit one flat descriptor buffer per message, so a
// steady-state gossip exchange costs a handful of heap allocations. These
// tests replace the global allocator with a counting shim and pin that
// property: if a change reintroduces per-call temporary vectors (the
// pre-flat-buffer shape was ~6 of them per CREATEMESSAGE), the fixed budgets
// here fail before any benchmark has to notice.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/bootstrap.hpp"
#include "core/experiment.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace bsvc {
namespace {

/// A small network driven to convergence; the interesting measurements all
/// happen against its warm, steady-state protocol instances.
class AllocationRegression : public ::testing::Test {
 protected:
  void SetUp() override {
    ExperimentConfig cfg;
    cfg.n = 256;
    cfg.seed = 4242;
    cfg.max_cycles = 60;
    exp_ = std::make_unique<BootstrapExperiment>(cfg);
    result_ = exp_->run();
    ASSERT_GE(result_.converged_cycle, 0) << "network must converge for a steady state";
  }

  std::unique_ptr<BootstrapExperiment> exp_;
  ExperimentResult result_;
};

TEST_F(AllocationRegression, CreateMessageStaysWithinFixedBudget) {
  auto& proto = exp_->bootstrap_slot().of(exp_->engine(), 0);
  const NodeId peer = exp_->engine().id_of(1);

  // Warm the protocol's scratch buffers (first call may grow them).
  for (int i = 0; i < 3; ++i) proto.create_message(peer, true).reset();

  constexpr int kCalls = 100;
  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < kCalls; ++i) {
    auto msg = proto.create_message(peer, true);
    ASSERT_NE(msg, nullptr);
  }
  const std::uint64_t allocs = g_alloc_count.load() - before;

  // Warm, CREATEMESSAGE is allocation-free: the message object and its flat
  // entry buffer both recycle through thread-local pools (common/pool.hpp)
  // and the candidate staging runs in thread-local scratch. Budget 1 per
  // call covers an occasional pool/scratch regrowth; anything more means a
  // per-call temporary sneaked back in.
  EXPECT_LE(allocs, kCalls * 1u) << "CREATEMESSAGE allocates "
                                 << static_cast<double>(allocs) / kCalls << " per call";
}

TEST_F(AllocationRegression, SteadyStateExchangesStayWithinPinnedBudget) {
  // The committed steady-state budget: at most 5 heap allocations per
  // bootstrap exchange (request or reply sent), measured across whole
  // simulated cycles so it covers the full pipeline — CREATEMESSAGE,
  // delivery, UPDATELEAFSET, UPDATEPREFIXTABLE, timers, retry bookkeeping —
  // plus all concurrent newscast traffic. bench/scale.cpp reports the same
  // ratio as its allocation census and scripts/check_alloc_budget.py gates
  // it in CI; keep the three in sync.
  Engine& engine = exp_->engine();
  const SimTime delta = exp_->config().bootstrap.delta;

  // One post-convergence warm cycle so pools, queues and views are at
  // steady-state capacity.
  engine.run_until(engine.now() + delta);

  const std::uint64_t allocs_before = g_alloc_count.load();
  const auto stats_before = exp_->current_stats();
  engine.run_until(engine.now() + 4 * delta);
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;
  const auto stats = exp_->current_stats();
  const std::uint64_t exchanges = (stats.requests_sent - stats_before.requests_sent) +
                                  (stats.replies_sent - stats_before.replies_sent);
  ASSERT_GT(exchanges, 0u);

  const double per_exchange =
      static_cast<double>(allocs) / static_cast<double>(exchanges);
  EXPECT_LE(per_exchange, 5.0) << "steady-state exchange allocates " << per_exchange
                               << " (budget 5)";
}

TEST_F(AllocationRegression, SteadyStateCyclesStayAllocationLean) {
  Engine& engine = exp_->engine();
  const SimTime delta = exp_->config().bootstrap.delta;
  const auto msgs_before_warm = engine.traffic().messages_sent;

  // One post-convergence warm cycle so queues and views reach capacity.
  engine.run_until(engine.now() + delta);
  ASSERT_GT(engine.traffic().messages_sent, msgs_before_warm);

  const std::uint64_t allocs_before = g_alloc_count.load();
  const auto msgs_before = engine.traffic().messages_sent;
  engine.run_until(engine.now() + 4 * delta);
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;
  const auto msgs = engine.traffic().messages_sent - msgs_before;
  ASSERT_GT(msgs, 0u);

  // Full pipeline per sent message (create, serialize accounting, deliver,
  // merge into leaf set / prefix table / newscast view) across bootstrap and
  // newscast traffic. Seed-measured at ~9.4 allocations per message; 20 is
  // the regression tripwire, far under the ~41 the pre-refactor path spent.
  const double per_message = static_cast<double>(allocs) / static_cast<double>(msgs);
  EXPECT_LE(per_message, 20.0) << "steady-state cycle allocates " << per_message
                               << " per message";
}

}  // namespace
}  // namespace bsvc
