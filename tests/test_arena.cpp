#include "common/arena.hpp"

#include <gtest/gtest.h>

namespace bsvc {
namespace {

TEST(DescriptorArena, AllocatesDisjointBlocks) {
  DescriptorArena arena;
  const auto b1 = arena.allocate(4);
  const auto b2 = arena.allocate(6);
  EXPECT_EQ(b1.off, 0u);
  EXPECT_EQ(b1.cap, 4u);
  EXPECT_EQ(b2.off, 4u);
  EXPECT_EQ(b2.cap, 6u);
  EXPECT_EQ(arena.tip(), 10u);

  for (std::uint32_t i = 0; i < 4; ++i) {
    arena.ids(b1)[i] = 100 + i;
    arena.addrs(b1)[i] = static_cast<Address>(i);
  }
  for (std::uint32_t i = 0; i < 6; ++i) {
    arena.ids(b2)[i] = 200 + i;
    arena.addrs(b2)[i] = static_cast<Address>(10 + i);
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(arena.ids(b1)[i], 100 + i);
    EXPECT_EQ(arena.addrs(b1)[i], i);
  }
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(arena.ids(b2)[i], 200 + i);
    EXPECT_EQ(arena.addrs(b2)[i], 10 + i);
  }
}

TEST(DescriptorArena, GrowInPlaceAtTip) {
  DescriptorArena arena;
  auto fixed = arena.allocate(8);
  auto tip = arena.allocate(4);
  arena.ids(tip)[0] = 7;
  arena.addrs(tip)[0] = 3;

  arena.grow(tip, 16, 1);
  // The tip block extends without moving.
  EXPECT_EQ(tip.off, 8u);
  EXPECT_EQ(tip.cap, 16u);
  EXPECT_EQ(arena.tip(), 24u);
  EXPECT_EQ(arena.ids(tip)[0], 7u);
  EXPECT_EQ(arena.addrs(tip)[0], 3u);
  (void)fixed;
}

TEST(DescriptorArena, GrowRelocatesNonTipBlockPreservingLiveEntries) {
  DescriptorArena arena;
  auto early = arena.allocate(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    arena.ids(early)[i] = 50 + i;
    arena.addrs(early)[i] = static_cast<Address>(i);
  }
  const auto later = arena.allocate(5);  // makes `early` a non-tip block
  arena.ids(later)[0] = 999;

  const std::uint32_t old_off = early.off;
  arena.grow(early, 12, 3);
  EXPECT_NE(early.off, old_off);
  EXPECT_EQ(early.cap, 12u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(arena.ids(early)[i], 50 + i);
    EXPECT_EQ(arena.addrs(early)[i], i);
  }
  EXPECT_EQ(arena.ids(later)[0], 999u);
}

TEST(DescriptorArena, ResetRewindsTipAndKeepsSlabCapacity) {
  DescriptorArena arena;
  arena.allocate(100);
  const std::size_t warm_bytes = arena.slab_bytes();
  EXPECT_GT(warm_bytes, 0u);

  arena.reset();
  EXPECT_EQ(arena.tip(), 0u);
  EXPECT_EQ(arena.slab_bytes(), warm_bytes);

  // Re-allocation over the warm arena reuses the slabs: same placement, no
  // capacity growth.
  const auto b = arena.allocate(100);
  EXPECT_EQ(b.off, 0u);
  EXPECT_EQ(arena.slab_bytes(), warm_bytes);
}

TEST(DescriptorArena, SlabGrowthIsGeometric) {
  DescriptorArena arena;
  arena.allocate(1);
  const std::size_t floor_bytes = arena.slab_bytes();
  // The floor covers small allocations without a resize.
  arena.allocate(32);
  EXPECT_EQ(arena.slab_bytes(), floor_bytes);
  // Blowing past the floor doubles rather than tracking the tip exactly.
  arena.allocate(64);
  EXPECT_GT(arena.slab_bytes(), floor_bytes);
}

}  // namespace
}  // namespace bsvc
