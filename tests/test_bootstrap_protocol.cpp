#include "core/bootstrap.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/experiment.hpp"
#include "tests/test_util.hpp"

namespace bsvc {
namespace {

// Harness: a tiny converging network with the oracle sampler, giving direct
// access to protocol instances for invariant checks.
BootstrapExperiment make_experiment(std::size_t n, std::uint64_t seed,
                                    SamplerKind sampler = SamplerKind::Oracle,
                                    double drop = 0.0) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.sampler = sampler;
  cfg.drop_probability = drop;
  cfg.warmup_cycles = sampler == SamplerKind::Newscast ? 8 : 0;
  cfg.max_cycles = 80;
  return BootstrapExperiment(cfg);
}

TEST(BootstrapProtocol, ConvergesToPerfectTablesSmallNetwork) {
  auto exp = make_experiment(256, 1);
  const auto result = exp.run();
  EXPECT_GE(result.converged_cycle, 0);
  EXPECT_LE(result.converged_cycle, 25);
  EXPECT_EQ(result.final_metrics.missing_leaf_fraction(), 0.0);
  EXPECT_EQ(result.final_metrics.missing_prefix_fraction(), 0.0);
}

TEST(BootstrapProtocol, ConvergesWithNewscastSampler) {
  auto exp = make_experiment(256, 2, SamplerKind::Newscast);
  const auto result = exp.run();
  EXPECT_GE(result.converged_cycle, 0);
}

TEST(BootstrapProtocol, ConvergesUnderHeavyMessageLoss) {
  auto exp = make_experiment(256, 3, SamplerKind::Oracle, 0.2);
  const auto result = exp.run();
  EXPECT_GE(result.converged_cycle, 0);
}

TEST(BootstrapProtocol, LossSlowsConvergenceButDoesNotBreakIt) {
  // Single runs at small N are noisy; compare totals over several seeds.
  const auto cycles_at = [](double drop) {
    int total = 0;
    for (std::uint64_t seed = 4; seed < 8; ++seed) {
      auto exp = make_experiment(512, seed, SamplerKind::Oracle, drop);
      const int c = exp.run().converged_cycle;
      EXPECT_GE(c, 0) << "drop=" << drop << " seed=" << seed;
      total += c;
    }
    return total;
  };
  const int clean = cycles_at(0.0);
  const int lossy = cycles_at(0.2);
  EXPECT_GT(lossy, clean);
}

TEST(BootstrapProtocol, MessageInvariants) {
  auto exp = make_experiment(512, 5);
  exp.run();
  // Probe CREATEMESSAGE on live instances against random targets.
  auto& engine = exp.engine();
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const Address node = static_cast<Address>(rng.below(engine.node_count()));
    auto& proto = const_cast<BootstrapProtocol&>(exp.bootstrap_of(node));
    const NodeId peer = rng.next_u64();
    const auto msg = proto.create_message(peer, true);

    // Ring part bounded by c; never contains the peer itself.
    EXPECT_LE(msg->ring_part().size(), proto.config().c);
    std::set<NodeId> seen;
    for (const auto& d : msg->ring_part()) {
      EXPECT_NE(d.id, peer);
      EXPECT_TRUE(seen.insert(d.id).second);  // no duplicates
    }
    // Prefix part: at most k per (row, col) cell of the peer, disjoint from
    // the ring part.
    std::map<std::pair<int, int>, int> cells;
    for (const auto& d : msg->prefix_part()) {
      EXPECT_NE(d.id, peer);
      EXPECT_TRUE(seen.insert(d.id).second);
      const int i = common_prefix_digits(peer, d.id, proto.config().digits);
      const int j = digit(d.id, i, proto.config().digits);
      const int fill = ++cells[std::pair(i, j)];
      EXPECT_LE(fill, proto.config().k);
    }
    // Bounded by the full table size.
    const std::size_t full_table =
        static_cast<std::size_t>(proto.config().digits.num_digits<NodeId>()) *
        static_cast<std::size_t>(proto.config().digits.radix() - 1) *
        static_cast<std::size_t>(proto.config().k);
    EXPECT_LE(msg->prefix_part().size(), full_table);
  }
}

TEST(BootstrapProtocol, SelfNeverInOwnTables) {
  auto exp = make_experiment(128, 6);
  exp.run();
  for (Address a = 0; a < 128; ++a) {
    const auto& proto = exp.bootstrap_of(a);
    const NodeId own = exp.engine().id_of(a);
    EXPECT_FALSE(proto.leaf_set().contains(own));
    EXPECT_FALSE(proto.prefix_table().contains(own));
  }
}

TEST(BootstrapProtocol, LeafSetsRespectCapacity) {
  auto exp = make_experiment(128, 7);
  exp.run();
  for (Address a = 0; a < 128; ++a) {
    const auto& ls = exp.bootstrap_of(a).leaf_set();
    EXPECT_LE(ls.size(), ls.capacity());
  }
}

TEST(BootstrapProtocol, StatsAreConsistent) {
  auto exp = make_experiment(256, 8);
  const auto result = exp.run();
  const auto& s = result.bootstrap_stats;
  EXPECT_GT(s.requests_sent, 0u);
  EXPECT_GT(s.replies_sent, 0u);
  // No loss: every request yields a reply; replies can't exceed requests.
  EXPECT_LE(s.replies_sent, s.requests_sent);
  EXPECT_GT(s.entries_sent, s.requests_sent);  // many descriptors per message
  EXPECT_GE(result.max_message_bytes, static_cast<std::uint64_t>(result.avg_message_bytes));
}

// Ablations: each feature switch must change behaviour in the documented
// direction but never break convergence of the leaf sets.
TEST(BootstrapProtocol, AblationNoPrefixPartStillBuildsRing) {
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 9;
  cfg.sampler = SamplerKind::Oracle;
  cfg.warmup_cycles = 0;
  cfg.max_cycles = 80;
  cfg.bootstrap.send_prefix_part = false;
  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  EXPECT_GE(result.leaf_converged_cycle, 0);
}

TEST(BootstrapProtocol, AblationNoRandomSamplesStillConverges) {
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 10;
  cfg.sampler = SamplerKind::Oracle;
  cfg.warmup_cycles = 0;
  cfg.max_cycles = 120;
  cfg.bootstrap.use_random_samples = false;
  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  EXPECT_GE(result.leaf_converged_cycle, 0);
}

TEST(BootstrapProtocol, StaggeredStartsAcrossSeveralCycles) {
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 11;
  cfg.sampler = SamplerKind::Oracle;
  cfg.warmup_cycles = 0;
  cfg.max_cycles = 80;
  cfg.start_window_cycles = 4.0;  // far looser than the paper's Δ
  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  EXPECT_GE(result.converged_cycle, 0);
}

TEST(BootstrapProtocol, DeterministicGivenSeed) {
  const auto run_sig = [](std::uint64_t seed) {
    auto exp = make_experiment(128, seed);
    const auto r = exp.run();
    return std::tuple(r.converged_cycle, r.bootstrap_stats.requests_sent,
                      r.bootstrap_stats.entries_sent);
  };
  EXPECT_EQ(run_sig(77), run_sig(77));
  EXPECT_NE(run_sig(77), run_sig(78));
}

TEST(BootstrapProtocol, WireBytesMatchEntryCounts) {
  auto exp = make_experiment(64, 12);
  exp.run();
  auto& proto = const_cast<BootstrapProtocol&>(exp.bootstrap_of(0));
  const auto msg = proto.create_message(exp.engine().id_of(1), true);
  const std::size_t expected = kDescriptorWireBytes + 1 +
                               (2 + msg->ring_part().size() * kDescriptorWireBytes) +
                               (2 + msg->prefix_part().size() * kDescriptorWireBytes) +
                               (2 + msg->tombstones.size() * 12);
  EXPECT_EQ(msg->wire_bytes(), expected);
}

}  // namespace
}  // namespace bsvc
