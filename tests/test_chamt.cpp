#include "common/chamt.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace bsvc {
namespace {

TEST(Chamt, EmptyFindsNothing) {
  Chamt<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(0), nullptr);
  EXPECT_EQ(m.find(42), nullptr);
}

TEST(Chamt, InsertAndFindManyKeys) {
  Chamt<std::uint64_t> m;
  constexpr std::uint64_t kN = 2000;
  for (std::uint64_t k = 0; k < kN; ++k) m = m.set(k * 2654435761u, k);
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    const auto* v = m.find(k * 2654435761u);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(m.find(kN * 2654435761u), nullptr);
}

TEST(Chamt, OverwriteKeepsSize) {
  Chamt<int> m;
  m = m.set(7, 1);
  m = m.set(7, 2);
  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 2);
}

TEST(Chamt, ChunkCollisionsPushEntriesDown) {
  // All these keys share chunk 1 at every 6-bit level they touch.
  Chamt<int> m;
  const std::vector<std::uint64_t> keys{1, 1 + (1ull << 6), 1 + (1ull << 12),
                                        1 + (1ull << 6) + (1ull << 12)};
  int v = 0;
  for (const auto k : keys) m = m.set(k, v++);
  EXPECT_EQ(m.size(), keys.size());
  v = 0;
  for (const auto k : keys) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), v++);
  }
}

TEST(Chamt, TopBitKeysDivergeAtLastLevel) {
  Chamt<int> m;
  m = m.set(0, 1);
  m = m.set(std::uint64_t{1} << 63, 2);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.find(0), 1);
  EXPECT_EQ(*m.find(std::uint64_t{1} << 63), 2);
}

TEST(Chamt, OldVersionSurvivesNewWrites) {
  Chamt<int> v1;
  for (std::uint64_t k = 0; k < 100; ++k) v1 = v1.set(k, static_cast<int>(k));
  const Chamt<int> frozen = v1;

  Chamt<int> v2 = frozen;
  for (std::uint64_t k = 0; k < 100; ++k) v2 = v2.set(k, -1);
  v2 = v2.set(1000, 99);

  // The frozen snapshot still reads the original bindings.
  EXPECT_EQ(frozen.size(), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(*frozen.find(k), static_cast<int>(k));
  EXPECT_EQ(frozen.find(1000), nullptr);
  EXPECT_EQ(v2.size(), 101u);
  EXPECT_EQ(*v2.find(5), -1);
}

TEST(Chamt, SnapshotsShareUntouchedSubtrees) {
  Chamt<int> v1;
  for (std::uint64_t k = 0; k < 512; ++k) v1 = v1.set(k, static_cast<int>(k));
  // Touch one key; every other entry must be the same object, not a copy —
  // find() returns stable addresses into shared subtrees.
  const Chamt<int> v2 = v1.set(3, -3);
  std::size_t shared = 0;
  for (std::uint64_t k = 0; k < 512; ++k) {
    if (k == 3) continue;
    if (v1.find(k) == v2.find(k)) ++shared;
  }
  // The path-copied spine clones only O(log n) nodes; the overwhelming
  // majority of entries stay physically shared.
  EXPECT_GT(shared, 400u);
  EXPECT_NE(v1.find(3), v2.find(3));
}

TEST(Chamt, CopyIsCheapHandleNotDeepCopy) {
  Chamt<int> m;
  for (std::uint64_t k = 0; k < 256; ++k) m = m.set(k, 1);
  const Chamt<int> copy = m;
  for (std::uint64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(m.find(k), copy.find(k));  // same physical entries
  }
}

}  // namespace
}  // namespace bsvc
