// The chaos fuzzer (fault/chaos.hpp): case generation is a pure function of
// (suite seed, index), the invariant oracles accept healthy observations and
// reject each violation class, and the digest is sensitive to every field it
// claims to cover.
#include <gtest/gtest.h>

#include "fault/chaos.hpp"
#include "sim/event_queue.hpp"

using namespace bsvc;

namespace {

ChaosGenConfig gen_config() {
  ChaosGenConfig gen;
  gen.n = 48;
  gen.delta = kDelta;
  gen.epoch = 8 * kDelta;
  gen.horizon = 20 * kDelta;
  return gen;
}

bool plans_equal(const FaultPlan& a, const FaultPlan& b) {
  if (a.seed != b.seed) return false;
  if (a.partitions.size() != b.partitions.size()) return false;
  for (std::size_t i = 0; i < a.partitions.size(); ++i) {
    if (a.partitions[i].window.start != b.partitions[i].window.start ||
        a.partitions[i].window.end != b.partitions[i].window.end ||
        a.partitions[i].kind != b.partitions[i].kind ||
        a.partitions[i].value != b.partitions[i].value) {
      return false;
    }
  }
  if (a.link_loss.size() != b.link_loss.size()) return false;
  for (std::size_t i = 0; i < a.link_loss.size(); ++i) {
    if (a.link_loss[i].drop_probability != b.link_loss[i].drop_probability) return false;
  }
  if (a.latency.size() != b.latency.size()) return false;
  if (a.duplicates.size() != b.duplicates.size()) return false;
  if (a.reorders.size() != b.reorders.size()) return false;
  if (a.crashes.size() != b.crashes.size()) return false;
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    if (a.crashes[i].fraction != b.crashes[i].fraction) return false;
  }
  return true;
}

TEST(ChaosGen, SameSeedAndIndexReproduceTheCase) {
  const ChaosGenConfig gen = gen_config();
  for (std::size_t i = 0; i < 32; ++i) {
    const ChaosCase a = make_chaos_case(gen, 7, i);
    const ChaosCase b = make_chaos_case(gen, 7, i);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_TRUE(plans_equal(a.plan, b.plan)) << "case " << i;
    EXPECT_EQ(a.byzantine_fraction, b.byzantine_fraction);
    EXPECT_EQ(a.adversary_seed, b.adversary_seed);
    EXPECT_EQ(a.harden, b.harden);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.describe(), b.describe());
  }
}

TEST(ChaosGen, DifferentIndicesDiverge) {
  const ChaosGenConfig gen = gen_config();
  std::size_t distinct = 0;
  const ChaosCase first = make_chaos_case(gen, 7, 0);
  for (std::size_t i = 1; i < 16; ++i) {
    if (!plans_equal(first.plan, make_chaos_case(gen, 7, i).plan)) ++distinct;
  }
  EXPECT_GT(distinct, 12u);  // near-certainly all differ; allow rare clashes
}

TEST(ChaosGen, WindowsStayInsideEpochHorizon) {
  const ChaosGenConfig gen = gen_config();
  for (std::size_t i = 0; i < 64; ++i) {
    const ChaosCase c = make_chaos_case(gen, 11, i);
    const auto check = [&](const TimeWindow& w) {
      EXPECT_GE(w.start, gen.epoch) << "case " << i;
      EXPECT_LE(w.end, gen.horizon) << "case " << i;
      EXPECT_LT(w.start, w.end) << "case " << i;
    };
    for (const auto& p : c.plan.partitions) check(p.window);
    for (const auto& l : c.plan.link_loss) check(l.window);
    for (const auto& l : c.plan.latency) check(l.window);
    for (const auto& d : c.plan.duplicates) check(d.window);
    for (const auto& r : c.plan.reorders) check(r.window);
    for (const auto& cr : c.plan.crashes) check(cr.window);
  }
}

TEST(ChaosGen, AdversarialCasesAlwaysRunHardened) {
  // The unhardened protocol is eclipsable forever by design; the fuzzer must
  // not demand re-convergence from a defenseless configuration.
  const ChaosGenConfig gen = gen_config();
  std::size_t adversarial = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const ChaosCase c = make_chaos_case(gen, 3, i);
    if (c.has_adversary()) {
      ++adversarial;
      EXPECT_TRUE(c.harden) << "case " << i;
      EXPECT_LE(c.byzantine_fraction, gen.byzantine_max_fraction);
      EXPECT_GT(c.byzantine_fraction, 0.0);
    }
  }
  EXPECT_GT(adversarial, 0u);  // the 25% arm fires within 200 draws
}

/// A self-consistent observation every oracle accepts.
ChaosObservation healthy() {
  ChaosObservation o;
  o.sent = 1000;
  o.duplicated = 10;
  o.delivered = 900;
  o.dropped = 80;
  o.to_dead = 30;
  o.wl_issued = 100;
  o.wl_answered = 90;
  o.wl_timeouts = 8;
  o.wl_unroutable = 2;
  o.wl_pending = 0;
  o.span_opened = 50;
  o.span_closed = 48;
  o.span_in_flight = 2;
  o.span_stray = 0;
  o.span_overflow = 0;
  o.n = 48;
  o.alive = 48;
  o.inactive_alive = 0;
  o.empty_leaf_alive = 0;
  o.missing_leaf_fraction = 0.05;
  return o;
}

TEST(ChaosOracles, HealthyObservationPasses) {
  EXPECT_TRUE(check_chaos_invariants(healthy()).empty());
}

TEST(ChaosOracles, EachViolationClassIsCaught) {
  {
    ChaosObservation o = healthy();
    o.delivered = o.sent + o.duplicated + 1;  // more outcomes than sends
    EXPECT_EQ(check_chaos_invariants(o).size(), 1u);
  }
  {
    ChaosObservation o = healthy();
    o.wl_answered -= 1;  // ledger unbalanced
    EXPECT_EQ(check_chaos_invariants(o).size(), 1u);
  }
  {
    ChaosObservation o = healthy();
    o.wl_pending = 3;  // leaked requests
    EXPECT_EQ(check_chaos_invariants(o).size(), 1u);
  }
  {
    ChaosObservation o = healthy();
    o.span_stray = 1;
    EXPECT_EQ(check_chaos_invariants(o).size(), 1u);
  }
  {
    ChaosObservation o = healthy();
    o.span_in_flight = 7;  // != opened - closed
    EXPECT_EQ(check_chaos_invariants(o).size(), 1u);
  }
  {
    ChaosObservation o = healthy();
    o.alive = o.n - 2;  // crash window did not heal
    EXPECT_EQ(check_chaos_invariants(o).size(), 1u);
  }
  {
    ChaosObservation o = healthy();
    o.inactive_alive = 1;  // eclipsed forever
    EXPECT_EQ(check_chaos_invariants(o).size(), 1u);
  }
  {
    ChaosObservation o = healthy();
    o.empty_leaf_alive = 1;
    EXPECT_EQ(check_chaos_invariants(o).size(), 1u);
  }
  {
    ChaosObservation o = healthy();
    o.missing_leaf_fraction = 0.9;  // no re-convergence
    EXPECT_EQ(check_chaos_invariants(o).size(), 1u);
  }
}

TEST(ChaosDigest, SensitiveToEveryCoveredField) {
  const std::uint64_t base = chaos_digest(healthy());
  const auto differs = [&](auto mutate) {
    ChaosObservation o = healthy();
    mutate(o);
    return chaos_digest(o) != base;
  };
  EXPECT_TRUE(differs([](ChaosObservation& o) { o.sent += 1; }));
  EXPECT_TRUE(differs([](ChaosObservation& o) { o.dropped += 1; }));
  EXPECT_TRUE(differs([](ChaosObservation& o) { o.delivered += 1; }));
  EXPECT_TRUE(differs([](ChaosObservation& o) { o.duplicated += 1; }));
  EXPECT_TRUE(differs([](ChaosObservation& o) { o.wl_issued += 1; }));
  EXPECT_TRUE(differs([](ChaosObservation& o) { o.wl_answered += 1; }));
  EXPECT_TRUE(differs([](ChaosObservation& o) { o.span_opened += 1; }));
  EXPECT_TRUE(differs([](ChaosObservation& o) { o.alive -= 1; }));
  EXPECT_TRUE(differs([](ChaosObservation& o) { o.missing_leaf_fraction += 0.001; }));
  // And it is stable: same observation, same digest.
  EXPECT_EQ(chaos_digest(healthy()), base);
}

}  // namespace
