#include "overlay/chord.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sampling/oracle_sampler.hpp"
#include "tests/test_util.hpp"

namespace bsvc {
namespace {

NodeDescriptor d(NodeId id) { return {id, static_cast<Address>(id & 0xFFFF)}; }

TEST(FingerTable, StartsEmpty) {
  FingerTable ft(1000);
  EXPECT_EQ(ft.filled(), 0u);
  EXPECT_TRUE(ft.entries().empty());
  EXPECT_FALSE(ft.finger(0).has_value());
  EXPECT_FALSE(ft.finger(63).has_value());
}

TEST(FingerTable, RejectsSelfAndNull) {
  FingerTable ft(1000);
  EXPECT_FALSE(ft.offer({1000, 5}));
  EXPECT_FALSE(ft.offer({2000, kNullAddress}));
  EXPECT_EQ(ft.filled(), 0u);
}

TEST(FingerTable, SingleCandidateFillsAllSlots) {
  // Any node is at-or-past every target on a wrapping ring, so one
  // candidate fills all 64 slots.
  FingerTable ft(1000);
  EXPECT_TRUE(ft.offer(d(5000)));
  EXPECT_EQ(ft.filled(), 64u);
  EXPECT_EQ(ft.entries().size(), 1u);
  EXPECT_EQ(ft.finger(0)->id, 5000u);
}

TEST(FingerTable, CloserCandidateWinsPerSlot) {
  const NodeId own = 0;
  FingerTable ft(own);
  ft.offer(d(NodeId{1} << 40));  // at target of slot 40 exactly
  ft.offer(d(NodeId{1} << 20));
  // Slot 20's target is 2^20: the 2^20 node is exact.
  EXPECT_EQ(ft.finger(20)->id, NodeId{1} << 20);
  // Slot 40's target is 2^40: the 2^40 node is exact; the 2^20 one is
  // before the target (would have to wrap all the way around).
  EXPECT_EQ(ft.finger(40)->id, NodeId{1} << 40);
  // Slot 10's target 2^10: closest at-or-after is 2^20.
  EXPECT_EQ(ft.finger(10)->id, NodeId{1} << 20);
}

TEST(FingerTable, ExactTargetIsKept) {
  const NodeId own = 12345;
  FingerTable ft(own);
  const NodeId exact = own + (NodeId{1} << 30);
  ft.offer(d(exact));
  ft.offer(d(exact + 999));
  EXPECT_EQ(ft.finger(30)->id, exact);
}

TEST(FingerTable, RemoveClearsSlots) {
  FingerTable ft(0);
  ft.offer(d(777));
  EXPECT_EQ(ft.filled(), 64u);
  EXPECT_TRUE(ft.remove(777));
  EXPECT_EQ(ft.filled(), 0u);
  EXPECT_FALSE(ft.remove(777));
}

TEST(FingerTable, WrapAroundTargets) {
  const NodeId own = ~NodeId{0} - 10;  // near the top: big targets wrap
  FingerTable ft(own);
  ft.offer(d(100));  // sits just past own on the wrapped ring
  // Slot 63's target is own + 2^63 (deep in the middle of the space);
  // 100 is at-or-after it only by wrapping — still a valid candidate.
  EXPECT_TRUE(ft.finger(63).has_value());
  // Slot 0's target own+1 wraps near the top; 100 is the only candidate.
  EXPECT_EQ(ft.finger(0)->id, 100u);
}

// --- end-to-end Chord bootstrap -----------------------------------------

struct ChordNet {
  std::unique_ptr<Engine> engine;
  std::size_t n;

  explicit ChordNet(std::size_t n, std::uint64_t seed) : n(n) {
    engine = std::make_unique<Engine>(seed);
    IdGenerator ids{Rng(seed ^ 0xC0FFEE)};
    for (std::size_t i = 0; i < n; ++i) engine->add_node(ids.next());
    for (Address a = 0; a < n; ++a) {
      auto sampler = std::make_unique<OracleSamplerProtocol>(*engine, a);
      auto* sp = sampler.get();
      engine->attach(a, std::move(sampler));
      engine->attach(a, std::make_unique<ChordBootstrapProtocol>(
                            ChordConfig{}, sp, engine->rng().below(kDelta)));
      engine->start_node(a);
    }
  }

  const ChordBootstrapProtocol& proto(Address a) const {
    return dynamic_cast<const ChordBootstrapProtocol&>(engine->protocol(a, 1));  // test-only checked cast
  }

  void run_cycles(std::size_t cycles) { engine->run_until(engine->now() + cycles * kDelta); }
};

TEST(ChordBootstrap, FingersConvergeToExactTargets) {
  ChordNet net(512, 1);
  const ChordOracle oracle(*net.engine, SlotRef<ChordBootstrapProtocol>::assume(1));
  net.run_cycles(40);
  const auto m = oracle.measure();
  EXPECT_TRUE(m.fingers_converged())
      << "missing " << (m.finger_perfect - m.finger_present) << " of " << m.finger_perfect;
}

TEST(ChordBootstrap, ConvergenceIsFast) {
  ChordNet net(512, 2);
  const ChordOracle oracle(*net.engine, SlotRef<ChordBootstrapProtocol>::assume(1));
  int converged_at = -1;
  for (int cycle = 0; cycle < 40; ++cycle) {
    net.run_cycles(1);
    if (oracle.measure().fingers_converged()) {
      converged_at = cycle;
      break;
    }
  }
  ASSERT_GE(converged_at, 0);
  EXPECT_LE(converged_at, 30);
}

TEST(ChordBootstrap, MessageInvariants) {
  ChordNet net(256, 3);
  net.run_cycles(20);
  auto& proto = const_cast<ChordBootstrapProtocol&>(net.proto(0));
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId peer = rng.next_u64();
    const auto msg = proto.create_message(peer, true);
    EXPECT_LE(msg->ring_part.size(), ChordConfig{}.c);
    EXPECT_LE(msg->finger_part.size(), static_cast<std::size_t>(FingerTable::kBits));
    std::set<NodeId> seen;
    for (const auto& e : msg->ring_part) {
      EXPECT_NE(e.id, peer);
      EXPECT_TRUE(seen.insert(e.id).second);
    }
    for (const auto& e : msg->finger_part) {
      EXPECT_NE(e.id, peer);
      EXPECT_TRUE(seen.insert(e.id).second);  // disjoint from ring part
    }
  }
}

TEST(ChordBootstrap, TrueFingerMatchesBruteForce) {
  ChordNet net(128, 5);
  const ChordOracle oracle(*net.engine, SlotRef<ChordBootstrapProtocol>::assume(1));
  std::vector<NodeDescriptor> members;
  for (Address a = 0; a < 128; ++a) members.push_back(net.engine->descriptor_of(a));
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    const auto& m = members[rng.below(members.size())];
    const int i = static_cast<int>(rng.below(64));
    const NodeId target = m.id + (NodeId{1} << i);
    // Brute force: minimize successor distance from the target.
    NodeDescriptor best = members[0];
    for (const auto& cand : members) {
      if (successor_distance(target, cand.id) < successor_distance(target, best.id)) {
        best = cand;
      }
    }
    EXPECT_EQ(oracle.true_finger(m.id, i).id, best.id);
  }
}

TEST(ChordBootstrap, LeafSetsAlsoConverge) {
  // The Chord variant builds the same sorted ring underneath.
  ChordNet net(256, 7);
  net.run_cycles(40);
  std::vector<NodeDescriptor> members;
  for (Address a = 0; a < 256; ++a) members.push_back(net.engine->descriptor_of(a));
  BootstrapConfig cfg;  // c matches ChordConfig default
  const PerfectTables truth(members, cfg);
  for (Address a = 0; a < 256; ++a) {
    const auto& ls = net.proto(a).leaf_set();
    for (const NodeId want : truth.perfect_leaf_ids(truth.rank_of_id(net.engine->id_of(a)))) {
      EXPECT_TRUE(ls.contains(want));
    }
  }
}

}  // namespace
}  // namespace bsvc
