#include "net/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/bootstrap.hpp"
#include "sampling/newscast.hpp"
#include "tests/test_util.hpp"

namespace bsvc {
namespace {

TEST(Codec, IntegerRoundtrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Codec, DescriptorRoundtripAndSize) {
  ByteWriter w;
  const NodeDescriptor d{0xFEEDFACECAFEBEEFull, 1234};
  w.descriptor(d);
  EXPECT_EQ(w.size(), kDescriptorWireBytes);
  ByteReader r(w.bytes());
  const auto back = r.descriptor();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, d.id);
  EXPECT_EQ(back->addr, d.addr);
}

TEST(Codec, DescriptorListRoundtrip) {
  const auto list = test::random_descriptors(37, 1);
  ByteWriter w;
  w.descriptor_list(list);
  EXPECT_EQ(w.size(), descriptor_list_wire_bytes(list.size()));
  ByteReader r(w.bytes());
  const auto back = r.descriptor_list();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, list);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, EmptyListRoundtrip) {
  ByteWriter w;
  w.descriptor_list({});
  ByteReader r(w.bytes());
  const auto back = r.descriptor_list();
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Codec, TruncatedReadsReturnNullopt) {
  ByteWriter w;
  w.descriptor_list(test::random_descriptors(3, 2));
  const auto& full = w.bytes();
  // Every proper prefix must fail cleanly, never crash.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader r(full.data(), cut);
    EXPECT_FALSE(r.descriptor_list().has_value()) << "cut=" << cut;
  }
}

TEST(Codec, BitflipsNeverOverread) {
  // Bit flips anywhere in a serialized descriptor list — including the
  // count prefix — must either still parse (the flip landed in a value
  // byte) or fail cleanly; the reader never reads past its buffer.
  const auto list = test::random_descriptors(5, 7);
  ByteWriter w;
  w.descriptor_list(list);
  const auto& full = w.bytes();
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutant(full.begin(), full.end());
      mutant[byte] = static_cast<std::uint8_t>(mutant[byte] ^ (1u << bit));
      ByteReader r(mutant.data(), mutant.size());
      const auto back = r.descriptor_list();
      if (back.has_value()) {
        // A value-byte flip keeps the element count; a count flip that
        // still parses can only have shrunk the list (fewer elements than
        // bytes provide fails the exhausted check in message decoding, but
        // the primitive accepts a short read).
        EXPECT_LE(back->size(), (mutant.size() - 2) / kDescriptorWireBytes + 1);
      }
    }
  }
}

TEST(Codec, ReaderPastEnd) {
  ByteReader r(nullptr, 0);
  EXPECT_FALSE(r.u8().has_value());
  EXPECT_FALSE(r.u16().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.u64().has_value());
  EXPECT_FALSE(r.descriptor().has_value());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Codec, CorruptCountDoesNotOverread) {
  ByteWriter w;
  w.u16(60000);  // claims 60000 descriptors, provides none
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.descriptor_list().has_value());
}

// The simulator's byte accounting must equal the codec's serialized sizes.

TEST(WireSizeEquivalence, BootstrapMessage) {
  const auto ring = test::random_descriptors(20, 3);
  const auto prefix = test::random_descriptors(45, 4);
  const BootstrapMessage msg({1, 0}, ring, prefix, true);

  ByteWriter w;
  w.descriptor(msg.sender);
  w.u8(msg.is_request ? 1 : 0);
  w.descriptor_list(msg.ring_part());
  w.descriptor_list(msg.prefix_part());
  w.u16(static_cast<std::uint16_t>(msg.tombstones.size()));  // certificates (none here)
  EXPECT_EQ(msg.wire_bytes(), w.size());
}

TEST(WireSizeEquivalence, NewscastMessage) {
  std::vector<TimestampedDescriptor> entries;
  for (const auto& d : test::random_descriptors(30, 5)) entries.push_back({d, 12345});
  const NewscastMessage msg(entries, true);

  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(entries.size()));
  for (const auto& e : entries) {
    w.descriptor(e.descriptor);
    w.u32(static_cast<std::uint32_t>(e.timestamp));
  }
  w.u8(1);
  EXPECT_EQ(msg.wire_bytes(), w.size());
}

}  // namespace
}  // namespace bsvc
