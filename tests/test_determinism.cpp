// Determinism guarantees of the simulation stack:
//  - TwoTierQueue pops in exact (time, seq) order, bit-for-bit equal to a
//    reference sorted model, including far-future heap spill and FIFO ties;
//  - run_replicas() produces identical series regardless of thread count;
//  - fixed-seed 256-node experiments replay the golden witnesses recorded
//    from the pre-overhaul single-heap engine (same seed ⇒ same simulation,
//    across engine rewrites).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "sim/event_queue.hpp"

namespace bsvc {
namespace {

// ---------------------------------------------------------------------------
// TwoTierQueue vs a reference model: stable-sort by (time, seq).

struct QueueScript {
  // Interleaved pushes and pops driven by an Rng; checks every pop against
  // the model and every failed probe against the model's minimum.
  std::uint64_t seed = 1;
  std::size_t operations = 20000;
  SimTime max_gap = 2 * TwoTierQueue::kWheelSpan;  // exercises the heap tier
};

void run_queue_script(const QueueScript& script) {
  Rng rng(script.seed);
  TwoTierQueue queue;
  std::vector<SlimEvent> model;  // kept sorted by (time, seq)
  const auto order = [](const SlimEvent& a, const SlimEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  };
  std::uint64_t seq = 0;
  SimTime now = 0;  // time of the last pop; pushes are never in the past

  for (std::size_t op = 0; op < script.operations; ++op) {
    const std::uint64_t dice = rng.below(10);
    if (dice < 6 || queue.empty()) {
      SlimEvent ev{};
      // A burst of ties at the same tick every few pushes pins down FIFO.
      ev.time = now + (rng.below(4) == 0 ? 0 : rng.below(script.max_gap));
      ev.seq = seq++;
      ev.aux = ev.seq * 3;  // payload proxy so we can spot mixed-up events
      queue.push(ev);
      model.insert(std::upper_bound(model.begin(), model.end(), ev, order), ev);
    } else if (dice < 9) {
      SlimEvent got{};
      ASSERT_TRUE(queue.pop_if_at_most(~SimTime{0}, got));
      const SlimEvent want = model.front();
      model.erase(model.begin());
      ASSERT_EQ(got.time, want.time);
      ASSERT_EQ(got.seq, want.seq);
      ASSERT_EQ(got.aux, want.aux);
      now = got.time;
    } else {
      // Probe with a limit below the minimum: must fail and must not disturb
      // subsequent ordering (regression guard for the commit-on-pop rule).
      const SimTime min_time = model.front().time;
      if (min_time > 0) {
        SlimEvent got{};
        ASSERT_FALSE(queue.pop_if_at_most(min_time - 1, got));
      }
    }
    ASSERT_EQ(queue.size(), model.size());
  }
  // Drain and compare the tail.
  while (!model.empty()) {
    SlimEvent got{};
    ASSERT_TRUE(queue.pop_if_at_most(~SimTime{0}, got));
    ASSERT_EQ(got.seq, model.front().seq);
    ASSERT_EQ(got.time, model.front().time);
    model.erase(model.begin());
  }
  EXPECT_TRUE(queue.empty());
}

TEST(TwoTierQueue, MatchesReferenceModelNearFuture) {
  run_queue_script({.seed = 3, .operations = 20000, .max_gap = 512});
}

TEST(TwoTierQueue, MatchesReferenceModelWithHeapSpill) {
  run_queue_script({.seed = 4, .operations = 20000, .max_gap = 8 * TwoTierQueue::kWheelSpan});
}

TEST(TwoTierQueue, FifoAmongEqualTimes) {
  TwoTierQueue queue;
  for (std::uint64_t i = 0; i < 100; ++i) {
    queue.push(SlimEvent{.time = 5, .seq = i, .aux = i});
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    SlimEvent got{};
    ASSERT_TRUE(queue.pop_if_at_most(5, got));
    EXPECT_EQ(got.seq, i);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(TwoTierQueue, FailedProbeLeavesQueueIntact) {
  TwoTierQueue queue;
  queue.push(SlimEvent{.time = 10000, .seq = 0});  // beyond the initial wheel window
  SlimEvent got{};
  EXPECT_FALSE(queue.pop_if_at_most(9999, got));
  // A failed probe must not re-base: this push at a lower time than the
  // scanned minimum has to be accepted and popped first.
  queue.push(SlimEvent{.time = 500, .seq = 1});
  ASSERT_TRUE(queue.pop_if_at_most(~SimTime{0}, got));
  EXPECT_EQ(got.seq, 1u);
  ASSERT_TRUE(queue.pop_if_at_most(~SimTime{0}, got));
  EXPECT_EQ(got.seq, 0u);
}

// ---------------------------------------------------------------------------
// Replica harness: thread count must not leak into results.

std::vector<bench::ReplicaSpec> small_specs() {
  std::vector<bench::ReplicaSpec> specs;
  for (std::size_t i = 0; i < 4; ++i) {
    bench::ReplicaSpec spec;
    spec.label = "rep" + std::to_string(i);
    spec.cfg.n = 128;
    spec.cfg.seed = bench::replica_seed(99, i);
    spec.cfg.max_cycles = 30;
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(RunReplicas, ThreadCountInvariant) {
  const auto sequential = bench::run_replicas(small_specs(), 1);
  const auto threaded = bench::run_replicas(small_specs(), 4);
  ASSERT_EQ(sequential.size(), threaded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const auto& a = sequential[i].result;
    const auto& b = threaded[i].result;
    EXPECT_EQ(sequential[i].label, threaded[i].label);
    EXPECT_EQ(a.converged_cycle, b.converged_cycle);
    EXPECT_EQ(a.traffic_during_bootstrap.messages_sent,
              b.traffic_during_bootstrap.messages_sent);
    EXPECT_EQ(a.traffic_during_bootstrap.bytes_sent, b.traffic_during_bootstrap.bytes_sent);
    ASSERT_EQ(a.series.rows(), b.series.rows());
    for (std::size_t row = 0; row < a.series.rows(); ++row) {
      for (std::size_t col = 0; col < a.series.columns(); ++col) {
        EXPECT_EQ(a.series.at(row, col), b.series.at(row, col))
            << "replica " << i << " row " << row << " col " << col;
      }
    }
  }
}

TEST(RunReplicas, SeedDerivationIsStable) {
  // The derived seeds are part of the reproducibility contract: changing the
  // derivation silently changes every multi-replica bench result.
  EXPECT_NE(bench::replica_seed(1, 0), bench::replica_seed(1, 1));
  EXPECT_NE(bench::replica_seed(1, 0), bench::replica_seed(2, 0));
  EXPECT_EQ(bench::replica_seed(42, 7), bench::replica_seed(42, 7));
}

// ---------------------------------------------------------------------------
// Golden replay: witnesses recorded from the pre-overhaul single-heap engine.
// Same seed ⇒ byte-identical series, across the queue/payload rewrite.

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t series_hash(const ExperimentResult& r) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t row = 0; row < r.series.rows(); ++row) {
    for (std::size_t col = 0; col < r.series.columns(); ++col) {
      const double v = r.series.at(row, col);
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      h = fnv1a(h, &bits, sizeof(bits));
    }
  }
  return h;
}

struct Golden {
  std::uint64_t hash;
  std::size_t rows;
  int converged;
  std::uint64_t messages_sent;
  std::uint64_t messages_delivered;
  std::uint64_t bytes_sent;
};

/// check.sh sets BSVC_GOLDEN_OBS to a scratch directory to replay every
/// witness with tracing, per-cycle sampling and exchange spans enabled (the
/// sinks must only observe — the witnesses have to hold either way). Unset,
/// the replays run observability-free, exactly as recorded.
void apply_env_obs(ExperimentConfig& cfg, const char* name) {
  const char* dir = std::getenv("BSVC_GOLDEN_OBS");
  if (dir == nullptr) return;
  cfg.sample_every_cycles = 1;
  cfg.spans = true;
  cfg.trace_path = std::string(dir) + "/" + name + ".jsonl";
}

void expect_golden(const ExperimentResult& r, const Golden& g) {
  EXPECT_EQ(series_hash(r), g.hash);
  EXPECT_EQ(r.series.rows(), g.rows);
  EXPECT_EQ(r.converged_cycle, g.converged);
  EXPECT_EQ(r.traffic_during_bootstrap.messages_sent, g.messages_sent);
  EXPECT_EQ(r.traffic_during_bootstrap.messages_delivered, g.messages_delivered);
  EXPECT_EQ(r.traffic_during_bootstrap.bytes_sent, g.bytes_sent);
}

TEST(GoldenReplay, Plain256) {
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 42;
  cfg.max_cycles = 40;
  apply_env_obs(cfg, "plain256");
  BootstrapExperiment exp(cfg);
  expect_golden(exp.run(), {.hash = 0x4fd410ac51ff9763ull,
                            .rows = 7,
                            .converged = 6,
                            .messages_sent = 7047,
                            .messages_delivered = 7012,
                            .bytes_sent = 5180079});
}

TEST(GoldenReplay, Drop256) {
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 7;
  cfg.max_cycles = 25;
  cfg.drop_probability = 0.2;
  cfg.stop_at_convergence = false;
  apply_env_obs(cfg, "drop256");
  BootstrapExperiment exp(cfg);
  const auto r = exp.run();
  expect_golden(r, {.hash = 0x146abb8d145bddbfull,
                    .rows = 25,
                    .converged = 24,
                    .messages_sent = 22856,
                    .messages_delivered = 18149,
                    .bytes_sent = 17405440});
  EXPECT_EQ(r.traffic_during_bootstrap.messages_dropped, 4677u);
}

TEST(GoldenReplay, Churn256) {
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 11;
  cfg.max_cycles = 20;
  cfg.stop_at_convergence = false;
  cfg.churn_fail_rate = 0.01;
  cfg.churn_join_rate = 0.01;
  apply_env_obs(cfg, "churn256");
  BootstrapExperiment exp(cfg);
  expect_golden(exp.run(), {.hash = 0x5a09264610376997ull,
                            .rows = 20,
                            .converged = -1,
                            .messages_sent = 19638,
                            .messages_delivered = 19029,
                            .bytes_sent = 14979520});
}

TEST(GoldenReplay, Plain256WithTracingAttached) {
  // The observability layer must be a pure observer: the Plain256 witness
  // holds bit-for-bit with a JSONL trace sink, a per-cycle sampler and the
  // exchange-span log attached for the whole run.
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 42;
  cfg.max_cycles = 40;
  cfg.sample_every_cycles = 1;
  cfg.spans = true;
  const std::string trace_path = ::testing::TempDir() + "/golden_plain256_traced.jsonl";
  cfg.trace_path = trace_path;
  BootstrapExperiment exp(cfg);
  const auto r = exp.run();
  expect_golden(r, {.hash = 0x4fd410ac51ff9763ull,
                    .rows = 7,
                    .converged = 6,
                    .messages_sent = 7047,
                    .messages_delivered = 7012,
                    .bytes_sent = 5180079});
  EXPECT_FALSE(r.metric_series.empty());
  ASSERT_TRUE(r.has_spans);
  EXPECT_GT(r.span_summary.opened, 0u);
  EXPECT_EQ(r.span_summary.stray_closes, 0u);
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace bsvc
