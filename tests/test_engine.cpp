#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace bsvc {
namespace {

/// Simple payload carrying one integer.
class IntPayload final : public Payload {
 public:
  explicit IntPayload(int v) : value(v) {}
  std::size_t wire_bytes() const override { return 4; }
  const char* type_name() const override { return "int"; }
  int value;
};

/// Records everything that happens to it.
class Recorder final : public Protocol {
 public:
  struct Event {
    enum Kind { Start, Timer, Message } kind;
    SimTime time;
    std::uint64_t detail;  // timer id or message value
    Address from = kNullAddress;
  };

  void on_start(Context& ctx) override { events.push_back({Event::Start, ctx.now(), 0, 0}); }
  void on_timer(Context& ctx, std::uint64_t id) override {
    events.push_back({Event::Timer, ctx.now(), id, 0});
  }
  void on_message(Context& ctx, Address from, const Payload& p) override {
    const auto& ip = dynamic_cast<const IntPayload&>(p);  // test-only checked cast
    events.push_back({Event::Message, ctx.now(), static_cast<std::uint64_t>(ip.value), from});
  }

  std::vector<Event> events;
};

Recorder& recorder_at(Engine& e, Address a) {
  return dynamic_cast<Recorder&>(e.protocol(a, 0));  // test-only checked cast
}

TEST(Engine, StartDispatchesOnStart) {
  Engine e(1);
  const Address a = e.add_node(100);
  e.attach(a, std::make_unique<Recorder>());
  e.start_node(a, 5);
  e.run_until(10);
  const auto& ev = recorder_at(e, a).events;
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, Recorder::Event::Start);
  EXPECT_EQ(ev[0].time, 5u);
}

TEST(Engine, TimersFireInOrderWithFifoTieBreak) {
  Engine e(1);
  const Address a = e.add_node(100);
  e.attach(a, std::make_unique<Recorder>());
  e.start_node(a);
  e.schedule_timer(a, 0, 30, 3);
  e.schedule_timer(a, 0, 10, 1);
  e.schedule_timer(a, 0, 10, 2);  // same time as id 1, scheduled later
  e.run_until(100);
  const auto& ev = recorder_at(e, a).events;
  ASSERT_EQ(ev.size(), 4u);  // start + 3 timers
  EXPECT_EQ(ev[1].detail, 1u);
  EXPECT_EQ(ev[2].detail, 2u);
  EXPECT_EQ(ev[3].detail, 3u);
  EXPECT_EQ(ev[1].time, 10u);
  EXPECT_EQ(ev[3].time, 30u);
}

TEST(Engine, MessageDeliveredWithinLatencyBounds) {
  TransportConfig t;
  t.min_latency = 5;
  t.max_latency = 20;
  Engine e(1, t);
  const Address a = e.add_node(1);
  const Address b = e.add_node(2);
  e.attach(a, std::make_unique<Recorder>());
  e.attach(b, std::make_unique<Recorder>());
  e.start_node(a);
  e.start_node(b);
  for (int i = 0; i < 100; ++i) e.send_message(a, b, 0, std::make_unique<IntPayload>(i));
  e.run_until(1000);
  const auto& ev = recorder_at(e, b).events;
  ASSERT_EQ(ev.size(), 101u);  // start + 100 messages
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i].time, 5u);
    EXPECT_LE(ev[i].time, 20u);
    EXPECT_EQ(ev[i].from, a);
  }
}

TEST(Engine, DropProbabilityIsRespected) {
  TransportConfig t;
  t.drop_probability = 0.3;
  Engine e(7, t);
  const Address a = e.add_node(1);
  const Address b = e.add_node(2);
  e.attach(a, std::make_unique<Recorder>());
  e.attach(b, std::make_unique<Recorder>());
  e.start_node(a);
  e.start_node(b);
  constexpr int kSent = 20000;
  for (int i = 0; i < kSent; ++i) e.send_message(a, b, 0, std::make_unique<IntPayload>(i));
  e.run_all();
  const auto delivered = recorder_at(e, b).events.size() - 1;
  EXPECT_NEAR(static_cast<double>(delivered) / kSent, 0.7, 0.02);
  EXPECT_EQ(e.traffic().messages_sent, static_cast<std::uint64_t>(kSent));
  EXPECT_EQ(e.traffic().messages_delivered, delivered);
  EXPECT_EQ(e.traffic().messages_dropped, kSent - delivered);
}

TEST(Engine, BytesAccountedWithHeaders) {
  Engine e(1);
  const Address a = e.add_node(1);
  const Address b = e.add_node(2);
  e.attach(b, std::make_unique<Recorder>());
  e.start_node(b);
  e.send_message(a, b, 0, std::make_unique<IntPayload>(0));
  EXPECT_EQ(e.traffic().bytes_sent, 4 + kUdpIpHeaderBytes);
}

TEST(Engine, DeadNodesDoNotReceiveOrAct) {
  Engine e(1);
  const Address a = e.add_node(1);
  const Address b = e.add_node(2);
  e.attach(a, std::make_unique<Recorder>());
  e.attach(b, std::make_unique<Recorder>());
  e.start_node(a);
  e.start_node(b);
  e.schedule_timer(b, 0, 50, 9);
  e.run_until(10);
  e.kill_node(b);
  e.send_message(a, b, 0, std::make_unique<IntPayload>(1));
  e.run_until(1000);
  EXPECT_EQ(recorder_at(e, b).events.size(), 1u);  // only the start event
  EXPECT_EQ(e.traffic().messages_to_dead, 1u);
  EXPECT_EQ(e.alive_count(), 1u);
  EXPECT_FALSE(e.is_alive(b));
}

TEST(Engine, KillIsIdempotent) {
  Engine e(1);
  const Address a = e.add_node(1);
  e.attach(a, std::make_unique<Recorder>());
  e.start_node(a);
  e.kill_node(a);
  e.kill_node(a);
  EXPECT_EQ(e.alive_count(), 0u);
}

TEST(Engine, ScheduleCallRunsAtRequestedTime) {
  Engine e(1);
  SimTime fired_at = 0;
  e.schedule_call(42, [&fired_at](Engine& eng) { fired_at = eng.now(); });
  e.run_until(100);
  EXPECT_EQ(fired_at, 42u);
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine e(1);
  e.run_until(77);
  EXPECT_EQ(e.now(), 77u);
}

TEST(Engine, LinkFilterBlocksAndHeals) {
  Engine e(1);
  const Address a = e.add_node(1);
  const Address b = e.add_node(2);
  e.attach(a, std::make_unique<Recorder>());
  e.attach(b, std::make_unique<Recorder>());
  e.start_node(a);
  e.start_node(b);
  e.set_link_filter([](Address, Address) { return false; });
  e.send_message(a, b, 0, std::make_unique<IntPayload>(1));
  e.run_until(100);
  EXPECT_EQ(recorder_at(e, b).events.size(), 1u);
  e.clear_link_filter();
  e.send_message(a, b, 0, std::make_unique<IntPayload>(2));
  e.run_until(500);  // past the maximum transport latency
  EXPECT_EQ(recorder_at(e, b).events.size(), 2u);
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto trace = [](std::uint64_t seed) {
    TransportConfig t;
    t.drop_probability = 0.1;
    Engine e(seed, t);
    const Address a = e.add_node(1);
    const Address b = e.add_node(2);
    e.attach(a, std::make_unique<Recorder>());
    e.attach(b, std::make_unique<Recorder>());
    e.start_node(a);
    e.start_node(b);
    for (int i = 0; i < 500; ++i) e.send_message(a, b, 0, std::make_unique<IntPayload>(i));
    e.run_all();
    std::vector<std::pair<SimTime, std::uint64_t>> out;
    for (const auto& ev : recorder_at(e, b).events) out.emplace_back(ev.time, ev.detail);
    return out;
  };
  EXPECT_EQ(trace(99), trace(99));
  EXPECT_NE(trace(99), trace(100));
}

TEST(Engine, PerNodeRngsDiffer) {
  Engine e(1);
  const Address a = e.add_node(1);
  const Address b = e.add_node(2);
  EXPECT_NE(e.node_rng(a).next_u64(), e.node_rng(b).next_u64());
}

TEST(Engine, AliveAddressesMatchesLiveness) {
  Engine e(1);
  for (int i = 0; i < 10; ++i) e.add_node(static_cast<NodeId>(i + 1));
  for (Address a = 0; a < 10; ++a) e.start_node(a);
  e.kill_node(3);
  e.kill_node(7);
  const auto alive = e.alive_addresses();
  EXPECT_EQ(alive.size(), 8u);
  for (const auto a : alive) {
    EXPECT_NE(a, 3u);
    EXPECT_NE(a, 7u);
  }
}

/// Request/answer pair with distinct metric tags; answers every request.
class PingPayload final : public Payload {
 public:
  explicit PingPayload(bool request) : request_(request) {}
  std::size_t wire_bytes() const override { return 12; }
  const char* type_name() const override { return "ping"; }
  const char* metric_tag() const override { return request_ ? "ping.request" : "ping.answer"; }
  bool is_request() const { return request_; }

 private:
  bool request_;
};

class PingProtocol final : public Protocol {
 public:
  void on_message(Context& ctx, Address from, const Payload& p) override {
    if (dynamic_cast<const PingPayload&>(p).is_request()) {  // test-only checked cast
      ctx.send(from, std::make_unique<PingPayload>(false));
    }
  }
};

TEST(Engine, PerTypeCountersBalanceRequestsAndAnswers) {
  Engine e(3);
  const Address a = e.add_node(1);
  const Address b = e.add_node(2);
  e.attach(a, std::make_unique<PingProtocol>());
  e.attach(b, std::make_unique<PingProtocol>());
  e.start_node(a);
  e.start_node(b);
  constexpr std::uint64_t kRequests = 250;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    e.send_message(a, b, 0, std::make_unique<PingPayload>(true));
  }
  e.run_all();
  auto& m = e.metrics();
  // Lossless transport: every request is delivered and answered, and the
  // per-type registry counters reconcile exactly with the aggregate stats.
  EXPECT_EQ(m.counter("msg.sent.ping.request").value(), kRequests);
  EXPECT_EQ(m.counter("msg.delivered.ping.request").value(), kRequests);
  EXPECT_EQ(m.counter("msg.sent.ping.answer").value(), kRequests);
  EXPECT_EQ(m.counter("msg.delivered.ping.answer").value(), kRequests);
  EXPECT_EQ(m.counter("msg.sent.ping.request").value() +
                m.counter("msg.sent.ping.answer").value(),
            e.traffic().messages_sent);
  EXPECT_EQ(m.counter("msg.delivered.ping.request").value() +
                m.counter("msg.delivered.ping.answer").value(),
            e.traffic().messages_delivered);
}

TEST(EngineDeathTest, BadAddressAborts) {
  Engine e(1);
  EXPECT_DEATH(e.id_of(5), "address out of range");
}

}  // namespace
}  // namespace bsvc
