#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace bsvc {
namespace {

TEST(Experiment, EndToEndWithNewscastConverges) {
  ExperimentConfig cfg;
  cfg.n = 512;
  cfg.seed = 1;
  cfg.max_cycles = 60;
  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  EXPECT_GE(result.converged_cycle, 0);
  EXPECT_EQ(result.n, 512u);
  EXPECT_EQ(result.series.rows(), static_cast<std::size_t>(result.converged_cycle) + 1);
}

TEST(Experiment, SeriesColumnsAreWellFormed) {
  ExperimentConfig cfg;
  cfg.n = 128;
  cfg.seed = 2;
  cfg.sampler = SamplerKind::Oracle;
  cfg.warmup_cycles = 0;
  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  ASSERT_GT(result.series.rows(), 0u);
  EXPECT_EQ(result.series.column_name(0), "cycle");
  EXPECT_EQ(result.series.column_name(1), "missing_leaf");
  for (std::size_t r = 0; r < result.series.rows(); ++r) {
    EXPECT_EQ(result.series.at(r, 0), static_cast<double>(r));            // cycles count up
    EXPECT_GE(result.series.at(r, 1), 0.0);                               // fractions in [0,1]
    EXPECT_LE(result.series.at(r, 1), 1.0);
    EXPECT_EQ(result.series.at(r, 3), 128.0);                             // alive constant
  }
}

TEST(Experiment, TrafficGrowsLinearlyWithCycles) {
  ExperimentConfig cfg;
  cfg.n = 128;
  cfg.seed = 3;
  cfg.sampler = SamplerKind::Oracle;
  cfg.warmup_cycles = 0;
  cfg.stop_at_convergence = false;
  cfg.max_cycles = 30;
  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  ASSERT_EQ(result.series.rows(), 30u);
  // Messages per cycle ~ 2 per node (request + answer), constant over time.
  const double early = result.series.at(9, 4);
  const double late = result.series.at(29, 4);
  EXPECT_NEAR(late / early, 3.0, 0.3);
}

TEST(Experiment, ChurnRunStaysUsable) {
  ExperimentConfig cfg;
  cfg.n = 512;
  cfg.seed = 4;
  cfg.max_cycles = 40;
  cfg.churn_fail_rate = 0.005;
  cfg.churn_join_rate = 0.005;
  cfg.stop_at_convergence = false;
  cfg.bootstrap.evict_unresponsive = true;
  BootstrapExperiment exp(cfg);
  const auto result = exp.run();
  ASSERT_EQ(result.series.rows(), 40u);
  // Tables under churn carry stale entries (as in any deployed DHT without
  // full maintenance), but the bulk of both structures stays correct.
  EXPECT_LT(result.series.at(35, 1), 0.35);
  EXPECT_LT(result.series.at(35, 2), 0.35);
  EXPECT_GT(result.series.at(35, 1), 0.0);
  // Membership actually changed.
  bool size_changed = false;
  for (std::size_t r = 1; r < result.series.rows(); ++r) {
    size_changed |= result.series.at(r, 3) != result.series.at(0, 3);
  }
  EXPECT_TRUE(size_changed);
}

TEST(Experiment, MakeNodeAddsJoinableNode) {
  ExperimentConfig cfg;
  cfg.n = 128;
  cfg.seed = 5;
  cfg.max_cycles = 60;
  BootstrapExperiment exp(cfg);
  exp.run();
  const auto before = exp.engine().alive_count();
  const Address newcomer = exp.make_node();
  exp.engine().start_node(newcomer);
  exp.engine().run_until(exp.engine().now() + 20 * cfg.bootstrap.delta);
  EXPECT_EQ(exp.engine().alive_count(), before + 1);
  // The newcomer's protocol activated and holds a leaf set.
  EXPECT_TRUE(exp.bootstrap_of(newcomer).active());
  EXPECT_GT(exp.bootstrap_of(newcomer).leaf_set().size(), 0u);
}

TEST(Experiment, InitialGroupsIsolatePools) {
  ExperimentConfig cfg;
  cfg.n = 256;
  cfg.seed = 9;
  cfg.max_cycles = 40;
  cfg.stop_at_convergence = false;
  cfg.initial_groups.resize(256);
  for (Address a = 0; a < 256; ++a) cfg.initial_groups[a] = a < 128 ? 0 : 1;
  BootstrapExperiment exp(cfg);
  exp.run();
  // No node of pool A ever learned a pool-B descriptor (and vice versa).
  for (Address a = 0; a < 256; ++a) {
    const auto& proto = exp.bootstrap_of(a);
    if (!proto.active()) continue;
    const bool in_a = a < 128;
    for (const auto& d : proto.leaf_set().all()) {
      EXPECT_EQ(d.addr < 128, in_a) << "node " << a;
    }
    for (const auto& d : proto.prefix_table().entries()) {
      EXPECT_EQ(d.addr < 128, in_a) << "node " << a;
    }
  }
  // Each pool converged on its own.
  std::vector<NodeDescriptor> pool_a;
  for (Address a = 0; a < 128; ++a) pool_a.push_back(exp.engine().descriptor_of(a));
  const ConvergenceOracle oracle(exp.engine(), pool_a, cfg.bootstrap, exp.bootstrap_slot());
  EXPECT_TRUE(oracle.measure().converged());
}

TEST(Experiment, ResultsAreDeterministic) {
  const auto signature = [](std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.n = 128;
    cfg.seed = seed;
    BootstrapExperiment exp(cfg);
    const auto r = exp.run();
    return std::tuple(r.converged_cycle, r.traffic_during_bootstrap.messages_sent,
                      r.traffic_during_bootstrap.bytes_sent);
  };
  EXPECT_EQ(signature(42), signature(42));
}

}  // namespace
}  // namespace bsvc
